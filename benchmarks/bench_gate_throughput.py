"""Bench: batched versus per-word gate evaluation throughput.

The byte majority gate's exhaustive input-word set (2^3 uniform
patterns) is evaluated two ways in each backend mode:

* per-word -- the historical loop, one ``run``/``run_phasor`` call per
  input word;
* batched -- one ``run_batch``/``run_phasor_batch`` call evaluating the
  whole word set as a single vectorised ``(n_words, n_samples)`` block.

Each bench records a ``words_per_second`` metric in its ``extra_info``
(visible in ``--benchmark-verbose`` output and in the ``--bench-json``
snapshots), so the batched/per-word ratio is tracked across PRs.
"""

import pytest

from repro.core.simulate import GateSimulator


@pytest.fixture(scope="module")
def byte_setup(byte_gate):
    """A calibrated simulator plus the exhaustive pattern set."""
    simulator = GateSimulator(byte_gate)
    simulator.calibration()  # warm the cache: measure evaluation only
    return simulator, byte_gate.exhaustive_patterns()


def _record_words_per_second(benchmark, n_words, mode, batched):
    """Tag the snapshot record so ``--bench-json`` diffs are self-describing.

    ``mode``/``batched`` key the phasor and trace stats in
    ``BENCH_bench_gate_throughput.json`` across PRs; the batched/per-word
    ``words_per_second`` ratio of each mode is the tracked speedup.
    """
    benchmark.extra_info["n_words"] = n_words
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["batched"] = batched
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["words_per_second"] = n_words / mean


def test_phasor_per_word_throughput(benchmark, byte_setup):
    simulator, patterns = byte_setup

    def per_word():
        return [simulator.run_phasor(words) for words in patterns]

    results = benchmark(per_word)
    assert all(result.correct for result in results)
    _record_words_per_second(benchmark, len(patterns), "phasor", False)


def test_phasor_batched_throughput(benchmark, byte_setup):
    simulator, patterns = byte_setup
    results = benchmark(simulator.run_phasor_batch, patterns)
    assert all(result.correct for result in results)
    _record_words_per_second(benchmark, len(patterns), "phasor", True)


def test_trace_per_word_throughput(benchmark, byte_setup):
    simulator, patterns = byte_setup

    def per_word():
        return [simulator.run(words) for words in patterns]

    results = benchmark(per_word)
    assert all(result.correct for result in results)
    _record_words_per_second(benchmark, len(patterns), "trace", False)


def test_trace_batched_throughput(benchmark, byte_setup):
    simulator, patterns = byte_setup
    results = benchmark(simulator.run_batch, patterns)
    assert all(result.correct for result in results)
    _record_words_per_second(benchmark, len(patterns), "trace", True)
