"""Bench: LLG cross-validation (the paper's OOMMF role, reduced geometry).

Workload: one full gate evaluation of the reduced single-channel 3-input
majority gate on the finite-difference LLG solver (~10^4 RK4 steps on a
~100-cell mesh) and agreement with the linear model.  This is the slow
bench; the full 8-combination sweep lives in the slow test suite.
"""

import pytest

from repro.experiments import llg_validation

from conftest import print_report


def test_llg_cross_validation(benchmark):
    results = benchmark.pedantic(
        lambda: llg_validation.run(combos=[(0, 0, 0), (1, 0, 1)]),
        rounds=1,
        iterations=1,
    )
    print_report(llg_validation.report(results))
    assert results["all_agree"]
    assert results["all_correct"]
