"""Bench: regenerate Fig. 4 (per-frequency majority outputs, a-h).

Workload: decode all 8 channels for all 8 input combinations with both
phase estimators (64 lock-in + 64 FFT decodes).
"""

from repro.experiments import fig4

from conftest import print_report


def test_fig4_regeneration(benchmark):
    results = benchmark(fig4.run)
    print_report(fig4.report(results))
    assert results["all_correct"]
    assert results["methods_agree"]
