"""Bench: numerical dispersion spectroscopy on the LLG solver.

Workload: broadband-pulse excitation of a 1.2 um film, space-time FFT,
ridge extraction, and comparison against the analytic exchange-branch
dispersion -- the measurement that certifies the solver and the layout
engine agree on wavelengths.  Slow (a full LLG movie).
"""

import numpy as np
import pytest

from repro.materials import FECOB_PMA
from repro.mm.spectroscopy import extract_branch, measure_dispersion
from repro.physics.dispersion import ExchangeDispersion

from conftest import print_report


def test_dispersion_spectroscopy(benchmark):
    spectrum = benchmark.pedantic(
        lambda: measure_dispersion(
            FECOB_PMA, length=1.2e-6, duration=1.2e-9, dt=0.1e-12
        ),
        rounds=1,
        iterations=1,
    )
    ks, fs = extract_branch(
        spectrum, k_min=2e7, k_max=2.5e8, threshold_ratio=0.03
    )
    analytic = ExchangeDispersion(FECOB_PMA, 4e-9)
    predicted = np.array([analytic.frequency(k) for k in ks])
    errors = np.abs(fs - predicted) / predicted
    median_error = float(np.median(errors))

    lines = [
        "Numerical dispersion vs analytic exchange branch",
        "  k [rad/um]   f_measured [GHz]   f_analytic [GHz]   error",
    ]
    for k, f, p in list(zip(ks, fs, predicted))[::4]:
        lines.append(
            f"  {k / 1e6:10.1f}   {f / 1e9:14.2f}   {p / 1e9:14.2f}   "
            f"{abs(f - p) / p:6.1%}"
        )
    lines.append(f"  median relative error: {median_error:.1%}")
    print_report("\n".join(lines))
    assert median_error < 0.15
