"""Bench: regenerate the Section V.B area/delay/energy comparison.

Workload: byte-parallel in-line layout + 8-gate scalar baseline through
the transducer cost model; paper reference 0.116 / 0.0279 um^2 = 4.16x.
"""

from repro.experiments import area_table

from conftest import print_report


def test_area_comparison_regeneration(benchmark):
    results = benchmark(area_table.run)
    print_report(area_table.report(results))
    assert 2.5 < results["area_ratio"] < 5.0
    assert results["energy_ratio"] == 1.0
