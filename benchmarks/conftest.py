"""Benchmark fixtures.

Each benchmark regenerates one paper table/figure through the experiment
harness and prints its paper-versus-measured report (visible with
``pytest benchmarks/ --benchmark-only -s`` and always captured into the
bench log).  pytest-benchmark measures the regeneration cost.
"""

import pytest


def print_report(text):
    """Print a report block with a separator, surviving capture."""
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


@pytest.fixture(scope="session")
def byte_gate():
    from repro import byte_majority_gate

    return byte_majority_gate()
