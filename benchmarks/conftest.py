"""Benchmark fixtures.

Each benchmark regenerates one paper table/figure through the experiment
harness and prints its paper-versus-measured report (visible with
``pytest benchmarks/ --benchmark-only -s`` and always captured into the
bench log).  pytest-benchmark measures the regeneration cost.

``--bench-json`` additionally snapshots every measured benchmark into
``BENCH_<module>.json`` files at the repo root (one per bench module,
keyed by test name, with the pytest-benchmark stats plus any
``extra_info`` the bench recorded), so the performance trajectory is
tracked across PRs by diffing the snapshots.
"""

import json
from pathlib import Path

import pytest

_STAT_KEYS = ("min", "max", "mean", "stddev", "median", "rounds", "ops")


def print_report(text):
    """Print a report block with a separator, surviving capture."""
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


@pytest.fixture(scope="session")
def byte_gate():
    from repro import byte_majority_gate

    return byte_majority_gate()


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store_true",
        default=False,
        help=(
            "autosave benchmark stats to BENCH_<module>.json files in the "
            "repo root (perf trajectory tracking across PRs)"
        ),
    )


def pytest_sessionfinish(session, exitstatus):
    if not session.config.getoption("--bench-json", default=False):
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    groups = {}
    for bench in bench_session.benchmarks:
        stats = getattr(bench, "stats", None)
        if stats is None:  # collected but never measured (e.g. errored)
            continue
        module = Path(bench.fullname.split("::")[0]).stem
        record = {}
        for key in _STAT_KEYS:
            value = getattr(stats, key, None)
            if value is not None:
                record[key] = float(value)
        extra = getattr(bench, "extra_info", None)
        if extra:
            record["extra_info"] = dict(extra)
        groups.setdefault(module, {})[bench.name] = record
    root = Path(str(getattr(session.config, "rootpath", Path.cwd())))
    for module, records in sorted(groups.items()):
        path = root / f"BENCH_{module}.json"
        path.write_text(json.dumps(records, indent=2, sort_keys=True) + "\n")
        print(f"bench-json: wrote {path}")
