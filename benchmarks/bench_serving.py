"""Bench: serving throughput over HTTP vs the in-process executor.

The ``swgate serve`` daemon answers ``POST /v1/run`` by submitting to
the same coalescing :class:`~repro.circuits.executor.CircuitExecutor`
an in-process caller would use, so the daemon row prices exactly the
serving overhead -- JSON encode/decode, loopback HTTP, handler-thread
wait on the ticket -- on top of the in-process row:

* ``mode="daemon"`` -- a :class:`~repro.serve.client.ServeClient`
  evaluating the canonical rca4 word-group sweep through a loopback
  :class:`~repro.serve.daemon.CircuitServer` (warm compile cache),
  with per-request tracing and the event log **enabled** (the
  defaults);
* ``mode="daemon-untraced"`` -- the same daemon with
  ``trace_requests=False`` and ``log_capacity=0``: prices the
  observability tax (the PR 10 acceptance bound is <5% against the
  traced row);
* ``mode="in-process"`` -- the identical request stream served by
  ``CircuitExecutor.run`` directly, same bindings geometry.

Both rows record ``words_per_second`` in ``extra_info`` (snapshotted by
``--bench-json`` into ``BENCH_bench_serving.json``) so the serving tax
is tracked across PRs; diff snapshots against the committed baseline
with ``python benchmarks/compare_bench.py``.
"""

import pytest

from repro.circuits import CircuitExecutor, ripple_carry_adder
from repro.serve import CircuitServer, ServeClient

#: Data-parallel width of every physical cell (the paper's byte width).
N_BITS = 8
#: Word groups per sweep: the canonical batch-of-8 adder sweep.
N_GROUPS = 8


def _adder_batch(width, n_assignments, seed=0):
    """Deterministic random (a, b) assignments for a width-bit adder."""
    import numpy as np

    rng = np.random.default_rng(seed)
    batch = []
    for _ in range(n_assignments):
        assignment = {}
        for i in range(width):
            assignment[f"a{i}"] = int(rng.integers(2))
            assignment[f"b{i}"] = int(rng.integers(2))
        batch.append(assignment)
    return batch


def _record(benchmark, netlist, batch, mode, backend):
    benchmark.extra_info["circuit"] = netlist.name
    benchmark.extra_info["depth"] = netlist.depth()
    benchmark.extra_info["n_bits"] = N_BITS
    benchmark.extra_info["batch_size"] = len(batch)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["backend"] = backend
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["words_per_second"] = len(batch) / mean
    # Min-time rate: robust to scheduler jitter on shared boxes, so the
    # traced-vs-untraced observability tax is read off this column.
    benchmark.extra_info["words_per_second_best"] = (
        len(batch) / benchmark.stats.stats.min
    )


@pytest.fixture(scope="module")
def serving_setup():
    """One loopback daemon + client + the rca4 sweep, compile warmed."""
    netlist = ripple_carry_adder(4)
    batch = _adder_batch(4, N_GROUPS * N_BITS)
    with CircuitServer(n_bits=N_BITS, max_latency=0.002) as daemon:
        client = ServeClient(daemon.url)
        client.run(netlist, batch[:N_BITS])  # warm compile + calibration
        yield daemon, client, netlist, batch


def test_daemon_loopback_throughput(benchmark, serving_setup):
    """Steady-state serving over loopback HTTP: the daemon-tax row."""
    daemon, client, netlist, batch = serving_setup
    result = benchmark(client.run, netlist, batch)
    assert result.correct
    _record(
        benchmark, netlist, batch, "daemon",
        daemon.executor.bindings.backend.tag,
    )
    benchmark.extra_info["metrics"] = {
        "serve.requests": daemon.obs.counter("serve.requests"),
        "executor.blocks": daemon.obs.counter("executor.blocks"),
    }


def test_daemon_untraced_throughput(benchmark, serving_setup):
    """The daemon with tracing + event logging disabled: the delta
    against the traced row is the whole observability cost."""
    daemon, _, netlist, batch = serving_setup
    with CircuitServer(
        n_bits=N_BITS, bindings=daemon.executor.bindings,
        max_latency=0.002, trace_requests=False, log_capacity=0,
        slow_request_s=None,
    ) as untraced:
        client = ServeClient(untraced.url)
        client.run(netlist, batch[:N_BITS])  # warm this daemon's cache
        result = benchmark(client.run, netlist, batch)
        assert result.correct
        assert result.trace is None
        _record(
            benchmark, netlist, batch, "daemon-untraced",
            untraced.executor.bindings.backend.tag,
        )


def test_in_process_executor_throughput(benchmark, serving_setup):
    """The same request stream without the HTTP layer (the baseline the
    daemon row is compared against)."""
    daemon, client, netlist, batch = serving_setup
    executor = CircuitExecutor(bindings=daemon.executor.bindings)
    executor.run(netlist, batch[:N_BITS])  # warm the compile cache
    result = benchmark(executor.run, netlist, batch)
    assert result.correct
    _record(
        benchmark, netlist, batch, "in-process",
        executor.bindings.backend.tag,
    )
