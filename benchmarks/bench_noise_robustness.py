"""Bench: transducer-noise robustness (beyond-paper extension).

Workload: byte-gate word error rate versus phase, amplitude and
placement noise (Monte Carlo over random word triples), plus the
thermal phase-jitter estimate from the stochastic LLG model.
"""

from repro.experiments import noise_robustness

from conftest import print_report


def test_noise_robustness_regeneration(benchmark):
    results = benchmark.pedantic(
        lambda: noise_robustness.run(n_trials=20),
        rounds=1,
        iterations=1,
    )
    print_report(noise_robustness.report(results))
    assert results["phase_rates"][0] == 0.0
    assert results["position_rates"][-1] > 0.0
