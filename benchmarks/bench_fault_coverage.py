"""Bench: manufacturing-test fault coverage (beyond-paper extension).

Workload: 96 single-transducer faults x up to 8 exhaustive patterns on
the byte majority gate, logic and parametric detection.
"""

from repro.experiments import fault_coverage

from conftest import print_report


def test_fault_coverage_regeneration(benchmark):
    results = benchmark.pedantic(fault_coverage.run, rounds=1, iterations=1)
    print_report(fault_coverage.report(results))
    # Structural expectations: logic testing catches every dead/stuck
    # fault and no weak fault; the parametric test catches everything.
    assert results["logic_by_kind"]["weak-source"][1] == 0
    assert results["parametric"]["coverage"] == 1.0
