"""Bench: regenerate the Section V scalability study.

Workload: worst-case decode margin for fan-in 3..15 with uniform and
damping-compensated drive, plus an end-to-end simulator cross-check.
"""

from repro.experiments import scalability

from conftest import print_report


def test_scalability_regeneration(benchmark):
    results = benchmark(scalability.run)
    print_report(scalability.report(results))
    assert results["rows"][-1]["uncompensated_margin"] < 0
    assert all(r["compensated_margin"] > 0 for r in results["rows"])
