"""Bench: design-choice ablations called out in DESIGN.md.

* paper spacing multipliers vs auto-minimal multipliers (gate length),
* lock-in vs FFT readout (decode agreement already asserted in fig4;
  here: throughput),
* phasor mode vs full trace mode (simulation cost).
"""

import numpy as np
import pytest

from repro.core.frequency_plan import FrequencyPlan
from repro.core.layout import InlineGateLayout, PAPER_BYTE_MULTIPLIERS
from repro.core.simulate import GateSimulator
from repro import byte_majority_gate
from repro.waveguide import Waveguide

from conftest import print_report

WORDS = [[1, 0, 1, 0, 1, 0, 1, 0], [0, 0, 1, 1, 0, 0, 1, 1], [0, 1, 0, 1, 0, 1, 0, 1]]


def test_layout_multiplier_ablation(benchmark):
    """Paper multipliers vs the auto search: who builds a shorter gate?"""
    plan = FrequencyPlan.paper_byte_plan()
    waveguide = Waveguide()

    def build_both():
        paper = InlineGateLayout(
            waveguide, plan, multipliers=list(PAPER_BYTE_MULTIPLIERS)
        )
        auto = InlineGateLayout(waveguide, plan)
        return paper, auto

    paper, auto = benchmark(build_both)
    lines = [
        "Layout ablation: source-spacing multipliers",
        f"  paper multipliers {paper.multipliers}: "
        f"length {paper.total_length * 1e9:.1f} nm, "
        f"area {paper.area * 1e12:.4f} um^2",
        f"  auto multipliers  {auto.multipliers}: "
        f"length {auto.total_length * 1e9:.1f} nm, "
        f"area {auto.area * 1e12:.4f} um^2",
    ]
    print_report("\n".join(lines))
    paper.validate()
    auto.validate()


def test_phasor_mode_throughput(benchmark, byte_gate):
    simulator = GateSimulator(byte_gate)
    simulator.calibration()  # exclude one-time cost
    result = benchmark(simulator.run_phasor, WORDS)
    assert result.correct


def test_trace_mode_throughput(benchmark, byte_gate):
    simulator = GateSimulator(byte_gate)
    simulator.calibration()
    result = benchmark(simulator.run, WORDS)
    assert result.correct


def test_lockin_readout_throughput(benchmark, byte_gate):
    simulator = GateSimulator(byte_gate)
    result = benchmark(simulator.run, WORDS, None, None, "lockin")
    assert result.correct


def test_fft_readout_throughput(benchmark, byte_gate):
    simulator = GateSimulator(byte_gate)
    result = benchmark(simulator.run, WORDS, None, None, "fft")
    assert result.correct
