"""Bench: micromagnetic solver kernel throughput (ablation support).

Not a paper artefact -- this keeps the OOMMF-substitute kernels honest
and quantifies two ablations: the full Newell FFT demag versus the local
thin-film approximation, and the allocating reference path versus the
zero-allocation kernel layer (:mod:`repro.mm.kernels`).  Each
``*_into`` bench is the in-place twin of the allocating bench above it,
on the identical 128x16x1 film problem, so their ratio is the measured
speedup of the workspace path.
"""

import numpy as np
import pytest

from repro.materials import FECOB_PMA
from repro.mm import (
    DemagField,
    ExchangeField,
    LLGWorkspace,
    Mesh,
    State,
    ThinFilmDemagField,
    UniaxialAnisotropyField,
)
from repro.mm.integrators import (
    RKScratch,
    rk4_step,
    rk4_step_into,
    rkf45_step,
    rkf45_step_into,
)
from repro.mm.llg import effective_field, llg_rhs_from_field

FILM_TERMS = (ExchangeField, UniaxialAnisotropyField, ThinFilmDemagField)


@pytest.fixture()
def film_state():
    """A fresh random film state per test.

    Function-scoped on purpose: the RK benches rebind ``state.m`` to
    integrator buffers, so a shared (module-scoped) state would leak
    mutations between benchmark tests and silently change what later
    benches measure.
    """
    mesh = Mesh(128, 16, 1, 4e-9, 4e-9, 1e-9)
    return State.random(mesh, FECOB_PMA, seed=0)


# ----------------------------------------------------------------------
# Field-term throughput: allocating reference vs in-place kernel
# ----------------------------------------------------------------------

def test_exchange_field_throughput(benchmark, film_state):
    term = ExchangeField()
    benchmark(term.field, film_state)


def test_exchange_field_into_throughput(benchmark, film_state):
    """Workspace-driven exchange evaluation -- the production hot path
    (diff-kernel overwrite + fused trailing operator, no zero fill)."""
    workspace = LLGWorkspace(
        film_state.mesh, film_state.material, [ExchangeField()]
    )
    benchmark(workspace.effective_field_into, film_state)


def test_exchange_add_field_into_throughput(benchmark, film_state):
    """Standalone accumulating kernel (term used outside a workspace)."""
    term = ExchangeField()
    out = np.zeros(film_state.mesh.shape + (3,))

    def kernel():
        out.fill(0.0)
        term.add_field_into(film_state, out)

    benchmark(kernel)


def test_anisotropy_field_throughput(benchmark, film_state):
    term = UniaxialAnisotropyField()
    benchmark(term.field, film_state)


def test_anisotropy_field_into_throughput(benchmark, film_state):
    term = UniaxialAnisotropyField()
    out = np.zeros(film_state.mesh.shape + (3,))

    def kernel():
        out.fill(0.0)
        term.add_field_into(film_state, out)

    benchmark(kernel)


def test_full_demag_throughput(benchmark, film_state):
    term = DemagField(film_state.mesh)
    benchmark(term.field, film_state)


def test_full_demag_into_throughput(benchmark, film_state):
    term = DemagField(film_state.mesh)
    out = np.zeros(film_state.mesh.shape + (3,))

    def kernel():
        out.fill(0.0)
        term.add_field_into(film_state, out)

    benchmark(kernel)
    benchmark.extra_info["backend"] = term.backend.tag


def test_full_demag_into_scipy_fft_throughput(benchmark, film_state):
    """Newell demag through the planned scipy.fft backend (workers=-1)."""
    from repro.backends import ScipyFFTBackend
    from repro.errors import BackendError

    try:
        backend = ScipyFFTBackend()
    except BackendError:
        pytest.skip("scipy not available")
    term = DemagField(film_state.mesh, backend=backend)
    out = np.zeros(film_state.mesh.shape + (3,))

    def kernel():
        out.fill(0.0)
        term.add_field_into(film_state, out)

    benchmark(kernel)
    benchmark.extra_info["backend"] = backend.tag


def test_thin_film_demag_throughput(benchmark, film_state):
    term = ThinFilmDemagField()
    benchmark(term.field, film_state)


def test_demag_ablation_accuracy(film_state):
    """The ablation itself: how far is the local approximation from the
    full Newell solution on the paper-like film?  (Printed, not timed.)"""
    full = DemagField(film_state.mesh).field(film_state)
    local = ThinFilmDemagField().field(film_state)
    scale = float(np.max(np.abs(full)))
    error = float(np.max(np.abs(full - local))) / scale
    print(f"\nthin-film demag max relative error vs Newell FFT: {error:.3f}")
    # A *random* state is the worst case for the local approximation
    # (every cell fluctuates, so non-local contributions are maximal);
    # same order of magnitude is all it promises there.
    assert error < 1.0


# ----------------------------------------------------------------------
# Full RK step throughput: allocating closure vs LLGWorkspace kernels
# ----------------------------------------------------------------------

def _allocating_rhs(state, terms):
    def rhs(t, m):
        state.m = m
        h = effective_field(state, terms, t)
        return llg_rhs_from_field(m, h, state.material)

    return rhs


def test_rk4_step_throughput(benchmark, film_state):
    terms = [cls() for cls in FILM_TERMS]
    rhs = _allocating_rhs(film_state, terms)
    benchmark(rk4_step, rhs, 0.0, film_state.m.copy(), 1e-14)


def test_rk4_step_into_throughput(benchmark, film_state):
    terms = [cls() for cls in FILM_TERMS]
    workspace = LLGWorkspace(film_state.mesh, film_state.material, terms)
    rhs_into = workspace.bound_rhs(film_state)
    m = film_state.m.copy()
    benchmark(rk4_step_into, rhs_into, 0.0, m, 1e-14, workspace.rk)
    benchmark.extra_info["backend"] = workspace.backend.tag


def test_rk4_step_into_float32_throughput(benchmark, film_state):
    """The workspace RK4 step with every buffer/operator in float32.

    Same film problem as ``test_rk4_step_into_throughput``; the state's
    magnetisation is downcast so the GEMMs, cross products and FFT-free
    field kernels all run single-precision -- the ratio of the two rows
    is the precision speedup of the LLG hot loop.
    """
    from repro.backends import NumpyBackend

    backend = NumpyBackend("single")
    terms = [cls() for cls in FILM_TERMS]
    workspace = LLGWorkspace(
        film_state.mesh, film_state.material, terms, backend=backend
    )
    film_state.m = film_state.m.astype(np.float32)
    rhs_into = workspace.bound_rhs(film_state)
    m = film_state.m.copy()
    benchmark(rk4_step_into, rhs_into, 0.0, m, 1e-14, workspace.rk)
    benchmark.extra_info["backend"] = backend.tag


def test_rkf45_step_throughput(benchmark, film_state):
    terms = [cls() for cls in FILM_TERMS]
    rhs = _allocating_rhs(film_state, terms)
    benchmark(rkf45_step, rhs, 0.0, film_state.m.copy(), 1e-14)


def test_rkf45_step_into_throughput(benchmark, film_state):
    terms = [cls() for cls in FILM_TERMS]
    workspace = LLGWorkspace(film_state.mesh, film_state.material, terms)
    rhs_into = workspace.bound_rhs(film_state)
    m = film_state.m.copy()
    benchmark(rkf45_step_into, rhs_into, 0.0, m, 1e-14, workspace.rk)


def test_rk_scratch_reuse_no_alloc(film_state):
    """One workspace serves repeated steps without growing (smoke check
    that the scratch buffers really are reused, printed not timed)."""
    terms = [cls() for cls in FILM_TERMS]
    workspace = LLGWorkspace(film_state.mesh, film_state.material, terms)
    rhs_into = workspace.bound_rhs(film_state)
    m = film_state.m.copy()
    first = rk4_step_into(rhs_into, 0.0, m, 1e-14, workspace.rk)
    buffer_id = id(workspace.rk.out)
    second = rk4_step_into(rhs_into, 0.0, m, 1e-14, workspace.rk)
    assert id(first) == id(second) == buffer_id
    assert isinstance(RKScratch(film_state.mesh.shape + (3,)), RKScratch)
