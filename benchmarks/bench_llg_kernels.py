"""Bench: micromagnetic solver kernel throughput (ablation support).

Not a paper artefact -- this keeps the OOMMF-substitute kernels honest
and quantifies the ablation called out in DESIGN.md: the full Newell FFT
demag versus the local thin-film approximation, and RK4 versus RKF45.
"""

import numpy as np
import pytest

from repro.materials import FECOB_PMA
from repro.mm import (
    DemagField,
    ExchangeField,
    Mesh,
    State,
    ThinFilmDemagField,
    UniaxialAnisotropyField,
    ZeemanField,
)
from repro.mm.integrators import rk4_step, rkf45_step
from repro.mm.llg import effective_field, llg_rhs_from_field


@pytest.fixture(scope="module")
def film_state():
    mesh = Mesh(128, 16, 1, 4e-9, 4e-9, 1e-9)
    return State.random(mesh, FECOB_PMA, seed=0)


def test_exchange_field_throughput(benchmark, film_state):
    term = ExchangeField()
    benchmark(term.field, film_state)


def test_anisotropy_field_throughput(benchmark, film_state):
    term = UniaxialAnisotropyField()
    benchmark(term.field, film_state)


def test_full_demag_throughput(benchmark, film_state):
    term = DemagField(film_state.mesh)
    benchmark(term.field, film_state)


def test_thin_film_demag_throughput(benchmark, film_state):
    term = ThinFilmDemagField()
    benchmark(term.field, film_state)


def test_demag_ablation_accuracy(film_state):
    """The ablation itself: how far is the local approximation from the
    full Newell solution on the paper-like film?  (Printed, not timed.)"""
    full = DemagField(film_state.mesh).field(film_state)
    local = ThinFilmDemagField().field(film_state)
    scale = float(np.max(np.abs(full)))
    error = float(np.max(np.abs(full - local))) / scale
    print(f"\nthin-film demag max relative error vs Newell FFT: {error:.3f}")
    assert error < 0.5  # same order; exact agreement is not expected


def test_rk4_step_throughput(benchmark, film_state):
    terms = [ExchangeField(), UniaxialAnisotropyField(), ThinFilmDemagField()]

    def rhs(t, m):
        film_state.m = m
        h = effective_field(film_state, terms, t)
        return llg_rhs_from_field(m, h, film_state.material)

    benchmark(rk4_step, rhs, 0.0, film_state.m.copy(), 1e-14)


def test_rkf45_step_throughput(benchmark, film_state):
    terms = [ExchangeField(), UniaxialAnisotropyField(), ThinFilmDemagField()]

    def rhs(t, m):
        film_state.m = m
        h = effective_field(film_state, terms, t)
        return llg_rhs_from_field(m, h, film_state.material)

    benchmark(rkf45_step, rhs, 0.0, film_state.m.copy(), 1e-14)
