"""Bench: channel-count scaling (beyond-paper extension of Section III).

Workload: design, lay out and verify n-bit gates for n = 1..12 channels
packed into the waveguide's usable band; report per-bit area.
"""

from repro.experiments import channel_capacity

from conftest import print_report


def test_channel_capacity_regeneration(benchmark):
    results = benchmark(channel_capacity.run)
    print_report(channel_capacity.report(results))
    assert results["per_bit_area_decreasing"]
    feasible = [r for r in results["rows"] if r.get("feasible")]
    assert all(r["functional"] for r in feasible)
