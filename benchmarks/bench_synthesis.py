"""Bench: logic-synthesis pipeline cost and mapped-circuit throughput.

Three measurements, snapshotted by ``--bench-json`` into
``BENCH_bench_synthesis.json``:

* ``test_optimize_suite`` -- the optimization pipeline (all passes to
  fixpoint) over every suite circuit, with the naive-vs-optimized
  depth/cell scorecard in ``extra_info`` so optimizer regressions (in
  speed *or* in quality) show up in the snapshot diff;
* ``test_synthesize_flow`` -- the full flow (optimize + both mappings +
  exhaustive Boolean verification) on the largest suite entry;
* ``test_mapped_*_throughput`` -- the physical engine executing the
  naive and the optimized comparator4 mapping on the same batch: the
  words-per-second delta is the end-to-end payoff of the optimizer.
"""

import pytest

from repro.circuits import CircuitEngine
from repro.synthesis import get_circuit, optimize, suite, synthesize, to_netlist

#: Data-parallel width / word groups of the throughput benches.
N_BITS = 4
N_GROUPS = 4


def _optimize_all():
    scorecard = {}
    for circuit in suite():
        mig = circuit.build()
        optimized, _ = optimize(mig)
        scorecard[circuit.name] = {
            "naive_gates": mig.n_gates,
            "optimized_gates": optimized.n_gates,
            "naive_depth": mig.depth(),
            "optimized_depth": optimized.depth(),
        }
    return scorecard


def test_optimize_suite(benchmark):
    scorecard = benchmark(_optimize_all)
    for name, record in scorecard.items():
        assert record["optimized_depth"] <= record["naive_depth"], name
        benchmark.extra_info[name] = record
    benchmark.extra_info["n_circuits"] = len(scorecard)


def test_synthesize_flow(benchmark):
    """Full verified flow on the widest suite entry (alu_slice)."""
    circuit = get_circuit("alu_slice")
    result = benchmark(
        lambda: synthesize(circuit.build(), reference=circuit.reference)
    )
    assert result.verified
    benchmark.extra_info["circuit"] = circuit.name
    benchmark.extra_info["naive_physical_cells"] = result.naive.n_physical
    benchmark.extra_info["optimized_physical_cells"] = (
        result.optimized.n_physical
    )
    benchmark.extra_info["naive_depth"] = result.naive.physical_depth
    benchmark.extra_info["optimized_depth"] = result.optimized.physical_depth


@pytest.fixture(scope="module")
def mapped_comparator():
    """Warmed engines for both comparator4 mappings plus a shared batch."""
    from repro.synthesis.verify import random_input_batch

    circuit = get_circuit("comparator4")
    result = synthesize(circuit.build(), reference=circuit.reference)
    batch = random_input_batch(
        result.naive.netlist.inputs, N_GROUPS * N_BITS, seed=0
    )
    engines = {}
    for label, report in (
        ("naive", result.naive), ("optimized", result.optimized)
    ):
        engine = CircuitEngine(report.netlist, n_bits=N_BITS)
        engine.run(batch[:N_BITS])  # warm layouts/calibrations/weights
        engines[label] = (engine, report)
    return engines, batch


def _throughput(benchmark, engines, batch, label):
    engine, report = engines[label]
    result = benchmark(engine.run, batch)
    assert result.correct
    benchmark.extra_info["mapping"] = label
    benchmark.extra_info["circuit"] = report.netlist.name
    benchmark.extra_info["physical_depth"] = report.physical_depth
    benchmark.extra_info["n_physical_cells"] = report.n_physical
    benchmark.extra_info["n_bits"] = N_BITS
    benchmark.extra_info["batch_size"] = len(batch)
    benchmark.extra_info["words_per_second"] = (
        len(batch) / benchmark.stats.stats.mean
    )


def test_mapped_naive_throughput(benchmark, mapped_comparator):
    engines, batch = mapped_comparator
    _throughput(benchmark, engines, batch, "naive")


def test_mapped_optimized_throughput(benchmark, mapped_comparator):
    engines, batch = mapped_comparator
    _throughput(benchmark, engines, batch, "optimized")
