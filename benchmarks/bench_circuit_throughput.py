"""Bench: packed vs per-op vs scalar circuit execution.

A synthesized ripple-carry adder is compiled by the physical circuit
engine and evaluated on a batch of word groups three ways:

* scalar cascade (``mode="scalar"``) -- :meth:`CircuitEngine.run_scalar`,
  the ``GateCascade``-style reference: one ``run_phasor`` call per
  (cell, word group);
* per-op batched (``mode="per-op"``) -- ``run(packed=False)``: per
  level, all (cell, group) pairs of one operation kind evaluate as a
  single ``run_phasor_batch`` GEMM against cached propagation weights;
* packed (``mode="packed"``) -- ``run()``, the compile-once default:
  the frozen :class:`~repro.circuits.compiled.CompiledCircuit` artifact
  executes every physical cell of a level -- MAJ3 and XOR2 alike -- as
  ONE GEMM against block-stacked weights into preallocated buffers.

``mode="compile+run"`` times the cold path (staged ``compile()`` plus
one packed run) so the compiled-reuse advantage -- the steady-state
packed row beating first-run compile+execute -- stays on the scoreboard.

The time-domain pair repeats the comparison for ``mode="trace"``
(waveform generation + lock-in decode) on the full adder: packed
levels run through the memoised carrier-basis GEMM of ``run_batch``,
the scalar reference simulates one full ``run`` per (cell, group).

Each bench records circuit name, logic depth, batch geometry, ``mode``
and a ``words_per_second`` metric in its ``extra_info`` (snapshotted by
``--bench-json`` into ``BENCH_bench_circuit_throughput.json``), so
circuit-level throughput -- and the packed/scalar speedup, the PR
acceptance metric -- is tracked across PRs; diff snapshots against the
committed baseline with ``python benchmarks/compare_bench.py``.
"""

import pytest

from repro.circuits import (
    CircuitEngine,
    compile_circuit,
    full_adder,
    ripple_carry_adder,
)

#: Data-parallel width of every physical cell (the paper's byte width).
N_BITS = 8
#: Word groups per sweep: the canonical batch-of-8 adder sweep.
N_GROUPS = 8


def _adder_batch(width, n_assignments, seed=0):
    """Deterministic random (a, b) assignments for a width-bit adder."""
    import numpy as np

    rng = np.random.default_rng(seed)
    batch = []
    for _ in range(n_assignments):
        assignment = {}
        for i in range(width):
            assignment[f"a{i}"] = int(rng.integers(2))
            assignment[f"b{i}"] = int(rng.integers(2))
        batch.append(assignment)
    return batch


@pytest.fixture(scope="module")
def adder_setup():
    """A warmed rca4 engine plus the batch-of-8 word-group sweep."""
    netlist = ripple_carry_adder(4)
    engine = CircuitEngine(netlist, n_bits=N_BITS)
    batch = _adder_batch(4, N_GROUPS * N_BITS)
    # Warm layouts, calibrations and propagation-weight caches so both
    # benches measure steady-state evaluation only.
    engine.run(batch[: N_BITS])
    return engine, netlist, batch


def _record(benchmark, engine, netlist, batch, mode):
    benchmark.extra_info["circuit"] = netlist.name
    benchmark.extra_info["depth"] = netlist.depth()
    benchmark.extra_info["n_cells"] = engine.n_physical_cells
    benchmark.extra_info["n_bits"] = engine.n_bits
    benchmark.extra_info["batch_size"] = len(batch)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["backend"] = engine.bindings.backend.tag
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["words_per_second"] = len(batch) / mean


def _with_hit_rates(metrics):
    """Derive ``<cache>.hit_rate`` entries from hits/misses counters."""
    for name in [n for n in metrics if n.endswith(".hits")]:
        base = name[: -len(".hits")]
        hits = metrics[name]
        misses = metrics.get(base + ".misses", 0)
        if hits + misses:
            metrics[base + ".hit_rate"] = hits / (hits + misses)
    return metrics


def _run_metrics(fn):
    """Efficiency counters (GEMM counts, cache hit rates) for one run.

    Routes the library's obs instrumentation into a fresh registry for
    one execution of ``fn``, so the ``metrics`` sub-dict in the bench
    JSON reflects exactly one steady-state run --
    ``benchmarks/compare_bench.py`` diffs it across PRs.
    """
    from repro import obs

    registry = obs.MetricsRegistry(enabled=False)
    with obs.use_registry(registry):
        fn()
    return _with_hit_rates(dict(registry.snapshot()["counters"]))


def test_engine_packed_throughput(benchmark, adder_setup):
    """Steady-state packed serving: the compiled-reuse acceptance row."""
    engine, netlist, batch = adder_setup
    result = benchmark(engine.run, batch)
    assert result.correct
    _record(benchmark, engine, netlist, batch, "packed")
    benchmark.extra_info["metrics"] = _run_metrics(
        lambda: engine.run(batch)
    )


def test_engine_per_op_throughput(benchmark, adder_setup):
    engine, netlist, batch = adder_setup
    result = benchmark(engine.run, batch, packed=False)
    assert result.correct
    _record(benchmark, engine, netlist, batch, "per-op")


def test_engine_compile_and_run_throughput(benchmark, adder_setup):
    """Cold path: staged compile() + one packed run, every round.

    The shared bindings keep gate weights memoised (as any serving
    process would), so this isolates the artifact staging cost that
    compiled reuse amortises away.
    """
    engine, netlist, batch = adder_setup

    def compile_and_run():
        artifact = compile_circuit(netlist, engine.bindings)
        return artifact.run(batch, strict=False)

    result = benchmark(compile_and_run)
    assert result.correct
    _record(benchmark, engine, netlist, batch, "compile+run")


def test_engine_scalar_cascade_throughput(benchmark, adder_setup):
    engine, netlist, batch = adder_setup
    result = benchmark(engine.run_scalar, batch)
    assert result.correct
    _record(benchmark, engine, netlist, batch, "scalar")


def test_executor_coalesced_throughput(benchmark, adder_setup):
    """Coalesced serving: the batch split into per-group requests.

    Every round submits ``N_GROUPS`` independent requests that the
    executor coalesces into one packed block, so this row carries the
    serving-efficiency metrics (compile-cache hit rate, coalescing
    counters, queue latency) that ``compare_bench.py`` watches for
    regressions.
    """
    from repro.circuits import CircuitExecutor

    engine, netlist, batch = adder_setup
    executor = CircuitExecutor(bindings=engine.bindings)
    requests = [
        batch[i * N_BITS : (i + 1) * N_BITS] for i in range(N_GROUPS)
    ]
    executor.submit(netlist, requests[0]).result()  # warm the compile

    def serve():
        tickets = [executor.submit(netlist, r) for r in requests]
        return [t.result() for t in tickets]

    results = benchmark(serve)
    assert all(r.correct for r in results)
    _record(benchmark, engine, netlist, batch, "coalesced")
    benchmark.extra_info["metrics"] = _with_hit_rates(
        dict(executor.obs.snapshot()["counters"])
    )


def test_obs_disabled_overhead(benchmark, adder_setup):
    """Disabled instrumentation must cost <2% of a packed rca4 run.

    The benchmarked callable is the disabled fast path itself (one
    ``enabled`` attribute check plus the shared no-op context manager);
    the assertion amortises its measured per-call cost over the number
    of gated instrumentation calls one packed run actually makes.
    """
    import time as _time

    from repro import obs

    engine, netlist, batch = adder_setup

    # Count the gated instrumentation calls in one packed run.
    probe = obs.MetricsRegistry(enabled=True)
    with obs.use_registry(probe):
        engine.run(batch)

    def span_count(nodes):
        return sum(n["count"] + span_count(n["children"]) for n in nodes)

    spans_per_run = span_count(probe.snapshot()["spans"])
    assert spans_per_run > 0  # the run is instrumented

    disabled = obs.MetricsRegistry(enabled=False)
    n_calls = 100_000

    def noop_spans():
        span = disabled.span
        for _ in range(n_calls):
            with span("x"):
                pass

    benchmark(noop_spans)
    per_call = benchmark.stats.stats.mean / n_calls

    started = _time.perf_counter()
    engine.run(batch)
    run_elapsed = _time.perf_counter() - started
    overhead = spans_per_run * per_call / run_elapsed
    benchmark.extra_info["mode"] = "obs-overhead"
    benchmark.extra_info["backend"] = engine.bindings.backend.tag
    benchmark.extra_info["spans_per_run"] = spans_per_run
    benchmark.extra_info["noop_span_ns"] = per_call * 1e9
    benchmark.extra_info["overhead_fraction"] = overhead
    assert overhead < 0.02


@pytest.fixture(scope="module")
def trace_setup():
    """A warmed full-adder engine plus one word group for trace mode.

    Trace execution simulates every waveform, so the bench uses the
    depth-2 full adder at the byte width with a single word group --
    enough to exercise the carrier-basis GEMM without dominating the
    bench session.
    """
    netlist, _, _ = full_adder()
    engine = CircuitEngine(netlist, n_bits=N_BITS)
    batch = _adder_batch_named(netlist, N_BITS)
    # Warm layouts, calibrations and the memoised carrier bases.
    engine.run_trace_batch(batch)
    return engine, netlist, batch


def _adder_batch_named(netlist, n_assignments, seed=0):
    """Deterministic random assignments over a netlist's own inputs."""
    import numpy as np

    rng = np.random.default_rng(seed)
    return [
        {name: int(rng.integers(2)) for name in netlist.inputs}
        for _ in range(n_assignments)
    ]


def test_engine_trace_batched_throughput(benchmark, trace_setup):
    engine, netlist, batch = trace_setup
    result = benchmark(engine.run_trace_batch, batch)
    assert result.correct
    _record(benchmark, engine, netlist, batch, "trace")


def test_engine_trace_scalar_throughput(benchmark, trace_setup):
    engine, netlist, batch = trace_setup
    result = benchmark(engine.run_scalar, batch, mode="trace")
    assert result.correct
    _record(benchmark, engine, netlist, batch, "trace-scalar")


def test_engine_fault_sweep_throughput(benchmark, adder_setup):
    """One full-adder fault-universe sweep (the circuit-faults inner loop)."""
    from repro.backends import get_backend
    from repro.experiments.circuit_faults import run as run_faults

    results = benchmark(run_faults, width=1, n_bits=4)
    assert results["coverage"] > 0.5
    benchmark.extra_info["circuit"] = results["circuit"]
    benchmark.extra_info["depth"] = results["depth"]
    benchmark.extra_info["n_faults"] = results["n_faults"]
    benchmark.extra_info["mode"] = "fault-sweep"
    benchmark.extra_info["backend"] = get_backend().tag


@pytest.fixture(scope="module")
def adder_setup_float32():
    """The rca4 sweep again, compiled for the single-precision backend."""
    from repro.backends import NumpyBackend
    from repro.circuits.library import GateBindings

    netlist = ripple_carry_adder(4)
    bindings = GateBindings(n_bits=N_BITS, backend=NumpyBackend("single"))
    engine = CircuitEngine(netlist, bindings=bindings)
    batch = _adder_batch(4, N_GROUPS * N_BITS)
    engine.run(batch[: N_BITS])
    return engine, netlist, batch


def test_engine_packed_float32_throughput(benchmark, adder_setup_float32):
    """Packed serving on the float32 backend: the precision speedup row.

    Identical circuit, batch and steady-state packed path as
    ``test_engine_packed_throughput``; the only difference is the
    backend, so the ratio of the two rows is the measured single-
    precision throughput gain (the GEMMs run in complex64 against
    half-size weight matrices).
    """
    engine, netlist, batch = adder_setup_float32
    result = benchmark(engine.run, batch)
    assert result.correct
    _record(benchmark, engine, netlist, batch, "packed")
