"""Bench: regenerate Fig. 3 (byte MAJ gate time/frequency response).

Workload: 8 input combinations x 3 ns traces of the 8-frequency byte
majority gate on the linear backend, FFT analysis per combination.
"""

from repro.experiments import fig3

from conftest import print_report


def test_fig3_regeneration(benchmark):
    results = benchmark(fig3.run)
    print_report(fig3.report(results))
    # Paper shape assertions (same as the test suite, kept here so the
    # bench fails loudly if the reproduction regresses).
    assert all(c["correct"] for c in results["combos"])
    assert all(c["spurious_ratio"] < 0.01 for c in results["combos"])
