"""Bench: regenerate the Section IV.B distance table.

Workload: invert the FVMSW dispersion for the 8 channel frequencies and
compose d_i = n_i * lambda_i against the paper's published values.
"""

from repro.experiments import distance_table

from conftest import print_report


def test_distance_table_regeneration(benchmark):
    results = benchmark(distance_table.run)
    print_report(distance_table.report(results))
    assert results["worst_relative_error"] < 0.03
