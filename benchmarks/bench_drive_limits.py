"""Bench: nonlinear drive-amplitude limits (beyond-paper extension).

Workload: byte-gate evaluation on the weakly nonlinear waveguide model
across a drive sweep, with per-channel IM3 crosstalk accounting.
"""

from repro.experiments import drive_limits

from conftest import print_report


def test_drive_limits_regeneration(benchmark):
    results = benchmark(drive_limits.run)
    print_report(drive_limits.report(results))
    by_amplitude = {r["amplitude"]: r for r in results["rows"]}
    assert by_amplitude[drive_limits.PAPER_AMPLITUDE]["decodes_correctly"]
    assert not results["rows"][-1]["decodes_correctly"]
