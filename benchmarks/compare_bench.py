"""Diff fresh ``--bench-json`` snapshots against the committed baseline.

Workflow (documented in ``benchmarks/`` and the README):

1. regenerate the snapshots in the working tree::

       PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only --bench-json

2. diff them against the committed versions (the baseline is read from
   git, so the working-tree files can be regenerated in place)::

       python benchmarks/compare_bench.py            # all BENCH_*.json
       python benchmarks/compare_bench.py BENCH_bench_circuit_throughput.json
       python benchmarks/compare_bench.py --ref HEAD~1 --threshold 0.10

For every benchmark present in both snapshots the per-test throughput
delta is reported -- ``words_per_second`` from ``extra_info`` when the
bench records it, pytest-benchmark ``ops`` (rounds/s) otherwise, both
higher-is-better.  Any drop beyond ``--threshold`` (default 25%) is
flagged as a regression and the script exits nonzero, so it can gate a
bench-refresh commit.  Stdlib only.
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def committed_snapshot(name, ref):
    """The committed JSON snapshot ``name`` at ``ref`` (None if absent)."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:{name}"],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def throughput(record):
    """(metric value, metric name) of one bench record, higher-is-better.

    Tolerates malformed records (wrong types, non-numeric values) by
    returning ``(None, None)`` instead of raising -- a corrupt row in
    one snapshot must not take the whole comparison down.
    """
    if not isinstance(record, dict):
        return None, None
    extra = record.get("extra_info", {})
    try:
        if isinstance(extra, dict) and "words_per_second" in extra:
            return float(extra["words_per_second"]), "words/s"
        if "ops" in record:
            return float(record["ops"]), "ops/s"
        mean = record.get("mean")
        return (1.0 / float(mean), "runs/s") if mean else (None, None)
    except (TypeError, ValueError, ZeroDivisionError):
        return None, None


#: Relative drop in a ``*.hit_rate`` metric (in rate points, 0-1 scale)
#: that triggers an efficiency warning.
HIT_RATE_DROP = 0.10


def bench_metrics(record):
    """The efficiency ``metrics`` sub-dict of one bench record, or {}.

    Tolerates malformed records the same way :func:`throughput` does:
    anything that is not a dict of metrics reads as empty.
    """
    if not isinstance(record, dict):
        return {}
    extra = record.get("extra_info", {})
    if not isinstance(extra, dict):
        return {}
    metrics = extra.get("metrics", {})
    return metrics if isinstance(metrics, dict) else {}


def diff_metrics(name, fresh_record, baseline_record):
    """Efficiency-warning lines for one bench's ``metrics`` sub-dict.

    Warns (never gates) on cache hit-rate collapses: any ``*.hit_rate``
    metric present in both snapshots that dropped by more than
    ``HIT_RATE_DROP`` points -- a compile-cache that stopped hitting is
    an efficiency regression even when throughput hasn't (yet) moved.
    """
    fresh = bench_metrics(fresh_record)
    baseline = bench_metrics(baseline_record)
    lines = []
    for key in sorted(set(fresh) & set(baseline)):
        if not key.endswith(".hit_rate"):
            continue
        try:
            new, old = float(fresh[key]), float(baseline[key])
        except (TypeError, ValueError):
            continue
        if old - new > HIT_RATE_DROP:
            lines.append(
                f"    WARNING {name}: {key} dropped "
                f"{old:.1%} -> {new:.1%} "
                f"(>{HIT_RATE_DROP:.0%} points)"
            )
    return lines


def diff_records(fresh, baseline, threshold):
    """Diff two snapshot dicts; returns ``(lines, regression_count)``.

    Rows present only in ``fresh`` (e.g. a bench just added, or an
    existing bench re-tagged for a new compute backend) are reported as
    informational "new bench" lines and never gate; rows present only
    in ``baseline`` are reported as removed.  Only rows common to both
    snapshots can count as regressions.  Efficiency warnings from the
    ``metrics`` sub-dict (cache hit-rate collapses) are appended per
    row but never count as regressions.
    """
    lines = []
    regressions = 0
    for name in sorted(set(fresh) | set(baseline)):
        if name not in fresh:
            lines.append(f"  {name}: REMOVED (was in baseline)")
            continue
        if name not in baseline:
            value, unit = throughput(fresh[name])
            shown = f"{value:,.1f} {unit}" if value else "no metric"
            lines.append(f"  {name}: new bench ({shown})")
            continue
        new, unit = throughput(fresh[name])
        old, old_unit = throughput(baseline[name])
        if new is None or old is None or unit != old_unit or old == 0:
            lines.append(f"  {name}: metrics not comparable")
            lines.extend(diff_metrics(name, fresh[name], baseline[name]))
            continue
        delta = (new - old) / old
        tag = ""
        if delta <= -threshold:
            tag = f"  <-- REGRESSION (>{threshold:.0%} drop)"
            regressions += 1
        lines.append(
            f"  {name}: {old:,.1f} -> {new:,.1f} {unit} "
            f"({delta:+.1%}){tag}"
        )
        lines.extend(diff_metrics(name, fresh[name], baseline[name]))
    return lines, regressions


def compare_module(path, ref, threshold, lines):
    """Compare one snapshot file; returns the regression count."""
    fresh = json.loads(path.read_text())
    baseline = committed_snapshot(path.name, ref)
    lines.append(f"{path.name} (baseline: {ref})")
    if baseline is None:
        lines.append(f"  no committed baseline at {ref}: new snapshot")
        return 0
    diff_lines, regressions = diff_records(fresh, baseline, threshold)
    lines.extend(diff_lines)
    return regressions


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=(
            "diff fresh --bench-json snapshots against the committed "
            "BENCH_*.json baselines (throughput deltas, higher is better)"
        )
    )
    parser.add_argument(
        "snapshots",
        nargs="*",
        help="snapshot files to compare (default: all BENCH_*.json at the "
        "repo root)",
    )
    parser.add_argument(
        "--ref",
        default="HEAD",
        help="git ref holding the baseline snapshots (default: HEAD)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative throughput drop flagged as a regression "
        "(default: 0.25)",
    )
    args = parser.parse_args(argv)
    if args.snapshots:
        paths = [ROOT / Path(name).name for name in args.snapshots]
    else:
        paths = sorted(ROOT.glob("BENCH_*.json"))
    if not paths:
        print("no BENCH_*.json snapshots found; run pytest benchmarks/ "
              "--benchmark-only --bench-json first")
        return 2
    lines = []
    regressions = 0
    for path in paths:
        if not path.exists():
            print(f"missing snapshot {path.name}; run pytest benchmarks/ "
                  "--benchmark-only --bench-json first")
            return 2
        regressions += compare_module(path, args.ref, args.threshold, lines)
    print("\n".join(lines))
    if regressions:
        print(f"\n{regressions} regression(s) beyond "
              f"{args.threshold:.0%} -- investigate before committing "
              "the refreshed snapshots.")
        return 1
    print("\nno regressions beyond the threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
