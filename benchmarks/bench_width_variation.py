"""Bench: regenerate the Section V waveguide-width study.

Workload: re-layout and re-simulate the byte gate at widths 50..500 nm
with lateral mode quantisation; check functionality and FMR trend.
"""

from repro.experiments import width_sweep

from conftest import print_report


def test_width_variation_regeneration(benchmark):
    results = benchmark(width_sweep.run)
    print_report(width_sweep.report(results))
    assert results["monotonic_decreasing"]
    assert all(r["functional"] for r in results["rows"])
