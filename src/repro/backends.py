"""Pluggable compute backends: precision, FFT engine and thread knobs.

Every hot path in this library used to hardcode float64 NumPy and
``np.fft``.  This module factors that choice into a qibo-style
:class:`Backend` object -- a (real, complex) dtype pair plus the array
constructors, casts, GEMM and real-FFT entry points the kernels consume
-- so the same code drives

* :class:`NumpyBackend` ``("double")`` -- the default, pinned as ground
  truth: every cast is a no-op (``asarray`` returns the input object for
  matching dtypes) and the FFT calls delegate to ``np.fft`` with
  preallocated ``out=`` buffers, so results are **bit-identical** to the
  historical float64 path (the <=1e-12 equivalence harnesses in
  ``tests/test_kernels.py`` / ``tests/test_phasor_equivalence.py`` /
  ``tests/test_circuit_conformance.py`` pin this);
* :class:`NumpyBackend` ``("single")`` -- the float32 precision variant:
  weight matrices, carrier bases, excitation blocks and LLG workspace
  buffers are held and multiplied in float32/complex64 (half the memory
  bandwidth of every packed GEMM).  Accuracy: single-precision results
  track the float64 ground truth to **~1e-5 relative** on weights,
  phasors and field kernels (float32 eps ~1.2e-7, accumulated over the
  packed GEMM k-dimension), which leaves decode margins (~0.1-1.0 rad)
  untouched; use it for throughput sweeps, not for calibrating new
  physics;
* :class:`ScipyFFTBackend` -- ``scipy.fft`` with its internally cached
  plans and a ``workers=`` thread pool driving the
  :class:`~repro.mm.fields.demag.DemagField` convolution (both
  precisions).  ``scipy.fft`` has no ``out=`` support, so the demag
  workspaces copy its results into the preallocated buffers -- the win
  is plan reuse and multi-threaded transforms on larger meshes, not
  allocation-freeness.

**Dtype discipline.**  Geometry, frequencies and time grids deliberately
stay float64 on every backend: a 10 GHz carrier has float32 spacing
~1 kHz, which would break the exact frequency matching
(``tol=1e-12``) that :meth:`~repro.waveguide.LinearWaveguideModel.
phasor_weights` and the steady-state skip rely on.  Only the *bulk
linear-algebra operands* follow the backend dtype; values are computed
in float64 and cast once at the GEMM/FFT boundary (`"compute double,
store backend"`), exactly like qibo re-casts its cached matrices per
precision.

Selection: pass ``backend=`` to the entry points
(:class:`~repro.circuits.library.GateBindings`,
:class:`~repro.circuits.executor.CircuitExecutor`,
:class:`~repro.waveguide.LinearWaveguideModel`,
:class:`~repro.mm.kernels.LLGWorkspace`,
:class:`~repro.mm.fields.demag.DemagField`) or install a process-wide
default with :func:`set_backend`.  ``set_backend`` affects *newly
constructed* objects only -- existing workspaces, models and compiled
artifacts keep the backend they were built with (their buffers and
caches are already allocated in its dtype), and compiled-circuit caches
key on :attr:`Backend.key` so a precision flip never serves a
stale-dtype artifact.
"""

import numpy as np

from repro.errors import BackendError

_PRECISIONS = {
    "double": (np.dtype(np.float64), np.dtype(np.complex128)),
    "single": (np.dtype(np.float32), np.dtype(np.complex64)),
}


class Backend:
    """Abstract compute backend: one (real, complex) dtype pair + kernels.

    Subclasses set :attr:`name` and implement the FFT pair; everything
    else has NumPy-generic defaults.  Two backends with equal
    :attr:`key` produce interchangeable artifacts (same dtypes, same
    numerics), so ``key`` is what caches -- e.g.
    :class:`~repro.circuits.compiled.CompiledCircuitCache` -- embed in
    their keys, while :attr:`tag` is the short human label benchmark
    rows carry in ``extra_info``.
    """

    name = "abstract"

    def __init__(self, precision="double", threads=None):
        try:
            self.real_dtype, self.complex_dtype = _PRECISIONS[precision]
        except KeyError:
            raise BackendError(
                f"unknown precision {precision!r} "
                f"(supported: {sorted(_PRECISIONS)})"
            ) from None
        self.precision = precision
        self.threads = None
        if threads is not None:
            self.set_threads(threads)

    # -- identity ------------------------------------------------------
    @property
    def key(self):
        """Hashable identity: equal keys -> interchangeable numerics."""
        return (self.name, self.precision)

    @property
    def tag(self):
        """Short label for benchmark rows, e.g. ``"numpy64"``."""
        bits = "64" if self.precision == "double" else "32"
        return f"{self.name}{bits}"

    def __repr__(self):
        return f"{type(self).__name__}({self.precision!r})"

    def __eq__(self, other):
        return isinstance(other, Backend) and self.key == other.key

    def __hash__(self):
        return hash(self.key)

    # -- knobs ---------------------------------------------------------
    def set_threads(self, threads):
        """Record the worker-thread count; returns self.

        NumPy's BLAS threading is controlled by the environment
        (``OMP_NUM_THREADS`` and friends) before import, so the base
        backend only records the knob; :class:`ScipyFFTBackend` feeds it
        to ``scipy.fft``'s ``workers=``.
        """
        threads = int(threads)
        if threads < 1:
            raise BackendError(f"threads must be >= 1, got {threads!r}")
        self.threads = threads
        return self

    # -- dtype helpers -------------------------------------------------
    def _dtype(self, kind):
        if kind == "real":
            return self.real_dtype
        if kind == "complex":
            return self.complex_dtype
        raise BackendError(f"unknown dtype kind {kind!r}")

    def zeros(self, shape, kind="real"):
        """Zero-filled backend-dtype array."""
        return np.zeros(shape, dtype=self._dtype(kind))

    def empty(self, shape, kind="real"):
        """Uninitialised backend-dtype array."""
        return np.empty(shape, dtype=self._dtype(kind))

    def asarray(self, array, kind="real"):
        """``array`` in the backend dtype; the *same object* when it
        already matches (so the double-precision default never copies,
        keeping the float64 path bit-identical and cache-friendly)."""
        return np.asarray(array, dtype=self._dtype(kind))

    # ``cast`` is the qibo-flavoured alias used at GEMM boundaries.
    cast = asarray

    # -- kernels -------------------------------------------------------
    def matmul(self, a, b, out=None):
        """Matrix product in whatever dtype the operands carry."""
        return np.matmul(a, b, out=out)

    def rfftn(self, array, s, axes, out=None):
        raise NotImplementedError

    def irfftn(self, array, s, axes, out=None):
        raise NotImplementedError


class NumpyBackend(Backend):
    """Plain NumPy arrays + ``np.fft`` with ``out=`` buffer reuse.

    ``NumpyBackend("double")`` is the library default and the pinned
    ground truth; ``NumpyBackend("single")`` is the float32 throughput
    variant (see the module docstring for its documented ~1e-5
    tolerance).
    """

    name = "numpy"

    def rfftn(self, array, s, axes, out=None):
        """Forward real FFT; ``out=`` reuses a preallocated spectral
        buffer (bit-identical to the allocating call)."""
        return np.fft.rfftn(array, s=s, axes=axes, out=out)

    def irfftn(self, array, s, axes, out=None):
        """Inverse real FFT with the same ``out=`` contract."""
        return np.fft.irfftn(array, s=s, axes=axes, out=out)


class ScipyFFTBackend(Backend):
    """``scipy.fft`` transforms: cached plans + ``workers`` threading.

    ``scipy.fft`` preserves float32 inputs (unlike the historical
    ``np.fft``-under-float32 concern) and parallelises multi-axis
    transforms across ``workers`` threads, but offers no ``out=``; when
    a buffer is supplied the result is copied into it so callers keep
    one stable array identity either way.
    """

    name = "scipy-fft"

    def __init__(self, precision="double", threads=None):
        try:
            import scipy.fft as _scipy_fft
        except ImportError:  # pragma: no cover - scipy ships in the env
            raise BackendError(
                "the scipy-fft backend requires scipy, which is not "
                "importable in this environment"
            ) from None
        self._fft = _scipy_fft
        super().__init__(precision=precision, threads=threads)

    def _workers(self):
        return self.threads if self.threads is not None else -1

    def rfftn(self, array, s, axes, out=None):
        result = self._fft.rfftn(array, s=s, axes=axes,
                                 workers=self._workers())
        if out is None:
            return result
        out[...] = result
        return out

    def irfftn(self, array, s, axes, out=None):
        result = self._fft.irfftn(array, s=s, axes=axes,
                                  workers=self._workers())
        if out is None:
            return result
        out[...] = result
        return out


#: Registry of constructible backends by name (aliases included).
_REGISTRY = {
    "numpy": lambda: NumpyBackend("double"),
    "numpy64": lambda: NumpyBackend("double"),
    "numpy32": lambda: NumpyBackend("single"),
    "scipy-fft": lambda: ScipyFFTBackend("double"),
    "scipy-fft64": lambda: ScipyFFTBackend("double"),
    "scipy-fft32": lambda: ScipyFFTBackend("single"),
}

_default_backend = NumpyBackend("double")


def available_backends():
    """Sorted names accepted by :func:`set_backend`."""
    return sorted(_REGISTRY)


def construct_backend(name):
    """A fresh :class:`Backend` instance for a registry ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r} "
            f"(available: {available_backends()})"
        ) from None
    return factory()


def get_backend():
    """The process-wide default backend (NumPy/float64 unless changed)."""
    return _default_backend


def set_backend(backend):
    """Install the process-wide default backend; returns it.

    Accepts a :class:`Backend` instance or a registry name
    (:func:`available_backends`).  Only objects constructed *after* the
    call pick it up -- live workspaces, models and compiled artifacts
    keep the backend their buffers were allocated in.
    """
    global _default_backend
    if isinstance(backend, str):
        backend = construct_backend(backend)
    if not isinstance(backend, Backend):
        raise BackendError(
            f"expected a Backend instance or name, got {backend!r}"
        )
    _default_backend = backend
    return backend
