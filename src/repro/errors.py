"""Exception hierarchy for the repro library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so downstream users can catch library failures
without masking genuine bugs (``TypeError`` and friends still propagate).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class BackendError(ReproError):
    """Invalid compute-backend selection or configuration."""


class MaterialError(ReproError):
    """Invalid or inconsistent material parameters."""


class DispersionError(ReproError):
    """A dispersion relation could not be evaluated or inverted."""


class MeshError(ReproError):
    """Invalid finite-difference mesh specification."""

class FieldError(ReproError):
    """Invalid effective-field term configuration."""


class SimulationError(ReproError):
    """A micromagnetic simulation was mis-configured or diverged."""


class LayoutError(ReproError):
    """An in-line gate layout constraint cannot be satisfied."""


class EncodingError(ReproError):
    """Invalid logic-value or phase-encoding request."""


class ReadoutError(ReproError):
    """Signal decoding failed (no carrier, ambiguous phase, ...)."""


class NetlistError(ReproError):
    """Invalid circuit netlist operation."""


class OommfFormatError(ReproError):
    """Malformed MIF or OVF content."""


class ArtifactError(ReproError):
    """A saved compiled-circuit artifact cannot be loaded safely
    (corrupted payload, stale topology hash, or a backend/width
    mismatch with the loading bindings)."""


class SynthesisError(ReproError):
    """Invalid logic-synthesis request (MIG, parser, passes, mapping)."""


class ServeError(ReproError):
    """The serving daemon cannot be reached (connection refused, DNS
    failure, socket timeout).  Raised by :class:`repro.serve.ServeClient`
    in place of raw ``urllib`` transport errors; daemon-side failures
    that *were* served still raise their own typed classes."""
