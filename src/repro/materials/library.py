"""Built-in material parameter sets.

``FECOB_PMA`` carries exactly the parameters of Section IV.B of the paper
(values originally from Devolder et al., PRB 93, 024420 (2016)).  The
other entries are common magnonic materials included for contrast in the
examples and width-scaling studies.
"""

from repro.errors import MaterialError
from repro.materials.material import Material

#: The paper's waveguide material: Fe60Co20B20 with perpendicular magnetic
#: anisotropy.  H_ani = 2*Ku/(mu0*Ms) ~ 1.20e6 A/m > Ms = 1.1e6 A/m, so no
#: external bias field is required (Section IV.B).
FECOB_PMA = Material(
    name="Fe60Co20B20 (PMA)",
    ms=1.1e6,
    aex=18.5e-12,
    ku=8.3177e5,
    alpha=0.004,
)

#: Yttrium iron garnet -- the canonical low-damping magnonic material.
YIG = Material(
    name="YIG",
    ms=1.4e5,
    aex=3.5e-12,
    ku=0.0,
    alpha=2e-4,
)

#: Ni80Fe20 (permalloy) -- soft, in-plane, moderate damping.
PERMALLOY = Material(
    name="Permalloy",
    ms=8.0e5,
    aex=13.0e-12,
    ku=0.0,
    alpha=0.008,
)

#: CoFeB without PMA (thick-film limit), in-plane magnetised.
COFEB_IP = Material(
    name="CoFeB (in-plane)",
    ms=1.25e6,
    aex=19.0e-12,
    ku=0.0,
    alpha=0.004,
)

_REGISTRY = {
    "fecob": FECOB_PMA,
    "fecob_pma": FECOB_PMA,
    "fe60co20b20": FECOB_PMA,
    "yig": YIG,
    "permalloy": PERMALLOY,
    "py": PERMALLOY,
    "cofeb_ip": COFEB_IP,
}


def get_material(name):
    """Look up a built-in material by (case-insensitive) name.

    Raises :class:`~repro.errors.MaterialError` for unknown names, listing
    the available keys.
    """
    key = name.strip().lower().replace("-", "_").replace(" ", "_")
    try:
        return _REGISTRY[key]
    except KeyError:
        available = ", ".join(sorted(set(_REGISTRY)))
        raise MaterialError(
            f"unknown material {name!r}; available: {available}"
        ) from None
