"""Magnetic material parameter sets and derived quantities."""

from repro.materials.material import Material
from repro.materials.library import FECOB_PMA, YIG, PERMALLOY, COFEB_IP, get_material

__all__ = [
    "Material",
    "FECOB_PMA",
    "YIG",
    "PERMALLOY",
    "COFEB_IP",
    "get_material",
]
