"""Material parameter container and derived magnetic quantities.

A :class:`Material` bundles the handful of parameters that enter both the
analytic spin-wave theory (:mod:`repro.physics`) and the micromagnetic
solver (:mod:`repro.mm`): saturation magnetisation ``ms``, exchange
stiffness ``aex``, first-order uniaxial anisotropy constant ``ku``,
Gilbert damping ``alpha``, and the gyromagnetic ratio ``gamma``.

Derived quantities (anisotropy field, exchange length, characteristic
frequencies) are exposed as properties so that the two halves of the
library cannot drift apart on their definitions.
"""

import math
from dataclasses import dataclass, field, replace

from repro.constants import GAMMA_LL, MU0
from repro.errors import MaterialError


@dataclass(frozen=True)
class Material:
    """Magnetic material parameters, SI units throughout.

    Parameters
    ----------
    name:
        Human-readable identifier used in tables and exported MIF files.
    ms:
        Saturation magnetisation [A/m]; must be positive.
    aex:
        Exchange stiffness [J/m]; must be positive.
    ku:
        First-order uniaxial (perpendicular) anisotropy constant [J/m^3].
        Zero for soft in-plane materials.
    alpha:
        Dimensionless Gilbert damping; must lie in (0, 1].
    gamma:
        Gyromagnetic ratio [rad/(s*T)].  Defaults to the free-electron
        value used by OOMMF.
    anisotropy_axis:
        Unit vector of the uniaxial easy axis.  Defaults to +z, the
        perpendicular-magnetic-anisotropy (PMA) configuration of the paper.
    """

    name: str
    ms: float
    aex: float
    ku: float = 0.0
    alpha: float = 0.004
    gamma: float = GAMMA_LL
    anisotropy_axis: tuple = field(default=(0.0, 0.0, 1.0))

    def __post_init__(self):
        if self.ms <= 0:
            raise MaterialError(f"ms must be positive, got {self.ms!r}")
        if self.aex <= 0:
            raise MaterialError(f"aex must be positive, got {self.aex!r}")
        if self.ku < 0:
            raise MaterialError(f"ku must be non-negative, got {self.ku!r}")
        if not 0.0 < self.alpha <= 1.0:
            raise MaterialError(f"alpha must lie in (0, 1], got {self.alpha!r}")
        if self.gamma <= 0:
            raise MaterialError(f"gamma must be positive, got {self.gamma!r}")
        axis = tuple(float(c) for c in self.anisotropy_axis)
        norm = math.sqrt(sum(c * c for c in axis))
        if norm == 0:
            raise MaterialError("anisotropy_axis must be a non-zero vector")
        object.__setattr__(
            self, "anisotropy_axis", tuple(c / norm for c in axis)
        )

    # ------------------------------------------------------------------
    # Derived fields and lengths
    # ------------------------------------------------------------------
    @property
    def anisotropy_field(self):
        """Uniaxial anisotropy field H_ani = 2*Ku / (mu0*Ms) [A/m]."""
        return 2.0 * self.ku / (MU0 * self.ms)

    @property
    def exchange_length(self):
        """Magnetostatic exchange length sqrt(2*Aex / (mu0*Ms^2)) [m]."""
        return math.sqrt(self.lambda_ex)

    @property
    def lambda_ex(self):
        """Squared exchange length 2*Aex / (mu0*Ms^2) [m^2].

        This is the quantity that multiplies ``k^2`` in dispersion
        relations, often written ``lambda_ex^2`` in the literature.
        """
        return 2.0 * self.aex / (MU0 * self.ms**2)

    @property
    def is_pma(self):
        """True when the anisotropy field exceeds Ms.

        With H_ani > Ms, a thin film magnetises out of plane with no
        external bias field -- the regime the paper's Fe60Co20B20 film
        operates in (Section IV.B).
        """
        return self.anisotropy_field > self.ms

    # ------------------------------------------------------------------
    # Characteristic angular frequencies
    # ------------------------------------------------------------------
    @property
    def omega_m(self):
        """omega_M = gamma * mu0 * Ms [rad/s]."""
        return self.gamma * MU0 * self.ms

    def omega_h(self, h_field):
        """omega_H = gamma * mu0 * H for a field ``h_field`` [A/m]."""
        return self.gamma * MU0 * h_field

    def internal_field_perpendicular(self, h_ext=0.0):
        """Static internal field of a perpendicularly magnetised thin film.

        For an out-of-plane film the demagnetising factor is ~1, so
        H_int = H_ext + H_ani - Ms.  The result may be negative, meaning
        the film cannot remain perpendicular -- callers should check.
        """
        return h_ext + self.anisotropy_field - self.ms

    def with_(self, **overrides):
        """Return a copy with ``overrides`` applied (e.g. a damping sweep)."""
        return replace(self, **overrides)

    def summary(self):
        """One-line human-readable parameter summary."""
        return (
            f"{self.name}: Ms={self.ms:.4g} A/m, Aex={self.aex:.4g} J/m, "
            f"Ku={self.ku:.4g} J/m^3, alpha={self.alpha:.4g}, "
            f"H_ani={self.anisotropy_field:.4g} A/m"
        )
