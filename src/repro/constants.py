"""Physical constants used throughout the library.

All quantities are in SI units.  The gyromagnetic conventions follow the
micromagnetic literature (and OOMMF): the Landau-Lifshitz-Gilbert equation
is written with the *positive* constant ``GAMMA_LL`` multiplying the
``m x H`` torque term, i.e.

    dm/dt = -GAMMA_LL * mu0 * (m x H_eff) + alpha * (m x dm/dt)

so that precession around a field pointing along +z is counter-clockwise
when viewed from +z for electrons (negative charge carriers).
"""

import math

#: Vacuum permeability [T*m/A].
MU0 = 4.0e-7 * math.pi

#: Electron gyromagnetic ratio magnitude [rad/(s*T)] (CODATA value for the
#: free electron, the default used by OOMMF examples).
GAMMA_LL = 1.760859644e11

#: Gyromagnetic ratio expressed in [Hz/T]; ``f = GAMMA_HZ_PER_T * B`` is the
#: Larmor frequency of a free spin in induction ``B``.
GAMMA_HZ_PER_T = GAMMA_LL / (2.0 * math.pi)

#: Boltzmann constant [J/K], used by the thermal-noise model.
KB = 1.380649e-23

#: Reduced Planck constant [J*s].
HBAR = 1.054571817e-34

#: Bohr magneton [J/T].
MU_B = 9.2740100783e-24
