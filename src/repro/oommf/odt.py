"""ODT (OOMMF Data Table) reader/writer.

OOMMF's mmArchive records scalar time series -- energies, average
magnetisation, stage counts -- as ``.odt`` tables.  This module writes
our probe records in the same format and parses OOMMF-produced tables,
completing the interop story next to MIF (input) and OVF (fields).
"""

import io

import numpy as np

from repro.errors import OommfFormatError


class OdtTable:
    """A named-column numeric table with units, ODT-compatible."""

    def __init__(self, columns, units=None, title=""):
        self.column_names = [str(c) for c in columns]
        if not self.column_names:
            raise OommfFormatError("an ODT table needs at least one column")
        if len(set(self.column_names)) != len(self.column_names):
            raise OommfFormatError("duplicate column names")
        if units is None:
            units = [""] * len(self.column_names)
        units = [str(u) for u in units]
        if len(units) != len(self.column_names):
            raise OommfFormatError(
                f"{len(units)} units for {len(self.column_names)} columns"
            )
        self.units = units
        self.title = title
        self._rows = []

    def add_row(self, values):
        """Append one row (sequence matching the column count)."""
        values = [float(v) for v in values]
        if len(values) != len(self.column_names):
            raise OommfFormatError(
                f"row has {len(values)} values, expected "
                f"{len(self.column_names)}"
            )
        self._rows.append(values)

    def __len__(self):
        return len(self._rows)

    def column(self, name):
        """One column as a 1-D array; raises on unknown names."""
        try:
            index = self.column_names.index(name)
        except ValueError:
            raise OommfFormatError(
                f"no column {name!r}; available: {self.column_names}"
            ) from None
        return np.array([row[index] for row in self._rows])

    def as_array(self):
        """The full table as an (n_rows, n_columns) array."""
        return np.array(self._rows, dtype=float).reshape(
            len(self._rows), len(self.column_names)
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_probe(cls, probe, title="repro probe"):
        """Build a 4-column table (t, mx, my, mz) from a probe record."""
        table = cls(
            ["Time", "mx", "my", "mz"],
            units=["s", "", "", ""],
            title=title,
        )
        times = probe.times()
        components = probe.components()
        for t, (mx, my, mz) in zip(times, components):
            table.add_row([t, mx, my, mz])
        return table


def write_odt(table, path_or_file):
    """Write ``table`` in ODT v1.0 format."""
    out = io.StringIO()
    out.write("# ODT 1.0\n")
    out.write("# Table Start\n")
    if table.title:
        out.write(f"# Title: {table.title}\n")
    quoted = " ".join(_quote(name) for name in table.column_names)
    out.write(f"# Columns: {quoted}\n")
    quoted_units = " ".join(_quote(u) if u else "{}" for u in table.units)
    out.write(f"# Units: {quoted_units}\n")
    for row in table.as_array():
        out.write(" ".join(f"{v:.12e}" for v in row) + "\n")
    out.write("# Table End\n")
    text = out.getvalue()
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        with open(path_or_file, "w", encoding="ascii") as handle:
            handle.write(text)


def _quote(token):
    return "{" + token + "}" if (" " in token or not token) else token


def _split_braced(text):
    """Split an ODT header payload on spaces, honouring {braced tokens}."""
    tokens = []
    current = []
    depth = 0
    for ch in text:
        if ch == "{":
            depth += 1
            if depth == 1:
                continue
        elif ch == "}":
            depth -= 1
            if depth < 0:
                raise OommfFormatError(f"unbalanced braces in {text!r}")
            if depth == 0:
                tokens.append("".join(current))
                current = []
                continue
        elif ch == " " and depth == 0:
            if current:
                tokens.append("".join(current))
                current = []
            continue
        current.append(ch)
    if depth != 0:
        raise OommfFormatError(f"unbalanced braces in {text!r}")
    if current:
        tokens.append("".join(current))
    return tokens


def read_odt(path_or_file):
    """Parse an ODT file into an :class:`OdtTable` (first table only)."""
    if hasattr(path_or_file, "read"):
        text = path_or_file.read()
    else:
        with open(path_or_file, "r", encoding="ascii") as handle:
            text = handle.read()
    if isinstance(text, bytes):
        text = text.decode("ascii")

    columns = None
    units = None
    title = ""
    rows = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            payload = stripped.lstrip("#").strip()
            if payload.startswith("Columns:"):
                columns = _split_braced(payload[len("Columns:") :].strip())
            elif payload.startswith("Units:"):
                units = _split_braced(payload[len("Units:") :].strip())
            elif payload.startswith("Title:"):
                title = payload[len("Title:") :].strip()
            continue
        rows.append([float(v) for v in stripped.split()])

    if columns is None:
        raise OommfFormatError("no '# Columns:' header found")
    table = OdtTable(columns, units=units, title=title)
    for row in rows:
        table.add_row(row)
    return table
