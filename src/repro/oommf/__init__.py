"""OOMMF interoperability: MIF 2.1 export and OVF 2.0 files.

The paper validated its gates with OOMMF; this package keeps the
reproduction interoperable with that toolchain.  :mod:`repro.oommf.mif`
exports any in-line gate layout as a runnable MIF 2.1 problem
specification, and :mod:`repro.oommf.ovf` reads/writes the OVF vector
field format OOMMF emits, so OOMMF results can be compared against this
library's solvers sample-for-sample.
"""

from repro.oommf.mif import MifDocument, gate_to_mif
from repro.oommf.ovf import OvfField, read_ovf, write_ovf
from repro.oommf.odt import OdtTable, read_odt, write_odt

__all__ = [
    "MifDocument",
    "gate_to_mif",
    "OvfField",
    "read_ovf",
    "write_ovf",
    "OdtTable",
    "read_odt",
    "write_odt",
]
