"""OVF 2.0 vector-field file reader/writer.

OOMMF archives magnetisation snapshots as OVF files; this module writes
our solver states in the same format and reads OOMMF output back, so the
two solvers can be compared sample-for-sample.  Supports the ``text``
and ``Binary 4`` / ``Binary 8`` data sections of OVF 2.0 on rectangular
meshes.
"""

import io
from dataclasses import dataclass

import numpy as np

from repro.errors import OommfFormatError

_BINARY4_CHECK = 1234567.0
_BINARY8_CHECK = 123456789012345.0


@dataclass
class OvfField:
    """A rectangular-mesh vector field with its OVF geometry metadata.

    ``data`` has shape ``(nx, ny, nz, 3)``; steps and bases are metres.
    """

    data: np.ndarray
    xstepsize: float
    ystepsize: float
    zstepsize: float
    xbase: float = 0.0
    ybase: float = 0.0
    zbase: float = 0.0
    title: str = ""
    valueunits: str = "A/m"

    @property
    def shape(self):
        """(nx, ny, nz)."""
        return self.data.shape[:3]

    @classmethod
    def from_state(cls, state, title="repro state", scale_to_ms=True):
        """Build from a :class:`repro.mm.State` (full M or unit m)."""
        data = state.magnetisation() if scale_to_ms else state.m.copy()
        mesh = state.mesh
        return cls(
            data=np.asarray(data, dtype=float),
            xstepsize=mesh.dx,
            ystepsize=mesh.dy,
            zstepsize=mesh.dz,
            xbase=mesh.origin[0] + mesh.dx / 2.0,
            ybase=mesh.origin[1] + mesh.dy / 2.0,
            zbase=mesh.origin[2] + mesh.dz / 2.0,
            title=title,
            valueunits="A/m" if scale_to_ms else "",
        )


def write_ovf(field, path_or_file, representation="text"):
    """Write ``field`` as OVF 2.0; representation in {text, binary4, binary8}."""
    if representation not in ("text", "binary4", "binary8"):
        raise OommfFormatError(
            f"unsupported representation {representation!r}"
        )
    nx, ny, nz = field.shape
    header = io.StringIO()
    header.write("# OOMMF OVF 2.0\n")
    header.write("# Segment count: 1\n")
    header.write("# Begin: Segment\n")
    header.write("# Begin: Header\n")
    header.write(f"# Title: {field.title}\n")
    header.write("# meshtype: rectangular\n")
    header.write("# meshunit: m\n")
    header.write(f"# xbase: {field.xbase:.9e}\n")
    header.write(f"# ybase: {field.ybase:.9e}\n")
    header.write(f"# zbase: {field.zbase:.9e}\n")
    header.write(f"# xstepsize: {field.xstepsize:.9e}\n")
    header.write(f"# ystepsize: {field.ystepsize:.9e}\n")
    header.write(f"# zstepsize: {field.zstepsize:.9e}\n")
    header.write(f"# xnodes: {nx}\n")
    header.write(f"# ynodes: {ny}\n")
    header.write(f"# znodes: {nz}\n")
    header.write(f"# xmin: {field.xbase - field.xstepsize / 2:.9e}\n")
    header.write(f"# ymin: {field.ybase - field.ystepsize / 2:.9e}\n")
    header.write(f"# zmin: {field.zbase - field.zstepsize / 2:.9e}\n")
    header.write(
        f"# xmax: {field.xbase + (nx - 0.5) * field.xstepsize:.9e}\n"
    )
    header.write(
        f"# ymax: {field.ybase + (ny - 0.5) * field.ystepsize:.9e}\n"
    )
    header.write(
        f"# zmax: {field.zbase + (nz - 0.5) * field.zstepsize:.9e}\n"
    )
    header.write("# valuedim: 3\n")
    header.write(f"# valueunits: {field.valueunits} {field.valueunits} {field.valueunits}\n")
    header.write("# valuelabels: m_x m_y m_z\n")
    header.write("# End: Header\n")

    # OVF orders data x fastest, then y, then z.
    ordered = np.transpose(field.data, (2, 1, 0, 3)).reshape(-1, 3)

    if representation == "text":
        body = io.StringIO()
        body.write("# Begin: Data Text\n")
        for vx, vy, vz in ordered:
            body.write(f"{vx:.17e} {vy:.17e} {vz:.17e}\n")
        body.write("# End: Data Text\n")
        payload = (header.getvalue() + body.getvalue()).encode("ascii")
        payload += b"# End: Segment\n"
    else:
        nbytes = 4 if representation == "binary4" else 8
        dtype = "<f4" if nbytes == 4 else "<f8"
        check = _BINARY4_CHECK if nbytes == 4 else _BINARY8_CHECK
        chunks = [
            header.getvalue().encode("ascii"),
            f"# Begin: Data Binary {nbytes}\n".encode("ascii"),
            np.asarray([check], dtype=dtype).tobytes(),
            ordered.astype(dtype).tobytes(),
            f"\n# End: Data Binary {nbytes}\n".encode("ascii"),
            b"# End: Segment\n",
        ]
        payload = b"".join(chunks)

    if hasattr(path_or_file, "write"):
        path_or_file.write(payload)
    else:
        with open(path_or_file, "wb") as handle:
            handle.write(payload)


def _parse_header(lines):
    meta = {}
    for line in lines:
        stripped = line.strip()
        if not stripped.startswith("#"):
            continue
        content = stripped.lstrip("#").strip()
        if ":" not in content:
            continue
        key, _, value = content.partition(":")
        meta[key.strip().lower()] = value.strip()
    return meta


def read_ovf(path_or_file):
    """Read an OVF 2.0 file (text or binary4/8) into an :class:`OvfField`."""
    if hasattr(path_or_file, "read"):
        raw = path_or_file.read()
    else:
        with open(path_or_file, "rb") as handle:
            raw = handle.read()
    if not isinstance(raw, bytes):
        raw = raw.encode("ascii")

    begin_markers = {
        b"# Begin: Data Text": "text",
        b"# Begin: Data Binary 4": "binary4",
        b"# Begin: Data Binary 8": "binary8",
    }
    representation = None
    marker_pos = -1
    marker_used = None
    for marker, rep in begin_markers.items():
        pos = raw.find(marker)
        if pos >= 0:
            representation = rep
            marker_pos = pos
            marker_used = marker
            break
    if representation is None:
        raise OommfFormatError("no OVF data section found")

    header_text = raw[:marker_pos].decode("ascii", errors="replace")
    meta = _parse_header(header_text.splitlines())
    try:
        nx = int(meta["xnodes"])
        ny = int(meta["ynodes"])
        nz = int(meta["znodes"])
        xstep = float(meta["xstepsize"])
        ystep = float(meta["ystepsize"])
        zstep = float(meta["zstepsize"])
    except KeyError as missing:
        raise OommfFormatError(f"OVF header missing {missing}") from None
    valuedim = int(meta.get("valuedim", "3"))
    if valuedim != 3:
        raise OommfFormatError(f"only valuedim 3 supported, got {valuedim}")
    count = nx * ny * nz

    data_start = marker_pos + len(marker_used) + 1  # skip marker + newline
    if representation == "text":
        end = raw.find(b"# End: Data Text", data_start)
        if end < 0:
            raise OommfFormatError("unterminated text data section")
        text = raw[data_start:end].decode("ascii")
        values = np.array(text.split(), dtype=float)
        if values.size != count * 3:
            raise OommfFormatError(
                f"expected {count * 3} values, found {values.size}"
            )
        ordered = values.reshape(count, 3)
    else:
        nbytes = 4 if representation == "binary4" else 8
        dtype = "<f4" if nbytes == 4 else "<f8"
        check_expected = _BINARY4_CHECK if nbytes == 4 else _BINARY8_CHECK
        check = np.frombuffer(raw, dtype=dtype, count=1, offset=data_start)[0]
        if not np.isclose(check, check_expected, rtol=1e-6):
            raise OommfFormatError(
                f"binary check value mismatch: {check!r} != {check_expected!r}"
            )
        ordered = np.frombuffer(
            raw, dtype=dtype, count=count * 3, offset=data_start + nbytes
        ).reshape(count, 3).astype(float)

    data = np.transpose(ordered.reshape(nz, ny, nx, 3), (2, 1, 0, 3))
    return OvfField(
        data=np.ascontiguousarray(data),
        xstepsize=xstep,
        ystepsize=ystep,
        zstepsize=zstep,
        xbase=float(meta.get("xbase", "0")),
        ybase=float(meta.get("ybase", "0")),
        zbase=float(meta.get("zbase", "0")),
        title=meta.get("title", ""),
        valueunits=meta.get("valueunits", "").split()[0]
        if meta.get("valueunits")
        else "",
    )
