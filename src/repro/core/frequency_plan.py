"""Frequency channel planning for data-parallel gates.

A :class:`FrequencyPlan` assigns one carrier frequency to each of the n
bit positions.  The plan is validated against a waveguide's dispersion:
every channel must lie above the band edge (so a propagating wave
exists) and channels must be spectrally separated enough for the readout
filters to isolate them.

The paper's byte plan is 10, 20, ..., 80 GHz (Section IV.B), available
as :meth:`FrequencyPlan.paper_byte_plan`.
"""

import numpy as np

from repro.errors import DispersionError, EncodingError
from repro.physics.solve import wavenumber_for_frequency
from repro.units import GHZ


class FrequencyPlan:
    """An ordered set of distinct carrier frequencies, one per bit."""

    def __init__(self, frequencies):
        freqs = [float(f) for f in frequencies]
        if not freqs:
            raise EncodingError("a frequency plan needs at least one channel")
        if any(f <= 0 for f in freqs):
            raise EncodingError(f"frequencies must be positive: {freqs!r}")
        if len(set(freqs)) != len(freqs):
            raise EncodingError(
                f"frequencies must be distinct, got {freqs!r}"
            )
        self.frequencies = freqs

    # ------------------------------------------------------------------
    @classmethod
    def paper_byte_plan(cls):
        """The paper's 8-channel plan: 10 to 80 GHz in 10 GHz steps."""
        return cls([(i + 1) * 10.0 * GHZ for i in range(8)])

    @classmethod
    def uniform(cls, n_bits, f_start, f_step):
        """``n_bits`` channels at ``f_start + i*f_step``."""
        if n_bits < 1:
            raise EncodingError(f"n_bits must be >= 1, got {n_bits!r}")
        if f_step <= 0:
            raise EncodingError(f"f_step must be positive, got {f_step!r}")
        return cls([f_start + i * f_step for i in range(n_bits)])

    # ------------------------------------------------------------------
    @property
    def n_bits(self):
        """Number of channels (= parallel bit width)."""
        return len(self.frequencies)

    def channel(self, index):
        """Frequency [Hz] of channel ``index`` (0-based)."""
        return self.frequencies[index]

    def min_spacing(self):
        """Smallest spectral gap between adjacent channels [Hz]."""
        if self.n_bits == 1:
            return float("inf")
        ordered = sorted(self.frequencies)
        return float(min(np.diff(ordered)))

    # ------------------------------------------------------------------
    def wavelengths(self, dispersion):
        """Wavelength [m] of every channel under ``dispersion``."""
        from repro.physics.solve import wavelength_for_frequency

        return [
            wavelength_for_frequency(dispersion, f) for f in self.frequencies
        ]

    def wavenumbers(self, dispersion):
        """Wavenumber [rad/m] of every channel under ``dispersion``."""
        return [
            wavenumber_for_frequency(dispersion, f) for f in self.frequencies
        ]

    def validate_against(self, dispersion, min_relative_spacing=0.02):
        """Check every channel propagates and channels are separable.

        Raises :class:`~repro.errors.DispersionError` when a channel sits
        below the band edge, or :class:`~repro.errors.EncodingError` when
        two channels are closer than ``min_relative_spacing`` times the
        lower of the two (readout filters could not separate them).
        Returns self for chaining.
        """
        band_edge = dispersion.frequency(0.0)
        for f in self.frequencies:
            if f <= band_edge:
                raise DispersionError(
                    f"channel at {f:.4g} Hz is below the band edge "
                    f"{band_edge:.4g} Hz: no propagating spin wave"
                )
            # Raises if not invertible for any other reason.
            wavenumber_for_frequency(dispersion, f)
        ordered = sorted(self.frequencies)
        for low, high in zip(ordered, ordered[1:]):
            if (high - low) < min_relative_spacing * low:
                raise EncodingError(
                    f"channels {low:.4g} and {high:.4g} Hz are too close "
                    f"to separate (spacing < {min_relative_spacing:.2%})"
                )
        return self

    def describe(self):
        """Comma-separated channel list in GHz."""
        return ", ".join(f"{f / GHZ:g} GHz" for f in self.frequencies)
