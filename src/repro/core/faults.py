"""Transducer fault models and fault simulation.

A DATE-audience extension: manufacturing test of spin-wave gates.  The
dominant defect sites are the transducers; we model the classic set:

* ``dead-source`` -- an excitation cell that never launches a wave
  (amplitude stuck at 0);
* ``stuck-phase-0`` / ``stuck-phase-1`` -- a cell whose phase encoder is
  stuck at logic 0 / logic 1 regardless of the applied input;
* ``weak-source`` -- a cell launching at a fraction of nominal amplitude.

:func:`simulate_fault` evaluates a faulty gate on a test pattern;
:func:`fault_coverage` runs a pattern set against the whole fault list
and reports which faults are detected (some output word differs from
the fault-free response).  The classic result reproduces nicely here:
exhaustive patterns detect all phase faults, but ``weak-source`` faults
below the majority threshold are *undetectable by logic testing* --
they only shrink the analogue margin, motivating parametric tests.
"""

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import EncodingError, ReproError
from repro.core.simulate import GateSimulator

_FAULT_KINDS = ("dead-source", "stuck-phase-0", "stuck-phase-1", "weak-source")


@dataclass(frozen=True)
class TransducerFault:
    """One fault at source ``(channel, input_index)`` of a gate.

    ``severity`` only applies to ``weak-source`` (the remaining
    amplitude fraction).
    """

    kind: str
    channel: int
    input_index: int
    severity: float = 0.5

    def __post_init__(self):
        if self.kind not in _FAULT_KINDS:
            raise EncodingError(
                f"unknown fault kind {self.kind!r}; "
                f"supported: {_FAULT_KINDS}"
            )
        if self.kind == "weak-source" and not 0.0 < self.severity < 1.0:
            raise EncodingError(
                f"weak-source severity must be in (0, 1), got {self.severity!r}"
            )

    def describe(self):
        """Short label for reports."""
        text = f"{self.kind}@ch{self.channel}.in{self.input_index}"
        if self.kind == "weak-source":
            text += f"({self.severity:g})"
        return text


def enumerate_faults(gate, kinds=_FAULT_KINDS, weak_severity=0.5):
    """The full single-fault list of ``gate`` (every source x kind)."""
    faults = []
    for kind in kinds:
        if kind not in _FAULT_KINDS:
            raise EncodingError(f"unknown fault kind {kind!r}")
        for channel in range(gate.n_bits):
            for input_index in range(gate.layout.n_inputs):
                faults.append(
                    TransducerFault(
                        kind=kind,
                        channel=channel,
                        input_index=input_index,
                        severity=weak_severity,
                    )
                )
    return faults


class FaultySimulator(GateSimulator):
    """A gate simulator whose source list is corrupted by one fault."""

    def __init__(self, gate, fault, **kwargs):
        super().__init__(gate, **kwargs)
        if not 0 <= fault.channel < gate.n_bits:
            raise EncodingError(f"fault channel {fault.channel} out of range")
        if not 0 <= fault.input_index < gate.layout.n_inputs:
            raise EncodingError(
                f"fault input index {fault.input_index} out of range"
            )
        self.fault = fault

    def build_sources(self, words):
        sources = super().build_sources(words)
        fault = self.fault
        # Sources are emitted channel-major by the parent class.
        flat_index = fault.channel * self.layout.n_inputs + fault.input_index
        victim = sources[flat_index]
        if fault.kind == "dead-source":
            victim = replace(victim, amplitude=0.0)
        elif fault.kind == "stuck-phase-0":
            victim = replace(victim, phase=0.0)
        elif fault.kind == "stuck-phase-1":
            victim = replace(victim, phase=math.pi)
        elif fault.kind == "weak-source":
            victim = replace(
                victim, amplitude=victim.amplitude * fault.severity
            )
        sources[flat_index] = victim
        return sources

    def mutate_source_bank(self, bank):
        """Corrupt the victim source's column across the whole batch.

        The array-native twin of :meth:`build_sources`: the fault lands
        after any noise, exactly as the scalar path replaces the victim
        in the already-perturbed source list.
        """
        fault = self.fault
        flat_index = fault.channel * self.layout.n_inputs + fault.input_index
        if fault.kind in ("dead-source", "weak-source"):
            amplitude = np.array(bank.amplitude)
            if fault.kind == "dead-source":
                amplitude[:, flat_index] = 0.0
            else:
                amplitude[:, flat_index] *= fault.severity
            return bank.replace(amplitude=amplitude)
        phase = np.array(bank.phase)
        phase[:, flat_index] = 0.0 if fault.kind == "stuck-phase-0" else math.pi
        return bank.replace(phase=phase)


def simulate_fault(gate, fault, words):
    """Output word of ``gate`` under ``fault`` for one input pattern.

    Faults can silence a channel entirely; decoding failures surface as
    ``None`` entries so callers can still compare words.
    """
    simulator = FaultySimulator(gate, fault)
    try:
        return simulator.run_phasor(words).decoded
    except ReproError:
        return [None] * gate.n_bits


def default_patterns(gate):
    """Exhaustive uniform patterns: every (I1..Im) combo on all channels.

    For an m-input gate this is 2^m word-tuples where every channel of
    input j carries the same bit -- the natural functional test set for
    a bit-sliced gate (delegates to
    :meth:`~repro.core.gate.DataParallelGate.exhaustive_patterns`).
    """
    return gate.exhaustive_patterns()


def _batch_responses(simulator, patterns):
    """Decoded words of ``simulator`` over ``patterns``, batched.

    One vectorised :meth:`~repro.core.simulate.GateSimulator.run_phasor_batch`
    call evaluates the whole pattern set; entries whose decode fails
    (a fault silenced a phase-readout channel outright) come back as
    ``[None] * n_bits`` so callers can still compare words.
    """
    runs = simulator.run_phasor_batch(patterns, strict=False)
    return [
        run.decoded if run is not None else [None] * simulator.gate.n_bits
        for run in runs
    ]


def parametric_coverage(
    gate, faults=None, patterns=None, amplitude_tolerance=0.1
):
    """Amplitude-based (parametric) fault detection.

    Logic testing cannot catch ``weak-source`` faults at all in the
    noiseless model: the interference phasors are exactly colinear, so
    any nonzero weak source still casts its deciding vote with phase 0
    or pi -- the decoded bits and even the phase margin are unchanged.
    What *does* change is the carrier **amplitude** at the detector.  A
    parametric test measures it and flags any channel whose amplitude
    deviates from the fault-free reference by more than
    ``amplitude_tolerance`` (relative) on some pattern.

    Returns the same record shape as :func:`fault_coverage` plus
    ``amplitude_tolerance``.
    """
    if faults is None:
        faults = enumerate_faults(gate)
    if patterns is None:
        patterns = default_patterns(gate)
    if not patterns:
        raise EncodingError("need at least one test pattern")
    if amplitude_tolerance <= 0:
        raise EncodingError(
            f"amplitude_tolerance must be positive, got {amplitude_tolerance!r}"
        )

    golden_sim = GateSimulator(gate)
    golden_runs = golden_sim.run_phasor_batch(patterns)
    golden_amplitudes = [
        [decode.amplitude for decode in run.decodes] for run in golden_runs
    ]
    scale = max(max(row) for row in golden_amplitudes)

    detected = []
    undetected = []
    for fault in faults:
        simulator = FaultySimulator(gate, fault)
        runs = simulator.run_phasor_batch(patterns, strict=False)
        hit = None
        for pattern_index, run in enumerate(runs):
            if run is None:
                hit = pattern_index  # channel died outright
                break
            amplitudes = [decode.amplitude for decode in run.decodes]
            reference = golden_amplitudes[pattern_index]
            deviation = max(
                abs(a - r) for a, r in zip(amplitudes, reference)
            )
            if deviation > amplitude_tolerance * scale:
                hit = pattern_index
                break
        if hit is None:
            undetected.append(fault)
        else:
            detected.append((fault, hit))
    total = len(faults)
    return {
        "coverage": len(detected) / total if total else 1.0,
        "detected": detected,
        "undetected": undetected,
        "n_patterns": len(patterns),
        "n_faults": total,
        "amplitude_tolerance": amplitude_tolerance,
    }


def fault_coverage(gate, faults=None, patterns=None):
    """Run ``patterns`` against every fault; returns the coverage record.

    A fault is *detected* when at least one pattern produces an output
    word different from the fault-free gate's output for that pattern.

    Returns a dict: ``coverage`` (fraction detected), ``detected`` /
    ``undetected`` (lists of (fault, first detecting pattern or None)),
    ``n_patterns``.
    """
    if faults is None:
        faults = enumerate_faults(gate)
    if patterns is None:
        patterns = default_patterns(gate)
    if not patterns:
        raise EncodingError("need at least one test pattern")

    golden_sim = GateSimulator(gate)
    golden = [run.decoded for run in golden_sim.run_phasor_batch(patterns)]

    detected = []
    undetected = []
    for fault in faults:
        responses = _batch_responses(FaultySimulator(gate, fault), patterns)
        hit = None
        for pattern_index, response in enumerate(responses):
            if response != golden[pattern_index]:
                hit = pattern_index
                break
        if hit is None:
            undetected.append(fault)
        else:
            detected.append((fault, hit))
    total = len(faults)
    return {
        "coverage": len(detected) / total if total else 1.0,
        "detected": detected,
        "undetected": undetected,
        "n_patterns": len(patterns),
        "n_faults": total,
    }
