"""Scalability under damping (Section V, "Scalability").

In a long in-line gate the wave from the first source travels further
than the wave from the last, so Gilbert damping attenuates it more.  The
paper prescribes graded excitation intensities,
``E(I_n) < E(I_{n-1}) < ... < E(I_1)``, to equalise the amplitudes at the
interference/detection point.  These helpers compute:

* the per-source amplitude grading that exactly compensates damping
  (:func:`compensation_amplitudes`),
* the worst-case majority decision margin of a gate with or without
  compensation (:func:`decode_margin`), and
* the margin trend versus input count (:func:`margin_vs_inputs`) -- the
  quantitative version of the paper's qualitative scalability argument.
"""

import math
from itertools import product

import numpy as np

from repro.errors import LayoutError
from repro.physics.damping import attenuation_length
from repro.physics.solve import wavenumber_for_frequency


def _channel_attenuations(layout, channel):
    """exp(-distance/L) factor of each source of ``channel`` at its detector."""
    dispersion = layout.waveguide.dispersion()
    frequency = layout.plan.frequencies[channel]
    k = wavenumber_for_frequency(dispersion, frequency)
    length = attenuation_length(dispersion, k)
    detector = layout.detector_positions[channel]
    return [
        math.exp(-abs(detector - position) / length)
        for position in layout.source_positions[channel]
    ]


def compensation_amplitudes(layout, normalize="max"):
    """Per-(channel, input) source amplitudes that equalise arrivals.

    Amplitude A_j proportional to exp(+distance_j / L) cancels the
    propagation loss, so every input of a channel lands at the detector
    with the same magnitude.  ``normalize`` fixes the overall scale:
    ``"max"`` caps the largest source at 1 (all others weaker -- matching
    the paper's E(I_n) < ... < E(I_1) with I_1 farthest), ``"last"``
    fixes the source nearest the detector at 1.

    Returns an array of shape ``(n_bits, n_inputs)`` directly pluggable
    into :class:`~repro.core.simulate.GateSimulator`.
    """
    n_bits = layout.plan.n_bits
    n_inputs = layout.n_inputs
    amplitudes = np.empty((n_bits, n_inputs))
    for channel in range(n_bits):
        attenuation = np.asarray(_channel_attenuations(layout, channel))
        gain = 1.0 / attenuation
        if normalize == "max":
            gain = gain / gain.max()
        elif normalize == "last":
            gain = gain / gain[-1]
        else:
            raise LayoutError(f"unknown normalize mode {normalize!r}")
        amplitudes[channel] = gain
    return amplitudes


def excitation_energies(amplitudes):
    """Relative excitation energies (proportional to amplitude^2)."""
    amplitudes = np.asarray(amplitudes, dtype=float)
    return amplitudes**2


def decode_margin(layout, channel=0, amplitudes=None):
    """Worst-case majority phasor margin of one channel.

    For every input combination, the arriving contributions are
    ``+w_j`` (logic 0) or ``-w_j`` (logic 1) with weights
    ``w_j = A_j * exp(-x_j/L)``; the detected phase is the sign of the
    sum, and the decision is correct when the sign matches the majority.
    The margin is the worst (smallest) |sum| over all combinations,
    *negative* when some combination decodes incorrectly -- the gate is
    then non-functional, the failure mode the paper's grading scheme
    repairs.

    Returns ``(margin, worst_combination)`` with the margin normalised to
    the all-equal-weights sum.
    """
    attenuation = np.asarray(_channel_attenuations(layout, channel))
    if amplitudes is None:
        weights = attenuation
    else:
        amplitudes = np.asarray(amplitudes, dtype=float)
        weights = amplitudes * attenuation
    n = len(weights)
    if n % 2 == 0:
        raise LayoutError("decode_margin applies to odd (majority) fan-in")
    full_scale = weights.sum()
    worst = math.inf
    worst_bits = None
    for bits in product((0, 1), repeat=n):
        signs = np.where(np.asarray(bits) == 0, 1.0, -1.0)
        resultant = float(np.dot(signs, weights))
        majority_bit = int(sum(bits) * 2 > n)
        # Correct sign: positive resultant for majority 0, negative for 1.
        signed_margin = resultant if majority_bit == 0 else -resultant
        if signed_margin < worst:
            worst = signed_margin
            worst_bits = bits
    return worst / full_scale, worst_bits


def margin_vs_inputs(
    waveguide,
    frequency,
    input_counts,
    compensated=False,
    multiplier=None,
):
    """Worst-case margin for m-input single-channel gates, m in ``input_counts``.

    Builds a single-frequency in-line layout for each (odd) m and reports
    the worst-case decode margin with uniform drive
    (``compensated=False``) or the paper's graded drive.  Returns a list
    of ``(m, margin)`` tuples.
    """
    from repro.core.frequency_plan import FrequencyPlan
    from repro.core.layout import InlineGateLayout

    results = []
    for m in input_counts:
        if m % 2 == 0:
            raise LayoutError(f"input counts must be odd, got {m}")
        layout = InlineGateLayout(
            waveguide,
            FrequencyPlan([frequency]),
            n_inputs=m,
            multipliers=[multiplier] if multiplier is not None else None,
        )
        amplitudes = (
            compensation_amplitudes(layout)[0] if compensated else None
        )
        margin, _ = decode_margin(layout, channel=0, amplitudes=amplitudes)
        results.append((m, margin))
    return results
