"""Data-parallel gate specification and Boolean semantics.

A :class:`DataParallelGate` binds a logic function (majority, XOR, ...)
to a frequency plan and an in-line layout.  Its Boolean semantics are
bit-sliced: input j is an n-bit word; channel i computes the function of
bit i of every input word.  :meth:`expected_output` gives the golden
result the physical simulation must reproduce.
"""

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.encoding import validate_word, words_to_bit_array
from repro.errors import EncodingError


class GateKind(enum.Enum):
    """Supported in-line gate functions.

    MAJORITY requires an odd fan-in (phase interference implements the
    majority decision directly, Section II).  AND and OR are majority
    gates with one input tied to constant 0 / 1 respectively.  XOR and
    XNOR use 2 data inputs and decode wave *amplitude* instead of phase:
    opposite phases cancel, so low amplitude marks unequal inputs.
    """

    MAJORITY = "majority"
    AND = "and"
    OR = "or"
    XOR = "xor"
    XNOR = "xnor"

    @property
    def uses_amplitude_readout(self):
        """True for kinds decoded from amplitude (XOR family)."""
        return self in (GateKind.XOR, GateKind.XNOR)


def majority(bits):
    """Majority of an odd-length bit sequence."""
    bits = validate_word(bits)
    if len(bits) % 2 == 0:
        raise EncodingError(
            f"majority needs an odd number of inputs, got {len(bits)}"
        )
    return int(sum(bits) * 2 > len(bits))


def parity(bits):
    """XOR (odd parity) of a bit sequence."""
    bits = validate_word(bits)
    return int(sum(bits) % 2 == 1)


@dataclass(frozen=True)
class _KindSpec:
    data_inputs: int
    constant_inputs: tuple  # bits appended to the data inputs


def _kind_spec(kind, n_inputs):
    if kind is GateKind.MAJORITY:
        if n_inputs % 2 == 0:
            raise EncodingError(
                f"majority gates need odd fan-in, got {n_inputs}"
            )
        return _KindSpec(n_inputs, ())
    if kind is GateKind.AND:
        if n_inputs != 3:
            raise EncodingError("AND is implemented as MAJ3(a, b, 0)")
        return _KindSpec(2, (0,))
    if kind is GateKind.OR:
        if n_inputs != 3:
            raise EncodingError("OR is implemented as MAJ3(a, b, 1)")
        return _KindSpec(2, (1,))
    if kind in (GateKind.XOR, GateKind.XNOR):
        if n_inputs != 2:
            raise EncodingError(
                f"{kind.value} gates use exactly 2 inputs, got {n_inputs}"
            )
        return _KindSpec(2, ())
    raise EncodingError(f"unsupported gate kind {kind!r}")


class DataParallelGate:
    """An n-bit data-parallel m-input spin-wave logic gate.

    Parameters
    ----------
    layout:
        :class:`~repro.core.layout.InlineGateLayout`; fixes the frequency
        plan, fan-in and geometry.
    kind:
        :class:`GateKind`, default MAJORITY (the paper's validated gate).
    """

    def __init__(self, layout, kind=GateKind.MAJORITY):
        self.layout = layout
        self.kind = GateKind(kind)
        self.spec = _kind_spec(self.kind, layout.n_inputs)
        physical_inputs = self.spec.data_inputs + len(self.spec.constant_inputs)
        if physical_inputs != layout.n_inputs:
            raise EncodingError(
                f"{self.kind.value} uses {physical_inputs} physical inputs "
                f"but the layout has {layout.n_inputs}"
            )

    # ------------------------------------------------------------------
    @property
    def n_bits(self):
        """Parallel data width (number of frequency channels)."""
        return self.layout.plan.n_bits

    @property
    def n_data_inputs(self):
        """Number of user-facing input words."""
        return self.spec.data_inputs

    # ------------------------------------------------------------------
    def physical_input_bits(self, words):
        """Expand data words to per-channel physical input bit tuples.

        ``words`` is a sequence of ``n_data_inputs`` words, each ``n_bits``
        long (little-endian lists).  Returns, per channel, the tuple of
        ``layout.n_inputs`` bits actually driven onto the waveguide
        (data bits plus any tied constants).
        """
        if len(words) != self.n_data_inputs:
            raise EncodingError(
                f"expected {self.n_data_inputs} input words, got {len(words)}"
            )
        validated = [validate_word(w, width=self.n_bits) for w in words]
        per_channel = []
        for channel in range(self.n_bits):
            bits = tuple(w[channel] for w in validated) + self.spec.constant_inputs
            per_channel.append(bits)
        return per_channel

    def physical_input_bit_array(self, words_batch):
        """Array-native :meth:`physical_input_bits` for a word batch.

        ``words_batch`` is a sequence of word tuples (each as accepted by
        :meth:`physical_input_bits`); returns an
        ``(n_sets, n_bits, n_inputs)`` integer array where
        ``result[i, c]`` equals ``physical_input_bits(words_batch[i])[c]``.
        Validation matches the scalar path but runs vectorised, so
        batched source construction never touches per-bit Python.
        """
        words = words_to_bit_array(
            words_batch, n_words=self.n_data_inputs, width=self.n_bits
        )
        n_sets = words.shape[0]
        physical = np.empty(
            (n_sets, self.n_bits, self.layout.n_inputs), dtype=words.dtype
        )
        n_data = self.n_data_inputs
        physical[:, :, :n_data] = words.transpose(0, 2, 1)
        for j, bit in enumerate(self.spec.constant_inputs):
            physical[:, :, n_data + j] = bit
        return physical

    def expected_output_batch(self, words_batch, apply_inversion=True):
        """Golden output words for a whole batch: list of n-bit lists.

        Entry ``i`` equals ``expected_output(words_batch[i],
        apply_inversion)``; the Boolean semantics (majority / parity plus
        the placement inversion) evaluate as whole-array reductions.
        """
        return self.expected_output_from_physical_bits(
            self.physical_input_bit_array(words_batch),
            apply_inversion=apply_inversion,
        )

    def expected_output_from_physical_bits(self, bits, apply_inversion=True):
        """:meth:`expected_output_batch` from an already-expanded bit array.

        ``bits`` is a validated :meth:`physical_input_bit_array` result;
        callers that expanded the batch once (e.g. to build its sources)
        reuse it here instead of re-validating the words.
        """
        ones = bits.sum(axis=2)
        if self.kind in (GateKind.MAJORITY, GateKind.AND, GateKind.OR):
            outputs = (2 * ones > self.layout.n_inputs).astype(np.int64)
        elif self.kind is GateKind.XOR:
            outputs = ones % 2
        else:  # XNOR
            outputs = 1 - ones % 2
        if apply_inversion:
            inverted = np.asarray(self.layout.inverted_outputs, dtype=bool)
            outputs = np.where(inverted, 1 - outputs, outputs)
        return outputs.tolist()

    def channel_output(self, bits):
        """Boolean output of one channel for its physical input bits."""
        bits = validate_word(bits, width=self.layout.n_inputs)
        if self.kind in (GateKind.MAJORITY, GateKind.AND, GateKind.OR):
            return majority(bits)
        if self.kind is GateKind.XOR:
            return parity(bits)
        return 1 - parity(bits)  # XNOR

    def expected_output(self, words, apply_inversion=True):
        """Golden n-bit output word for the given data words.

        ``apply_inversion=True`` accounts for channels whose detector is
        placed at a half-integer multiple (complemented read-out).
        """
        outputs = []
        for channel, bits in enumerate(self.physical_input_bits(words)):
            value = self.channel_output(bits)
            if apply_inversion and self.layout.inverted_outputs[channel]:
                value = 1 - value
            outputs.append(value)
        return outputs

    def exhaustive_patterns(self):
        """All ``2**n_data_inputs`` uniform word tuples of this gate.

        Pattern ``(b1..bm)`` drives bit ``bj`` on every channel of input
        ``j`` -- the natural exhaustive functional test set of a
        bit-sliced gate, and the word list batched gate evaluation
        (:meth:`~repro.core.simulate.GateSimulator.run_phasor_batch`)
        consumes in one call.
        """
        from itertools import product

        return [
            [[b] * self.n_bits for b in bits]
            for bits in product((0, 1), repeat=self.n_data_inputs)
        ]

    def truth_table(self):
        """All (input bit tuple -> output bit) pairs for one channel.

        Enumerates the ``2**n_data_inputs`` data combinations, ignoring
        per-channel inversion (which is a placement choice, not logic).
        """
        from itertools import product

        rows = []
        for bits in product((0, 1), repeat=self.n_data_inputs):
            physical = tuple(bits) + self.spec.constant_inputs
            rows.append((bits, self.channel_output(physical)))
        return rows

    def describe(self):
        """One-line summary."""
        return (
            f"{self.n_bits}-bit data parallel {self.kind.value.upper()} gate, "
            f"{self.n_data_inputs} data inputs "
            f"({self.layout.n_inputs} physical sources/channel)"
        )
