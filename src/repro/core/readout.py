"""Decoding detector traces back to logic bits.

Phase readout (majority family): the channel's phase is extracted from
the steady-state portion of the trace by lock-in demodulation (or an
FFT-bin phasor) and compared against the channel's *reference phase* --
the phase an all-zeros input would produce at that detector, which folds
in the propagation phase ``k * distance``.  A measured phase near the
reference decodes to 0; near reference + pi decodes to 1.

Amplitude readout (XOR family): opposite-phase wave pairs cancel, so the
channel amplitude relative to the equal-inputs calibration level carries
the result.
"""

import cmath
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ReadoutError
from repro.analysis.phase import fft_phasor, lock_in


def _wrap(phase):
    return (phase + math.pi) % (2.0 * math.pi) - math.pi


@dataclass(frozen=True)
class ChannelDecode:
    """Result of decoding one frequency channel.

    Attributes
    ----------
    bit:
        The decoded logic value.
    phase:
        Measured phase relative to the channel reference [rad].
    amplitude:
        Measured carrier amplitude (same units as the trace).
    margin:
        Distance from the decision boundary: radians for phase readout,
        relative amplitude for amplitude readout.  Larger is safer.
    """

    bit: int
    phase: float
    amplitude: float
    margin: float


def measure_phasor(t, trace, frequency, t_start, method="lockin"):
    """Complex sine-referenced phasor of ``frequency`` in ``trace``.

    ``method`` selects the estimator: ``"lockin"`` (default, accurate
    off-grid), ``"fft"`` (raw FFT bin) or ``"goertzel"`` (single-bin
    recursion, the hardware-friendly detector) -- three independent
    implementations of the same measurement.
    """
    if method == "lockin":
        z = lock_in(t, trace, frequency, t_start=t_start)
        return z * cmath.exp(0.5j * math.pi)  # sine-referenced
    if method == "fft":
        mask = t >= t_start
        return fft_phasor(t[mask], trace[mask], frequency)
    if method == "goertzel":
        from repro.analysis.goertzel import goertzel_phasor

        mask = t >= t_start
        return goertzel_phasor(t[mask], trace[mask], frequency)
    raise ReadoutError(f"unknown phasor method {method!r}")


def decode_channel(
    t,
    trace,
    frequency,
    reference_phase=0.0,
    reference_amplitude=None,
    t_start=0.0,
    method="lockin",
    amplitude_readout=False,
    amplitude_threshold=0.5,
    min_amplitude_ratio=0.05,
    phasor=None,
):
    """Decode one channel from a detector trace.

    Parameters
    ----------
    t, trace:
        Time grid [s] and Mx/Ms samples.
    frequency:
        Channel carrier [Hz].
    reference_phase:
        Phase of the logic-0 steady state at this detector [rad].
    reference_amplitude:
        Calibration amplitude (all inputs equal); required for amplitude
        readout, optional for phase readout (enables a dead-channel check).
    t_start:
        Start of the steady-state analysis window [s].
    method:
        Phasor estimator, ``"lockin"`` or ``"fft"``.
    amplitude_readout:
        True for the XOR family.
    amplitude_threshold:
        Decision level as a fraction of ``reference_amplitude``.
    min_amplitude_ratio:
        Below this fraction of the reference, phase readout refuses to
        decode (the carrier is effectively absent).
    phasor:
        Optional precomputed complex phasor; skips the measurement.
        Batched decoders measure a whole ``(n_traces, n_samples)`` block
        with one vectorised lock-in and hand the per-trace phasors in
        here, so the decision logic stays in one place.

    Returns a :class:`ChannelDecode`.
    """
    if phasor is None:
        z = measure_phasor(t, trace, frequency, t_start, method=method)
    else:
        z = complex(phasor)
    amplitude = abs(z)

    if amplitude_readout:
        if reference_amplitude is None or reference_amplitude <= 0:
            raise ReadoutError(
                "amplitude readout requires a positive reference_amplitude"
            )
        ratio = amplitude / reference_amplitude
        bit = int(ratio < amplitude_threshold)
        margin = abs(ratio - amplitude_threshold)
        phase = _wrap(cmath.phase(z) - reference_phase) if amplitude > 0 else 0.0
        return ChannelDecode(bit=bit, phase=phase, amplitude=amplitude, margin=margin)

    if reference_amplitude is not None and reference_amplitude > 0:
        if amplitude < min_amplitude_ratio * reference_amplitude:
            raise ReadoutError(
                f"carrier at {frequency:.4g} Hz too weak to decode a phase "
                f"({amplitude:.3g} < {min_amplitude_ratio} * "
                f"{reference_amplitude:.3g})"
            )
    relative = _wrap(cmath.phase(z) - reference_phase)
    bit = int(abs(relative) > 0.5 * math.pi)
    margin = abs(abs(relative) - 0.5 * math.pi)
    return ChannelDecode(bit=bit, phase=relative, amplitude=amplitude, margin=margin)


def decode_phasor_block(
    phasors,
    reference_phases,
    reference_amplitudes,
    amplitude_readout=False,
    amplitude_threshold=0.5,
):
    """Vectorised steady-state decode of an ``(n_sets, n_channels)`` block.

    The array-native counterpart of decoding each entry's per-channel
    phasor one at a time (the scalar decision logic of
    :meth:`~repro.core.simulate.GateSimulator.run_phasor`): the phase
    wrap, threshold comparison and margin evaluate as whole-array
    operations.  ``reference_phases`` / ``reference_amplitudes`` are the
    per-channel calibration rows.

    Returns ``(bits, phases, amplitudes, margins, dead)`` arrays of the
    block's shape.  ``dead`` marks phase-readout entries whose carrier
    amplitude is exactly zero (undecodable -- the scalar path raises
    there); their other outputs are filler and must not be used.
    """
    phasors = np.asarray(phasors, dtype=complex)
    reference_phases = np.asarray(reference_phases, dtype=float)
    reference_amplitudes = np.asarray(reference_amplitudes, dtype=float)
    amplitudes = np.abs(phasors)
    relative = _wrap(np.angle(phasors) - reference_phases)

    if amplitude_readout:
        if not (reference_amplitudes > 0).all():
            raise ReadoutError(
                "amplitude readout requires positive reference amplitudes"
            )
        ratios = amplitudes / reference_amplitudes
        bits = (ratios < amplitude_threshold).astype(np.int64)
        margins = np.abs(ratios - amplitude_threshold)
        phases = np.where(amplitudes > 0, relative, 0.0)
        dead = np.zeros(phasors.shape, dtype=bool)
        return bits, phases, amplitudes, margins, dead

    dead = amplitudes == 0.0
    bits = (np.abs(relative) > 0.5 * math.pi).astype(np.int64)
    margins = np.abs(np.abs(relative) - 0.5 * math.pi)
    return bits, relative, amplitudes, margins, dead


def decode_all_channels(
    t,
    trace,
    frequencies,
    reference_phases=None,
    reference_amplitudes=None,
    t_start=0.0,
    method="lockin",
    amplitude_readout=False,
    amplitude_threshold=0.5,
):
    """Decode every channel of a shared multi-frequency trace.

    Returns a list of :class:`ChannelDecode`, one per entry of
    ``frequencies``.  Per-channel references default to 0 / None.
    """
    n = len(frequencies)
    if reference_phases is None:
        reference_phases = [0.0] * n
    if reference_amplitudes is None:
        reference_amplitudes = [None] * n
    if len(reference_phases) != n or len(reference_amplitudes) != n:
        raise ReadoutError("reference arrays must match the channel count")
    return [
        decode_channel(
            t,
            trace,
            frequency,
            reference_phase=reference_phases[i],
            reference_amplitude=reference_amplitudes[i],
            t_start=t_start,
            method=method,
            amplitude_readout=amplitude_readout,
            amplitude_threshold=amplitude_threshold,
        )
        for i, frequency in enumerate(frequencies)
    ]
