"""The in-line multi-frequency gate layout of Fig. 2.

Placement rules (Section III):

* Sources of the *same* frequency channel i must sit at centre-to-centre
  distances ``d_i = n_i * lambda_i`` (integer multiple -> constructive
  reference) so equal phases interfere constructively;
* consecutive transducers -- of any channel -- must keep at least a
  minimum physical gap (1 nm in the paper) between their edges;
* each channel's output detector sits ``q_i * lambda_i`` after that
  channel's last source for the direct output, or an odd multiple of
  ``lambda_i / 2`` for the complemented output.

The layout engine supports both the paper's published multipliers
(``n = [2, 2, 3, 5, 6, 5, 7, 8]`` reproducing d = 166, 100, ..., 176 nm)
and an automatic greedy search for the smallest collision-free
multipliers.
"""

import math
from dataclasses import dataclass

from repro.errors import LayoutError

#: The paper's source-spacing multipliers for the 10..80 GHz byte plan,
#: recovered from its distance table d_i = n_i * lambda_i (Section IV.B).
PAPER_BYTE_MULTIPLIERS = (2, 2, 3, 5, 6, 5, 7, 8)

#: The paper's distance table itself [m], for comparison output.
PAPER_BYTE_DISTANCES = tuple(
    d * 1e-9 for d in (166.0, 100.0, 117.0, 165.0, 174.0, 130.0, 168.0, 176.0)
)


@dataclass(frozen=True)
class TransducerSpec:
    """Geometry of one excitation/detection cell.

    The paper assumes 10 nm x 50 nm ME cells with a 1 nm minimum gap
    between consecutive cells (Sections IV.B and V.B).
    """

    length: float = 10e-9
    width: float = 50e-9
    min_gap: float = 1e-9

    def __post_init__(self):
        if self.length <= 0:
            raise LayoutError(f"length must be positive, got {self.length!r}")
        if self.width <= 0:
            raise LayoutError(f"width must be positive, got {self.width!r}")
        if self.min_gap < 0:
            raise LayoutError(
                f"min_gap must be non-negative, got {self.min_gap!r}"
            )

    @property
    def pitch(self):
        """Minimum centre-to-centre distance of adjacent transducers."""
        return self.length + self.min_gap

    @property
    def area(self):
        """Footprint of one cell [m^2]."""
        return self.length * self.width


class InlineGateLayout:
    """Concrete transducer placement for an n-bit m-input in-line gate.

    Parameters
    ----------
    waveguide:
        :class:`~repro.waveguide.Waveguide`; supplies the dispersion that
        converts frequencies to wavelengths.
    plan:
        :class:`~repro.core.frequency_plan.FrequencyPlan`.
    n_inputs:
        Fan-in m of the logic function (3 for the paper's majority gate).
    transducer:
        :class:`TransducerSpec` geometry.
    multipliers:
        Per-channel integers ``n_i`` with ``d_i = n_i * lambda_i``; None
        selects the smallest collision-free values automatically.
    inverted_outputs:
        Per-channel booleans; True places that channel's detector at an
        odd multiple of ``lambda_i / 2`` so it reads the complemented
        function (Section III).
    """

    _MAX_MULTIPLIER = 64

    def __init__(
        self,
        waveguide,
        plan,
        n_inputs=3,
        transducer=None,
        multipliers=None,
        inverted_outputs=None,
        ordered=False,
    ):
        """``ordered=True`` forces the Fig. 2 cosmetic ordering (channel
        i's first source strictly after channel i-1's); the default dense
        packing lets the solver interleave first sources, which shortens
        the waveguide without changing the interference physics."""
        if n_inputs < 1:
            raise LayoutError(f"n_inputs must be >= 1, got {n_inputs!r}")
        self.ordered = bool(ordered)
        self.waveguide = waveguide
        self.plan = plan
        self.n_inputs = int(n_inputs)
        self.transducer = transducer if transducer is not None else TransducerSpec()

        dispersion = waveguide.dispersion()
        plan.validate_against(dispersion)
        self.wavelengths = plan.wavelengths(dispersion)

        n = plan.n_bits
        if inverted_outputs is None:
            inverted_outputs = [False] * n
        inverted_outputs = [bool(v) for v in inverted_outputs]
        if len(inverted_outputs) != n:
            raise LayoutError(
                f"inverted_outputs has {len(inverted_outputs)} entries, "
                f"expected {n}"
            )
        self.inverted_outputs = inverted_outputs

        if multipliers is not None:
            multipliers = [int(v) for v in multipliers]
            if len(multipliers) != n:
                raise LayoutError(
                    f"multipliers has {len(multipliers)} entries, expected {n}"
                )
            if any(v < 1 for v in multipliers):
                raise LayoutError(f"multipliers must be >= 1: {multipliers!r}")

        self._place_sources(multipliers)
        self._place_detectors()

    # ------------------------------------------------------------------
    @classmethod
    def paper_byte_layout(cls, waveguide=None, plan=None, **kwargs):
        """The paper's 8-bit 3-input configuration (Fig. 2, Section IV).

        Uses the published spacing multipliers.  ``waveguide`` defaults
        to the 50 nm x 1 nm Fe60Co20B20 strip.
        """
        from repro.core.frequency_plan import FrequencyPlan
        from repro.waveguide import Waveguide

        waveguide = waveguide if waveguide is not None else Waveguide()
        plan = plan if plan is not None else FrequencyPlan.paper_byte_plan()
        kwargs.setdefault("multipliers", list(PAPER_BYTE_MULTIPLIERS[: plan.n_bits]))
        return cls(waveguide, plan, n_inputs=3, **kwargs)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    #: Start-offset scan resolution [m] used when nudging a channel's
    #: first source to avoid collisions with already-placed channels.
    _OFFSET_STEP = 0.25e-9

    def _collides(self, position, occupied):
        limit = self.transducer.pitch - 1e-15
        return any(abs(position - other) < limit for other in occupied)

    def _positions_from(self, start, channel, multiplier):
        d = multiplier * self.wavelengths[channel]
        return [start + g * d for g in range(self.n_inputs)]

    def _find_start(self, channel, multiplier, occupied, start_min, window):
        """Smallest start >= start_min giving a collision-free channel.

        Keeps the paper's Fig. 2 ordering (channel i's first source comes
        after channel i-1's) while allowing sub-pitch nudges so that the
        later same-frequency repetitions thread between other channels'
        transducers.  Returns None when nothing fits inside ``window``.
        """
        steps = int(window / self._OFFSET_STEP) + 1
        for step in range(steps):
            start = start_min + step * self._OFFSET_STEP
            positions = self._positions_from(start, channel, multiplier)
            if not any(self._collides(p, occupied) for p in positions):
                return start
        return None

    def _place_sources(self, multipliers):
        n = self.plan.n_bits
        pitch = self.transducer.pitch
        half = self.transducer.length / 2.0

        chosen = []
        placed_rows = []
        occupied = []
        start_min = half
        search_window = 24.0 * pitch
        for channel in range(n):
            wavelength = self.wavelengths[channel]
            if multipliers is not None:
                candidates = [multipliers[channel]]
            else:
                min_multiplier = max(1, math.ceil(pitch / wavelength - 1e-12))
                candidates = range(min_multiplier, self._MAX_MULTIPLIER + 1)
            placed = None
            for multiplier in candidates:
                if multiplier * wavelength < pitch - 1e-15:
                    continue  # same-channel sources would overlap
                start = self._find_start(
                    channel, multiplier, occupied, start_min, search_window
                )
                if start is not None:
                    placed = (multiplier, start)
                    break
            if placed is None:
                raise LayoutError(
                    f"cannot place channel {channel} "
                    f"(multiplier candidates {list(candidates)[:8]}...): "
                    "no collision-free start offset found"
                )
            multiplier, start = placed
            row = self._positions_from(start, channel, multiplier)
            chosen.append(multiplier)
            placed_rows.append(row)
            occupied.extend(row)
            if self.ordered:
                start_min = start + pitch
        self.multipliers = chosen
        self.source_positions = placed_rows

    def _place_detectors(self):
        n = self.plan.n_bits
        pitch = self.transducer.pitch
        region_start = max(max(row) for row in self.source_positions) + pitch
        occupied = []
        positions = []
        detector_multipliers = []
        for channel in range(n):
            wavelength = self.wavelengths[channel]
            last_source = self.source_positions[channel][-1]
            inverted = self.inverted_outputs[channel]
            placed = None
            for q in range(1, 4 * self._MAX_MULTIPLIER + 1):
                multiple = (q - 0.5) if inverted else float(q)
                candidate = last_source + multiple * wavelength
                if candidate < region_start:
                    continue
                if self._collides(candidate, occupied):
                    continue
                placed = (candidate, multiple)
                break
            if placed is None:
                raise LayoutError(
                    f"could not place a detector for channel {channel}"
                )
            occupied.append(placed[0])
            positions.append(placed[0])
            detector_multipliers.append(placed[1])
        self.detector_positions = positions
        self.detector_multipliers = detector_multipliers

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def distances(self):
        """Same-frequency source spacings d_i = n_i * lambda_i [m]."""
        return [
            m * lam for m, lam in zip(self.multipliers, self.wavelengths)
        ]

    def all_transducer_positions(self):
        """Centres of every source and detector, sorted."""
        centres = [p for row in self.source_positions for p in row]
        centres.extend(self.detector_positions)
        return sorted(centres)

    @property
    def total_length(self):
        """Waveguide length spanning every transducer edge-to-edge [m]."""
        centres = self.all_transducer_positions()
        half = self.transducer.length / 2.0
        return (centres[-1] + half) - (centres[0] - half)

    @property
    def area(self):
        """Footprint: total length times waveguide width [m^2]."""
        return self.total_length * self.waveguide.width

    @property
    def n_sources(self):
        """Number of excitation transducers (= m * n)."""
        return self.n_inputs * self.plan.n_bits

    @property
    def n_detectors(self):
        """Number of detection transducers (= n)."""
        return self.plan.n_bits

    def detector_distance(self, channel):
        """Distance from channel's last source to its detector [m]."""
        return (
            self.detector_positions[channel]
            - self.source_positions[channel][-1]
        )

    def validate(self):
        """Re-check every pairwise spacing; returns self or raises.

        This is the invariant the property-based tests exercise: all
        transducers keep the minimum gap, and every same-channel source
        pair is an exact multiple of that channel's wavelength.
        """
        centres = self.all_transducer_positions()
        limit = self.transducer.pitch - 1e-15
        for a, b in zip(centres, centres[1:]):
            if (b - a) < limit:
                raise LayoutError(
                    f"transducers at {a:.4g} and {b:.4g} m violate the "
                    f"minimum pitch {self.transducer.pitch:.4g} m"
                )
        for channel, row in enumerate(self.source_positions):
            wavelength = self.wavelengths[channel]
            for a, b in zip(row, row[1:]):
                ratio = (b - a) / wavelength
                if abs(ratio - round(ratio)) > 1e-9:
                    raise LayoutError(
                        f"channel {channel} source spacing {b - a:.6g} m is "
                        f"not an integer multiple of lambda = {wavelength:.6g} m"
                    )
        return self

    def describe(self):
        """Multi-line human-readable placement summary."""
        lines = [
            f"in-line gate: {self.plan.n_bits}-bit, {self.n_inputs}-input, "
            f"{self.waveguide.describe()}",
            f"total length {self.total_length * 1e9:.1f} nm, "
            f"area {self.area * 1e12:.4f} um^2",
        ]
        for c in range(self.plan.n_bits):
            freq_ghz = self.plan.frequencies[c] / 1e9
            lines.append(
                f"  ch{c} ({freq_ghz:g} GHz): lambda={self.wavelengths[c] * 1e9:.1f} nm, "
                f"n={self.multipliers[c]}, d={self.distances[c] * 1e9:.1f} nm, "
                f"detector at {self.detector_positions[c] * 1e9:.1f} nm"
            )
        return "\n".join(lines)
