"""Phase encoding of logic values (Section II).

Logic 0 is carried by a spin wave of phase 0, logic 1 by phase pi.  All
waves of one frequency channel share amplitude and wavelength, so the
interference of an odd number of them implements the majority function
directly: the resultant phase equals the phase of the majority.
"""

import math

import numpy as np

from repro.errors import EncodingError

#: Phase assigned to logic 0 [rad].
PHASE_ZERO = 0.0
#: Phase assigned to logic 1 [rad].
PHASE_ONE = math.pi


class PhaseEncoding:
    """Bidirectional mapping between logic bits and spin-wave phases.

    ``threshold`` is the decision boundary for decoding: phases with
    ``|phase| > threshold`` decode to 1.  The default of pi/2 sits
    exactly between the two code points.
    """

    def __init__(self, threshold=math.pi / 2.0):
        if not 0.0 < threshold < math.pi:
            raise EncodingError(
                f"threshold must lie strictly between 0 and pi, got {threshold!r}"
            )
        self.threshold = float(threshold)

    def encode(self, bit):
        """Phase [rad] encoding logic ``bit`` (0 or 1)."""
        bit = validate_bit(bit)
        return PHASE_ONE if bit else PHASE_ZERO

    def encode_word(self, bits):
        """List of phases for a sequence of bits."""
        return [self.encode(b) for b in bits]

    def decode(self, phase):
        """Logic bit carried by ``phase`` [rad] (any real value; wrapped)."""
        wrapped = (float(phase) + math.pi) % (2.0 * math.pi) - math.pi
        return int(abs(wrapped) > self.threshold)

    def decode_word(self, phases):
        """List of bits for a sequence of phases."""
        return [self.decode(p) for p in phases]

    def margin(self, phase):
        """Distance [rad] of ``phase`` from the decision boundary.

        Positive regardless of the decoded value; zero exactly on the
        boundary.  Larger margins mean more robust decisions.
        """
        wrapped = (float(phase) + math.pi) % (2.0 * math.pi) - math.pi
        return abs(abs(wrapped) - self.threshold)


def validate_bit(bit):
    """Return ``bit`` as int 0/1; raise EncodingError otherwise."""
    if isinstance(bit, bool):
        return int(bit)
    if isinstance(bit, (int,)) and bit in (0, 1):
        return int(bit)
    if isinstance(bit, float) and bit in (0.0, 1.0):
        return int(bit)
    raise EncodingError(f"logic value must be 0 or 1, got {bit!r}")


def validate_word(bits, width=None):
    """Return ``bits`` as a list of ints 0/1, optionally checking width."""
    word = [validate_bit(b) for b in bits]
    if width is not None and len(word) != width:
        raise EncodingError(
            f"word has {len(word)} bits, expected {width}"
        )
    return word


def words_to_bit_array(words_batch, n_words=None, width=None):
    """Validate a batch of word tuples into an ``(n_sets, n_words, width)``
    integer array.

    The array-native counterpart of mapping :func:`validate_word` over
    every word of every batch entry: the same values are accepted (ints,
    bools and exact floats 0/1) and the same :class:`EncodingError`
    conditions raise, but the whole batch is checked with a handful of
    numpy operations instead of one Python call per bit.  An integer
    ndarray passes through the shape/value checks without the float
    round-trip -- the zero-copy fast path of array-native circuit
    execution.
    """
    if (
        isinstance(words_batch, np.ndarray)
        and words_batch.ndim == 3
        and issubclass(words_batch.dtype.type, np.integer)
    ):
        if n_words is not None and words_batch.shape[1] != n_words:
            raise EncodingError(
                f"expected {n_words} input words, got {words_batch.shape[1]}"
            )
        if width is not None and words_batch.shape[2] != width:
            raise EncodingError(
                f"word has {words_batch.shape[2]} bits, expected {width}"
            )
        bits = (
            words_batch
            if words_batch.dtype == np.int64
            else words_batch.astype(np.int64)
        )
        if not np.isin(bits, (0, 1)).all():
            raise EncodingError("logic values must all be 0 or 1")
        return bits
    try:
        arr = np.asarray(words_batch)
    except ValueError:
        arr = np.asarray(words_batch, dtype=object)
    if arr.dtype == object or arr.ndim != 3:
        raise EncodingError(
            "expected a rectangular batch of word lists "
            "(n_sets x n_words x width)"
        )
    if n_words is not None and arr.shape[1] != n_words:
        raise EncodingError(
            f"expected {n_words} input words, got {arr.shape[1]}"
        )
    if width is not None and arr.shape[2] != width:
        raise EncodingError(
            f"word has {arr.shape[2]} bits, expected {width}"
        )
    try:
        bits = arr.astype(np.int64)
        exact = np.array_equal(bits, arr)
    except (ValueError, TypeError):
        raise EncodingError("logic values must all be 0 or 1") from None
    if not exact or not np.isin(bits, (0, 1)).all():
        raise EncodingError("logic values must all be 0 or 1")
    return bits


def int_to_bits(value, width):
    """Little-endian bit list of ``value``: bit i = (value >> i) & 1.

    >>> int_to_bits(5, 4)
    [1, 0, 1, 0]
    """
    if width < 1:
        raise EncodingError(f"width must be >= 1, got {width!r}")
    if value < 0 or value >= (1 << width):
        raise EncodingError(
            f"value {value!r} does not fit in {width} bits"
        )
    return [(value >> i) & 1 for i in range(width)]


def bits_to_int(bits):
    """Inverse of :func:`int_to_bits` (little-endian).

    >>> bits_to_int([1, 0, 1, 0])
    5
    """
    word = validate_word(bits)
    return sum(b << i for i, b in enumerate(word))
