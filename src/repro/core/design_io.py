"""Gate design serialisation: save/load designs as JSON.

A validated gate design -- material, waveguide geometry, frequency
plan, transducer spec, spacing multipliers, inversion flags, gate kind
-- round-trips through a plain JSON document, so designs can be
version-controlled, diffed and shipped to collaborators (or to a real
fab flow) without pickling Python objects.
"""

import json

from repro.errors import ReproError
from repro.core.frequency_plan import FrequencyPlan
from repro.core.gate import DataParallelGate, GateKind
from repro.core.layout import InlineGateLayout, TransducerSpec
from repro.materials import Material
from repro.waveguide import Waveguide

#: Format marker written into every document.
FORMAT = "repro-gate-design"
VERSION = 1


def gate_to_dict(gate):
    """Serialisable dict capturing everything needed to rebuild ``gate``."""
    layout = gate.layout
    waveguide = layout.waveguide
    material = waveguide.material
    return {
        "format": FORMAT,
        "version": VERSION,
        "kind": gate.kind.value,
        "material": {
            "name": material.name,
            "ms": material.ms,
            "aex": material.aex,
            "ku": material.ku,
            "alpha": material.alpha,
            "gamma": material.gamma,
            "anisotropy_axis": list(material.anisotropy_axis),
        },
        "waveguide": {
            "thickness": waveguide.thickness,
            "width": waveguide.width,
            "h_ext": waveguide.h_ext,
            "include_width_modes": waveguide.include_width_modes,
            "pinning": waveguide.pinning,
            "dispersion_model": waveguide.dispersion_model,
        },
        "transducer": {
            "length": layout.transducer.length,
            "width": layout.transducer.width,
            "min_gap": layout.transducer.min_gap,
        },
        "plan": {"frequencies": list(layout.plan.frequencies)},
        "layout": {
            "n_inputs": layout.n_inputs,
            "multipliers": list(layout.multipliers),
            "inverted_outputs": list(layout.inverted_outputs),
            "ordered": layout.ordered,
        },
    }


def gate_from_dict(document):
    """Rebuild a :class:`DataParallelGate` from :func:`gate_to_dict` output.

    The layout is re-solved from the stored multipliers, then checked:
    a changed library version that would place transducers differently
    fails validation rather than silently moving the design.
    """
    if document.get("format") != FORMAT:
        raise ReproError(
            f"not a {FORMAT} document (format={document.get('format')!r})"
        )
    if document.get("version") != VERSION:
        raise ReproError(
            f"unsupported design version {document.get('version')!r} "
            f"(this library reads version {VERSION})"
        )
    m = document["material"]
    material = Material(
        name=m["name"],
        ms=m["ms"],
        aex=m["aex"],
        ku=m["ku"],
        alpha=m["alpha"],
        gamma=m["gamma"],
        anisotropy_axis=tuple(m["anisotropy_axis"]),
    )
    w = document["waveguide"]
    waveguide = Waveguide(
        material=material,
        thickness=w["thickness"],
        width=w["width"],
        h_ext=w["h_ext"],
        include_width_modes=w["include_width_modes"],
        pinning=w["pinning"],
        dispersion_model=w["dispersion_model"],
    )
    t = document["transducer"]
    transducer = TransducerSpec(
        length=t["length"], width=t["width"], min_gap=t["min_gap"]
    )
    plan = FrequencyPlan(document["plan"]["frequencies"])
    lay = document["layout"]
    layout = InlineGateLayout(
        waveguide,
        plan,
        n_inputs=lay["n_inputs"],
        transducer=transducer,
        multipliers=lay["multipliers"],
        inverted_outputs=lay["inverted_outputs"],
        ordered=lay["ordered"],
    )
    layout.validate()
    return DataParallelGate(layout, kind=GateKind(document["kind"]))


def save_gate(gate, path_or_file, indent=2):
    """Write ``gate`` as a JSON design document."""
    document = gate_to_dict(gate)
    if hasattr(path_or_file, "write"):
        json.dump(document, path_or_file, indent=indent)
    else:
        with open(path_or_file, "w", encoding="ascii") as handle:
            json.dump(document, handle, indent=indent)


def load_gate(path_or_file):
    """Read a JSON design document back into a verified gate."""
    if hasattr(path_or_file, "read"):
        document = json.load(path_or_file)
    else:
        with open(path_or_file, "r", encoding="ascii") as handle:
            document = json.load(handle)
    return gate_from_dict(document)
