"""One-call gate design: from requirements to a verified gate.

:func:`design_gate` packages the full designer workflow the examples
walk through manually -- band analysis, frequency planning, layout,
cost estimation, functional verification -- and returns a
:class:`GateDesign` bundle or raises with a diagnosis of which
constraint failed.  This is the API a magnonic-circuit compiler would
call per cell.
"""

from dataclasses import dataclass
from itertools import product

from repro.errors import ReproError
from repro.core.frequency_plan import FrequencyPlan
from repro.core.gate import DataParallelGate, GateKind
from repro.core.layout import InlineGateLayout, TransducerSpec
from repro.core.metrics import CostModel, comparison
from repro.core.simulate import GateSimulator


@dataclass
class GateDesign:
    """The result bundle of :func:`design_gate`."""

    gate: object
    layout: object
    plan: object
    comparison: object
    min_margin: float
    verified_combos: int

    def summary(self):
        """Multi-line report of the design."""
        lines = [
            self.gate.describe(),
            self.layout.describe(),
            f"verified on {self.verified_combos} input combinations, "
            f"min margin {self.min_margin:.3f} rad",
            f"area vs scalar equivalent: "
            f"{self.comparison.area_ratio:.2f}x smaller "
            f"({self.comparison.parallel.area * 1e12:.4f} vs "
            f"{self.comparison.scalar.area * 1e12:.4f} um^2)",
        ]
        return "\n".join(lines)


def design_gate(
    waveguide,
    n_bits,
    n_inputs=3,
    kind=GateKind.MAJORITY,
    transducer=None,
    edge_headroom=1.5,
    cost_model=None,
    verify="corners",
):
    """Design and verify an n-bit data-parallel gate on ``waveguide``.

    Frequencies are packed uniformly into the usable band (band edge
    with ``edge_headroom`` up to the transducer's lambda >= 2L limit).
    ``verify`` selects the functional check: ``"corners"`` (all-zeros,
    all-ones, alternating -- fast), ``"exhaustive"`` (all 2^m uniform
    combos) or ``"none"``.

    Returns a :class:`GateDesign`; raises :class:`~repro.errors.ReproError`
    (or a more specific subclass) when any stage fails.
    """
    from repro.experiments.channel_capacity import design_plan, usable_band

    transducer = transducer if transducer is not None else TransducerSpec()
    f_low, f_high = usable_band(
        waveguide, transducer, edge_headroom=edge_headroom
    )
    plan = design_plan(n_bits, f_low, f_high)
    plan.validate_against(waveguide.dispersion())
    layout = InlineGateLayout(
        waveguide, plan, n_inputs=n_inputs, transducer=transducer
    )
    layout.validate()
    gate = DataParallelGate(layout, kind=kind)
    cost = comparison(layout, cost_model if cost_model else CostModel())

    min_margin = float("inf")
    combos_checked = 0
    if verify != "none":
        simulator = GateSimulator(gate)
        m = gate.n_data_inputs
        if verify == "exhaustive":
            combos = list(product((0, 1), repeat=m))
        elif verify == "corners":
            alternating = tuple((i % 2) for i in range(m))
            combos = [(0,) * m, (1,) * m, alternating]
        else:
            raise ReproError(
                f"unknown verify mode {verify!r}; "
                "use 'corners', 'exhaustive' or 'none'"
            )
        for bits in combos:
            words = [[b] * n_bits for b in bits]
            result = simulator.run_phasor(words)
            if not result.correct:
                raise ReproError(
                    f"functional verification failed on combo {bits}: "
                    f"decoded {result.decoded}, expected {result.expected}"
                )
            min_margin = min(min_margin, result.min_margin)
            combos_checked += 1

    return GateDesign(
        gate=gate,
        layout=layout,
        plan=plan,
        comparison=cost,
        min_margin=min_margin if combos_checked else float("nan"),
        verified_combos=combos_checked,
    )
