"""Cascading data-parallel gates into multi-stage pipelines.

Section III notes the gate outputs "can be read by transducers ... or
passed to potential following SW gates".  This module models both
options at the phasor level:

* **transduced cascade** (:class:`GateCascade`): each stage's outputs
  are detected, re-thresholded and re-excited into the next stage --
  the robust option, equivalent to logic with signal regeneration.  Any
  feed-forward majority network expressible stage-by-stage works.
* **direct (all-magnonic) coupling** (:func:`direct_coupling_margin`):
  the wave continues into the next stage without regeneration, so the
  amplitude asymmetry produced by the first stage's interference
  (|sum| in {1, 3} wave units for MAJ3) propagates.  The helper
  quantifies the decode margin loss, motivating why regeneration (or
  the paper's graded-drive trick) is needed for deep pipelines.

Stages share a frequency plan; the per-stage physical structure is an
independent waveguide segment (Fig. 2 structure per stage).

:class:`GateCascade` handles hand-wired linear pipelines; for arbitrary
MAJ/XOR/INV netlists (fanout, constants, detector-placement inversion)
the same transduced-regeneration semantics are generalised -- and
batched level-by-level -- by
:class:`repro.circuits.engine.CircuitEngine`, which is pinned against
the per-stage evaluation this module performs.
"""

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import EncodingError, SimulationError
from repro.core.simulate import GateSimulator


@dataclass
class StageResult:
    """Decoded words and margins of one cascade stage."""

    decoded: list  # output word of the stage
    min_margin: float
    amplitudes: list  # per-channel detected amplitude


class GateCascade:
    """A feed-forward pipeline of data-parallel gates with regeneration.

    Parameters
    ----------
    stages:
        List of :class:`~repro.core.gate.DataParallelGate`, all with the
        same bit width.
    wiring:
        For each stage after the first, a list of ``n_data_inputs``
        selectors saying where each input word comes from: the string
        ``"primary:<j>"`` (the j-th primary input word) or
        ``"stage:<s>"`` (the output word of earlier stage s).
        The first stage always consumes the first
        ``stages[0].n_data_inputs`` primary words.
    """

    def __init__(self, stages, wiring):
        if not stages:
            raise EncodingError("a cascade needs at least one stage")
        widths = {g.n_bits for g in stages}
        if len(widths) != 1:
            raise EncodingError(
                f"all stages must share one bit width, got {sorted(widths)}"
            )
        if len(wiring) != len(stages) - 1:
            raise EncodingError(
                f"wiring must cover stages 1..{len(stages) - 1}, "
                f"got {len(wiring)} entries"
            )
        self.stages = list(stages)
        self.wiring = [list(w) for w in wiring]
        for index, stage_wiring in enumerate(self.wiring, start=1):
            expected = self.stages[index].n_data_inputs
            if len(stage_wiring) != expected:
                raise EncodingError(
                    f"stage {index} needs {expected} input selectors, "
                    f"got {len(stage_wiring)}"
                )
            for selector in stage_wiring:
                self._parse_selector(selector, max_stage=index - 1)
        self._simulators = [GateSimulator(gate) for gate in self.stages]

    @staticmethod
    def _parse_selector(selector, max_stage):
        kind, _, arg = str(selector).partition(":")
        if kind not in ("primary", "stage") or not arg:
            raise EncodingError(
                f"bad wiring selector {selector!r}; use 'primary:<j>' "
                "or 'stage:<s>'"
            )
        index = int(arg)
        if kind == "stage" and not 0 <= index <= max_stage:
            raise EncodingError(
                f"selector {selector!r} references a not-yet-computed stage"
            )
        return kind, index

    @property
    def n_bits(self):
        """Shared data width of the pipeline."""
        return self.stages[0].n_bits

    def n_primary_inputs(self):
        """How many primary input words the cascade consumes."""
        needed = self.stages[0].n_data_inputs
        for stage_wiring in self.wiring:
            for selector in stage_wiring:
                kind, index = self._parse_selector(selector, len(self.stages))
                if kind == "primary":
                    needed = max(needed, index + 1)
        return needed

    def run(self, primary_words):
        """Evaluate the pipeline; returns (final word, [StageResult...]).

        Each stage runs in phasor mode; its decoded word (regenerated,
        full-amplitude) feeds the selectors of later stages.
        """
        primary_words = [list(w) for w in primary_words]
        if len(primary_words) < self.n_primary_inputs():
            raise EncodingError(
                f"cascade needs {self.n_primary_inputs()} primary words, "
                f"got {len(primary_words)}"
            )
        stage_outputs = []
        results = []
        for index, (gate, simulator) in enumerate(
            zip(self.stages, self._simulators)
        ):
            if index == 0:
                words = primary_words[: gate.n_data_inputs]
            else:
                words = []
                for selector in self.wiring[index - 1]:
                    kind, sel_index = self._parse_selector(selector, index - 1)
                    source = (
                        primary_words[sel_index]
                        if kind == "primary"
                        else stage_outputs[sel_index]
                    )
                    words.append(list(source))
            run = simulator.run_phasor(words)
            if not run.correct:
                raise SimulationError(
                    f"stage {index} physics disagreed with Boolean logic "
                    f"(decoded {run.decoded}, expected {run.expected})"
                )
            stage_outputs.append(run.decoded)
            results.append(
                StageResult(
                    decoded=run.decoded,
                    min_margin=run.min_margin,
                    amplitudes=[d.amplitude for d in run.decodes],
                )
            )
        return stage_outputs[-1], results

    def expected(self, primary_words):
        """Golden Boolean evaluation of the same wiring."""
        primary_words = [list(w) for w in primary_words]
        stage_outputs = []
        for index, gate in enumerate(self.stages):
            if index == 0:
                words = primary_words[: gate.n_data_inputs]
            else:
                words = []
                for selector in self.wiring[index - 1]:
                    kind, sel_index = self._parse_selector(selector, index - 1)
                    words.append(
                        list(
                            primary_words[sel_index]
                            if kind == "primary"
                            else stage_outputs[sel_index]
                        )
                    )
            stage_outputs.append(gate.expected_output(words))
        return stage_outputs[-1]


def direct_coupling_margin(n_inputs=3, stages=2):
    """Worst-case relative margin of an unregenerated MAJ cascade.

    In a direct all-magnonic cascade the stage-1 output wave keeps its
    interference amplitude: a 2-vs-1 majority leaves |sum| = 1 wave unit
    while a unanimous input leaves |sum| = n.  At the next stage a weak
    (amplitude 1) true-majority wave can be outvoted by two strong
    (amplitude up to n) minority waves -- unless amplitudes are
    renormalised.  This helper returns the worst-case margin (negative
    = failure) after ``stages`` unregenerated MAJ-``n_inputs`` stages,
    assuming worst-case amplitude assignments.

    The result is the quantitative argument for regeneration: already at
    two stages the margin is negative for any odd n >= 3.
    """
    if n_inputs < 3 or n_inputs % 2 == 0:
        raise EncodingError("n_inputs must be odd and >= 3")
    if stages < 1:
        raise EncodingError("stages must be >= 1")
    weak = 1.0
    strong = float(n_inputs)
    for _ in range(stages - 1):
        majority_count = (n_inputs + 1) // 2
        minority_count = n_inputs - majority_count
        # Worst case: the majority arrives weak, the minority strong.
        resultant = majority_count * weak - minority_count * strong
        full_scale = majority_count * weak + minority_count * strong
        margin = resultant / full_scale
        if margin <= 0:
            return margin
        weak, strong = abs(resultant), n_inputs * strong
    return weak / (weak + strong)


def majority_of_majorities(gate_factory, n_bits):
    """Build the canonical 2-level cascade: MAJ3(MAJ3 x 3).

    ``gate_factory()`` must return a fresh 3-input majority
    :class:`DataParallelGate` of width ``n_bits`` per call.  The cascade
    consumes 9 primary words; stage 3 combines the three first-level
    outputs.  Returns the :class:`GateCascade`.
    """
    stages = [gate_factory() for _ in range(4)]
    for gate in stages:
        if gate.n_bits != n_bits or gate.n_data_inputs != 3:
            raise EncodingError(
                "gate_factory must build 3-input gates of the stated width"
            )
    # Stages 1 and 2 consume primary words 3..5 and 6..8; the final
    # stage consumes the three stage outputs.
    wiring = [
        ["primary:3", "primary:4", "primary:5"],
        ["primary:6", "primary:7", "primary:8"],
        ["stage:0", "stage:1", "stage:2"],
    ]
    return GateCascade(stages, wiring)
