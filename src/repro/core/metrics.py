"""Area, delay and energy model (Section V.B).

The paper assumes the 10 nm x 50 nm excitation/detection cells dominate
delay and energy; since the byte-parallel gate and the 8-gate scalar
baseline use the *same number* of transducers, their delay and energy are
equal and the comparison reduces to area:

* scalar baseline: 8 single-frequency majority gates, 0.116 um^2 total;
* byte-parallel in-line gate: one waveguide, 0.0279 um^2;
* ratio 4.16x.

The models here regenerate those numbers from the geometry: the parallel
gate's area comes from the layout engine, the scalar gate's from a
single-channel layout at the lowest frequency (wavelength-pitched
transducers).  Delay and energy are parameterised per transducer event so
users can plug in their own ME-cell technology numbers.
"""

from dataclasses import dataclass

from repro.errors import LayoutError
from repro.units import NS, AJ


@dataclass(frozen=True)
class CostModel:
    """Technology constants for transducer-dominated cost accounting.

    Defaults follow common ME-cell assumptions in the SW-logic
    literature: ~0.42 ns and ~10 aJ per excitation or detection event.
    Propagation delay is computed from the physics, not assumed.
    """

    transducer_delay: float = 0.42 * NS
    transducer_energy: float = 10.0 * AJ

    def __post_init__(self):
        if self.transducer_delay <= 0:
            raise LayoutError("transducer_delay must be positive")
        if self.transducer_energy <= 0:
            raise LayoutError("transducer_energy must be positive")


@dataclass(frozen=True)
class GateCost:
    """Cost figures of one implementation."""

    area: float  # [m^2]
    delay: float  # [s], excite + worst-case propagation + detect
    energy: float  # [J] per evaluation
    n_transducers: int
    waveguide_length: float  # [m] total waveguide metal (sum over guides)

    def as_row(self, label):
        """(label, area um^2, delay ns, energy aJ, transducers) tuple."""
        return (
            label,
            f"{self.area * 1e12:.4f}",
            f"{self.delay * 1e9:.3f}",
            f"{self.energy * 1e18:.1f}",
            str(self.n_transducers),
        )


def _worst_propagation_delay(layout):
    """Longest source-to-detector group delay in ``layout`` [s]."""
    from repro.waveguide.linear_model import LinearWaveguideModel

    model = LinearWaveguideModel(layout.waveguide)
    worst = 0.0
    for channel in range(layout.plan.n_bits):
        frequency = layout.plan.frequencies[channel]
        _, v_g, _ = model.wave_parameters(frequency)
        detector = layout.detector_positions[channel]
        for position in layout.source_positions[channel]:
            worst = max(worst, abs(detector - position) / v_g)
    return worst


def gate_cost(layout, cost_model=None):
    """Cost of the data-parallel in-line gate described by ``layout``."""
    cost_model = cost_model if cost_model is not None else CostModel()
    n_transducers = layout.n_sources + layout.n_detectors
    delay = (
        2.0 * cost_model.transducer_delay + _worst_propagation_delay(layout)
    )
    energy = n_transducers * cost_model.transducer_energy
    return GateCost(
        area=layout.area,
        delay=delay,
        energy=energy,
        n_transducers=n_transducers,
        waveguide_length=layout.total_length,
    )


def scalar_baseline_cost(layout, cost_model=None, scalar_frequency=None):
    """Cost of the conventional equivalent: n scalar gates.

    Each scalar gate evaluates one bit with ``layout.n_inputs`` sources
    plus one detector on its own waveguide, all operating at a single
    frequency (``scalar_frequency``, default the plan's lowest --
    scalar gates have no reason to use anything else).  Transducers are
    pitched one wavelength apart, the natural constructive spacing.
    """
    from repro.core.frequency_plan import FrequencyPlan
    from repro.core.layout import InlineGateLayout

    cost_model = cost_model if cost_model is not None else CostModel()
    if scalar_frequency is None:
        scalar_frequency = min(layout.plan.frequencies)
    scalar_plan = FrequencyPlan([scalar_frequency])
    scalar_layout = InlineGateLayout(
        layout.waveguide,
        scalar_plan,
        n_inputs=layout.n_inputs,
        transducer=layout.transducer,
        multipliers=[1],
    )
    n_gates = layout.plan.n_bits
    per_gate = gate_cost(scalar_layout, cost_model)
    return GateCost(
        area=n_gates * per_gate.area,
        delay=per_gate.delay,  # gates operate in parallel
        energy=n_gates * per_gate.energy,
        n_transducers=n_gates * per_gate.n_transducers,
        waveguide_length=n_gates * per_gate.waveguide_length,
    )


@dataclass(frozen=True)
class Comparison:
    """Parallel-vs-scalar comparison summary."""

    parallel: GateCost
    scalar: GateCost

    @property
    def area_ratio(self):
        """Scalar area / parallel area (the paper's 4.16x)."""
        return self.scalar.area / self.parallel.area

    @property
    def delay_ratio(self):
        """Scalar delay / parallel delay (~1: same transducer count)."""
        return self.scalar.delay / self.parallel.delay

    @property
    def energy_ratio(self):
        """Scalar energy / parallel energy (exactly 1 in this model)."""
        return self.scalar.energy / self.parallel.energy


def comparison(layout, cost_model=None, scalar_frequency=None):
    """Build the Section V.B comparison for ``layout``."""
    return Comparison(
        parallel=gate_cost(layout, cost_model),
        scalar=scalar_baseline_cost(
            layout, cost_model, scalar_frequency=scalar_frequency
        ),
    )
