"""The paper's contribution: n-bit data parallel spin-wave logic gates.

Data parallelism (Section III): *n* independent bit-slices are encoded in
spin waves of *n* distinct frequencies travelling in one waveguide.  Waves
of the same frequency interfere -- constructively for equal phases,
destructively for opposite phases, majority-decided for three or more --
while waves of different frequencies coexist untouched.  One physical
in-line gate therefore evaluates an m-input Boolean function on n input
words simultaneously.

Public surface:

* :class:`~repro.core.encoding.PhaseEncoding` -- logic values <-> phases,
* :class:`~repro.core.frequency_plan.FrequencyPlan` -- the n channels,
* :class:`~repro.core.layout.InlineGateLayout` -- the Fig. 2 geometry,
* :class:`~repro.core.gate.DataParallelGate` -- gate specification,
* :class:`~repro.core.simulate.GateSimulator` -- run a gate on the linear
  or micromagnetic backend,
* :mod:`~repro.core.readout` -- traces back to bits,
* :mod:`~repro.core.metrics` -- the Section V.B area/delay/energy model,
* :mod:`~repro.core.scaling` -- the Section V damping-compensation scheme.
"""

from repro.core.encoding import PhaseEncoding, int_to_bits, bits_to_int
from repro.core.frequency_plan import FrequencyPlan
from repro.core.layout import InlineGateLayout, TransducerSpec
from repro.core.gate import DataParallelGate, GateKind
from repro.core.simulate import GateSimulator, GateRunResult
from repro.core.readout import decode_channel, decode_all_channels
from repro.core.metrics import (
    CostModel,
    gate_cost,
    scalar_baseline_cost,
    comparison,
)
from repro.core.scaling import (
    compensation_amplitudes,
    decode_margin,
    margin_vs_inputs,
)
from repro.core.cascade import (
    GateCascade,
    direct_coupling_margin,
    majority_of_majorities,
)
from repro.core.designer import GateDesign, design_gate
from repro.core.design_io import save_gate, load_gate, gate_to_dict, gate_from_dict
from repro.core.faults import (
    TransducerFault,
    enumerate_faults,
    fault_coverage,
    parametric_coverage,
)

__all__ = [
    "PhaseEncoding",
    "int_to_bits",
    "bits_to_int",
    "FrequencyPlan",
    "InlineGateLayout",
    "TransducerSpec",
    "DataParallelGate",
    "GateKind",
    "GateSimulator",
    "GateRunResult",
    "decode_channel",
    "decode_all_channels",
    "CostModel",
    "gate_cost",
    "scalar_baseline_cost",
    "comparison",
    "compensation_amplitudes",
    "decode_margin",
    "margin_vs_inputs",
    "GateCascade",
    "direct_coupling_margin",
    "majority_of_majorities",
    "GateDesign",
    "design_gate",
    "save_gate",
    "load_gate",
    "gate_to_dict",
    "gate_from_dict",
    "TransducerFault",
    "enumerate_faults",
    "fault_coverage",
    "parametric_coverage",
]
