"""Binding gates to physical backends and running them.

:class:`GateSimulator` drives a :class:`~repro.core.gate.DataParallelGate`
on the fast linear waveguide model: it converts input words into
phase-encoded :class:`~repro.waveguide.WaveSource` transducers at the
layout positions, generates detector traces, and decodes them back to an
output word.  Reference phases/amplitudes are calibrated analytically
from the all-zeros steady state, so the decoder is agnostic to detector
placement (direct and complemented outputs both decode correctly).

Batched evaluation is array-native end to end: input-word batches
become a :class:`~repro.waveguide.SourceBank` (struct-of-arrays, no
per-word ``WaveSource`` objects) via :meth:`GateSimulator.build_source_bank`,
steady-state phasors of the whole batch reduce to one complex GEMM
against cached propagation weights, and golden outputs and decodes
evaluate as whole-array operations.  The scalar per-word API remains
the reference every batched path is pinned against
(``tests/test_phasor_equivalence.py``).

For cross-validation against the full micromagnetic solver,
:func:`build_micromagnetic_simulation` materialises the same gate as a
1-D LLG problem with localised sinusoidal excitation fields -- the
numerical twin of the paper's OOMMF setup (used on reduced geometries by
the ``llg-x`` experiment).
"""

import cmath
import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.encoding import PhaseEncoding
from repro.core.readout import (
    ChannelDecode,
    decode_channel,
    decode_phasor_block,
    measure_phasor,
)
from repro.errors import ReproError, SimulationError
from repro.waveguide.linear_model import Detector, LinearWaveguideModel, WaveSource
from repro.waveguide.sources import SourceBank


@dataclass
class GateRunResult:
    """Everything produced by one gate evaluation.

    Attributes
    ----------
    words:
        The input data words (little-endian bit lists).
    decoded:
        The n-bit output word read from the physics.
    expected:
        The golden output word from Boolean semantics.
    decodes:
        Per-channel :class:`~repro.core.readout.ChannelDecode` detail.
    t:
        Time grid [s] (None for phasor-mode runs).
    traces:
        Mapping channel index -> Mx/Ms trace at that channel's detector
        (empty for phasor-mode runs).
    """

    words: list
    decoded: list
    expected: list
    decodes: list
    t: object = None
    traces: dict = field(default_factory=dict)

    @property
    def correct(self):
        """True when every decoded bit matches the golden output."""
        return self.decoded == self.expected

    @property
    def min_margin(self):
        """Smallest per-channel decision margin of this run."""
        return min(d.margin for d in self.decodes)


class GateSimulator:
    """Runs a gate on the linear travelling-wave backend."""

    def __init__(
        self,
        gate,
        encoding=None,
        amplitudes=None,
        noise=None,
        front_smoothing=0.0,
        settle_periods=4.0,
        model=None,
    ):
        """
        Parameters
        ----------
        gate:
            :class:`~repro.core.gate.DataParallelGate`.
        encoding:
            :class:`~repro.core.encoding.PhaseEncoding` (default standard).
        amplitudes:
            Optional per-(channel, input) source amplitude array of shape
            ``(n_bits, n_inputs)``; defaults to all ones.  The damping
            compensation of Section V plugs in here.
        noise:
            Optional :class:`~repro.waveguide.NoiseModel`.
        front_smoothing:
            Turn-on smoothing of the linear model [s].
        settle_periods:
            How many periods of the slowest channel to wait after the
            last wavefront arrival before the analysis window opens.
        model:
            Optional shared :class:`~repro.waveguide.LinearWaveguideModel`
            built on the gate's waveguide.  Simulators sharing one model
            share its dispersion and propagation-weight caches -- the
            circuit engine hands every simulator of one design the same
            model so identical cells (and their faulty variants) never
            recompute wave parameters or weight matrices.
        """
        self.gate = gate
        self.layout = gate.layout
        self.encoding = encoding if encoding is not None else PhaseEncoding()
        if model is None:
            model = LinearWaveguideModel(
                self.layout.waveguide, front_smoothing=front_smoothing
            )
        else:
            if model.waveguide is not self.layout.waveguide:
                raise SimulationError(
                    "a shared model must be built on the gate's waveguide"
                )
            if model.front_smoothing != float(front_smoothing):
                raise SimulationError(
                    f"shared model front_smoothing {model.front_smoothing!r} "
                    f"!= requested {front_smoothing!r}"
                )
        self.model = model
        n_bits = gate.n_bits
        n_inputs = self.layout.n_inputs
        if amplitudes is None:
            amplitudes = np.ones((n_bits, n_inputs))
        else:
            amplitudes = np.asarray(amplitudes, dtype=float)
            if amplitudes.shape != (n_bits, n_inputs):
                raise SimulationError(
                    f"amplitudes shape {amplitudes.shape} != "
                    f"{(n_bits, n_inputs)}"
                )
        self.amplitudes = amplitudes
        self.noise = noise
        self.settle_periods = float(settle_periods)
        self._calibration = None
        # Array-native source construction: phase code points and the
        # nominal (noise-free) source geometry, shared by every batch.
        self._phase_lut = np.array(
            [self.encoding.encode(0), self.encoding.encode(1)], dtype=float
        )
        self._nominal_geometry = None
        self._nominal_weights = None

    # ------------------------------------------------------------------
    # Source construction
    # ------------------------------------------------------------------
    def build_sources(self, words):
        """Phase-encoded :class:`WaveSource` list for the input words."""
        per_channel = self.gate.physical_input_bits(words)
        sources = []
        for channel, bits in enumerate(per_channel):
            frequency = self.layout.plan.frequencies[channel]
            for input_index, bit in enumerate(bits):
                sources.append(
                    WaveSource(
                        position=self.layout.source_positions[channel][input_index],
                        frequency=frequency,
                        amplitude=float(self.amplitudes[channel, input_index]),
                        phase=self.encoding.encode(bit),
                    )
                )
        if self.noise is not None:
            sources = self.noise.perturb_sources(sources)
        return sources

    def _zero_words(self):
        return [[0] * self.gate.n_bits for _ in range(self.gate.n_data_inputs)]

    def calibration(self):
        """Per-channel (reference_phase, reference_amplitude) tuples.

        The reference is the phase the all-zeros steady state produces at
        each detector, *minus* pi on channels with an inverted (half-
        integer-multiple) detector placement -- subtracting the intended
        inversion makes those channels decode the complemented function,
        exactly as the paper's Section III placement rule promises.
        Computed without noise; cached.
        """
        if self._calibration is None:
            # Calibration is noiseless by construction (noises=[None]);
            # one single-entry bank through the cached propagation-weight
            # GEMM covers every channel at once instead of one scalar
            # steady_state_phasor per channel, so building many small
            # gates (circuit engine, channel-capacity sweeps) stays cheap.
            bank = self.build_source_bank([self._zero_words()], noises=[None])
            z_row = self._phasor_block(bank)[0]
            result = []
            for channel in range(self.gate.n_bits):
                z = complex(z_row[channel])
                if abs(z) == 0:
                    raise SimulationError(
                        f"calibration produced zero amplitude on channel "
                        f"{channel}; check the layout"
                    )
                phase = cmath.phase(z)
                if self.layout.inverted_outputs[channel]:
                    phase -= math.pi
                result.append((phase, abs(z)))
            self._calibration = result
        return self._calibration

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def settle_time(self):
        """Earliest safe start of the steady-state analysis window [s]."""
        latest = 0.0
        for channel in range(self.gate.n_bits):
            frequency = self.layout.plan.frequencies[channel]
            _, v_g, _ = self.model.wave_parameters(frequency)
            detector = self.layout.detector_positions[channel]
            for position in self.layout.source_positions[channel]:
                latest = max(latest, abs(detector - position) / v_g)
        slowest_period = 1.0 / min(self.layout.plan.frequencies)
        return latest + self.settle_periods * slowest_period

    def default_duration(self, analysis_periods=20.0):
        """Trace duration covering settling plus an analysis window [s]."""
        slowest_period = 1.0 / min(self.layout.plan.frequencies)
        return self.settle_time() + analysis_periods * slowest_period

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _decode_trace_run(
        self, words, t, trace_rows, t_start, method, noise, phasors=None,
        noise_row=None,
    ):
        """Decode one entry's per-channel traces into a :class:`GateRunResult`.

        ``phasors`` optionally carries this entry's premeasured
        per-channel phasors (from a batched lock-in); the decision logic
        in :func:`~repro.core.readout.decode_channel` is shared either way.
        ``noise_row`` optionally carries the entry's already-drawn trace
        perturbation (``NoiseModel.trace_perturbation`` realisations are
        per-model, so batched callers draw once and reuse it here
        instead of re-seeding a generator per channel).
        """
        calibration = self.calibration()
        decodes = []
        traces = {}
        for channel in range(self.gate.n_bits):
            trace = trace_rows[channel]
            if noise_row is not None:
                trace = trace + noise_row
            elif noise is not None:
                trace = noise.perturb_trace(trace)
            traces[channel] = trace
            reference_phase, reference_amplitude = calibration[channel]
            decodes.append(
                decode_channel(
                    t,
                    trace,
                    self.layout.plan.frequencies[channel],
                    reference_phase=reference_phase,
                    reference_amplitude=reference_amplitude,
                    t_start=t_start,
                    method=method,
                    amplitude_readout=self.gate.kind.uses_amplitude_readout,
                    phasor=None if phasors is None else phasors[channel],
                )
            )
        decoded = [d.bit for d in decodes]
        return GateRunResult(
            words=[list(w) for w in words],
            decoded=decoded,
            expected=self.gate.expected_output(words),
            decodes=decodes,
            t=t,
            traces=traces,
        )

    def _decode_steady_phasor(self, z, channel):
        """One channel's :class:`ChannelDecode` from its steady-state phasor.

        The scalar reference for
        :func:`~repro.core.readout.decode_phasor_block`, which vectorises
        this decision logic over whole batches.
        """
        reference_phase, reference_amplitude = self.calibration()[channel]
        amplitude = abs(z)
        if self.gate.kind.uses_amplitude_readout:
            ratio = amplitude / reference_amplitude
            bit = int(ratio < 0.5)
            margin = abs(ratio - 0.5)
            phase = (
                _wrap(cmath.phase(z) - reference_phase) if amplitude else 0.0
            )
        else:
            if amplitude == 0:
                raise SimulationError(
                    f"zero steady-state amplitude on channel {channel}"
                )
            phase = _wrap(cmath.phase(z) - reference_phase)
            bit = int(abs(phase) > 0.5 * math.pi)
            margin = abs(abs(phase) - 0.5 * math.pi)
        return ChannelDecode(
            bit=bit, phase=phase, amplitude=amplitude, margin=margin
        )

    def _resolve_noises(self, words_batch, noises):
        """Normalise a non-empty batch and its per-entry noise list.

        Idempotent: applying it to its own output is a no-op, so nested
        entry points may each normalise their inputs.  Accepts an
        ``(n_sets, n_words, width)`` integer ndarray in place of nested
        word lists -- the array-native form batched circuit execution
        feeds -- and passes it through without per-entry conversion.
        """
        if not isinstance(words_batch, np.ndarray):
            words_batch = list(words_batch)
        if len(words_batch) == 0:
            raise SimulationError("no source sets supplied")
        if noises is None:
            noises = [self.noise] * len(words_batch)
        else:
            noises = list(noises)
            if len(noises) != len(words_batch):
                raise SimulationError(
                    f"{len(noises)} noise models for {len(words_batch)} "
                    "word sets"
                )
        return words_batch, noises

    def _nominal_source_geometry(self):
        """Cached ``(position, frequency)`` rows of the layout's sources,
        flattened channel-major to match :meth:`build_sources` order."""
        if self._nominal_geometry is None:
            position = np.array(
                [p for row in self.layout.source_positions for p in row],
                dtype=float,
            )
            frequency = np.repeat(
                np.asarray(self.layout.plan.frequencies, dtype=float),
                self.layout.n_inputs,
            )
            position.setflags(write=False)
            frequency.setflags(write=False)
            self._nominal_geometry = (position, frequency)
        return self._nominal_geometry

    def mutate_source_bank(self, bank):
        """Hook for subclasses that corrupt batched sources (e.g. faults).

        Called on every bank the array-native builder constructs, after
        noise; the scalar counterpart is overriding
        :meth:`build_sources`.  Subclasses whose most-derived source
        customisation is scalar-only still work -- batches then build
        through :meth:`build_sources` -- but pay the per-word
        construction cost this hook avoids.
        """
        return bank

    def _scalar_sources_customised(self):
        """True when some subclass customises sources scalar-only.

        A subclass that overrides :meth:`build_sources` without defining
        a bank-aware counterpart (:meth:`mutate_source_bank` /
        :meth:`build_source_bank`) *in the same class* has physics the
        array-native builder cannot reproduce; batches must then
        construct through the scalar builder to stay faithful.  Checked
        per class over the whole MRO above :class:`GateSimulator`, so an
        inherited scalar-only override is honoured even when a more
        derived class adds an orthogonal bank hook.
        """
        for klass in type(self).__mro__:
            if klass is GateSimulator:
                break
            if "build_sources" in vars(klass) and not (
                "mutate_source_bank" in vars(klass)
                or "build_source_bank" in vars(klass)
            ):
                return True
        return False

    def _scalar_source_bank(self, words_batch, noises):
        """Bank built through the (possibly overridden) scalar builder."""
        source_sets = []
        saved = self.noise
        try:
            for words, noise in zip(words_batch, noises):
                self.noise = noise
                source_sets.append(self.build_sources(words))
        finally:
            self.noise = saved
        return SourceBank.from_sources(source_sets)

    def _bank_from_bits(self, bits, noises):
        """Array-native bank from a validated physical-input bit array."""
        n_sets = bits.shape[0]
        position_row, frequency_row = self._nominal_source_geometry()
        n_sources = position_row.size
        phase = self._phase_lut[bits.reshape(n_sets, n_sources)]
        amplitude = np.broadcast_to(
            np.asarray(self.amplitudes, dtype=float).ravel(),
            (n_sets, n_sources),
        )
        position = np.broadcast_to(position_row, (n_sets, n_sources))

        if any(
            noise is not None and noise.perturbs_sources for noise in noises
        ):
            amplitude = np.array(amplitude)
            position = np.array(position)
            draws = {}
            for i, noise in enumerate(noises):
                if noise is None or not noise.perturbs_sources:
                    continue
                if noise not in draws:
                    draws[noise] = noise.source_perturbations(n_sources)
                factor, phase_offset, position_offset = draws[noise]
                amplitude[i] *= factor
                phase[i] += phase_offset
                position[i] += position_offset

        bank = SourceBank.from_arrays(
            position=position,
            frequency=np.broadcast_to(frequency_row, (n_sets, n_sources)),
            amplitude=amplitude,
            phase=phase,
        )
        return self.mutate_source_bank(bank)

    def build_source_bank(self, words_batch, noises=None):
        """Array-native :class:`~repro.waveguide.SourceBank` for a batch.

        Row ``i`` describes exactly the sources :meth:`build_sources`
        would emit for ``words_batch[i]`` under ``noises[i]`` -- same
        channel-major order, same values, same RNG draws (one vectorised
        block per distinct noise model instead of one call per source) --
        without constructing a single ``WaveSource`` object.

        ``noises`` follows :meth:`run_phasor_batch`: ``None`` applies
        :attr:`noise` to every entry; a list carries one independent
        model per entry (entries sharing an equal model share one draw).
        """
        words_batch, noises = self._resolve_noises(words_batch, noises)
        if self._scalar_sources_customised():
            if isinstance(words_batch, np.ndarray):
                # Scalar-only source customisation runs per-word Python
                # code (validate_bit rejects numpy scalars): hand it
                # plain nested lists.
                words_batch = words_batch.tolist()
            return self._scalar_source_bank(words_batch, noises)
        return self._bank_from_bits(
            self.gate.physical_input_bit_array(words_batch), noises
        )

    def _batch_sources(self, words_batch, noises=None):
        """Words, noises and the :class:`SourceBank` of one batch.

        ``noises`` (when given) must match ``words_batch`` in length, so
        a batch can carry independent noise realisations (one
        Monte-Carlo trial per entry) through one vectorised evaluation.
        Routes through :meth:`build_source_bank` so subclass overrides of
        either construction path are honoured.
        """
        words_batch, noises = self._resolve_noises(words_batch, noises)
        return words_batch, noises, self.build_source_bank(words_batch, noises)

    def _trace_window(self, duration):
        if duration is None:
            duration = self.default_duration()
        t_start = self.settle_time()
        if t_start >= duration:
            raise SimulationError(
                f"duration {duration:.4g} s too short: settling alone needs "
                f"{t_start:.4g} s"
            )
        return duration, t_start

    def run(self, words, duration=None, sample_rate=None, method="lockin"):
        """Full time-domain evaluation: traces + decoded output word."""
        sources = self.build_sources(words)
        detectors = [
            Detector(position=p, label=str(i))
            for i, p in enumerate(self.layout.detector_positions)
        ]
        duration, t_start = self._trace_window(duration)
        result = self.model.run(sources, detectors, duration, sample_rate=sample_rate)
        trace_rows = [
            result["traces"][str(channel)]
            for channel in range(self.gate.n_bits)
        ]
        return self._decode_trace_run(
            words, result["t"], trace_rows, t_start, method, self.noise
        )

    def run_batch(
        self,
        words_batch,
        duration=None,
        sample_rate=None,
        method="lockin",
        noises=None,
        strict=True,
    ):
        """Time-domain evaluation of many input words in one batch.

        All entries share one time grid; the per-detector traces of the
        whole batch are generated as an ``(n_words, n_samples)`` block by
        :meth:`~repro.waveguide.linear_model.LinearWaveguideModel.trace_batch`
        (two matrix products when the batch shares its geometry; the
        nominal-geometry carrier basis is memoised on the model so
        repeated batches of the same gate pay it once), then each entry
        decodes exactly as :meth:`run` would.  The lock-in demodulation
        is likewise batched -- one vectorised measurement per channel
        covers every entry, including entries whose noise model adds
        trace noise (their rows are perturbed in-block with the same
        realisation the scalar path draws).  Returns a list of
        :class:`GateRunResult`, one per entry of ``words_batch``.  With
        ``strict=False``, an entry whose decode fails (e.g. a fault left
        a phase-readout carrier too weak to measure) yields ``None``
        instead of raising -- the same convention as
        :meth:`run_phasor_batch` -- so degraded-gate sweeps keep their
        batch shape.
        """
        words_batch, noises, bank = self._batch_sources(words_batch, noises)
        if isinstance(words_batch, np.ndarray):
            # The bank is already built from the array; the remaining
            # per-entry work (golden outputs, result records) runs
            # per-word Python code, so convert once in bulk here.
            words_batch = words_batch.tolist()
        detectors = [
            Detector(position=p, label=str(i))
            for i, p in enumerate(self.layout.detector_positions)
        ]
        duration, t_start = self._trace_window(duration)
        result = self.model.run_batch(
            bank,
            detectors,
            duration,
            sample_rate=sample_rate,
            cache_basis=self._bank_is_nominal(bank),
        )
        t = result["t"]
        # One vectorised lock-in per channel covers the whole batch.
        # Entries with trace noise perturb their rows of each channel
        # block first: perturb_trace re-seeds per call, so one draw per
        # distinct noise model (trace_perturbation) reproduces the
        # scalar per-trace realisations exactly.
        batch_phasors = None
        noise_rows = {}
        if method == "lockin":
            draws = {}
            for entry, noise in enumerate(noises):
                if noise is None or noise.trace_sigma == 0:
                    continue
                if noise not in draws:
                    draws[noise] = noise.trace_perturbation(t.size)
                noise_rows[entry] = draws[noise]
            batch_phasors = []
            for channel in range(self.gate.n_bits):
                block = result["traces"][str(channel)]
                if noise_rows:
                    block = np.array(block, dtype=float)
                    for entry, row in noise_rows.items():
                        block[entry] += row
                batch_phasors.append(
                    measure_phasor(
                        t,
                        block,
                        self.layout.plan.frequencies[channel],
                        t_start,
                        method=method,
                    )
                )
        results = []
        for entry, (words, noise) in enumerate(zip(words_batch, noises)):
            trace_rows = [
                result["traces"][str(channel)][entry]
                for channel in range(self.gate.n_bits)
            ]
            phasors = None
            noise_row = None
            if batch_phasors is not None:
                phasors = [column[entry] for column in batch_phasors]
                noise_row = noise_rows.get(entry)
            try:
                results.append(
                    self._decode_trace_run(
                        words, t, trace_rows, t_start, method, noise,
                        phasors, noise_row,
                    )
                )
            except ReproError:
                if strict:
                    raise
                results.append(None)
        return results

    def run_phasor(self, words):
        """Fast steady-state evaluation (no traces): phasor arithmetic only.

        Orders of magnitude faster than :meth:`run`; used by the
        scalability sweeps.  Noise (if any) applies to the sources.
        """
        sources = self.build_sources(words)
        decodes = []
        for channel in range(self.gate.n_bits):
            frequency = self.layout.plan.frequencies[channel]
            z = self.model.steady_state_phasor(
                sources, self.layout.detector_positions[channel], frequency
            )
            decodes.append(self._decode_steady_phasor(z, channel))
        decoded = [d.bit for d in decodes]
        return GateRunResult(
            words=[list(w) for w in words],
            decoded=decoded,
            expected=self.gate.expected_output(words),
            decodes=decodes,
        )

    def _bank_is_nominal(self, bank):
        """True when ``bank`` carries the layout's unperturbed geometry.

        Nominal banks -- every noiseless batch, and every batch whose
        noise only touches amplitudes and phases -- are the recurring
        geometries worth memoising model-side (propagation weights for
        phasor evaluation, the carrier basis for trace evaluation).
        """
        if not bank.shared_geometry:
            return False
        position, frequency = self._nominal_source_geometry()
        return bool(
            np.array_equal(bank.position[0], position)
            and np.array_equal(bank.frequency[0], frequency)
            and not bank.t_on[0].any()
        )

    def _phasor_block(self, bank):
        """``(n_sets, n_bits)`` steady-state phasors of a source bank.

        Banks carrying the layout's nominal geometry -- every noiseless
        batch, and every batch whose noise only touches amplitudes and
        phases -- hit a cached propagation-weight matrix, so the whole
        block is one complex GEMM; other shared-geometry banks compute
        their weights on the fly, and per-entry geometry (placement
        noise) takes the general per-detector path.
        """
        weights = None
        if self._bank_is_nominal(bank):
            weights = self.nominal_weights()
        return self.model.steady_state_phasor_block(
            bank,
            self.layout.detector_positions,
            self.layout.plan.frequencies,
            weights=weights,
        )

    def nominal_weights(self):
        """The ``(n_sources, n_bits)`` nominal propagation-weight matrix.

        Built on demand and memoised both here and on the shared model
        (the nominal layout geometry recurs across simulators sharing
        one model).  This is the per-operation block the compile-once
        circuit layer (:mod:`repro.circuits.compiled`) block-stacks into
        cross-operation level matrices.
        """
        if self._nominal_weights is None:
            position, frequency = self._nominal_source_geometry()
            self._nominal_weights = self.model.phasor_weights(
                position,
                frequency,
                self.layout.detector_positions,
                self.layout.plan.frequencies,
                cache=True,
            )
        return self._nominal_weights

    def calibration_arrays(self):
        """Calibration as ``(reference_phases, reference_amplitudes)``
        float arrays -- the vectorised view of :meth:`calibration` that
        :func:`~repro.core.readout.decode_phasor_block` and the packed
        circuit decoder consume directly."""
        calibration = self.calibration()
        phases = np.array([phase for phase, _ in calibration])
        amplitudes = np.array([amplitude for _, amplitude in calibration])
        return phases, amplitudes

    def run_phasor_batch(self, words_batch, noises=None, strict=True):
        """Steady-state evaluation of many input words in one batch.

        The whole batch runs array-native: source construction
        (:meth:`build_source_bank`), the per-channel phasors (one complex
        GEMM against cached propagation weights when the geometry is
        nominal), the golden outputs
        (:meth:`~repro.core.gate.DataParallelGate.expected_output_batch`)
        and the decode
        (:func:`~repro.core.readout.decode_phasor_block`) -- each entry
        nonetheless decodes exactly as :meth:`run_phasor` would (pinned
        by ``tests/test_phasor_equivalence``).  Returns a list of
        :class:`GateRunResult` aligned with ``words_batch``.  With
        ``strict=False``, an entry whose decode fails (e.g. a fault
        silenced a phase-readout channel) yields ``None`` instead of
        raising, so sweeps over degraded gates keep their batch shape.
        """
        words_batch, noises = self._resolve_noises(words_batch, noises)
        if (
            type(self).build_source_bank is GateSimulator.build_source_bank
            and not self._scalar_sources_customised()
        ):
            # One validated bit expansion feeds both the source bank and
            # the golden outputs.
            bits_array = self.gate.physical_input_bit_array(words_batch)
            bank = self._bank_from_bits(bits_array, noises)
            expected = self.gate.expected_output_from_physical_bits(bits_array)
        else:
            bank = self.build_source_bank(words_batch, noises)
            expected = self.gate.expected_output_batch(words_batch)
        phasors = self._phasor_block(bank)
        try:
            calibration = self.calibration()
        except SimulationError:
            # The scalar loop hits this per entry inside its decode
            # try/except; a calibration failure is batch-wide.
            if strict:
                raise
            return [None] * len(words_batch)
        bits, phases, amplitudes, margins, dead = decode_phasor_block(
            phasors,
            np.array([phase for phase, _ in calibration]),
            np.array([amplitude for _, amplitude in calibration]),
            amplitude_readout=self.gate.kind.uses_amplitude_readout,
        )
        dead_entries = dead.any(axis=1)
        if strict and dead_entries.any():
            entry = int(np.argmax(dead_entries))
            channel = int(np.argmax(dead[entry]))
            raise SimulationError(
                f"zero steady-state amplitude on channel {channel}"
            )
        bits = bits.tolist()
        phases = phases.tolist()
        amplitudes = amplitudes.tolist()
        margins = margins.tolist()
        n_bits = self.gate.n_bits
        if isinstance(words_batch, np.ndarray):
            # One bulk conversion for the result records (the physics
            # above consumed the array directly).
            words_batch = words_batch.tolist()
        results = []
        for entry, words in enumerate(words_batch):
            if dead_entries[entry]:
                results.append(None)
                continue
            decodes = [
                ChannelDecode(
                    bit=bits[entry][channel],
                    phase=phases[entry][channel],
                    amplitude=amplitudes[entry][channel],
                    margin=margins[entry][channel],
                )
                for channel in range(n_bits)
            ]
            results.append(
                GateRunResult(
                    words=[list(w) for w in words],
                    decoded=bits[entry],
                    expected=expected[entry],
                    decodes=decodes,
                )
            )
        return results


def _wrap(phase):
    return (phase + math.pi) % (2.0 * math.pi) - math.pi


def build_micromagnetic_simulation(
    gate,
    words,
    cell_size=4e-9,
    field_amplitude=5e3,
    margin=60e-9,
    absorber=40e-9,
    absorber_alpha=0.5,
    encoding=None,
    terms=None,
    ramp_periods=1.0,
    resolve_width=False,
    cell_size_y=None,
):
    """Materialise a gate evaluation as a micromagnetic problem.

    Builds a :class:`~repro.mm.Simulation` whose mesh spans the layout
    (plus ``margin`` at each end, the outer ``absorber`` of which ramps
    the damping up to ``absorber_alpha`` to suppress end reflections),
    with one sinusoidal :class:`~repro.mm.AppliedField` per source --
    phase-encoded exactly like the linear model -- and one region probe
    per detector.  Default field terms are exchange + PMA anisotropy +
    thin-film demag; their small-signal dynamics follow the *exchange*
    dispersion branch, so gates intended for LLG cross-validation should
    be laid out on a ``Waveguide(dispersion_model="exchange")``.

    ``resolve_width=True`` discretises the waveguide width with cells of
    ``cell_size_y`` (default ``cell_size``): transducer fields and
    detector probes then span the full width, and the transverse mode
    profile becomes part of the dynamics (2-D simulation).  The default
    1-D mode collapses the width into one cell -- the cheap
    configuration the cross-validation tests use.

    Returns ``(sim, probes)`` where ``probes[channel]`` records the
    detector of that channel.  Intended for *small* gates (1-2 channels,
    sub-micron lengths); the byte-wide gate belongs on the linear model.
    """
    from repro.mm import (
        ExchangeField,
        Mesh,
        Simulation,
        SineWaveform,
        State,
        ThinFilmDemagField,
        UniaxialAnisotropyField,
    )
    from repro.mm.fields.applied import AppliedField

    layout = gate.layout
    encoding = encoding if encoding is not None else PhaseEncoding()
    if absorber >= margin:
        raise SimulationError(
            f"absorber ({absorber!r}) must be smaller than margin ({margin!r})"
        )
    length = layout.total_length + 2.0 * margin
    nx = max(int(round(length / cell_size)), 8)
    if resolve_width:
        dy = cell_size_y if cell_size_y is not None else cell_size
        ny = max(int(round(layout.waveguide.width / dy)), 2)
    else:
        dy = layout.waveguide.width
        ny = 1
    mesh = Mesh(nx, ny, 1, cell_size, dy, layout.waveguide.thickness)
    material = layout.waveguide.material
    state = State.uniform(mesh, material, direction=(0.0, 0.0, 1.0))
    if terms is None:
        terms = [
            ExchangeField(),
            UniaxialAnisotropyField(),
            ThinFilmDemagField(),
        ]

    alpha_profile = None
    if absorber > 0:
        x = mesh.cell_centers(0)
        total = nx * cell_size
        ramp_left = np.clip((absorber - x) / absorber, 0.0, 1.0)
        ramp_right = np.clip((x - (total - absorber)) / absorber, 0.0, 1.0)
        ramp = np.maximum(ramp_left, ramp_right)
        profile = material.alpha + (absorber_alpha - material.alpha) * ramp**2
        alpha_profile = profile.reshape(nx, 1, 1) * np.ones(mesh.shape)
    sim = Simulation(state, terms=list(terms), alpha_profile=alpha_profile)

    offset = margin  # layout coordinate 0 maps to x = margin
    half = layout.transducer.length / 2.0
    per_channel = gate.physical_input_bits(words)
    for channel, bits in enumerate(per_channel):
        frequency = layout.plan.frequencies[channel]
        for input_index, bit in enumerate(bits):
            centre = offset + layout.source_positions[channel][input_index]
            mask = mesh.region_mask(x=(centre - half, centre + half))
            if not mask.any():
                raise SimulationError(
                    "source transducer narrower than one mesh cell; "
                    "reduce cell_size"
                )
            waveform = SineWaveform(
                field_amplitude,
                frequency,
                phase=encoding.encode(bit),
                ramp=ramp_periods / frequency,
            )
            sim.add_term(AppliedField(mask, (1.0, 0.0, 0.0), waveform))

    probes = []
    for channel in range(gate.n_bits):
        centre = offset + layout.detector_positions[channel]
        probes.append(
            sim.add_region_probe(
                label=f"ch{channel}", x=(centre - half, centre + half)
            )
        )
    # Pre-build the zero-allocation LLG workspace (kernels.LLGWorkspace)
    # now that the term list is final, so the first run() step pays no
    # buffer allocation.
    sim.ensure_workspace()
    return sim, probes
