"""Array-native source banks: whole batches of wave sources as arrays.

A :class:`SourceBank` is the struct-of-arrays twin of a list of
:class:`~repro.waveguide.linear_model.WaveSource` lists: one
``(n_sets, n_sources)`` float array per physical parameter (positions,
frequencies, amplitudes, phases, turn-on times) describing every source
of every batch entry at once.  Building a bank directly from encoded bit
arrays costs a handful of numpy operations regardless of the batch size,
where materialising the equivalent ``WaveSource`` objects costs one
Python dataclass construction per (entry, source) pair -- the cost that
dominated phasor-mode gate sweeps before this subsystem existed.

Every batched entry point of
:class:`~repro.waveguide.linear_model.LinearWaveguideModel` accepts a
bank in place of raw source lists (via :meth:`SourceBank.as_batch`), and
:meth:`SourceBank.sources` materialises any single entry back into plain
``WaveSource`` objects, so the allocating scalar API remains the ground
truth the array path is pinned against (``tests/test_phasor_equivalence``).

>>> import numpy as np
>>> from repro.waveguide.sources import SourceBank
>>> bank = SourceBank.from_arrays(
...     position=[0.0, 100e-9],          # one row, shared by the batch
...     frequency=[10e9, 10e9],
...     amplitude=np.ones((2, 2)),
...     phase=[[0.0, 0.0], [0.0, np.pi]],  # entry 1 drives source 1 at pi
... )
>>> bank.n_sets, bank.n_sources
(2, 2)
>>> bank.shared_geometry
True
>>> bank.sources(1)[1].phase == np.pi
True
"""

import numpy as np

from repro.errors import SimulationError


class SourceBank:
    """Struct-of-arrays batch of wave sources.

    Each field is an ``(n_sets, n_sources)`` float array; row ``i``
    describes the sources of batch entry ``i`` in the same order a flat
    ``WaveSource`` list would.  Construct via :meth:`from_arrays` (rows
    broadcast across the batch) or :meth:`from_sources` (stacking
    existing ``WaveSource`` lists); instances are immutable -- derive
    modified banks with :meth:`replace`.
    """

    _FIELDS = ("position", "frequency", "amplitude", "phase", "t_on")

    def __init__(self, position, frequency, amplitude, phase, t_on):
        arrays = []
        for name, value in zip(
            self._FIELDS, (position, frequency, amplitude, phase, t_on)
        ):
            array = np.asarray(value, dtype=float)
            if array.ndim != 2:
                raise SimulationError(
                    f"SourceBank {name} must be 2-D (n_sets, n_sources), "
                    f"got shape {array.shape}"
                )
            arrays.append(array)
        shape = arrays[0].shape
        if any(a.shape != shape for a in arrays):
            raise SimulationError(
                "SourceBank field shapes differ: "
                + ", ".join(
                    f"{n}={a.shape}" for n, a in zip(self._FIELDS, arrays)
                )
            )
        if shape[0] == 0:
            raise SimulationError("no source sets supplied")
        if shape[1] == 0:
            raise SimulationError("no sources supplied")
        self.position, self.frequency, self.amplitude, self.phase, self.t_on = arrays
        if not (self.frequency > 0).all():
            raise SimulationError("source frequencies must be positive")
        if not (self.amplitude >= 0).all():
            raise SimulationError("source amplitudes must be non-negative")
        for array in arrays:
            array.setflags(write=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(cls, position, frequency, amplitude, phase, t_on=None):
        """Build a bank, broadcasting 1-D rows across the batch.

        Any field given as a 1-D ``(n_sources,)`` row (or scalar) is
        shared by every entry; the batch size is taken from the first
        2-D field (at least one field must be 2-D).
        """
        fields = [position, frequency, amplitude, phase,
                  0.0 if t_on is None else t_on]
        arrays = [np.asarray(f, dtype=float) for f in fields]
        n_sets = None
        for array in arrays:
            if array.ndim == 2:
                n_sets = array.shape[0]
                break
        if n_sets is None:
            raise SimulationError(
                "at least one SourceBank field must be 2-D to fix the "
                "batch size; use shape (n_sets, n_sources)"
            )
        n_sources = max(
            (a.shape[-1] for a in arrays if a.ndim >= 1), default=0
        )
        try:
            arrays = [
                np.broadcast_to(a, (n_sets, n_sources)) for a in arrays
            ]
        except ValueError as error:
            raise SimulationError(
                f"SourceBank fields do not broadcast to "
                f"({n_sets}, {n_sources}): {error}"
            ) from None
        return cls(*arrays)

    @classmethod
    def from_sources(cls, source_sets):
        """Stack equal-length ``WaveSource`` lists into a bank."""
        source_sets = [list(s) for s in source_sets]
        if not source_sets:
            raise SimulationError("no source sets supplied")
        n_sources = len(source_sets[0])
        if any(len(s) != n_sources for s in source_sets):
            raise SimulationError(
                "all source sets in a batch must have the same length"
            )
        data = np.array(
            [
                [
                    (s.position, s.frequency, s.amplitude, s.phase, s.t_on)
                    for s in sources
                ]
                for sources in source_sets
            ],
            dtype=float,
        )
        return cls(*(data[..., i] for i in range(len(cls._FIELDS))))

    # ------------------------------------------------------------------
    # Views and derived forms
    # ------------------------------------------------------------------
    @property
    def n_sets(self):
        """Number of batch entries."""
        return self.position.shape[0]

    @property
    def n_sources(self):
        """Number of sources per entry."""
        return self.position.shape[1]

    def __len__(self):
        return self.n_sets

    @property
    def shared_geometry(self):
        """True when positions, frequencies and turn-ons match across sets.

        Shared geometry is what collapses batched evaluation to matrix
        products against a precomputed propagation basis; banks with
        per-entry geometry (e.g. independent placement-noise draws) take
        the general per-source path instead.
        """
        return bool(
            (np.ptp(self.position, axis=0) == 0.0).all()
            and (np.ptp(self.frequency, axis=0) == 0.0).all()
            and (np.ptp(self.t_on, axis=0) == 0.0).all()
        )

    def as_batch(self):
        """The :class:`~repro.waveguide.linear_model.SourceBatch` view.

        Shares this bank's arrays; every batched
        :class:`~repro.waveguide.linear_model.LinearWaveguideModel`
        entry point accepts it (or the bank itself) directly.
        """
        from repro.waveguide.linear_model import SourceBatch

        return SourceBatch(
            self.position, self.frequency, self.amplitude, self.phase,
            self.t_on,
        )

    def sources(self, index):
        """Materialise entry ``index`` as a list of ``WaveSource``."""
        from repro.waveguide.linear_model import WaveSource

        return [
            WaveSource(
                position=float(self.position[index, j]),
                frequency=float(self.frequency[index, j]),
                amplitude=float(self.amplitude[index, j]),
                phase=float(self.phase[index, j]),
                t_on=float(self.t_on[index, j]),
            )
            for j in range(self.n_sources)
        ]

    def replace(self, **fields):
        """A new bank with the given fields replaced.

        Unchanged fields are shared with this bank (they are already
        frozen); replacement arrays are adopted and frozen in turn, not
        copied -- callers hand over ownership.
        """
        unknown = set(fields) - set(self._FIELDS)
        if unknown:
            raise SimulationError(
                f"unknown SourceBank fields {sorted(unknown)!r}"
            )
        values = {name: getattr(self, name) for name in self._FIELDS}
        for name, value in fields.items():
            values[name] = np.asarray(value, dtype=float)
        return type(self)(**values)
