"""The linear travelling-wave model of a multi-frequency waveguide.

Each :class:`WaveSource` excites a damped travelling wave

    s(x, t) = A * exp(-|x - x_s| / L(f)) *
              sin(2*pi*f*(t - |x - x_s|/v_g) - k*|x - x_s| + phi)

for t > t_on + |x - x_s|/v_g (sharp causal front, optionally smoothed).
A :class:`Detector` superposes the contributions of every source --
including different-frequency ones, which coexist without interacting
exactly as in the paper's Section II -- and the result is a synthetic
``Mx/Ms`` trace directly comparable to OOMMF probe output.

Wave parameters (k, v_g, L) are looked up once per distinct frequency
from the waveguide's dispersion relation, so generating a trace costs
O(n_sources * n_samples) regardless of physical length.
"""

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.physics.damping import attenuation_length
from repro.physics.solve import wavenumber_for_frequency


@dataclass(frozen=True)
class WaveSource:
    """One excitation transducer on the waveguide axis.

    Parameters
    ----------
    position:
        Location along the waveguide [m].
    frequency:
        Carrier frequency [Hz].
    amplitude:
        Dimensionless Mx/Ms amplitude at the source.
    phase:
        Encoded phase [rad]: 0 for logic 0, pi for logic 1.
    t_on:
        Turn-on time [s].
    """

    position: float
    frequency: float
    amplitude: float = 1.0
    phase: float = 0.0
    t_on: float = 0.0

    def __post_init__(self):
        if self.frequency <= 0:
            raise SimulationError(
                f"source frequency must be positive, got {self.frequency!r}"
            )
        if self.amplitude < 0:
            raise SimulationError(
                f"source amplitude must be non-negative, got {self.amplitude!r}"
            )


@dataclass(frozen=True)
class Detector:
    """An output transducer at ``position`` [m] with a display ``label``."""

    position: float
    label: str = ""


class LinearWaveguideModel:
    """Superposition model bound to one waveguide's dispersion."""

    def __init__(self, waveguide, front_smoothing=0.0):
        """``front_smoothing`` [s] smooths the causal turn-on edge."""
        self.waveguide = waveguide
        self.dispersion = waveguide.dispersion()
        if front_smoothing < 0:
            raise SimulationError(
                f"front_smoothing must be non-negative, got {front_smoothing!r}"
            )
        self.front_smoothing = float(front_smoothing)
        self._wave_cache = {}

    # ------------------------------------------------------------------
    def wave_parameters(self, frequency):
        """(k, v_g, L_att) for ``frequency``, cached per distinct value."""
        key = float(frequency)
        if key not in self._wave_cache:
            k = wavenumber_for_frequency(self.dispersion, key)
            v_g = abs(self.dispersion.group_velocity(k))
            length = attenuation_length(self.dispersion, k)
            self._wave_cache[key] = (k, v_g, length)
        return self._wave_cache[key]

    def _front(self, t, arrival):
        """Causal front factor in [0, 1] for sample times ``t``."""
        if self.front_smoothing == 0.0:
            return (t >= arrival).astype(float)
        x = (t - arrival) / self.front_smoothing
        return np.clip(x, 0.0, 1.0)

    def source_contribution(self, source, position, t):
        """Signal of one source at ``position`` over time array ``t``."""
        distance = abs(position - source.position)
        k, v_g, length = self.wave_parameters(source.frequency)
        arrival = source.t_on + distance / v_g
        envelope = source.amplitude * math.exp(-distance / length)
        carrier = np.sin(
            2.0 * math.pi * source.frequency * (t - source.t_on)
            - k * distance
            + source.phase
        )
        return envelope * carrier * self._front(t, arrival)

    def trace(self, sources, position, t):
        """Superposed Mx/Ms trace of all ``sources`` at ``position``."""
        total = np.zeros_like(np.asarray(t, dtype=float))
        for source in sources:
            total += self.source_contribution(source, position, t)
        return total

    def run(self, sources, detectors, duration, sample_rate=None):
        """Generate traces for every detector.

        Parameters
        ----------
        sources:
            Iterable of :class:`WaveSource`.
        detectors:
            Iterable of :class:`Detector`.
        duration:
            Trace length [s].
        sample_rate:
            Samples per second; defaults to 16x the highest source
            frequency (comfortably above Nyquist for FFT readout).

        Returns
        -------
        dict with keys ``"t"`` (1-D time array) and ``"traces"`` (mapping
        detector label -> 1-D Mx/Ms array).
        """
        sources = list(sources)
        detectors = list(detectors)
        if not sources:
            raise SimulationError("no sources supplied")
        if not detectors:
            raise SimulationError("no detectors supplied")
        if duration <= 0:
            raise SimulationError(f"duration must be positive, got {duration!r}")
        if sample_rate is None:
            sample_rate = 16.0 * max(s.frequency for s in sources)
        n_samples = int(round(duration * sample_rate))
        if n_samples < 2:
            raise SimulationError(
                "duration * sample_rate too small "
                f"({duration!r} s at {sample_rate!r} Hz)"
            )
        t = np.arange(n_samples) / sample_rate
        traces = {}
        for index, detector in enumerate(detectors):
            label = detector.label or f"detector_{index}"
            traces[label] = self.trace(sources, detector.position, t)
        return {"t": t, "traces": traces}

    def steady_state_phasor(self, sources, position, frequency, tol=1e-12):
        """Complex steady-state amplitude of ``frequency`` at ``position``.

        Sums only same-frequency sources (different frequencies average
        out exactly in steady state).  The phasor convention matches the
        trace: signal = Im[ phasor * exp(i*2*pi*f*t) ].
        """
        total = 0.0 + 0.0j
        for source in sources:
            if abs(source.frequency - frequency) > tol * max(frequency, 1.0):
                continue
            distance = abs(position - source.position)
            k, _, length = self.wave_parameters(source.frequency)
            amplitude = source.amplitude * math.exp(-distance / length)
            total += amplitude * np.exp(1j * (source.phase - k * distance))
        return total
