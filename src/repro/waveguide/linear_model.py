"""The linear travelling-wave model of a multi-frequency waveguide.

Each :class:`WaveSource` excites a damped travelling wave

    s(x, t) = A * exp(-|x - x_s| / L(f)) *
              sin(2*pi*f*(t - |x - x_s|/v_g) - k*|x - x_s| + phi)

for t > t_on + |x - x_s|/v_g (sharp causal front, optionally smoothed).
A :class:`Detector` superposes the contributions of every source --
including different-frequency ones, which coexist without interacting
exactly as in the paper's Section II -- and the result is a synthetic
``Mx/Ms`` trace directly comparable to OOMMF probe output.

Wave parameters (k, v_g, L) are looked up once per distinct frequency
from the waveguide's dispersion relation, so generating a trace costs
O(n_sources * n_samples) regardless of physical length.

Batched evaluation: :meth:`LinearWaveguideModel.trace_batch` and
:meth:`LinearWaveguideModel.steady_state_phasor_batch` evaluate many
source sets (e.g. every input word of a gate) in one vectorised pass,
returning ``(n_sets, n_samples)`` / ``(n_sets,)`` arrays.  When the
geometry is shared across the batch -- the common case, only the
encoded phases and amplitudes differ per word -- the trace batch
reduces to two BLAS matrix products against a precomputed carrier
basis, so the per-word cost collapses to a pair of GEMV passes.
Steady-state evaluation at many detectors collapses further:
:meth:`LinearWaveguideModel.steady_state_phasor_block` turns a whole
batch x detector grid into a single complex GEMM against the cached
propagation weights of :meth:`LinearWaveguideModel.phasor_weights`.
Batches are cheapest to express as an array-native
:class:`~repro.waveguide.sources.SourceBank`, which every batched entry
point accepts in place of ``WaveSource`` lists.
"""

import math
import operator
from collections import namedtuple
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.backends import get_backend
from repro.errors import SimulationError
from repro.physics.damping import attenuation_length
from repro.physics.solve import wavenumber_for_frequency


@dataclass(frozen=True)
class WaveSource:
    """One excitation transducer on the waveguide axis.

    Parameters
    ----------
    position:
        Location along the waveguide [m].
    frequency:
        Carrier frequency [Hz].
    amplitude:
        Dimensionless Mx/Ms amplitude at the source.
    phase:
        Encoded phase [rad]: 0 for logic 0, pi for logic 1.
    t_on:
        Turn-on time [s].
    """

    position: float
    frequency: float
    amplitude: float = 1.0
    phase: float = 0.0
    t_on: float = 0.0

    def __post_init__(self):
        if self.frequency <= 0:
            raise SimulationError(
                f"source frequency must be positive, got {self.frequency!r}"
            )
        if self.amplitude < 0:
            raise SimulationError(
                f"source amplitude must be non-negative, got {self.amplitude!r}"
            )


@dataclass(frozen=True)
class Detector:
    """An output transducer at ``position`` [m] with a display ``label``."""

    position: float
    label: str = ""


#: Column-stacked ``(n_sets, n_sources)`` source parameters of one batch;
#: produced by :meth:`LinearWaveguideModel.stack_sources` and accepted by
#: every batched entry point in place of the raw source lists.
SourceBatch = namedtuple(
    "SourceBatch", ("position", "frequency", "amplitude", "phase", "t_on")
)


class LinearWaveguideModel:
    """Superposition model bound to one waveguide's dispersion."""

    def __init__(self, waveguide, front_smoothing=0.0, backend=None):
        """``front_smoothing`` [s] smooths the causal turn-on edge.

        ``backend`` (default :func:`repro.backends.get_backend`) fixes
        the dtype of every bulk operand this model produces -- cached
        propagation weights, carrier bases and phasor blocks.  Geometry
        and frequencies stay float64 regardless (see
        :mod:`repro.backends` for the dtype-discipline rationale), so
        frequency matching is exact on every backend.
        """
        self.waveguide = waveguide
        self.backend = backend if backend is not None else get_backend()
        self.dispersion = waveguide.dispersion()
        if front_smoothing < 0:
            raise SimulationError(
                f"front_smoothing must be non-negative, got {front_smoothing!r}"
            )
        self.front_smoothing = float(front_smoothing)
        self._wave_cache = {}
        self._weights_cache = {}
        self._basis_cache = {}

    # ------------------------------------------------------------------
    def wave_parameters(self, frequency):
        """(k, v_g, L_att) for ``frequency``, cached per distinct value."""
        key = float(frequency)
        if key not in self._wave_cache:
            k = wavenumber_for_frequency(self.dispersion, key)
            v_g = abs(self.dispersion.group_velocity(k))
            length = attenuation_length(self.dispersion, k)
            self._wave_cache[key] = (k, v_g, length)
        return self._wave_cache[key]

    def _front(self, t, arrival):
        """Causal front factor in [0, 1] for sample times ``t``."""
        if self.front_smoothing == 0.0:
            return (t >= arrival).astype(float)
        x = (t - arrival) / self.front_smoothing
        return np.clip(x, 0.0, 1.0)

    def source_contribution(self, source, position, t):
        """Signal of one source at ``position`` over time array ``t``."""
        distance = abs(position - source.position)
        k, v_g, length = self.wave_parameters(source.frequency)
        arrival = source.t_on + distance / v_g
        envelope = source.amplitude * math.exp(-distance / length)
        carrier = np.sin(
            2.0 * math.pi * source.frequency * (t - source.t_on)
            - k * distance
            + source.phase
        )
        return envelope * carrier * self._front(t, arrival)

    def trace(self, sources, position, t):
        """Superposed Mx/Ms trace of all ``sources`` at ``position``."""
        total = np.zeros_like(np.asarray(t, dtype=float))
        for source in sources:
            total += self.source_contribution(source, position, t)
        return total

    # ------------------------------------------------------------------
    # Batched evaluation
    # ------------------------------------------------------------------
    @staticmethod
    def stack_sources(source_sets):
        """Stack equal-length source sets into a :class:`SourceBatch`.

        Every batched entry point also accepts the returned value in
        place of ``source_sets``, so callers evaluating the same batch at
        several detectors (e.g. every channel of a gate) stack once.
        """
        if isinstance(source_sets, SourceBatch):
            return source_sets
        as_batch = getattr(source_sets, "as_batch", None)
        if callable(as_batch):  # e.g. a repro.waveguide.sources.SourceBank
            return as_batch()
        source_sets = [list(s) for s in source_sets]
        if not source_sets:
            raise SimulationError("no source sets supplied")
        n_sources = len(source_sets[0])
        if n_sources == 0:
            raise SimulationError("no sources supplied")
        if any(len(s) != n_sources for s in source_sets):
            raise SimulationError(
                "all source sets in a batch must have the same length"
            )
        fields = operator.attrgetter(*SourceBatch._fields)
        data = np.array(
            [[fields(src) for src in s] for s in source_sets], dtype=float
        )
        return SourceBatch(*(data[..., i] for i in range(data.shape[-1])))

    def _wave_parameter_arrays(self, frequency):
        """Per-source ``(k, v_g, L_att)`` arrays for a frequency array."""
        k = np.empty_like(frequency)
        v_g = np.empty_like(frequency)
        length = np.empty_like(frequency)
        for value in np.unique(frequency):
            kf, vf, lf = self.wave_parameters(value)
            same = frequency == value
            k[same] = kf
            v_g[same] = vf
            length[same] = lf
        return k, v_g, length

    @staticmethod
    def _shared_geometry(batch):
        """True when every set of ``batch`` shares positions/frequencies/t_on.

        Shared geometry is the precondition for the fast matrix-product
        paths (:meth:`trace_batch`'s carrier basis and
        :meth:`steady_state_phasor_block`'s propagation weights); callers
        with mismatched geometry -- e.g. independent per-entry placement
        noise -- must take the general per-source path.
        """
        return bool(
            (np.ptp(batch.position, axis=0) == 0.0).all()
            and (np.ptp(batch.frequency, axis=0) == 0.0).all()
            and (np.ptp(batch.t_on, axis=0) == 0.0).all()
        )

    def trace_basis(self, position, frequency, t_on, detector_position, t,
                    cache=False):
        """Front-weighted carrier basis of one shared source geometry.

        ``position``/``frequency``/``t_on`` are the shared ``(n_sources,)``
        rows of a batch; the returned ``(basis_sin, basis_cos)`` pair holds
        ``sin(a) * front`` / ``cos(a) * front`` for the phase argument
        ``a = 2*pi*f*(t - t_on) - k*d`` of every source at
        ``detector_position``.  A whole batch's traces are then two matrix
        products against this basis (see :meth:`trace_batch`).

        With ``cache=True`` the basis is memoised per exact
        ``(geometry, detector, time grid)`` -- circuit-level trace
        execution re-evaluates the same few gate geometries on the same
        grid once per (level, operation, fault variant) call, so the
        basis (the expensive ``sin``/``cos`` over ``n_sources x
        n_samples``) is paid once per gate instead of once per call.
        Only nominal (recurring) geometries should cache: placement-noise
        draws never repeat and would grow the cache without bound.  The
        returned arrays are frozen; derive, don't mutate.
        """
        position = np.asarray(position, dtype=float)
        frequency = np.asarray(frequency, dtype=float)
        t_on = np.asarray(t_on, dtype=float)
        t = np.asarray(t, dtype=float)
        key = None
        if cache:
            key = (
                position.tobytes(),
                frequency.tobytes(),
                t_on.tobytes(),
                float(detector_position),
                t.tobytes(),
            )
            cached = self._basis_cache.get(key)
            if cached is not None:
                obs.inc("waveguide.basis_cache.hits")
                return cached
            obs.inc("waveguide.basis_cache.misses")
        k, v_g, length = self._wave_parameter_arrays(frequency)
        distance = np.abs(detector_position - position)
        arrival = t_on + distance / v_g
        # sin(a + phi) = sin(a) cos(phi) + cos(a) sin(phi): the phase
        # argument a and the causal front depend only on the source
        # column, so both batch dimensions meet in a GEMM.
        argument = (
            2.0 * np.pi * frequency[:, None] * (t[None, :] - t_on[:, None])
            - (k * distance)[:, None]
        )
        front = self._front(t[None, :], arrival[:, None])
        basis_sin = np.sin(argument)
        basis_sin *= front
        basis_cos = np.cos(argument)
        basis_cos *= front
        # Compute double, store backend: the trig evaluation above runs
        # in float64, the stored basis (the GEMM operand) follows the
        # backend dtype.  The default backend cast is a no-op.
        basis_sin = self.backend.cast(basis_sin, kind="real")
        basis_cos = self.backend.cast(basis_cos, kind="real")
        basis_sin.setflags(write=False)
        basis_cos.setflags(write=False)
        if key is not None:
            self._basis_cache[key] = (basis_sin, basis_cos)
        return basis_sin, basis_cos

    def trace_batch(self, source_sets, position, t, cache_basis=False):
        """Traces of many source sets at one detector: ``(n_sets, n_samples)``.

        Row ``i`` equals ``trace(source_sets[i], position, t)`` to floating
        point.  When every set shares the same geometry (positions,
        frequencies, turn-on times) -- only amplitudes/phases differ, as
        for the input words of one gate -- the carrier basis is computed
        once (memoised across calls with ``cache_basis=True``; see
        :meth:`trace_basis`) and the whole batch reduces to two matrix
        products.  Mismatched geometry is detected explicitly and falls
        back to the per-source path, which handles fully independent
        source arrays.
        """
        t = np.asarray(t, dtype=float)
        batch = self.stack_sources(source_sets)
        pos, freq, amp, phase, t_on = batch
        k, v_g, length = self._wave_parameter_arrays(freq)
        distance = np.abs(position - pos)
        arrival = t_on + distance / v_g
        envelope = amp * np.exp(-distance / length)

        if self._shared_geometry(batch):
            basis_sin, basis_cos = self.trace_basis(
                pos[0], freq[0], t_on[0], position, t, cache=cache_basis
            )
            # Coefficient rows are cast so both GEMMs run entirely in
            # the backend dtype (sgemm under float32, no upcast).
            coeff_cos = self.backend.cast(envelope * np.cos(phase))
            coeff_sin = self.backend.cast(envelope * np.sin(phase))
            return coeff_cos @ basis_sin + coeff_sin @ basis_cos

        total = np.zeros((pos.shape[0], t.shape[0]), dtype=float)
        for j in range(pos.shape[1]):
            carrier = np.sin(
                2.0 * np.pi * freq[:, j, None] * (t[None, :] - t_on[:, j, None])
                - (k[:, j] * distance[:, j])[:, None]
                + phase[:, j, None]
            )
            carrier *= self._front(t[None, :], arrival[:, j, None])
            carrier *= envelope[:, j, None]
            total += carrier
        return total

    def run_batch(self, source_sets, detectors, duration, sample_rate=None,
                  cache_basis=False):
        """Batched :meth:`run`: one trace per (source set, detector).

        Same validation and defaults as :meth:`run`; the sample rate
        defaults to 16x the highest frequency across the whole batch so
        every set shares one time grid.  ``cache_basis`` memoises the
        shared-geometry carrier basis per (geometry, detector, grid) --
        pass True only for recurring nominal geometries (see
        :meth:`trace_basis`).  Returns ``{"t": t, "traces":
        {label: (n_sets, n_samples) array}}``.
        """
        source_sets = self.stack_sources(source_sets)
        detectors = list(detectors)
        if not detectors:
            raise SimulationError("no detectors supplied")
        if duration <= 0:
            raise SimulationError(f"duration must be positive, got {duration!r}")
        if sample_rate is None:
            sample_rate = 16.0 * float(source_sets.frequency.max())
        n_samples = int(round(duration * sample_rate))
        if n_samples < 2:
            raise SimulationError(
                "duration * sample_rate too small "
                f"({duration!r} s at {sample_rate!r} Hz)"
            )
        t = np.arange(n_samples) / sample_rate
        traces = {}
        for index, detector in enumerate(detectors):
            label = detector.label or f"detector_{index}"
            traces[label] = self.trace_batch(
                source_sets, detector.position, t, cache_basis=cache_basis
            )
        return {"t": t, "traces": traces}

    def steady_state_phasor_batch(self, source_sets, position, frequency, tol=1e-12):
        """Batched :meth:`steady_state_phasor`: ``(n_sets,)`` complex array.

        Only same-frequency sources are evaluated (off-frequency ones are
        never touched, matching the sequential skip -- their dispersion
        is not even looked up), so one call costs O(matching sources)
        regardless of how many channels share the batch.
        """
        pos, freq, amp, phase, _ = self.stack_sources(source_sets)
        n_sets = pos.shape[0]
        selected = np.abs(freq - frequency) <= tol * max(frequency, 1.0)
        rows, cols = np.nonzero(selected)
        if rows.size == 0:
            return np.zeros(n_sets, dtype=complex)
        k, _, length = self._wave_parameter_arrays(freq[rows, cols])
        distance = np.abs(position - pos[rows, cols])
        contribution = (
            amp[rows, cols]
            * np.exp(-distance / length)
            * np.exp(1j * (phase[rows, cols] - k * distance))
        )
        return (
            np.bincount(rows, weights=contribution.real, minlength=n_sets)
            + 1j * np.bincount(rows, weights=contribution.imag, minlength=n_sets)
        )

    def phasor_weights(
        self, position, frequency, positions, frequencies, tol=1e-12,
        cache=False,
    ):
        """Complex propagation weights: sources x detectors, one column each.

        ``position``/``frequency`` are the shared ``(n_sources,)`` source
        geometry of a batch; ``positions``/``frequencies`` list the
        detectors.  Entry ``(j, d)`` is ``exp(-|x_d - x_j| / L_j) *
        exp(-i k_j |x_d - x_j|)`` when source ``j`` matches detector
        ``d``'s frequency, else 0 (off-frequency sources average out in
        steady state, exactly as :meth:`steady_state_phasor` skips them).
        The steady-state phasor block of a whole batch is then a single
        complex GEMM: ``(amplitude * exp(i * phase)) @ weights``.

        With ``cache=True`` the result is memoised per exact geometry,
        so every simulator sharing this model -- e.g. all cells of one
        operation in the circuit engine, including their faulty
        variants -- reuses one weight matrix.  Only callers with a
        *recurring* geometry (a layout's nominal placement) should
        cache: noise-perturbed geometries never repeat, and memoising
        them would grow the cache without bound over Monte-Carlo
        sweeps.  The returned array is frozen; derive, don't mutate.
        """
        position = np.asarray(position, dtype=float)
        frequency = np.asarray(frequency, dtype=float)
        key = None
        if cache:
            key = (
                position.tobytes(),
                frequency.tobytes(),
                np.asarray(positions, dtype=float).tobytes(),
                np.asarray(frequencies, dtype=float).tobytes(),
                float(tol),
            )
            cached = self._weights_cache.get(key)
            if cached is not None:
                obs.inc("waveguide.weights_cache.hits")
                return cached
            obs.inc("waveguide.weights_cache.misses")
        k, _, length = self._wave_parameter_arrays(frequency)
        weights = np.zeros((position.size, len(positions)), dtype=complex)
        for d, (x_d, f_d) in enumerate(zip(positions, frequencies)):
            selected = np.abs(frequency - f_d) <= tol * max(f_d, 1.0)
            if not selected.any():
                continue
            distance = np.abs(x_d - position[selected])
            weights[selected, d] = np.exp(-distance / length[selected]) * np.exp(
                -1j * k[selected] * distance
            )
        # Computed in complex128 above (exact frequency matching and
        # full-precision attenuation), stored in the backend dtype --
        # the cached matrix is the operand of every steady-state GEMM.
        weights = self.backend.cast(weights, kind="complex")
        weights.setflags(write=False)
        if key is not None:
            self._weights_cache[key] = weights
        return weights

    @staticmethod
    def block_stack_weights(blocks, backend=None):
        """Block-diagonal stack of per-operation propagation weights.

        ``blocks`` is a sequence of ``(n_sources_i, n_detectors_i)``
        complex matrices (one per operation sharing a level); the result
        is a ``(sum n_sources, sum n_detectors)`` complex matrix with
        each block on the diagonal and exact zeros elsewhere.  The zeros
        are *structural*: operations sharing one frequency plan would
        otherwise couple through frequency matching, so cross-operation
        packing must place foreign segments at exactly 0.0 -- which this
        layout guarantees -- to keep every packed phasor bit-identical
        to its per-operation evaluation.  The compile-once circuit layer
        (:mod:`repro.circuits.compiled`) builds one such matrix per
        level so all same-layout cells of the level -- MAJ3 and XOR2
        alike -- evaluate as a single complex GEMM.  ``backend``
        (default: the process default) fixes the stacked matrix's
        complex dtype so it matches the per-operation blocks it packs.
        The returned array is frozen; derive, don't mutate.
        """
        backend = backend if backend is not None else get_backend()
        blocks = [np.asarray(b) for b in blocks]
        if not blocks:
            raise SimulationError("no weight blocks supplied")
        n_rows = sum(b.shape[0] for b in blocks)
        n_cols = sum(b.shape[1] for b in blocks)
        stacked = backend.zeros((n_rows, n_cols), kind="complex")
        row = col = 0
        for block in blocks:
            stacked[row : row + block.shape[0], col : col + block.shape[1]] = (
                block
            )
            row += block.shape[0]
            col += block.shape[1]
        stacked.setflags(write=False)
        return stacked

    def steady_state_phasor_block(
        self, source_sets, positions, frequencies, tol=1e-12, weights=None
    ):
        """Steady-state phasors of a batch at many detectors at once.

        Returns an ``(n_sets, n_detectors)`` complex array; column ``d``
        equals ``steady_state_phasor_batch(source_sets, positions[d],
        frequencies[d])``.  When the batch shares its geometry the whole
        block is one complex GEMM against :meth:`phasor_weights`
        (pass a precomputed ``weights`` matrix to skip even that setup);
        mismatched geometry -- per-entry placement noise -- falls back to
        the general per-detector batched path.
        """
        if len(positions) != len(frequencies):
            raise SimulationError(
                f"{len(positions)} detector positions for "
                f"{len(frequencies)} frequencies"
            )
        batch = self.stack_sources(source_sets)
        if weights is not None or self._shared_geometry(batch):
            if weights is None:
                weights = self.phasor_weights(
                    batch.position[0], batch.frequency[0],
                    positions, frequencies, tol=tol,
                )
            elif not self._shared_geometry(batch):
                raise SimulationError(
                    "precomputed phasor weights require shared geometry "
                    "across the batch"
                )
            # Cast the excitation block so the GEMM runs in the weight
            # matrix's dtype end to end (no-op on the default backend).
            excitation = self.backend.cast(
                batch.amplitude * np.exp(1j * batch.phase), kind="complex"
            )
            return excitation @ weights
        block = np.empty((batch.position.shape[0], len(positions)), dtype=complex)
        for d, (x_d, f_d) in enumerate(zip(positions, frequencies)):
            block[:, d] = self.steady_state_phasor_batch(
                batch, x_d, f_d, tol=tol
            )
        return block

    def run(self, sources, detectors, duration, sample_rate=None):
        """Generate traces for every detector.

        Parameters
        ----------
        sources:
            Iterable of :class:`WaveSource`.
        detectors:
            Iterable of :class:`Detector`.
        duration:
            Trace length [s].
        sample_rate:
            Samples per second; defaults to 16x the highest source
            frequency (comfortably above Nyquist for FFT readout).

        Returns
        -------
        dict with keys ``"t"`` (1-D time array) and ``"traces"`` (mapping
        detector label -> 1-D Mx/Ms array).
        """
        sources = list(sources)
        detectors = list(detectors)
        if not sources:
            raise SimulationError("no sources supplied")
        if not detectors:
            raise SimulationError("no detectors supplied")
        if duration <= 0:
            raise SimulationError(f"duration must be positive, got {duration!r}")
        if sample_rate is None:
            sample_rate = 16.0 * max(s.frequency for s in sources)
        n_samples = int(round(duration * sample_rate))
        if n_samples < 2:
            raise SimulationError(
                "duration * sample_rate too small "
                f"({duration!r} s at {sample_rate!r} Hz)"
            )
        t = np.arange(n_samples) / sample_rate
        traces = {}
        for index, detector in enumerate(detectors):
            label = detector.label or f"detector_{index}"
            traces[label] = self.trace(sources, detector.position, t)
        return {"t": t, "traces": traces}

    def steady_state_phasor(self, sources, position, frequency, tol=1e-12):
        """Complex steady-state amplitude of ``frequency`` at ``position``.

        Sums only same-frequency sources (different frequencies average
        out exactly in steady state).  The phasor convention matches the
        trace: signal = Im[ phasor * exp(i*2*pi*f*t) ].
        """
        total = 0.0 + 0.0j
        for source in sources:
            if abs(source.frequency - frequency) > tol * max(frequency, 1.0):
                continue
            distance = abs(position - source.position)
            k, _, length = self.wave_parameters(source.frequency)
            amplitude = source.amplitude * math.exp(-distance / length)
            total += amplitude * np.exp(1j * (source.phase - k * distance))
        return total
