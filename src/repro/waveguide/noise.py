"""Noise injection for robustness studies.

The paper's simulations are noiseless (OOMMF at T = 0); real devices see
thermal magnon background, transducer amplitude spread and phase jitter.
:class:`NoiseModel` perturbs linear-model runs so the decode-margin
experiments can report how much non-ideality the majority decision
tolerates before output bits flip.
"""

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class NoiseModel:
    """Gaussian non-idealities applied to sources and traces.

    Parameters
    ----------
    amplitude_sigma:
        Relative (fractional) std-dev of each source amplitude.
    phase_sigma:
        Std-dev of each source phase [rad].
    position_sigma:
        Std-dev of each source/detector placement [m] (lithography error).
    trace_sigma:
        Std-dev of additive white noise on the Mx/Ms traces.
    seed:
        RNG seed for reproducibility.
    """

    amplitude_sigma: float = 0.0
    phase_sigma: float = 0.0
    position_sigma: float = 0.0
    trace_sigma: float = 0.0
    seed: int = 0

    def __post_init__(self):
        for name in ("amplitude_sigma", "phase_sigma", "position_sigma", "trace_sigma"):
            if getattr(self, name) < 0:
                raise SimulationError(f"{name} must be non-negative")

    def rng(self):
        """A fresh deterministic generator for this model."""
        return np.random.default_rng(self.seed)

    def perturb_sources(self, sources, rng=None):
        """Return new sources with amplitude/phase/position perturbations."""
        rng = self.rng() if rng is None else rng
        perturbed = []
        for source in sources:
            amplitude = source.amplitude
            if self.amplitude_sigma > 0:
                amplitude *= max(
                    1.0 + rng.normal(0.0, self.amplitude_sigma), 0.0
                )
            phase = source.phase
            if self.phase_sigma > 0:
                phase += rng.normal(0.0, self.phase_sigma)
            position = source.position
            if self.position_sigma > 0:
                position += rng.normal(0.0, self.position_sigma)
            perturbed.append(
                replace(
                    source,
                    amplitude=amplitude,
                    phase=phase,
                    position=position,
                )
            )
        return perturbed

    @property
    def perturbs_sources(self):
        """True when any source-level sigma is active."""
        return (
            self.amplitude_sigma > 0
            or self.phase_sigma > 0
            or self.position_sigma > 0
        )

    def source_perturbations(self, n_sources, rng=None):
        """Vectorised source non-idealities: one RNG block per batch.

        Returns ``(amplitude_factor, phase_offset, position_offset)``
        arrays of length ``n_sources``: multiply amplitudes by the
        factor, add the offsets.  The draws reproduce
        :meth:`perturb_sources` *exactly*: that method interleaves one
        ``normal(0, sigma)`` call per active sigma per source, which is
        the C-order flattening of a single ``(n_sources, n_active)``
        standard-normal block scaled column-wise -- so the batched and
        scalar noise paths yield bit-identical realisations for the same
        seed (pinned by ``tests/test_phasor_equivalence``).
        """
        rng = self.rng() if rng is None else rng
        sigmas = (self.amplitude_sigma, self.phase_sigma, self.position_sigma)
        active = [s for s in sigmas if s > 0]
        factor = np.ones(n_sources)
        phase_offset = np.zeros(n_sources)
        position_offset = np.zeros(n_sources)
        if active:
            draws = rng.standard_normal((n_sources, len(active)))
            column = 0
            if self.amplitude_sigma > 0:
                factor = np.maximum(
                    1.0 + draws[:, column] * self.amplitude_sigma, 0.0
                )
                column += 1
            if self.phase_sigma > 0:
                phase_offset = draws[:, column] * self.phase_sigma
                column += 1
            if self.position_sigma > 0:
                position_offset = draws[:, column] * self.position_sigma
        return factor, phase_offset, position_offset

    def perturb_trace(self, trace, rng=None):
        """Return ``trace`` plus additive white Gaussian noise."""
        if self.trace_sigma == 0:
            return np.array(trace, dtype=float, copy=True)
        rng = self.rng() if rng is None else rng
        trace = np.asarray(trace, dtype=float)
        return trace + rng.normal(0.0, self.trace_sigma, size=trace.shape)

    def trace_perturbation(self, n_samples, rng=None):
        """The additive noise row :meth:`perturb_trace` would draw.

        Returns the ``(n_samples,)`` realisation a fresh generator adds
        to a 1-D trace of that length -- bit-identical to
        :meth:`perturb_trace` with ``rng=None``, which re-seeds per call,
        so every trace perturbed under one model sees the *same* row.
        Batched decoders exploit exactly that: one draw per distinct
        noise model perturbs a whole ``(n_traces, n_samples)`` block,
        keeping the vectorised lock-in path available when
        ``trace_sigma > 0`` (pinned against the scalar decode in
        ``tests/test_phasor_equivalence.py``).
        """
        if self.trace_sigma == 0:
            return np.zeros(int(n_samples))
        rng = self.rng() if rng is None else rng
        return rng.normal(0.0, self.trace_sigma, size=int(n_samples))
