"""Time-grid and superposition helpers shared by the signal models."""

import numpy as np

from repro.errors import SimulationError


def time_grid(duration, sample_rate):
    """Uniform sample times [0, duration) at ``sample_rate`` [Hz]."""
    if duration <= 0:
        raise SimulationError(f"duration must be positive, got {duration!r}")
    if sample_rate <= 0:
        raise SimulationError(
            f"sample_rate must be positive, got {sample_rate!r}"
        )
    n_samples = int(round(duration * sample_rate))
    if n_samples < 2:
        raise SimulationError("time grid would have fewer than 2 samples")
    return np.arange(n_samples) / sample_rate


def superpose(components):
    """Sum an iterable of equal-length signal arrays."""
    components = list(components)
    if not components:
        raise SimulationError("nothing to superpose")
    total = np.zeros_like(np.asarray(components[0], dtype=float))
    for component in components:
        component = np.asarray(component, dtype=float)
        if component.shape != total.shape:
            raise SimulationError(
                f"component shape {component.shape} != {total.shape}"
            )
        total += component
    return total


def nyquist_ok(sample_rate, frequency, margin=2.5):
    """True when ``sample_rate`` resolves ``frequency`` with ``margin``x Nyquist."""
    return sample_rate >= margin * 2.0 * frequency
