"""Waveguide geometry and the fast linear travelling-wave model.

In the linear (small-signal) regime the paper's gates operate in
(Mx/Ms ~ 0.005), LLG dynamics reduce to the superposition of damped
travelling waves.  This package computes detector signals directly from
the analytic dispersion -- retardation, attenuation, phase accumulation
and multi-frequency superposition -- at a cost per trace that is
independent of the waveguide length, enabling the byte-wide parameter
sweeps the micromagnetic solver would need hours for.
"""

from repro.waveguide.geometry import Waveguide, WidthModeDispersion
from repro.waveguide.linear_model import LinearWaveguideModel, WaveSource, Detector
from repro.waveguide.signal import time_grid, superpose
from repro.waveguide.noise import NoiseModel
from repro.waveguide.sources import SourceBank

__all__ = [
    "Waveguide",
    "WidthModeDispersion",
    "LinearWaveguideModel",
    "WaveSource",
    "Detector",
    "time_grid",
    "superpose",
    "NoiseModel",
    "SourceBank",
]
