"""Waveguide geometry and its effective dispersion.

A :class:`Waveguide` is the physical strip of Fig. 2: a PMA film of given
``thickness`` and ``width``.  Its :meth:`dispersion` returns either the
plain thin-film FVMSW relation (the paper's design basis -- our computed
source distances match its Table within ~2% on this assumption) or, with
``include_width_modes=True``, the laterally quantised effective relation
omega_eff(k_x) = omega(sqrt(k_x^2 + k_y^2)) that captures the band-edge
shift studied in the Section V width sweep.
"""

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DispersionError
from repro.materials import FECOB_PMA
from repro.physics.dispersion import (
    DispersionRelation,
    ExchangeDispersion,
    FvmswDispersion,
)
from repro.physics.width_modes import width_mode_wavenumber


class WidthModeDispersion(DispersionRelation):
    """Effective longitudinal dispersion of width mode ``n``.

    Wraps an isotropic in-plane dispersion (FVMSW) and folds the fixed
    transverse wavenumber k_y = n*pi/w_eff into the total wavenumber:
    omega_eff(k_x) = omega(sqrt(k_x^2 + k_y^2)).
    """

    geometry = "FVMSW width mode"

    def __init__(self, base, width, n=1, pinning=1.0):
        super().__init__(base.material, base.thickness, base.h_ext)
        self.base = base
        self.width = float(width)
        self.mode = int(n)
        self.k_y = width_mode_wavenumber(width, n=n, pinning=pinning)

    def internal_field(self):
        return self.base.internal_field()

    def _k_total(self, k_x):
        return np.sqrt(np.square(k_x) + self.k_y**2)

    def omega(self, k_x):
        return self.base.omega(self._k_total(k_x))

    def relaxation_rate(self, k_x):
        return self.base.relaxation_rate(self._k_total(k_x))


@dataclass
class Waveguide:
    """The physical spin-wave strip of the in-line gate (Fig. 2).

    Parameters mirror Section IV.B of the paper: a 1 nm thick, 50 nm wide
    Fe60Co20B20 strip with PMA, no external bias field.
    """

    material: object = field(default=FECOB_PMA)
    thickness: float = 1e-9
    width: float = 50e-9
    h_ext: float = 0.0
    include_width_modes: bool = False
    pinning: float = 1.0
    dispersion_model: str = "fvmsw"

    def __post_init__(self):
        if self.thickness <= 0:
            raise DispersionError(
                f"thickness must be positive, got {self.thickness!r}"
            )
        if self.width <= 0:
            raise DispersionError(f"width must be positive, got {self.width!r}")
        if self.dispersion_model not in ("fvmsw", "exchange"):
            raise DispersionError(
                f"dispersion_model must be 'fvmsw' or 'exchange', "
                f"got {self.dispersion_model!r}"
            )

    def _base_dispersion(self):
        """``fvmsw`` (full dipole-exchange, the paper's design basis) or
        ``exchange`` (local demag only -- the relation realised by the
        1-D micromagnetic model, used for LLG cross-validation)."""
        if self.dispersion_model == "exchange":
            return ExchangeDispersion(
                self.material, self.thickness, h_ext=self.h_ext
            )
        return FvmswDispersion(self.material, self.thickness, h_ext=self.h_ext)

    def dispersion(self, mode=1):
        """The effective dispersion relation for longitudinal propagation."""
        base = self._base_dispersion()
        if not self.include_width_modes:
            return base
        return WidthModeDispersion(
            base, self.width, n=mode, pinning=self.pinning
        )

    def band_edge(self, mode=1):
        """Lowest propagating frequency [Hz] (band edge of ``mode``)."""
        if self.include_width_modes:
            return float(self.dispersion(mode=mode).frequency(0.0))
        base = self._base_dispersion()
        k_y = width_mode_wavenumber(self.width, n=mode, pinning=self.pinning)
        return float(base.frequency(k_y))

    def cross_section_area(self):
        """Cross-section area width * thickness [m^2]."""
        return self.width * self.thickness

    def scaled(self, **overrides):
        """Copy with geometry overrides (e.g. ``width=500e-9``)."""
        params = {
            "material": self.material,
            "thickness": self.thickness,
            "width": self.width,
            "h_ext": self.h_ext,
            "include_width_modes": self.include_width_modes,
            "pinning": self.pinning,
            "dispersion_model": self.dispersion_model,
        }
        params.update(overrides)
        return Waveguide(**params)

    def describe(self):
        """One-line geometry summary."""
        return (
            f"waveguide {self.width * 1e9:.0f} nm x "
            f"{self.thickness * 1e9:.1f} nm on {self.material.name}"
        )
