"""Thin-film spin-wave dispersion relations.

The workhorse is :class:`FvmswDispersion`, the lowest-thickness-mode
Kalinikos-Slavin dispersion for Forward Volume Magnetostatic Spin Waves --
the geometry the paper uses because its in-plane propagation is isotropic
(Section II).  For a film of thickness ``d`` magnetised along the normal,

    omega(k)^2 = (w0 + wM*lam*k^2) * (w0 + wM*lam*k^2 + wM*F00(kd))

with

    w0  = gamma*mu0*H_int          (H_int = H_ext + H_ani - Ms),
    wM  = gamma*mu0*Ms,
    lam = 2*Aex/(mu0*Ms^2),
    F00 = 1 - (1 - exp(-kd)) / (kd).

``BvmswDispersion`` and ``MsswDispersion`` implement the in-plane
backward-volume and surface (Damon-Eshbach) geometries in the same
lowest-mode approximation; ``ExchangeDispersion`` drops the dipolar term
entirely, which is also the dispersion realised by the local (demag-free)
1-D micromagnetic model, making it the right comparison curve for solver
validation tests.

All classes share the :class:`DispersionRelation` interface:
``omega(k)``, ``frequency(k)``, ``group_velocity(k)`` and
``relaxation_rate(k)``.
"""

import math

import numpy as np

from repro.constants import MU0
from repro.errors import DispersionError


def _f00(kd):
    """Lowest dipole-dipole matrix element F00 = 1 - (1-exp(-kd))/(kd).

    Uses the series expansion for small ``kd`` to stay accurate near
    ``k = 0`` (the direct formula suffers catastrophic cancellation).
    Accepts scalars or arrays.
    """
    kd = np.asarray(kd, dtype=float)
    small = np.abs(kd) < 1e-6
    safe = np.where(small, 1.0, kd)
    exact = 1.0 - (1.0 - np.exp(-safe)) / safe
    series = kd / 2.0 - kd**2 / 6.0
    result = np.where(small, series, exact)
    if result.ndim == 0:
        return float(result)
    return result


class DispersionRelation:
    """Base class: omega(k) for a given material/film configuration.

    Parameters
    ----------
    material:
        A :class:`repro.materials.Material`.
    thickness:
        Film thickness [m]; must be positive.
    h_ext:
        External bias field magnitude [A/m] applied along the equilibrium
        direction of the particular geometry.
    """

    #: Human-readable geometry label, overridden by subclasses.
    geometry = "generic"

    def __init__(self, material, thickness, h_ext=0.0):
        if thickness <= 0:
            raise DispersionError(
                f"thickness must be positive, got {thickness!r}"
            )
        self.material = material
        self.thickness = float(thickness)
        self.h_ext = float(h_ext)

    # -- internal field, overridden per geometry ------------------------
    def internal_field(self):
        """Static internal field H_int [A/m] for this geometry."""
        raise NotImplementedError

    @property
    def omega_0(self):
        """gamma*mu0*H_int [rad/s]."""
        return self.material.gamma * MU0 * self.internal_field()

    @property
    def omega_m(self):
        """gamma*mu0*Ms [rad/s]."""
        return self.material.omega_m

    def _omega_exchange(self, k):
        """Exchange contribution wM*lambda_ex*k^2 [rad/s]."""
        return self.omega_m * self.material.lambda_ex * np.square(k)

    # -- public API ------------------------------------------------------
    def omega(self, k):
        """Angular frequency omega(k) [rad/s] for wavenumber ``k`` [rad/m]."""
        raise NotImplementedError

    def frequency(self, k):
        """Frequency f(k) = omega(k)/2*pi [Hz]."""
        return self.omega(k) / (2.0 * math.pi)

    def group_velocity(self, k, dk=None):
        """Group velocity d(omega)/dk [m/s] via central differences.

        ``dk`` defaults to a relative step of 1e-6*k (absolute floor of
        1 rad/m) which is plenty for the smooth dispersions here.
        """
        k = float(k)
        if dk is None:
            dk = max(abs(k) * 1e-6, 1.0)
        lo = max(k - dk, 0.0)
        hi = k + dk
        return float((self.omega(hi) - self.omega(lo)) / (hi - lo))

    def relaxation_rate(self, k):
        """Amplitude relaxation rate Gamma(k) [rad/s].

        Generic Gilbert form Gamma = alpha * omega * (w1 + w2)/(2*omega)
        = alpha*(w1 + w2)/2 for dispersions of the form
        omega = sqrt(w1*w2); subclasses with a plain omega = w1 form use
        Gamma = alpha * omega.
        """
        return self.material.alpha * self.omega(k)

    def describe(self):
        """Short configuration summary for tables and logs."""
        return (
            f"{self.geometry} on {self.material.name}, "
            f"d={self.thickness:.3g} m, H_ext={self.h_ext:.3g} A/m"
        )


class ExchangeDispersion(DispersionRelation):
    """Pure exchange spin waves: omega = w0 + wM*lam*k^2.

    This neglects dynamic dipolar fields.  It is the dispersion realised
    exactly by a local (no-demag) micromagnetic model with the effective
    internal field folded into ``w0``, so the LLG solver validation tests
    compare against this curve.
    """

    geometry = "exchange"

    def internal_field(self):
        return self.material.internal_field_perpendicular(self.h_ext)

    def omega(self, k):
        return self.omega_0 + self._omega_exchange(k)

    def relaxation_rate(self, k):
        return self.material.alpha * self.omega(k)


class FvmswDispersion(DispersionRelation):
    """Forward volume magnetostatic spin waves (out-of-plane M).

    The paper's geometry: film magnetised along the normal by PMA
    (H_ani > Ms, no external field needed), in-plane propagation is
    isotropic.  Lowest thickness mode of Kalinikos-Slavin.
    """

    geometry = "FVMSW"

    def internal_field(self):
        h_int = self.material.internal_field_perpendicular(self.h_ext)
        if h_int <= 0:
            raise DispersionError(
                "perpendicular configuration unstable: "
                f"H_ext + H_ani - Ms = {h_int:.4g} A/m <= 0 "
                f"for {self.material.name}"
            )
        return h_int

    def _branches(self, k):
        """The two factors w1, w2 with omega = sqrt(w1*w2)."""
        k = np.asarray(k, dtype=float)
        w_ex = self.omega_0 + self._omega_exchange(k)
        f00 = _f00(k * self.thickness)
        return w_ex, w_ex + self.omega_m * f00

    def omega(self, k):
        w1, w2 = self._branches(k)
        result = np.sqrt(w1 * w2)
        if np.ndim(result) == 0:
            return float(result)
        return result

    def relaxation_rate(self, k):
        w1, w2 = self._branches(k)
        result = self.material.alpha * 0.5 * (w1 + w2)
        if np.ndim(result) == 0:
            return float(result)
        return result


class BvmswDispersion(DispersionRelation):
    """Backward volume magnetostatic spin waves (in-plane M, k || M).

    omega^2 = (w0 + wM*lam*k^2) * (w0 + wM*lam*k^2 + wM*(1 - F00(kd)))
    with the in-plane internal field H_int = H_ext + H_ani (no shape
    demagnetisation along the in-plane easy axis of an extended film).
    The dipolar factor decreases with ``k``, producing the characteristic
    negative group velocity at small ``k``.
    """

    geometry = "BVMSW"

    def internal_field(self):
        h_int = self.h_ext + self.material.anisotropy_field
        if h_int <= 0:
            raise DispersionError(
                "in-plane configuration needs a positive internal field; "
                f"got {h_int:.4g} A/m"
            )
        return h_int

    def _branches(self, k):
        k = np.asarray(k, dtype=float)
        w_ex = self.omega_0 + self._omega_exchange(k)
        kd = k * self.thickness
        # P(kd) = (1 - exp(-kd))/kd, so the dipolar factor is 1 - F00.
        p_factor = 1.0 - _f00(kd)
        return w_ex, w_ex + self.omega_m * p_factor

    def omega(self, k):
        w1, w2 = self._branches(k)
        result = np.sqrt(w1 * w2)
        if np.ndim(result) == 0:
            return float(result)
        return result

    def relaxation_rate(self, k):
        w1, w2 = self._branches(k)
        result = self.material.alpha * 0.5 * (w1 + w2)
        if np.ndim(result) == 0:
            return float(result)
        return result


class MsswDispersion(DispersionRelation):
    """Magnetostatic surface (Damon-Eshbach) waves (in-plane M, k perp M).

    omega^2 = (w0 + wM*lam*k^2) * (w0 + wM*lam*k^2 + wM)
              + (wM^2/4) * (1 - exp(-2*kd))
    """

    geometry = "MSSW"

    def internal_field(self):
        h_int = self.h_ext + self.material.anisotropy_field
        if h_int <= 0:
            raise DispersionError(
                "in-plane configuration needs a positive internal field; "
                f"got {h_int:.4g} A/m"
            )
        return h_int

    def omega(self, k):
        k = np.asarray(k, dtype=float)
        w_ex = self.omega_0 + self._omega_exchange(k)
        kd = k * self.thickness
        omega_sq = w_ex * (w_ex + self.omega_m) + (
            self.omega_m**2 / 4.0
        ) * (1.0 - np.exp(-2.0 * kd))
        result = np.sqrt(omega_sq)
        if np.ndim(result) == 0:
            return float(result)
        return result

    def relaxation_rate(self, k):
        # Use the generic Gilbert estimate Gamma ~ alpha*(w_ex + wM/2).
        k = np.asarray(k, dtype=float)
        w_ex = self.omega_0 + self._omega_exchange(k)
        result = self.material.alpha * (w_ex + self.omega_m / 2.0)
        if np.ndim(result) == 0:
            return float(result)
        return result
