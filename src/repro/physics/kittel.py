"""Ferromagnetic resonance (Kittel) frequencies.

These closed forms anchor the micromagnetic solver tests: a macrospin in
the solver must precess at exactly these frequencies, and the ``k -> 0``
limits of the dispersion relations must agree with them.
"""

import math

from repro.constants import MU0


def fmr_frequency_perpendicular(material, h_ext=0.0):
    """FMR of a thin film magnetised along its normal [Hz].

    f = (gamma*mu0 / 2*pi) * (H_ext + H_ani - Ms)

    which is also the ``k = 0`` limit of the FVMSW dispersion.  Returns a
    negative value when the perpendicular state is unstable, which callers
    may treat as "needs bias field".
    """
    h_int = material.internal_field_perpendicular(h_ext)
    return material.gamma * MU0 * h_int / (2.0 * math.pi)


def fmr_frequency_in_plane(material, h_ext):
    """Kittel FMR of an in-plane magnetised thin film [Hz].

    f = (gamma*mu0 / 2*pi) * sqrt(H * (H + Ms)),  H = H_ext + H_ani.
    """
    h_int = h_ext + material.anisotropy_field
    if h_int < 0:
        raise ValueError(f"in-plane internal field negative: {h_int:.4g} A/m")
    return (
        material.gamma
        * MU0
        * math.sqrt(h_int * (h_int + material.ms))
        / (2.0 * math.pi)
    )


def kittel_sphere_frequency(material, h_ext):
    """FMR of a uniformly magnetised sphere: f = gamma*mu0*H_ext / 2*pi [Hz].

    For a sphere the demagnetising tensor is isotropic (N = 1/3) and drops
    out of the resonance condition.  This is the cleanest macrospin test
    case for the LLG integrators.
    """
    return material.gamma * MU0 * h_ext / (2.0 * math.pi)
