"""Spin-wave damping: lifetimes and attenuation lengths.

The paper's scalability discussion (Section V) hinges on these: Gilbert
damping attenuates each wave as it propagates, so in long many-input
gates the earlier sources must be driven harder.  The compensation scheme
in :mod:`repro.core.scaling` is built directly on
:func:`attenuation_length` / :func:`amplitude_after`.
"""

import math


def relaxation_rate(dispersion, k):
    """Amplitude relaxation rate Gamma(k) [rad/s] (delegates to dispersion)."""
    return float(dispersion.relaxation_rate(k))


def lifetime(dispersion, k):
    """Amplitude lifetime tau = 1/Gamma [s]."""
    gamma_k = relaxation_rate(dispersion, k)
    if gamma_k <= 0:
        raise ValueError(f"non-positive relaxation rate {gamma_k!r}")
    return 1.0 / gamma_k

def attenuation_length(dispersion, k):
    """Amplitude decay length L = v_g * tau [m].

    A wave packet's amplitude falls as exp(-x / L) while it travels a
    distance ``x``.
    """
    v_g = abs(dispersion.group_velocity(k))
    return v_g * lifetime(dispersion, k)


def amplitude_after(dispersion, k, distance, amplitude=1.0):
    """Amplitude remaining after propagating ``distance`` [m]."""
    if distance < 0:
        raise ValueError(f"distance must be non-negative, got {distance!r}")
    length = attenuation_length(dispersion, k)
    return amplitude * math.exp(-distance / length)


def propagation_delay(dispersion, k, distance):
    """Group-velocity travel time over ``distance`` [s]."""
    if distance < 0:
        raise ValueError(f"distance must be non-negative, got {distance!r}")
    v_g = abs(dispersion.group_velocity(k))
    if v_g == 0:
        raise ValueError("zero group velocity: wave does not propagate")
    return distance / v_g
