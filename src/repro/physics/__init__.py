"""Analytic spin-wave physics: dispersion relations, FMR, damping.

This package implements the thin-film spin-wave theory that underpins the
gate design: the Kalinikos-Slavin dispersion of forward volume
magnetostatic spin waves (FVMSW) used by the paper, plus the other common
geometries for comparison, wavelength/wavenumber inversion, group
velocity, lifetime, attenuation length, and lateral width-mode
quantisation for the waveguide-width study of Section V.
"""

from repro.physics.dispersion import (
    DispersionRelation,
    ExchangeDispersion,
    FvmswDispersion,
    BvmswDispersion,
    MsswDispersion,
)
from repro.physics.kittel import (
    fmr_frequency_perpendicular,
    fmr_frequency_in_plane,
    kittel_sphere_frequency,
)
from repro.physics.solve import wavelength_for_frequency, wavenumber_for_frequency
from repro.physics.damping import (
    relaxation_rate,
    lifetime,
    attenuation_length,
    amplitude_after,
)
from repro.physics.width_modes import (
    width_mode_wavenumber,
    band_edge_frequency,
    fmr_vs_width,
    crosstalk_isolation_db,
)

__all__ = [
    "DispersionRelation",
    "ExchangeDispersion",
    "FvmswDispersion",
    "BvmswDispersion",
    "MsswDispersion",
    "fmr_frequency_perpendicular",
    "fmr_frequency_in_plane",
    "kittel_sphere_frequency",
    "wavelength_for_frequency",
    "wavenumber_for_frequency",
    "relaxation_rate",
    "lifetime",
    "attenuation_length",
    "amplitude_after",
    "width_mode_wavenumber",
    "band_edge_frequency",
    "fmr_vs_width",
    "crosstalk_isolation_db",
]
