"""Inversion of dispersion relations: k(f) and lambda(f).

The gate layout engine needs the wavelength of each frequency channel to
place same-frequency sources at integer (or half-integer) multiples of
``lambda_i`` (Section III of the paper).  Dispersions here are strictly
monotonic in the propagating band, so a bracketed Brent solve is robust.
"""

import math

import numpy as np
from scipy.optimize import brentq

from repro.errors import DispersionError

#: Default upper bound on the wavenumber search [rad/m]; corresponds to a
#: wavelength of ~0.6 nm, far below anything resolvable on a real mesh.
_K_MAX_DEFAULT = 1e10


def wavenumber_for_frequency(dispersion, frequency, k_max=_K_MAX_DEFAULT):
    """Return the wavenumber k [rad/m] with ``dispersion.frequency(k) == frequency``.

    Raises :class:`~repro.errors.DispersionError` when ``frequency`` lies
    below the band edge (no propagating wave exists) or above the
    representable range.
    """
    if frequency <= 0:
        raise DispersionError(f"frequency must be positive, got {frequency!r}")
    f_edge = dispersion.frequency(0.0)
    if frequency <= f_edge:
        raise DispersionError(
            f"frequency {frequency:.4g} Hz is at or below the band edge "
            f"{f_edge:.4g} Hz of {dispersion.describe()}; "
            "no propagating spin wave exists"
        )
    if dispersion.frequency(k_max) < frequency:
        raise DispersionError(
            f"frequency {frequency:.4g} Hz above the searchable band "
            f"(k_max = {k_max:.3g} rad/m)"
        )

    def objective(k):
        return dispersion.frequency(k) - frequency

    # brentq needs a sign change; f(0) < 0 by the band-edge check above.
    k = brentq(objective, 0.0, k_max, xtol=1e-6, rtol=1e-12, maxiter=200)
    return float(k)


def wavelength_for_frequency(dispersion, frequency, k_max=_K_MAX_DEFAULT):
    """Return the wavelength lambda = 2*pi/k [m] for ``frequency`` [Hz]."""
    k = wavenumber_for_frequency(dispersion, frequency, k_max=k_max)
    return 2.0 * math.pi / k


def dispersion_table(dispersion, frequencies, k_max=_K_MAX_DEFAULT):
    """Vector helper: (k, lambda, v_g, Gamma) arrays for many frequencies.

    Returns a dict of NumPy arrays keyed by ``"frequency"``, ``"k"``,
    ``"wavelength"``, ``"group_velocity"`` and ``"relaxation_rate"``.
    """
    frequencies = np.asarray(list(frequencies), dtype=float)
    ks = np.array(
        [wavenumber_for_frequency(dispersion, f, k_max=k_max) for f in frequencies]
    )
    return {
        "frequency": frequencies,
        "k": ks,
        "wavelength": 2.0 * math.pi / ks,
        "group_velocity": np.array(
            [dispersion.group_velocity(k) for k in ks]
        ),
        "relaxation_rate": np.array(
            [float(dispersion.relaxation_rate(k)) for k in ks]
        ),
    }
