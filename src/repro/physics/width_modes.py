"""Lateral width-mode quantisation in a spin-wave waveguide.

A waveguide of finite width ``w`` quantises the transverse wavenumber to
``k_y = n*pi / w_eff`` (totally-pinned approximation).  Two consequences
matter for the paper:

* The lowest propagating frequency ("the ferromagnetic resonance
  frequency" in the paper's loose usage) is the dispersion evaluated at
  the transverse quantisation alone, ``f(k_y(w))``, which *decreases as
  the width increases* -- the Section V width-variation observation.
* Different width modes are orthogonal, so a single-mode design has no
  lateral crosstalk; :func:`crosstalk_isolation_db` quantifies the
  frequency separation between modes n = 1 and n = 2.
"""

import math

import numpy as np


def width_mode_wavenumber(width, n=1, pinning=1.0):
    """Transverse wavenumber k_y = n*pi / w_eff [rad/m].

    ``pinning`` in (0, 1] scales the effective width: 1.0 is the
    totally-pinned (hard-wall) limit ``w_eff = w``; smaller values model
    dipolar de-pinning by enlarging the effective width,
    ``w_eff = w / pinning``.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width!r}")
    if n < 1:
        raise ValueError(f"mode index must be >= 1, got {n!r}")
    if not 0 < pinning <= 1.0:
        raise ValueError(f"pinning must be in (0, 1], got {pinning!r}")
    return n * math.pi * pinning / width


def band_edge_frequency(dispersion, width, n=1, pinning=1.0):
    """Lowest propagating frequency of width mode ``n`` [Hz].

    Evaluates the (isotropic FVMSW) dispersion at the transverse
    quantisation wavenumber with zero longitudinal wavenumber; this is
    the effective FMR of the confined waveguide.
    """
    k_y = width_mode_wavenumber(width, n=n, pinning=pinning)
    return float(dispersion.frequency(k_y))


def fmr_vs_width(dispersion, widths, n=1, pinning=1.0):
    """Band-edge frequency for each width in ``widths`` (array in, array out)."""
    widths = np.asarray(list(widths), dtype=float)
    return np.array(
        [band_edge_frequency(dispersion, w, n=n, pinning=pinning) for w in widths]
    )


def longitudinal_wavenumber(dispersion, frequency, width, n=1, pinning=1.0):
    """Longitudinal k_x for ``frequency`` in a waveguide of ``width`` [rad/m].

    Solves f(sqrt(k_x^2 + k_y^2)) = frequency for the isotropic FVMSW
    dispersion.  Returns 0.0 exactly at the band edge; raises
    ``ValueError`` below it.
    """
    from repro.physics.solve import wavenumber_for_frequency

    k_y = width_mode_wavenumber(width, n=n, pinning=pinning)
    k_total = wavenumber_for_frequency(dispersion, frequency)
    if k_total < k_y:
        raise ValueError(
            f"frequency {frequency:.4g} Hz is below the n={n} band edge "
            f"of a {width:.3g} m wide waveguide"
        )
    return math.sqrt(k_total**2 - k_y**2)


def crosstalk_isolation_db(dispersion, width, frequency, pinning=1.0):
    """Spectral isolation between width modes 1 and 2 at ``frequency`` [dB].

    Uses a Lorentzian linewidth model: the n=2 mode at the operating
    frequency of the n=1 mode is suppressed by the detuning between the
    two band edges relative to the damping linewidth.  Larger is better;
    the paper reports no crosstalk up to 500 nm width.
    """
    f1 = band_edge_frequency(dispersion, width, n=1, pinning=pinning)
    f2 = band_edge_frequency(dispersion, width, n=2, pinning=pinning)
    k1 = width_mode_wavenumber(width, n=1, pinning=pinning)
    linewidth = float(dispersion.relaxation_rate(k1)) / (2.0 * math.pi)
    detuning = abs(f2 - f1)
    if detuning == 0:
        return 0.0
    # Lorentzian response |chi|^2 ~ 1 / (1 + (detuning/linewidth)^2).
    suppression = 1.0 / (1.0 + (detuning / linewidth) ** 2)
    if frequency < f1:
        # Below the fundamental band edge nothing propagates at all.
        return math.inf
    return -10.0 * math.log10(suppression)
