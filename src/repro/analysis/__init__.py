"""Signal analysis: spectra, phase demodulation, table rendering."""

from repro.analysis.spectra import (
    amplitude_spectrum,
    spectrum_peaks,
    amplitude_at,
    spurious_power_ratio,
)
from repro.analysis.phase import lock_in, phase_at, fft_phasor
from repro.analysis.tables import render_table, render_comparison
from repro.analysis.ascii_plot import sparkline, line_plot, histogram
from repro.analysis.goertzel import goertzel, goertzel_phasor
from repro.analysis.filters import FilterBank, bandpass_kernel, apply_fir

__all__ = [
    "sparkline",
    "line_plot",
    "histogram",
    "goertzel",
    "goertzel_phasor",
    "FilterBank",
    "bandpass_kernel",
    "apply_fir",
    "amplitude_spectrum",
    "spectrum_peaks",
    "amplitude_at",
    "spurious_power_ratio",
    "lock_in",
    "phase_at",
    "fft_phasor",
    "render_table",
    "render_comparison",
]
