"""FIR band-pass filter bank for channel separation.

The paper reads each output by "taking the spin wave FFT amplitude";
a streaming hardware implementation would instead band-pass filter the
shared trace per channel and detect on the isolated carrier.  This
module provides windowed-sinc FIR design and a :class:`FilterBank`
that splits a multi-frequency trace into per-channel traces -- a third
readout path (after lock-in/FFT/Goertzel) and the tool for visualising
Fig. 4-style per-channel waveforms from one probe.
"""

import math

import numpy as np

from repro.errors import ReadoutError


def lowpass_kernel(cutoff, sample_rate, n_taps):
    """Windowed-sinc (Hamming) low-pass FIR kernel, unity DC gain."""
    if not 0 < cutoff < sample_rate / 2:
        raise ReadoutError(
            f"cutoff {cutoff!r} outside (0, Nyquist={sample_rate / 2!r})"
        )
    if n_taps < 3 or n_taps % 2 == 0:
        raise ReadoutError(f"n_taps must be odd and >= 3, got {n_taps!r}")
    fc = cutoff / sample_rate
    m = np.arange(n_taps) - (n_taps - 1) / 2.0
    kernel = np.sinc(2.0 * fc * m)
    kernel *= np.hamming(n_taps)
    return kernel / kernel.sum()


def bandpass_kernel(f_low, f_high, sample_rate, n_taps):
    """Band-pass FIR as the difference of two low-pass kernels."""
    if not 0 < f_low < f_high < sample_rate / 2:
        raise ReadoutError(
            f"need 0 < f_low < f_high < Nyquist, got "
            f"({f_low!r}, {f_high!r}) at {sample_rate!r} Hz"
        )
    low = lowpass_kernel(f_high, sample_rate, n_taps)
    narrower = lowpass_kernel(f_low, sample_rate, n_taps)
    return low - narrower


def apply_fir(signal, kernel):
    """Zero-phase FIR filtering (forward convolution, 'same' length).

    The group delay of the symmetric kernel is compensated by the
    centred 'same' convolution, so carrier phases are preserved -- which
    is what makes the filter bank usable for phase readout.
    """
    signal = np.asarray(signal, dtype=float)
    kernel = np.asarray(kernel, dtype=float)
    if signal.ndim != 1:
        raise ReadoutError("signal must be 1-D")
    if len(signal) < len(kernel):
        raise ReadoutError(
            f"signal ({len(signal)}) shorter than kernel ({len(kernel)})"
        )
    return np.convolve(signal, kernel, mode="same")


class FilterBank:
    """Per-channel band-pass separation of a shared multi-tone trace.

    Parameters
    ----------
    frequencies:
        Channel carriers [Hz].
    sample_rate:
        Trace sample rate [Hz].
    bandwidth:
        Pass-band full width per channel [Hz]; defaults to 60% of the
        smallest carrier spacing (or 20% of the single carrier).
    n_taps:
        FIR length (odd); defaults to ~6 periods of the lowest carrier.
    """

    def __init__(self, frequencies, sample_rate, bandwidth=None, n_taps=None):
        self.frequencies = [float(f) for f in frequencies]
        if not self.frequencies:
            raise ReadoutError("need at least one channel")
        if sample_rate <= 2.0 * max(self.frequencies):
            raise ReadoutError(
                "sample_rate must exceed twice the highest carrier"
            )
        self.sample_rate = float(sample_rate)
        if bandwidth is None:
            if len(self.frequencies) > 1:
                ordered = sorted(self.frequencies)
                spacing = min(b - a for a, b in zip(ordered, ordered[1:]))
                bandwidth = 0.6 * spacing
            else:
                bandwidth = 0.2 * self.frequencies[0]
        if bandwidth <= 0:
            raise ReadoutError(f"bandwidth must be positive, got {bandwidth!r}")
        self.bandwidth = float(bandwidth)
        if n_taps is None:
            periods = 6.0
            n_taps = int(periods * sample_rate / min(self.frequencies))
            n_taps |= 1  # make odd
        self.n_taps = int(n_taps)
        self.kernels = {}
        for f in self.frequencies:
            f_low = max(f - self.bandwidth / 2.0, 1.0)
            f_high = min(f + self.bandwidth / 2.0, self.sample_rate / 2 * 0.99)
            self.kernels[f] = bandpass_kernel(
                f_low, f_high, self.sample_rate, self.n_taps
            )

    def split(self, trace):
        """Dict: carrier frequency -> band-limited trace."""
        return {
            f: apply_fir(trace, kernel) for f, kernel in self.kernels.items()
        }

    def isolation_db(self, trace, channel, t=None, settle_fraction=0.3):
        """Power ratio of ``channel`` within its own band vs others' bands.

        A diagnostic: how much of the filtered channel trace is really
        that carrier.  Uses the steady-state tail of the trace.
        """
        from repro.analysis.spectra import amplitude_at

        if channel not in self.kernels:
            raise ReadoutError(f"unknown channel {channel!r}")
        if t is None:
            t = np.arange(len(trace)) / self.sample_rate
        start = int(settle_fraction * len(trace))
        filtered = apply_fir(trace, self.kernels[channel])[start:]
        tail = np.asarray(t)[start : start + len(filtered)]
        own = amplitude_at(tail, filtered, channel)
        worst_other = max(
            (
                amplitude_at(tail, filtered, other)
                for other in self.frequencies
                if other != channel
            ),
            default=0.0,
        )
        if worst_other == 0:
            return math.inf
        return 20.0 * math.log10(own / worst_other)
