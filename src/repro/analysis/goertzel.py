"""Goertzel single-bin DFT -- the hardware-friendly channel demodulator.

A physical readout circuit would not compute a full FFT per channel; the
Goertzel recursion evaluates one spectral bin with two multiplies per
sample and O(1) state -- exactly what a per-channel detector ASIC would
implement.  Provided as a third, independent phasor estimator next to
the lock-in and FFT methods (the fig4 benchmark cross-checks all of
them), and as the natural building block for streaming readout.
"""

import cmath
import math

import numpy as np

from repro.errors import ReadoutError


def goertzel(signal, sample_rate, frequency):
    """Complex DFT coefficient of ``signal`` at ``frequency``.

    Uses the generalised (non-integer-bin) Goertzel algorithm, so the
    target frequency need not align with an FFT bin.  Returns the
    normalised coefficient ``(2/N) * sum s[n] exp(-i*2*pi*f*n/fs)`` --
    for ``s = a*sin(2*pi*f*t + phi)`` the magnitude approaches ``a``.
    """
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1 or len(signal) < 8:
        raise ReadoutError("signal must be 1-D with at least 8 samples")
    if sample_rate <= 0:
        raise ReadoutError(f"sample_rate must be positive, got {sample_rate!r}")
    if not 0 < frequency < sample_rate / 2:
        raise ReadoutError(
            f"frequency {frequency!r} outside (0, Nyquist={sample_rate / 2!r})"
        )
    n = len(signal)
    omega = 2.0 * math.pi * frequency / sample_rate
    coeff = 2.0 * math.cos(omega)

    s_prev = 0.0
    s_prev2 = 0.0
    for sample in signal:
        s = sample + coeff * s_prev - s_prev2
        s_prev2 = s_prev
        s_prev = s
    # Standard Goertzel finalisation for the complex coefficient.
    z = s_prev - s_prev2 * cmath.exp(-1j * omega)
    # Remove the phase advance accumulated over N samples so the result
    # is referenced to the first sample (like a DFT bin would be).
    z *= cmath.exp(-1j * omega * (n - 1))
    return 2.0 * z / n


def goertzel_phasor(t, signal, frequency):
    """Sine-referenced phasor at ``frequency`` (lock-in-compatible).

    Returns ``a * exp(i*phi)`` for ``signal = a*sin(2*pi*f*t + phi)``,
    accounting for the absolute time origin ``t[0]`` so it can be
    compared directly against :func:`repro.analysis.phase.fft_phasor`.
    """
    t = np.asarray(t, dtype=float)
    signal = np.asarray(signal, dtype=float)
    if t.shape != signal.shape or t.ndim != 1:
        raise ReadoutError("t and signal must be equal-length 1-D arrays")
    if len(t) < 8:
        raise ReadoutError("need at least 8 samples")
    dt = t[1] - t[0]
    if dt <= 0:
        raise ReadoutError("time grid must be increasing")
    sample_rate = 1.0 / dt
    # Truncate to an integer number of carrier periods (leakage control).
    period_samples = sample_rate / frequency
    n_keep = int(int(len(t) / period_samples) * period_samples)
    if n_keep < 8:
        raise ReadoutError(
            "window shorter than one carrier period at "
            f"{frequency:.4g} Hz"
        )
    z = goertzel(signal[:n_keep], sample_rate, frequency)
    # Reference the phasor to absolute time zero and convert the
    # cosine-referenced DFT convention to sine reference (multiply i).
    z *= cmath.exp(-2j * math.pi * frequency * t[0])
    return complex(z * 1j)


def goertzel_power(signal, sample_rate, frequency):
    """Squared magnitude of the Goertzel coefficient (detector metric)."""
    return abs(goertzel(signal, sample_rate, frequency)) ** 2
