"""Plain-text table rendering for benchmark and CLI output.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output aligned and consistent without pulling in
plotting dependencies.
"""


def render_table(headers, rows, title=None):
    """Render a list-of-rows table with aligned columns.

    ``rows`` is an iterable of sequences; every cell is str()-ed.
    Returns the rendered string (no trailing newline).
    """
    headers = [str(h) for h in headers]
    str_rows = [[str(cell) for cell in row] for row in rows]
    n_cols = len(headers)
    for row in str_rows:
        if len(row) != n_cols:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {n_cols}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(n_cols)
    ]
    lines = []
    if title:
        lines.append(title)
    divider = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(divider)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_comparison(rows, title=None, paper_label="paper", measured_label="measured"):
    """Render paper-vs-measured rows: (name, paper, measured, note)."""
    headers = ["quantity", paper_label, measured_label, "note"]
    normalised = []
    for row in rows:
        name, paper, measured = row[0], row[1], row[2]
        note = row[3] if len(row) > 3 else ""
        normalised.append((name, paper, measured, note))
    return render_table(headers, normalised, title=title)


def format_bits(bits):
    """Render a bit sequence as a compact string, MSB first: [1,0,1] -> '101'."""
    return "".join(str(int(b)) for b in bits)
