"""Phase extraction: lock-in demodulation and FFT-bin phasors.

The logic value of each frequency channel is carried by the *phase* of
its spin wave (0 -> logic 0, pi -> logic 1).  Two independent estimators
are provided; the fig4 benchmark cross-checks that they agree.
"""

import cmath

import numpy as np

from repro.errors import ReadoutError


def lock_in(t, signal, frequency, t_start=0.0, t_stop=None):
    """Complex lock-in amplitude of ``signal`` at ``frequency``.

    Computes ``(2/T) * integral signal(t) * exp(-i*2*pi*f*t) dt`` over
    the analysis window, so a signal ``a*sin(2*pi*f*t + phi)`` returns
    approximately ``a * exp(i*(phi - pi/2))`` -- i.e. the *sine-referenced*
    phase is ``angle + pi/2``.  Use :func:`phase_at` for the
    convention-corrected phase.

    The window is automatically truncated to an integer number of carrier
    periods to suppress leakage from the window edges.

    ``signal`` may also be a 2-D ``(n_traces, n_samples)`` batch sharing
    the one time grid ``t``; the lock-in then returns an ``(n_traces,)``
    complex array (the reference waveform is built once and the
    integration is a single matrix-vector product).
    """
    t = np.asarray(t, dtype=float)
    signal = np.asarray(signal, dtype=float)
    if t.ndim != 1 or signal.ndim not in (1, 2) or signal.shape[-1] != t.shape[0]:
        raise ReadoutError(
            "t must be 1-D and signal 1-D or (n_traces, n_samples) with "
            "a matching sample axis"
        )
    if frequency <= 0:
        raise ReadoutError(f"frequency must be positive, got {frequency!r}")
    if t_stop is None:
        t_stop = t[-1]
    mask = (t >= t_start) & (t <= t_stop)
    if mask.sum() < 8:
        raise ReadoutError(
            f"analysis window [{t_start:.4g}, {t_stop:.4g}] s holds fewer "
            "than 8 samples"
        )
    tw = t[mask]
    sw = signal[..., mask]
    # Truncate to an integer number of periods.
    period = 1.0 / frequency
    n_periods = int((tw[-1] - tw[0]) / period)
    if n_periods < 1:
        raise ReadoutError(
            "analysis window shorter than one carrier period "
            f"({period:.4g} s) at {frequency:.4g} Hz"
        )
    t_end = tw[0] + n_periods * period
    keep = tw <= t_end
    tw = tw[keep]
    sw = sw[..., keep]
    reference = np.exp(-2j * np.pi * frequency * tw)
    dt = tw[1] - tw[0]
    integral = sw @ reference * dt
    duration = tw[-1] - tw[0] + dt
    return 2.0 * integral / duration


def phase_at(t, signal, frequency, t_start=0.0, t_stop=None):
    """Sine-referenced phase [rad] of the ``frequency`` component.

    For ``signal = a*sin(2*pi*f*t + phi)`` this returns ``phi`` (wrapped
    to (-pi, pi]).  Raises :class:`~repro.errors.ReadoutError` when the
    component amplitude is indistinguishable from zero.
    """
    z = lock_in(t, signal, frequency, t_start=t_start, t_stop=t_stop)
    if abs(z) == 0.0:
        raise ReadoutError(
            f"no signal at {frequency:.4g} Hz: cannot extract a phase"
        )
    # lock_in returns a*exp(i*(phi - pi/2)); undo the sine reference.
    phase = cmath.phase(z) + 0.5 * np.pi
    return float((phase + np.pi) % (2.0 * np.pi) - np.pi)


def fft_phasor(t, signal, frequency):
    """Complex FFT-bin phasor nearest ``frequency`` (sine-referenced).

    An independent estimator of the same quantity as :func:`lock_in`,
    using the raw FFT bin.  Bin quantisation makes it slightly less
    accurate off-grid; the readout tests check both agree to within the
    decision margin.
    """
    t = np.asarray(t, dtype=float)
    signal = np.asarray(signal, dtype=float)
    if t.shape != signal.shape or t.ndim != 1:
        raise ReadoutError("t and signal must be equal-length 1-D arrays")
    n = len(t)
    if n < 8:
        raise ReadoutError("need at least 8 samples")
    dt = t[1] - t[0]
    spectrum = np.fft.rfft(signal)
    frequencies = np.fft.rfftfreq(n, dt)
    index = int(np.argmin(np.abs(frequencies - frequency)))
    if index == 0:
        raise ReadoutError(
            f"frequency {frequency:.4g} Hz maps to the DC bin"
        )
    # FFT of sin gives -i/2 * a * exp(i*phi) * n in the positive bin;
    # multiply by i (i.e. add pi/2) to recover the sine-referenced phasor,
    # and account for the time origin t[0].
    z = spectrum[index] * 2.0 / n
    z *= np.exp(-2j * np.pi * frequencies[index] * t[0])
    return complex(z * 1j)


def decode_phase_to_bit(phase, threshold=0.5 * np.pi):
    """Map a phase [rad] to a logic bit: |phase| > threshold -> 1.

    Phase 0 encodes logic 0, phase pi encodes logic 1 (Section II); the
    default threshold puts the decision boundary exactly between them.
    """
    wrapped = (phase + np.pi) % (2.0 * np.pi) - np.pi
    return int(abs(wrapped) > threshold)
