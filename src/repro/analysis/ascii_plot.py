"""Terminal-friendly plotting: sparklines and block-character charts.

The benchmark harness and CLI run in environments without matplotlib;
these helpers render traces, spectra and sweep series as text so the
"figures" of the reproduction are inspectable anywhere.
"""

import math

_SPARK_LEVELS = " .:-=+*#%@"
_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values, width=None):
    """One-line block-character rendering of a series.

    >>> sparkline([0, 1, 2, 3])
    ' ▃▅█'
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    if width is not None and width > 0 and len(values) > width:
        values = _resample(values, width)
    lo = min(values)
    hi = max(values)
    span = hi - lo
    if span == 0:
        return _BLOCKS[0] * len(values)
    chars = []
    for v in values:
        level = int((v - lo) / span * (len(_BLOCKS) - 1) + 0.5)
        chars.append(_BLOCKS[level])
    return "".join(chars)


def _resample(values, width):
    """Bucket-average ``values`` down to ``width`` points."""
    bucket = len(values) / width
    out = []
    for i in range(width):
        lo = int(i * bucket)
        hi = max(int((i + 1) * bucket), lo + 1)
        chunk = values[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out


def line_plot(x, y, width=64, height=12, x_label="", y_label="", title=""):
    """Multi-line ASCII scatter/line chart of y(x).

    Points are marked with ``*``; axes carry min/max annotations.
    Returns the rendered string.
    """
    x = [float(v) for v in x]
    y = [float(v) for v in y]
    if len(x) != len(y):
        raise ValueError(f"x and y lengths differ: {len(x)} vs {len(y)}")
    if not x:
        return "(empty plot)"
    x_lo, x_hi = min(x), max(x)
    y_lo, y_hi = min(y), max(y)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for xv, yv in zip(x, y):
        col = int((xv - x_lo) / x_span * (width - 1) + 0.5)
        row = int((yv - y_lo) / y_span * (height - 1) + 0.5)
        grid[height - 1 - row][col] = "*"

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.4g}"
    bottom_label = f"{y_lo:.4g}"
    label_width = max(len(top_label), len(bottom_label))
    for index, row in enumerate(grid):
        if index == 0:
            prefix = top_label.rjust(label_width)
        elif index == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    x_line = (
        " " * label_width
        + "  "
        + f"{x_lo:.4g}".ljust(width - 10)
        + f"{x_hi:.4g}".rjust(10)
    )
    lines.append(x_line)
    footer = []
    if x_label:
        footer.append(f"x: {x_label}")
    if y_label:
        footer.append(f"y: {y_label}")
    if footer:
        lines.append(" " * label_width + "  " + ", ".join(footer))
    return "\n".join(lines)


def histogram(values, bins=10, width=40, title=""):
    """Horizontal ASCII histogram; returns the rendered string."""
    values = [float(v) for v in values]
    if not values:
        return "(no data)"
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins!r}")
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    counts = [0] * bins
    for v in values:
        index = min(int((v - lo) / span * bins), bins - 1)
        counts[index] += 1
    peak = max(counts)
    lines = [title] if title else []
    for i, count in enumerate(counts):
        left = lo + i * span / bins
        bar = "#" * (int(count / peak * width) if peak else 0)
        lines.append(f"{left:>12.4g} | {bar} {count}")
    return "\n".join(lines)
