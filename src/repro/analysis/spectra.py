"""FFT amplitude spectra and peak extraction.

Fig. 3 of the paper plots ``|FFT|`` of the output-region Mx/Ms trace and
reads the 8 output values off the peaks at the excitation frequencies;
these helpers perform exactly that analysis on synthetic or
micromagnetic traces.
"""

import numpy as np

from repro.errors import ReadoutError


def amplitude_spectrum(t, signal, window="hann"):
    """One-sided amplitude spectrum of a uniformly sampled signal.

    Returns ``(frequencies, amplitudes)`` where amplitudes are normalised
    so a pure unit-amplitude sinusoid yields a peak of ~1 (coherent gain
    of the window is divided out).

    ``window`` is ``"hann"``, ``"hamming"`` or ``None``/"boxcar".
    """
    t = np.asarray(t, dtype=float)
    signal = np.asarray(signal, dtype=float)
    if t.ndim != 1 or signal.shape != t.shape:
        raise ReadoutError(
            f"t and signal must be equal-length 1-D arrays, got "
            f"{t.shape} and {signal.shape}"
        )
    if len(t) < 4:
        raise ReadoutError("need at least 4 samples for a spectrum")
    dt = t[1] - t[0]
    if dt <= 0 or not np.allclose(np.diff(t), dt, rtol=1e-6, atol=0.0):
        raise ReadoutError("time grid must be uniform and increasing")

    n = len(signal)
    if window in (None, "boxcar"):
        w = np.ones(n)
    elif window == "hann":
        w = np.hanning(n)
    elif window == "hamming":
        w = np.hamming(n)
    else:
        raise ReadoutError(f"unknown window {window!r}")

    coherent_gain = w.sum() / n
    spectrum = np.fft.rfft(signal * w)
    frequencies = np.fft.rfftfreq(n, dt)
    amplitudes = 2.0 * np.abs(spectrum) / (n * coherent_gain)
    # The DC and (even-n) Nyquist bins are not doubled.
    amplitudes[0] /= 2.0
    if n % 2 == 0:
        amplitudes[-1] /= 2.0
    return frequencies, amplitudes


def amplitude_at(t, signal, frequency, window="hann", bandwidth=None):
    """Peak amplitude within ``bandwidth`` of ``frequency``.

    ``bandwidth`` defaults to 4 FFT bins; the maximum amplitude inside
    the band is returned, which is robust to sub-bin frequency offsets.
    """
    frequencies, amplitudes = amplitude_spectrum(t, signal, window=window)
    df = frequencies[1] - frequencies[0]
    if bandwidth is None:
        bandwidth = 4.0 * df
    mask = np.abs(frequencies - frequency) <= bandwidth
    if not mask.any():
        raise ReadoutError(
            f"no FFT bins within {bandwidth:.4g} Hz of {frequency:.4g} Hz"
        )
    return float(amplitudes[mask].max())


def spectrum_peaks(t, signal, threshold_ratio=0.1, window="hann"):
    """Local maxima of the amplitude spectrum above a relative threshold.

    Returns a list of ``(frequency, amplitude)`` sorted by descending
    amplitude.  ``threshold_ratio`` is relative to the global maximum.
    The paper's "no peaks at other than the excitation frequencies"
    check (Fig. 3) is implemented on top of this.
    """
    frequencies, amplitudes = amplitude_spectrum(t, signal, window=window)
    if len(amplitudes) < 3:
        raise ReadoutError("spectrum too short for peak finding")
    peak_level = amplitudes.max()
    if peak_level == 0:
        return []
    threshold = threshold_ratio * peak_level
    interior = amplitudes[1:-1]
    is_peak = (
        (interior >= amplitudes[:-2])
        & (interior >= amplitudes[2:])
        & (interior >= threshold)
    )
    indices = np.nonzero(is_peak)[0] + 1
    # Merge adjacent bins of the same physical peak: keep local argmax runs.
    peaks = []
    last_index = None
    for index in indices:
        if last_index is not None and index == last_index + 1:
            if amplitudes[index] > peaks[-1][1]:
                peaks[-1] = (frequencies[index], float(amplitudes[index]))
            last_index = index
            continue
        peaks.append((frequencies[index], float(amplitudes[index])))
        last_index = index
    peaks.sort(key=lambda p: -p[1])
    return peaks


def spurious_power_ratio(t, signal, expected_frequencies, guard=None, window="hann"):
    """Fraction of spectral power outside the expected carrier bands.

    ``guard`` is the half-width [Hz] around each expected frequency that
    counts as in-band (default 6 FFT bins).  A clean multi-frequency
    gate trace -- the Fig. 3 observation -- has a ratio near zero.
    """
    frequencies, amplitudes = amplitude_spectrum(t, signal, window=window)
    df = frequencies[1] - frequencies[0]
    if guard is None:
        guard = 6.0 * df
    power = amplitudes**2
    in_band = np.zeros_like(frequencies, dtype=bool)
    for f0 in expected_frequencies:
        in_band |= np.abs(frequencies - f0) <= guard
    total = power[1:].sum()  # exclude DC
    if total == 0:
        return 0.0
    spurious = power[1:][~in_band[1:]].sum()
    return float(spurious / total)
