"""Time-of-flight analysis: group delay from trace envelopes.

Experimental magnonics measures group velocity by timing a tone burst
between two probes.  These helpers extract the analytic-signal envelope
(via the discrete Hilbert transform), locate wavefront arrivals, and
convert probe separations into measured group velocities -- closing yet
another loop between the analytic dispersion (which predicts v_g) and
the simulated traces (which realise it).
"""

import numpy as np

from repro.errors import ReadoutError


def analytic_envelope(signal):
    """|analytic signal| via the FFT-based discrete Hilbert transform."""
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1 or len(signal) < 8:
        raise ReadoutError("signal must be 1-D with at least 8 samples")
    n = len(signal)
    spectrum = np.fft.fft(signal)
    h = np.zeros(n)
    h[0] = 1.0
    if n % 2 == 0:
        h[n // 2] = 1.0
        h[1 : n // 2] = 2.0
    else:
        h[1 : (n + 1) // 2] = 2.0
    analytic = np.fft.ifft(spectrum * h)
    return np.abs(analytic)


def arrival_time(t, signal, threshold_ratio=0.5, edge_guard=0.02):
    """First time the envelope crosses ``threshold_ratio`` of its peak.

    Linear interpolation between samples gives sub-sample resolution.
    ``edge_guard`` (fraction of the record) zeroes the envelope at both
    ends before thresholding: the FFT-based Hilbert transform assumes a
    periodic signal, so a wave still running at the end of the record
    rings spuriously at the start.  Raises when the signal never
    reaches the threshold.
    """
    t = np.asarray(t, dtype=float)
    signal = np.asarray(signal, dtype=float)
    if t.shape != signal.shape:
        raise ReadoutError("t and signal must have equal shapes")
    if not 0 < threshold_ratio < 1:
        raise ReadoutError(
            f"threshold_ratio must be in (0, 1), got {threshold_ratio!r}"
        )
    if not 0 <= edge_guard < 0.5:
        raise ReadoutError(
            f"edge_guard must be in [0, 0.5), got {edge_guard!r}"
        )
    envelope = analytic_envelope(signal)
    guard = int(edge_guard * len(envelope))
    if guard:
        envelope[:guard] = 0.0
        envelope[-guard:] = 0.0
    peak = envelope.max()
    if peak == 0:
        raise ReadoutError("signal is identically zero")
    threshold = threshold_ratio * peak
    above = np.nonzero(envelope >= threshold)[0]
    if len(above) == 0:
        raise ReadoutError("envelope never reaches the threshold")
    index = int(above[0])
    if index == 0:
        return float(t[0])
    # Interpolate the crossing between index-1 and index.
    e0, e1 = envelope[index - 1], envelope[index]
    fraction = (threshold - e0) / (e1 - e0) if e1 != e0 else 0.0
    return float(t[index - 1] + fraction * (t[index] - t[index - 1]))


def group_velocity_from_traces(t, near_trace, far_trace, separation,
                               threshold_ratio=0.5):
    """Measured group velocity [m/s] from two probe traces.

    ``separation`` is the probe distance [m]; the velocity is the
    separation over the arrival-time difference of the wavefronts.
    """
    if separation <= 0:
        raise ReadoutError(
            f"separation must be positive, got {separation!r}"
        )
    t_near = arrival_time(t, near_trace, threshold_ratio=threshold_ratio)
    t_far = arrival_time(t, far_trace, threshold_ratio=threshold_ratio)
    delay = t_far - t_near
    if delay <= 0:
        raise ReadoutError(
            f"far probe fired before near probe ({t_far:.4g} <= "
            f"{t_near:.4g} s); check probe ordering"
        )
    return separation / delay


def envelope_correlation_delay(t, near_trace, far_trace):
    """Delay [s] maximising the cross-correlation of the two envelopes.

    More robust than threshold crossing for noisy traces; quantised to
    the sample period.
    """
    t = np.asarray(t, dtype=float)
    near = analytic_envelope(near_trace)
    far = analytic_envelope(far_trace)
    near = near - near.mean()
    far = far - far.mean()
    correlation = np.correlate(far, near, mode="full")
    lag = int(correlation.argmax()) - (len(near) - 1)
    dt = t[1] - t[0]
    return lag * dt
