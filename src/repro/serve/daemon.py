"""``swgate serve`` -- the JSON-over-HTTP circuit-serving daemon.

:class:`CircuitServer` is a thin, observable network front end on the
coalescing :class:`~repro.circuits.executor.CircuitExecutor`: a
stdlib-only ``ThreadingHTTPServer`` whose handler threads submit
requests and *wait* on their tickets instead of forcing a flush, so
concurrent clients' word batches coalesce into shared packed GEMM
blocks exactly as in-process submitters' do.  A background **flush
thread** calls :meth:`CircuitExecutor.sweep` every
``flush_interval`` seconds, so the executor's ``max_latency`` bound
holds even when no fresh traffic arrives to piggyback on -- the
daemon's end of the executor's lifecycle contract.

Endpoints::

    POST /v1/run        netlist + assignments (+ faults/noise/mode/
                        strict) -> CircuitRunResult wire dict, with a
                        per-request executor timing ``trace``
    GET  /healthz       liveness + uptime + pending queue depth
    GET  /metrics       merged metrics table (text);
                        ?format=json -> registry snapshot() dict;
                        ?format=prometheus -> Prometheus text
                        exposition (scrapeable)
    GET  /stats         executor describe() line + structured stats
    GET  /logs          recent structured events (?n=, ?kind=)

Every ``/v1/run`` carries a request ID -- client-supplied via the
``X-Request-Id`` header or daemon-minted -- that names the request in
its returned trace, the access log and the coalesced block's tenant
list, and is echoed back as a response ``X-Request-Id`` header.
Access, slow-request (latency above ``slow_request_s``), per-class
error and executor block events land in a bounded
:class:`~repro.obs.EventLog` (``GET /logs``), optionally mirrored as
JSON lines to an access-log file (``swgate serve --access-log``).

Strict failures map onto HTTP statuses per
:data:`repro.serve.protocol.ERROR_STATUS` (request errors 400, physics
errors 422, bugs 500) and carry the exception class over the wire, so
remote callers re-raise exactly what in-process callers catch.

Workers start hot by loading saved :class:`CompiledCircuit` artifacts
(``warm=`` paths, or :meth:`CircuitServer.warm` later): the first
request then hits the compile cache instead of paying compile +
calibration.
"""

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs

from repro import obs as _obs
from repro.circuits.executor import CircuitExecutor, mint_request_id
from repro.serve import protocol

#: Fallback handler-side wait bound (seconds) when the executor has no
#: ``max_latency`` (tickets then resolve via max_block or this force).
_DEFAULT_WAIT = 0.05


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto the owning :class:`CircuitServer`."""

    server_version = "swgate-serve"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        # Access logging lands in the metrics registry, not stderr.
        pass

    def _send(self, status, payload, content_type="application/json",
              headers=()):
        body = (
            payload if isinstance(payload, bytes)
            else json.dumps(payload).encode("utf-8")
        )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):
        app = self.server.app
        started = time.perf_counter()
        path, _, query = self.path.partition("?")
        params = parse_qs(query)
        fmt = params.get("format", [""])[-1]
        if path == "/healthz":
            status = 200
            self._send(status, app.healthz())
        elif path == "/metrics":
            status = 200
            if fmt == "json":
                self._send(status, app.metrics_snapshot())
            elif fmt == "prometheus":
                self._send(
                    status, app.metrics_prometheus().encode("utf-8"),
                    content_type=_obs.PROMETHEUS_CONTENT_TYPE,
                )
            else:
                self._send(
                    status, app.metrics_text().encode("utf-8") + b"\n",
                    content_type=_obs.PROMETHEUS_CONTENT_TYPE,
                )
        elif path == "/stats":
            status = 200
            self._send(status, app.stats())
        elif path == "/logs":
            status = 200
            try:
                n = int(params.get("n", ["50"])[-1])
            except ValueError:
                n = 50
            kind = params.get("kind", [None])[-1]
            self._send(status, app.logs(n=n, kind=kind))
        else:
            status = 404
            self._send(status, {"error": {
                "type": "NotFound", "message": f"no route {path!r}",
            }})
        app.log_access(
            "GET", path, status, time.perf_counter() - started
        )

    def do_POST(self):
        app = self.server.app
        started = time.perf_counter()
        path = self.path.partition("?")[0]
        if path != "/v1/run":
            self._send(404, {"error": {
                "type": "NotFound", "message": f"no route {path!r}",
            }})
            app.log_access(
                "POST", path, 404, time.perf_counter() - started
            )
            return
        request_id = self.headers.get("X-Request-Id") or None
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"null")
        except (ValueError, TypeError) as exc:
            self._send(400, {"error": {
                "type": "NetlistError",
                "message": f"request body is not valid JSON: {exc}",
            }})
            app.log_access(
                "POST", path, 400, time.perf_counter() - started,
                request_id=request_id,
            )
            return
        status, wire, request_id = app.handle_run(
            payload, request_id=request_id
        )
        self._send(
            status, wire, headers=(("X-Request-Id", request_id),)
        )


class CircuitServer:
    """One serving daemon: HTTP front end + flush thread + executor.

    Parameters
    ----------
    executor:
        An existing :class:`CircuitExecutor` to serve (its ``obs``
        registry backs ``/metrics``); by default the server builds its
        own from the remaining keyword arguments.
    host, port:
        Bind address; port 0 (the default) picks an ephemeral port,
        read back from :attr:`port` / :attr:`url`.
    n_bits, bindings, backend, max_block, max_latency, cache_size, obs:
        Forwarded to the internally-built executor when ``executor`` is
        not supplied.
    warm:
        Paths of saved :class:`CompiledCircuit` artifacts to preload
        into the compile cache before serving.
    flush_interval:
        Seconds between background :meth:`CircuitExecutor.sweep` calls;
        defaults to half the executor's ``max_latency`` (no thread when
        the executor has no latency bound -- tickets then resolve via
        ``max_block`` or the handler's own wait deadline).
    trace_requests:
        Forwarded to the internally-built executor: when true (the
        default) every ``/v1/run`` response carries its per-request
        timing ``trace``.
    events:
        An existing :class:`~repro.obs.EventLog` to record into; by
        default the server builds one of ``log_capacity`` events
        (``log_capacity=0`` disables event logging entirely).
    access_log:
        Optional path (or file-like object) the event log mirrors as
        JSON lines, one object per event (``swgate serve
        --access-log``).
    log_capacity:
        Ring capacity of the internally-built event log.
    slow_request_s:
        ``/v1/run`` latency (seconds) above which a ``slow_request``
        event captures the request's full trace; ``None`` disables the
        capture.
    """

    def __init__(self, executor=None, host="127.0.0.1", port=0, *,
                 n_bits=8, bindings=None, backend=None, max_block=64,
                 max_latency=0.005, cache_size=16, obs=None, warm=(),
                 flush_interval=None, trace_requests=True, events=None,
                 access_log=None, log_capacity=512, slow_request_s=0.5):
        if events is None and log_capacity:
            events = _obs.EventLog(capacity=log_capacity, sink=access_log)
        self.events = events
        self.slow_request_s = (
            None if slow_request_s is None else float(slow_request_s)
        )
        if executor is None:
            executor = CircuitExecutor(
                n_bits=n_bits, bindings=bindings, backend=backend,
                max_block=max_block, max_latency=max_latency,
                cache_size=cache_size, obs=obs,
                trace_requests=trace_requests, events=events,
            )
        elif executor.events is None:
            # Share the daemon's event log with a caller-supplied
            # executor so its block events land beside the access log.
            executor.events = events
        self.executor = executor
        self.obs = executor.obs
        if warm:
            self.warm(warm)
        if flush_interval is None and executor.max_latency is not None:
            flush_interval = max(executor.max_latency / 2.0, 0.001)
        self.flush_interval = flush_interval
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.app = self
        self._started = time.monotonic()
        self._stop = threading.Event()
        self._flush_thread = None
        self._serve_thread = None

    # -- address -------------------------------------------------------
    @property
    def host(self):
        return self._httpd.server_address[0]

    @property
    def port(self):
        return self._httpd.server_address[1]

    @property
    def url(self):
        """Base URL clients talk to, e.g. ``http://127.0.0.1:8077``."""
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------
    def warm(self, paths):
        """Preload saved artifacts; returns the loaded artifacts."""
        return self.executor.warm(paths)

    def _flush_loop(self):
        while not self._stop.wait(self.flush_interval):
            self.executor.sweep()
        # Final sweep so no ticket is stranded past shutdown.
        self.executor.flush()

    def _start_flush_thread(self):
        if self.flush_interval is None or self._flush_thread is not None:
            return
        self._flush_thread = threading.Thread(
            target=self._flush_loop, name="swgate-serve-flush", daemon=True,
        )
        self._flush_thread.start()

    def start(self):
        """Serve in background threads; returns the base URL."""
        self._start_flush_thread()
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="swgate-serve-http", daemon=True,
            )
            self._serve_thread.start()
        return self.url

    def serve_forever(self):
        """Serve in the calling thread (the CLI foreground mode)."""
        self._start_flush_thread()
        try:
            self._httpd.serve_forever()
        finally:
            self.close()

    def close(self):
        """Stop serving, join the flush thread, release the socket."""
        self._stop.set()
        if self._serve_thread is not None:
            self._httpd.shutdown()
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
        if self._flush_thread is not None:
            self._flush_thread.join(timeout=5.0)
            self._flush_thread = None
        self._httpd.server_close()
        if self.events is not None:
            # Closes only a sink file the event log opened itself; the
            # in-memory ring stays readable after shutdown.
            self.events.close()

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- request handling ----------------------------------------------
    def _wait_timeout(self):
        """How long a handler waits for the flush policy before forcing.

        Twice the latency bound plus two sweep intervals comfortably
        covers the worst-case sweep phase; the force after the deadline
        is a latency fallback, never a correctness requirement.
        """
        if self.executor.max_latency is None or self.flush_interval is None:
            return _DEFAULT_WAIT
        return 2.0 * self.executor.max_latency + 2.0 * self.flush_interval

    def handle_run(self, payload, request_id=None):
        """Decode, submit, await and encode one ``/v1/run`` request.

        Returns ``(status, wire, request_id)``; the request ID is the
        client-supplied one (``X-Request-Id``) or a daemon-minted
        ``req-<hex>``, and names the request in its trace, the access
        log and its block's tenant list.
        """
        started = time.perf_counter()
        self.obs.inc("serve.requests")
        if request_id is None:
            request_id = mint_request_id()
        words = 0
        error = None
        try:
            request = protocol.decode_run_request(payload)
            words = len(request.assignments)
            ticket = self.executor.submit(
                request.netlist,
                request.assignments,
                faults=request.faults,
                noise=request.noise,
                strict=request.strict,
                mode=request.mode,
                request_id=request_id,
            )
            result = ticket.result(timeout=self._wait_timeout())
            status = 200
            wire = protocol.result_to_wire(
                result, include_cells=request.cells
            )
        except Exception as exc:
            error = exc
            status, wire = protocol.error_to_wire(exc)
            self.obs.inc(f"serve.errors.{status}")
            self.obs.inc(f"serve.errors.class.{type(exc).__name__}")
        latency = time.perf_counter() - started
        self.obs.observe("serve.request_s", latency)
        if self.events is not None:
            trace = wire.get("trace") if status == 200 else None
            self.log_access(
                "POST", "/v1/run", status, latency,
                request_id=request_id, words=words,
                block_id=(trace or {}).get("block_id"),
            )
            if error is not None:
                self.events.emit(
                    "error", request_id=request_id, status=status,
                    type=type(error).__name__, message=str(error),
                )
            if (
                self.slow_request_s is not None
                and latency >= self.slow_request_s
            ):
                self.events.emit(
                    "slow_request", request_id=request_id,
                    latency_ms=round(latency * 1e3, 3), words=words,
                    status=status, trace=trace,
                )
        return status, wire, request_id

    # -- introspection endpoints ---------------------------------------
    def healthz(self):
        """Liveness payload: protocol, uptime, queue depth."""
        return {
            "status": "ok",
            "protocol": protocol.PROTOCOL_VERSION,
            "uptime_s": time.monotonic() - self._started,
            "pending_words": self.executor.pending_words,
            "n_bits": self.executor.n_bits,
            "backend": self.executor.bindings.backend.tag,
        }

    def log_access(self, method, path, status, latency_s, **fields):
        """Record one ``access`` event (no-op without an event log)."""
        if self.events is None:
            return None
        return self.events.emit(
            "access", method=method, path=path, status=int(status),
            latency_ms=round(latency_s * 1e3, 3), **fields,
        )

    def logs(self, n=50, kind=None):
        """The ``GET /logs`` payload: recent events, oldest first."""
        if self.events is None:
            return {"events": [], "capacity": 0, "dropped": 0}
        return {
            "events": self.events.tail(n, kind=kind),
            "capacity": self.events.capacity,
            "dropped": self.events.dropped,
        }

    def metrics_snapshot(self):
        """The executor registry ``snapshot()`` (JSON-pure dict)."""
        return self.obs.snapshot()

    def metrics_text(self):
        """Merged metrics table: executor registry + process-global."""
        return _obs.render_metrics(
            [self.obs.snapshot(), _obs.get_registry().snapshot()]
        )

    def metrics_prometheus(self):
        """Prometheus text exposition of the merged metrics
        (``GET /metrics?format=prometheus``, scrapeable)."""
        return _obs.render_prometheus(
            [self.obs.snapshot(), _obs.get_registry().snapshot()]
        )

    def stats(self):
        """Structured serving stats + the executor's describe() line."""
        executor = self.executor
        return {
            "describe": executor.describe(),
            "stats": executor.stats,
            "pending_words": executor.pending_words,
            "compile_cache": {
                "entries": len(executor.cache),
                "max_entries": executor.cache.max_entries,
                "hits": executor.cache.hits,
                "misses": executor.cache.misses,
                "evictions": executor.cache.evictions,
                "warmed": executor.obs.counter("compile_cache.warmed"),
            },
        }
