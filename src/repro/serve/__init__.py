"""``repro.serve`` -- the network serving layer over the circuit stack.

The first multi-process scenario in the repository: a stdlib-only
JSON-over-HTTP daemon (:class:`~repro.serve.daemon.CircuitServer`,
``swgate serve``) in front of the coalescing
:class:`~repro.circuits.executor.CircuitExecutor`, a matching client
(:class:`~repro.serve.client.ServeClient`, ``swgate serve --send``) and
the wire codecs both share (:mod:`repro.serve.protocol`).  Concurrent
clients' word batches coalesce into shared packed GEMM blocks; a
background flush thread enforces the executor's ``max_latency`` bound;
``/metrics`` and ``/stats`` export the ``repro.obs`` registry the
executor already records into (``?format=prometheus`` for scrapers);
every ``/v1/run`` returns a per-request timing trace and lands in a
structured event log (``/logs``, ``--access-log``); ``swgate top``
(:mod:`repro.serve.monitor`) renders live throughput from the same
endpoints; and workers warm-start from saved
:class:`~repro.circuits.compiled.CompiledCircuit` artifacts so a fleet
skips compile + calibration entirely.
"""

from repro.serve.client import ServeClient
from repro.serve.daemon import CircuitServer
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    decode_run_request,
    encode_run_request,
    error_from_wire,
    error_to_wire,
    result_from_wire,
    result_to_wire,
)

__all__ = [
    "CircuitServer",
    "ServeClient",
    "PROTOCOL_VERSION",
    "encode_run_request",
    "decode_run_request",
    "result_to_wire",
    "result_from_wire",
    "error_to_wire",
    "error_from_wire",
]
