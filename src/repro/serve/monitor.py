"""``swgate top`` -- live throughput monitor for a serving daemon.

Polls a running daemon's ``/healthz``, ``/stats`` and
``/metrics?format=json`` endpoints (plain :class:`ServeClient` calls,
no daemon-side support needed) and renders **interval deltas**: words/s
and requests/s over the last polling window, p50/p99 queue-wait and
request latency estimated from the delta of the cumulative histograms
(:func:`repro.obs.histogram_quantile`), coalescing efficiency
(words per packed block, share of requests that shared a block),
compile-cache hit rate and error rate.  Cumulative counters answer
"how much since boot"; the interval view answers "what is it doing
*now*", which is what you watch during a load test.

Everything below :func:`top` is a pure function of two samples, so the
rendering is unit-testable without a daemon.
"""

import sys
import time

from repro.obs import histogram_quantile
from repro.serve.client import ServeClient

#: ANSI clear-screen + home, used between refreshes (``--no-clear``
#: falls back to a separator line for dumb terminals / log capture).
_CLEAR = "\x1b[2J\x1b[H"


def sample(client):
    """One monitoring sample: monotonic time + the daemon's state."""
    return {
        "t": time.monotonic(),
        "healthz": client.healthz(),
        "stats": client.stats(),
        "metrics": client.metrics(format="json"),
    }


def _counter(sample_, name):
    return sample_["metrics"].get("counters", {}).get(name, 0)


def _counter_delta(prev, cur, name):
    return _counter(cur, name) - _counter(prev, name)


def _histogram_delta(prev, cur, name):
    """The interval histogram between two cumulative snapshots.

    Returns the current histogram verbatim when the previous sample
    lacks it (first window, or bounds changed); ``None`` when the
    daemon never recorded it.
    """
    c = cur["metrics"].get("histograms", {}).get(name)
    if c is None:
        return None
    p = prev["metrics"].get("histograms", {}).get(name)
    if p is None or p.get("bounds") != c.get("bounds"):
        return c
    return {
        "bounds": list(c["bounds"]),
        "counts": [b - a for a, b in zip(p["counts"], c["counts"])],
        "count": c["count"] - p["count"],
        "sum": c["sum"] - p["sum"],
        # Interval max is unknowable from cumulative buckets; the
        # all-time max is the honest upper bound for the p99 estimate.
        "max": c.get("max"),
    }


def _quantiles_ms(prev, cur, name):
    """``(p50, p99)`` of the interval histogram, in milliseconds."""
    delta = _histogram_delta(prev, cur, name)
    if not delta or not delta.get("count"):
        return None, None
    p50 = histogram_quantile(delta, 0.5)
    p99 = histogram_quantile(delta, 0.99)
    return (
        None if p50 is None else p50 * 1e3,
        None if p99 is None else p99 * 1e3,
    )


def _fmt_ms(value):
    return "-" if value is None else f"{value:.2f}ms"


def render_interval(prev, cur):
    """Render one refresh of the monitor from two samples (pure)."""
    dt = max(cur["t"] - prev["t"], 1e-9)
    health = cur["healthz"]
    requests = _counter_delta(prev, cur, "serve.requests")
    errors = sum(
        _counter_delta(prev, cur, name)
        for name in cur["metrics"].get("counters", {})
        if name.startswith("serve.errors.") and ".class." not in name
    )
    words = _counter_delta(prev, cur, "executor.words")
    blocks = _counter_delta(prev, cur, "executor.blocks")
    coalesced = _counter_delta(prev, cur, "executor.coalesced_requests")
    submitted = _counter_delta(prev, cur, "executor.requests")
    fallbacks = _counter_delta(prev, cur, "executor.fallbacks")
    hits = _counter_delta(prev, cur, "compile_cache.hits")
    misses = _counter_delta(prev, cur, "compile_cache.misses")
    lookups = hits + misses
    q50, q99 = _quantiles_ms(prev, cur, "executor.queue_latency_s")
    r50, r99 = _quantiles_ms(prev, cur, "serve.request_s")

    lines = [
        f"swgate top -- {health['backend']} backend, "
        f"{health['n_bits']}-bit cells, uptime {health['uptime_s']:.0f}s, "
        f"pending {health['pending_words']} words",
        f"  interval   {dt:.2f}s",
        f"  throughput {words / dt:8.1f} words/s   "
        f"{requests / dt:8.1f} requests/s   "
        f"{blocks / dt:8.1f} blocks/s",
        f"  latency    queue p50 {_fmt_ms(q50)} p99 {_fmt_ms(q99)}   "
        f"request p50 {_fmt_ms(r50)} p99 {_fmt_ms(r99)}",
        "  coalescing "
        + (
            f"{words / blocks:8.1f} words/block  "
            f"{coalesced / submitted:7.1%} of requests shared a block"
            if blocks and submitted else "   (no blocks this interval)"
        ),
        f"  compile    "
        + (
            f"{hits / lookups:7.1%} cache hit rate ({lookups} lookups)"
            if lookups else "(no lookups this interval)"
        )
        + (f"   {fallbacks} fallbacks" if fallbacks else ""),
        f"  errors     "
        + (
            f"{errors / requests:7.1%} of requests ({errors} errors)"
            if requests else "(no requests this interval)"
        ),
    ]
    return "\n".join(lines)


def top(url, interval=2.0, iterations=None, clear=True, out=None):
    """Poll ``url`` every ``interval`` seconds and render live stats.

    ``iterations`` bounds the number of refreshes (None = until
    interrupted); returns the number of refreshes rendered.  The first
    window doubles as warm-up: rendering starts after the second
    sample, when a delta exists.
    """
    out = sys.stdout if out is None else out
    client = ServeClient(url, timeout=max(interval, 5.0))
    prev = sample(client)
    rendered = 0
    while iterations is None or rendered < iterations:
        time.sleep(interval)
        cur = sample(client)
        text = render_interval(prev, cur)
        if clear:
            out.write(_CLEAR)
        out.write(text + "\n")
        if not clear:
            out.write("---\n")
        out.flush()
        prev = cur
        rendered += 1
    return rendered
