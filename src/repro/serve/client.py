"""Stdlib HTTP client for the ``swgate serve`` daemon.

:class:`ServeClient` mirrors the in-process
:meth:`~repro.circuits.executor.CircuitExecutor.run` contract over the
wire: :meth:`ServeClient.run` takes the same netlist / assignments /
faults / noise / strict / mode arguments, returns a reconstructed
:class:`~repro.circuits.engine.CircuitRunResult`, and raises the same
:mod:`repro.errors` classes a local strict run would (rebuilt from the
daemon's error payloads, see :mod:`repro.serve.protocol`).  Used by the
``swgate serve --send`` CLI path, the serve tests and the serving
benchmark; ``urllib`` only, no third-party HTTP stack.
"""

import json
import urllib.error
import urllib.request

from repro.serve import protocol


class ServeClient:
    """Talks to one daemon at ``url`` (e.g. ``http://127.0.0.1:8077``)."""

    def __init__(self, url, timeout=30.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def _request(self, method, path, payload=None):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method,
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as error:
            # Daemon error payloads ride on non-2xx statuses; read the
            # body so the caller can rebuild the typed exception.
            return error.code, error.read()

    def _json(self, method, path, payload=None):
        status, body = self._request(method, path, payload)
        try:
            decoded = json.loads(body)
        except ValueError:
            decoded = {}
        if status != 200:
            raise protocol.error_from_wire(decoded, status)
        return decoded

    # -- endpoints -----------------------------------------------------
    def run(self, netlist, assignments, faults=(), noise=None,
            strict=True, mode="phasor", cells=False):
        """Evaluate ``assignments`` on ``netlist`` through the daemon.

        Same contract as ``CircuitExecutor.run``; ``cells=True``
        additionally fetches the per-cell decode records.
        """
        payload = protocol.encode_run_request(
            netlist, assignments, faults=faults, noise=noise,
            strict=strict, mode=mode, cells=cells,
        )
        return protocol.result_from_wire(
            self._json("POST", "/v1/run", payload)
        )

    def healthz(self):
        """The daemon's liveness dict (status, uptime, queue depth)."""
        return self._json("GET", "/healthz")

    def stats(self):
        """Structured serving stats (executor counters, compile cache)."""
        return self._json("GET", "/stats")

    def metrics(self, format="text"):
        """The ``/metrics`` export: rendered table, or the registry
        ``snapshot()`` dict with ``format="json"``."""
        if format == "json":
            return self._json("GET", "/metrics?format=json")
        status, body = self._request("GET", "/metrics")
        text = body.decode("utf-8")
        if status != 200:
            raise RuntimeError(f"/metrics returned HTTP {status}: {text}")
        return text
