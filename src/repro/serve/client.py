"""Stdlib HTTP client for the ``swgate serve`` daemon.

:class:`ServeClient` mirrors the in-process
:meth:`~repro.circuits.executor.CircuitExecutor.run` contract over the
wire: :meth:`ServeClient.run` takes the same netlist / assignments /
faults / noise / strict / mode arguments, returns a reconstructed
:class:`~repro.circuits.engine.CircuitRunResult` (trace included, so
``result.trace.queue_wait_s`` works the same remotely), and raises the
same :mod:`repro.errors` classes a local strict run would (rebuilt from
the daemon's error payloads, see :mod:`repro.serve.protocol`).
Transport-level failures -- connection refused, DNS, socket timeouts --
raise :class:`~repro.errors.ServeError` instead of leaking raw
``urllib`` exceptions.  Used by the ``swgate serve --send`` CLI path,
the ``swgate top`` monitor, the serve tests and the serving benchmark;
``urllib`` only, no third-party HTTP stack.
"""

import json
import urllib.error
import urllib.request

from repro.errors import ServeError
from repro.serve import protocol


class ServeClient:
    """Talks to one daemon at ``url`` (e.g. ``http://127.0.0.1:8077``).

    ``timeout`` (seconds) bounds every socket operation; per-call
    overrides ride on the individual methods' ``timeout=`` keyword.
    """

    def __init__(self, url, timeout=30.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def _request(self, method, path, payload=None, headers=None,
                 timeout=None):
        data = None
        all_headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            all_headers["Content-Type"] = "application/json"
        if headers:
            all_headers.update(headers)
        request = urllib.request.Request(
            self.url + path, data=data, headers=all_headers, method=method,
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            ) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as error:
            # Daemon error payloads ride on non-2xx statuses; read the
            # body so the caller can rebuild the typed exception.
            return error.code, error.read()
        except OSError as error:
            # URLError subclasses OSError, so this covers connection
            # refused, DNS failures and socket timeouts in one typed
            # class instead of leaking urllib internals.
            raise ServeError(
                f"cannot reach serving daemon at {self.url}: {error}"
            ) from error

    def _json(self, method, path, payload=None, headers=None,
              timeout=None):
        status, body = self._request(
            method, path, payload, headers=headers, timeout=timeout
        )
        try:
            decoded = json.loads(body)
        except ValueError:
            decoded = {}
        if status != 200:
            raise protocol.error_from_wire(decoded, status)
        return decoded

    # -- endpoints -----------------------------------------------------
    def run(self, netlist, assignments, faults=(), noise=None,
            strict=True, mode="phasor", cells=False, request_id=None,
            timeout=None):
        """Evaluate ``assignments`` on ``netlist`` through the daemon.

        Same contract as ``CircuitExecutor.run``; ``cells=True``
        additionally fetches the per-cell decode records.
        ``request_id`` rides as the ``X-Request-Id`` header and names
        this request in the daemon's traces and access log (omitted,
        the daemon mints one -- read it from ``result.trace``).
        """
        payload = protocol.encode_run_request(
            netlist, assignments, faults=faults, noise=noise,
            strict=strict, mode=mode, cells=cells,
        )
        headers = (
            {"X-Request-Id": str(request_id)}
            if request_id is not None else None
        )
        return protocol.result_from_wire(self._json(
            "POST", "/v1/run", payload, headers=headers, timeout=timeout,
        ))

    def healthz(self):
        """The daemon's liveness dict (status, uptime, queue depth)."""
        return self._json("GET", "/healthz")

    def stats(self):
        """Structured serving stats (executor counters, compile cache)."""
        return self._json("GET", "/stats")

    def logs(self, n=50, kind=None):
        """Recent structured events (access log, slow requests, errors,
        executor blocks), oldest first."""
        path = f"/logs?n={int(n)}"
        if kind is not None:
            path += f"&kind={kind}"
        return self._json("GET", path)

    def metrics(self, format="text"):
        """The ``/metrics`` export: rendered table (``"text"``), the
        registry ``snapshot()`` dict (``"json"``), or the Prometheus
        text exposition (``"prometheus"``)."""
        if format == "json":
            return self._json("GET", "/metrics?format=json")
        path = "/metrics"
        if format == "prometheus":
            path += "?format=prometheus"
        status, body = self._request("GET", path)
        text = body.decode("utf-8")
        if status != 200:
            raise RuntimeError(f"/metrics returned HTTP {status}: {text}")
        return text
