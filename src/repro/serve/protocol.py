"""JSON wire format of the circuit-serving daemon.

One module owns every encode/decode pair the HTTP layer speaks, so the
daemon (:mod:`repro.serve.daemon`) and the client
(:mod:`repro.serve.client`) stay bit-compatible by construction:

* netlists ride as :meth:`~repro.circuits.netlist.Netlist.to_dict`
  payloads (insertion order preserved, so the server-side rebuild has
  the *same* content hash and coalesces with identical submissions);
* faults and noise flatten to plain dicts mirroring
  :class:`~repro.circuits.engine.CellFault` /
  :class:`~repro.waveguide.NoiseModel` fields;
* results flatten outputs, expected, failure flags, per-level margin
  reports and (on request) per-cell decode detail;
* errors map onto HTTP statuses by class -- request/validation errors
  (:class:`~repro.errors.NetlistError`,
  :class:`~repro.errors.EncodingError`,
  :class:`~repro.errors.ArtifactError`) are 400s, physics-level strict
  failures (:class:`~repro.errors.SimulationError`,
  :class:`~repro.errors.ReadoutError`) are 422s, anything unexpected is
  a 500 -- and round-trip back into the same exception classes on the
  client, so ``client.run(...)`` raises exactly what the in-process
  ``executor.run(...)`` would have.

Dead decodes carry ``NaN`` margins; payloads therefore use Python's
JSON dialect (``allow_nan``), which both ends of this stack parse.

>>> from repro.circuits.netlist import Netlist
>>> netlist = Netlist("wire")
>>> _ = netlist.add_input("a")
>>> _ = netlist.add_cell("na", "INV", ("a",))
>>> _ = netlist.mark_output("na")
>>> payload = encode_run_request(netlist, [{"a": 1}])
>>> request = decode_run_request(payload)
>>> request.netlist.evaluate({"a": 1})
{'na': 0}
>>> request.mode, request.strict
('phasor', True)
>>> from repro.errors import SimulationError
>>> status, wire = error_to_wire(SimulationError("cell 'y' is dead"))
>>> status
422
>>> raised = error_from_wire(wire, status)
>>> type(raised).__name__, str(raised)
('SimulationError', "cell 'y' is dead")
"""

from dataclasses import dataclass

from repro import errors as _errors
from repro.circuits.engine import (
    CellFault,
    CellRecord,
    CircuitRunResult,
    LevelReport,
)
from repro.circuits.executor import RequestTrace
from repro.circuits.netlist import Netlist
from repro.core.faults import TransducerFault
from repro.errors import (
    ArtifactError,
    EncodingError,
    NetlistError,
    ReadoutError,
    ReproError,
    SimulationError,
)
from repro.waveguide.noise import NoiseModel

#: Wire protocol version, echoed by ``/healthz``.
PROTOCOL_VERSION = 1


# ----------------------------------------------------------------------
# Faults and noise
# ----------------------------------------------------------------------
def fault_to_wire(cell_fault):
    """Flatten one :class:`CellFault` to a JSON-pure dict."""
    fault = cell_fault.fault
    return {
        "cell": cell_fault.cell,
        "kind": fault.kind,
        "channel": fault.channel,
        "input_index": fault.input_index,
        "severity": fault.severity,
    }


def fault_from_wire(payload):
    """Rebuild one :class:`CellFault`; validation happens in the
    :class:`~repro.core.faults.TransducerFault` constructor."""
    if isinstance(payload, CellFault):
        return payload
    if not isinstance(payload, dict):
        raise NetlistError(f"malformed fault entry {payload!r}")
    try:
        fault = TransducerFault(
            kind=payload["kind"],
            channel=int(payload["channel"]),
            input_index=int(payload["input_index"]),
            severity=float(payload.get("severity", 0.5)),
        )
        return CellFault(cell=payload["cell"], fault=fault)
    except (KeyError, TypeError, ValueError) as exc:
        raise NetlistError(f"malformed fault entry {payload!r}") from exc


def noise_to_wire(noise):
    """Flatten a :class:`NoiseModel` (or None) to a dict (or None)."""
    if noise is None:
        return None
    return {
        "amplitude_sigma": noise.amplitude_sigma,
        "phase_sigma": noise.phase_sigma,
        "position_sigma": noise.position_sigma,
        "trace_sigma": noise.trace_sigma,
        "seed": noise.seed,
    }


#: NoiseModel field order of the wire dict.
_NOISE_FIELDS = (
    "amplitude_sigma", "phase_sigma", "position_sigma", "trace_sigma",
)


def noise_from_wire(payload):
    """Rebuild a :class:`NoiseModel` from its wire dict (or None)."""
    if payload is None or isinstance(payload, NoiseModel):
        return payload
    if not isinstance(payload, dict):
        raise NetlistError(f"malformed noise entry {payload!r}")
    unknown = set(payload) - set(_NOISE_FIELDS) - {"seed"}
    if unknown:
        raise NetlistError(
            f"unknown noise fields {sorted(unknown)!r}"
        )
    try:
        kwargs = {
            name: float(payload[name])
            for name in _NOISE_FIELDS if name in payload
        }
        return NoiseModel(seed=int(payload.get("seed", 0)), **kwargs)
    except (TypeError, ValueError) as exc:
        raise NetlistError(f"malformed noise entry {payload!r}") from exc


# ----------------------------------------------------------------------
# Run requests
# ----------------------------------------------------------------------
@dataclass
class RunRequest:
    """One decoded ``POST /v1/run`` body, ready for the executor."""

    netlist: Netlist
    assignments: list
    faults: list
    noise: object
    strict: bool
    mode: str
    cells: bool


def encode_run_request(netlist, assignments, faults=(), noise=None,
                       strict=True, mode="phasor", cells=False):
    """The ``POST /v1/run`` body for one evaluation request."""
    return {
        "netlist": netlist.to_dict(),
        "assignments": [dict(a) for a in assignments],
        "faults": [
            fault_to_wire(f) if isinstance(f, CellFault) else dict(f)
            for f in faults
        ],
        "noise": noise_to_wire(noise) if not isinstance(noise, dict)
        else dict(noise),
        "strict": bool(strict),
        "mode": mode,
        "cells": bool(cells),
    }


def decode_run_request(payload):
    """Parse one ``/v1/run`` body into a :class:`RunRequest`.

    Malformed payloads raise :class:`~repro.errors.NetlistError` (a
    400); semantic validation -- input presence, 0/1 values, fault
    ranges, mode names -- is left to ``CircuitExecutor.submit`` so the
    daemon raises byte-identical messages to the in-process path.
    """
    if not isinstance(payload, dict):
        raise NetlistError("run request body must be a JSON object")
    if "netlist" not in payload or "assignments" not in payload:
        raise NetlistError(
            "run request needs 'netlist' and 'assignments' fields"
        )
    assignments = payload["assignments"]
    if not isinstance(assignments, list) or not all(
        isinstance(a, dict) for a in assignments
    ):
        raise NetlistError(
            "'assignments' must be a list of {input: bit} objects"
        )
    return RunRequest(
        netlist=Netlist.from_dict(payload["netlist"]),
        assignments=assignments,
        faults=[fault_from_wire(f) for f in payload.get("faults", ())],
        noise=noise_from_wire(payload.get("noise")),
        strict=bool(payload.get("strict", True)),
        mode=payload.get("mode", "phasor"),
        cells=bool(payload.get("cells", False)),
    )


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def result_to_wire(result, include_cells=False):
    """Flatten one :class:`CircuitRunResult` for the HTTP response.

    Level reports (the margin data the conformance tests pin) always
    ride along; the full per-cell decode detail is opt-in
    (``include_cells`` / the request's ``"cells": true``) because it
    dwarfs the outputs for deep circuits.
    """
    wire = {
        "outputs": result.outputs,
        "expected": result.expected,
        "failed": list(result.failed),
        "n_entries": result.n_entries,
        "mode": result.mode,
        "correct": result.correct,
        "min_margin": result.min_margin,
        "faults": [fault_to_wire(f) for f in result.faults],
        "levels": [
            {
                "level": report.level,
                "n_cells": report.n_cells,
                "n_physical": report.n_physical,
                "min_margin": report.min_margin,
            }
            for report in result.levels
        ],
        # Per-request executor timing breakdown (None when the serving
        # executor runs with trace_requests=False).
        "trace": (
            result.trace.as_dict() if result.trace is not None else None
        ),
    }
    if include_cells:
        wire["cells"] = {
            name: {
                "operation": record.operation,
                "level": record.level,
                "bits": record.bits,
                "margins": record.margins,
                "amplitudes": record.amplitudes,
            }
            for name, record in result.cells.items()
        }
    return wire


def result_from_wire(payload):
    """Rebuild a :class:`CircuitRunResult` from a ``/v1/run`` response.

    The reconstruction carries everything the wire does -- outputs,
    expected, failure flags, level reports, faults and (when the
    request asked for them) per-cell records -- so client-side code
    consumes the same result type as in-process callers.
    """
    levels = [
        LevelReport(
            level=entry["level"],
            n_cells=entry["n_cells"],
            n_physical=entry["n_physical"],
            min_margin=entry["min_margin"],
        )
        for entry in payload.get("levels", ())
    ]
    cells = {
        name: CellRecord(
            name=name,
            operation=entry["operation"],
            level=entry["level"],
            bits=entry["bits"],
            margins=entry.get("margins"),
            amplitudes=entry.get("amplitudes"),
        )
        for name, entry in payload.get("cells", {}).items()
    }
    trace = payload.get("trace")
    if isinstance(trace, dict):
        trace = RequestTrace.from_dict(trace)
    return CircuitRunResult(
        outputs=payload["outputs"],
        expected=payload["expected"],
        failed=payload["failed"],
        levels=levels,
        cells=cells,
        n_entries=payload["n_entries"],
        faults=[fault_from_wire(f) for f in payload.get("faults", ())],
        mode=payload.get("mode", "phasor"),
        trace=trace,
    )


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------
#: Error class -> HTTP status.  First match in order wins, so the
#: request-shaped 400 classes list before the physics-shaped 422s and
#: the ReproError catch-all.
ERROR_STATUS = (
    (NetlistError, 400),
    (EncodingError, 400),
    (ArtifactError, 400),
    (SimulationError, 422),
    (ReadoutError, 422),
    (ReproError, 400),
)


def error_to_wire(exc):
    """``(http status, error payload)`` of one raised exception."""
    for klass, status in ERROR_STATUS:
        if isinstance(exc, klass):
            break
    else:
        status = 500
    return status, {
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }


def error_from_wire(payload, status):
    """The exception one error payload round-trips back into.

    Known :mod:`repro.errors` classes rebuild as themselves, so a
    remote strict decode failure raises the same
    :class:`~repro.errors.SimulationError` a local run would; anything
    else (daemon-side 500s included) surfaces as ``RuntimeError``.
    """
    entry = payload.get("error", {}) if isinstance(payload, dict) else {}
    name = entry.get("type", "")
    message = entry.get("message", f"server returned HTTP {status}")
    klass = getattr(_errors, name, None)
    if isinstance(klass, type) and issubclass(klass, ReproError):
        return klass(message)
    return RuntimeError(f"{name or 'HTTPError'} (HTTP {status}): {message}")
