"""``repro.obs`` -- unified metrics and tracing across the stack (PR 8).

Every hot path in the codebase -- compiled circuit execution, the
coalescing executor, waveform physics, the LLG kernels, the synthesis
pass pipeline -- answers "where did the time go?" through this one
layer instead of ad-hoc ``time.perf_counter()`` calls and bare counter
attributes.  It provides:

:class:`MetricsRegistry`
    A thread-safe store of **counters**, **gauges** and fixed-bucket
    **histograms**, plus an aggregated **span tree** of nested timed
    sections.  Counters, gauges and histogram observations always
    record (they are the serving statistics ``CircuitExecutor.stats``
    and the compile-cache hit counters render from); *timing*
    instrumentation -- :meth:`~MetricsRegistry.span`,
    :meth:`~MetricsRegistry.timer`, :meth:`~MetricsRegistry.timed` --
    is gated by the registry's ``enabled`` attribute and reduces to a
    single attribute check plus a shared no-op context manager when
    disabled, so instrumented hot loops cost nothing measurable with
    profiling off (pinned by a bench row in
    ``benchmarks/bench_circuit_throughput.py``).

Process-wide registry
    :func:`get_registry` returns the process-global registry that
    library-level instrumentation (compile stages, per-level GEMMs,
    waveguide cache hit rates, demag FFTs, LLG step counts, synthesis
    passes) writes to by default.  :func:`enable` / :func:`disable`
    flip its timing switch -- ``swgate ... --profile`` does exactly
    this and prints :func:`report` afterwards.  Components with
    *per-instance* serving statistics (:class:`CircuitExecutor`,
    :class:`CompiledCircuitCache`) own their own registries so two
    executors in one process never mix counts; :func:`report` merges
    any extra registries into one table.

Export
    :meth:`MetricsRegistry.snapshot` returns a JSON-pure dict (every
    value round-trips through :meth:`MetricsRegistry.to_json`);
    ``run_experiment(..., metrics=True)`` attaches one to each
    experiment result, and the ``--bench-json`` benchmarks embed
    efficiency metrics (cache hit rates, GEMM counts) that
    ``benchmarks/compare_bench.py`` diffs across PRs.
    :func:`render_prometheus` renders merged snapshots in the
    Prometheus text exposition format (cumulative buckets,
    ``_sum``/``_count``, sanitized names) so the serving daemon's
    ``/metrics?format=prometheus`` is scrapable by stock tooling.

:class:`EventLog`
    A bounded thread-safe ring of JSON-pure structured events with an
    optional JSON-lines file sink -- the serving daemon's access log,
    slow-request captures and per-class error events (``GET /logs``,
    ``swgate serve --access-log PATH``).

>>> registry = MetricsRegistry(enabled=True)
>>> registry.inc("requests")
>>> registry.inc("requests", 2)
>>> with registry.span("compile"):
...     with registry.span("levelise"):
...         pass
>>> registry.snapshot()["counters"]["requests"]
3
>>> [node["name"] for node in registry.snapshot()["spans"]]
['compile']
>>> registry.disable()
>>> with registry.span("never-recorded"):
...     pass
>>> len(registry.snapshot()["spans"])
1
"""

import functools
import json
import math
import re
import threading
import time
from collections import deque
from contextlib import contextmanager

#: Default histogram bucket upper bounds, in seconds -- log-spaced to
#: cover everything from a no-op span (~1e-7 s) to a slow experiment.
DEFAULT_TIME_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


class _NoopSpan:
    """Shared do-nothing context manager: the disabled fast path.

    One instance serves every disabled ``span()``/``timer()`` call, so
    the cost of instrumentation with profiling off is one attribute
    check and two trivial method calls -- no allocation, no clock read.
    """

    __slots__ = ()
    elapsed = 0.0

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP_SPAN = _NoopSpan()


class _Span:
    """One live timed section; aggregates into the registry's span tree."""

    __slots__ = ("_registry", "name", "_start", "elapsed")

    def __init__(self, registry, name):
        self._registry = registry
        self.name = name
        self.elapsed = None

    def __enter__(self):
        self._registry._push(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.elapsed = time.perf_counter() - self._start
        self._registry._pop(self.elapsed)
        return False


class _Timer:
    """Timed section recording into a histogram instead of the tree."""

    __slots__ = ("_registry", "name", "_start", "elapsed")

    def __init__(self, registry, name):
        self._registry = registry
        self.name = name
        self.elapsed = None

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.elapsed = time.perf_counter() - self._start
        self._registry.observe(self.name, self.elapsed)
        return False


class _Histogram:
    """Fixed-bucket histogram plus running count/sum/min/max."""

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds):
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(
                f"histogram bounds must be sorted, got {bounds!r}"
            )
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value):
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def as_dict(self):
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "mean": self.total / self.count if self.count else None,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class _SpanNode:
    """Aggregated node of the span tree (same-name siblings merge)."""

    __slots__ = ("name", "count", "total", "children")

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.children = {}

    def child(self, name):
        node = self.children.get(name)
        if node is None:
            node = _SpanNode(name)
            self.children[name] = node
        return node

    def as_dict(self):
        return {
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "children": [c.as_dict() for c in self.children.values()],
        }


class MetricsRegistry:
    """Thread-safe counters, gauges, histograms and nested span tracing.

    Parameters
    ----------
    enabled:
        Gates *timing* instrumentation only (:meth:`span`,
        :meth:`timer`, :meth:`timed`, :meth:`record`).  Counters,
        gauges and explicit histogram observations always record --
        they are the always-on serving statistics.  ``None`` (default)
        inherits the process-wide profiling switch at construction
        time (see :func:`enable`).

    Every mutating method takes the registry lock, so concurrent
    writers from multiple threads never lose updates; span nesting is
    tracked per thread (each thread owns its own stack, all merging
    into one aggregated tree).
    """

    def __init__(self, enabled=None):
        self.enabled = _PROFILING if enabled is None else bool(enabled)
        self._lock = threading.Lock()
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self._span_root = _SpanNode("<root>")
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Switches
    # ------------------------------------------------------------------
    def enable(self):
        """Turn timing instrumentation (spans/timers) on."""
        self.enabled = True

    def disable(self):
        """Turn timing instrumentation off (counters keep recording)."""
        self.enabled = False

    # ------------------------------------------------------------------
    # Counters and gauges (always on)
    # ------------------------------------------------------------------
    def inc(self, name, value=1):
        """Add ``value`` to counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def counter(self, name):
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def gauge(self, name, value):
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name, value, bounds=DEFAULT_TIME_BUCKETS):
        """Record ``value`` into histogram ``name`` (created on first use).

        ``bounds`` only matters on the creating call; later observations
        reuse the existing buckets.
        """
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = _Histogram(bounds)
                self._histograms[name] = histogram
            histogram.observe(value)

    def histogram(self, name):
        """Snapshot dict of histogram ``name``, or None."""
        with self._lock:
            histogram = self._histograms.get(name)
            return None if histogram is None else histogram.as_dict()

    # ------------------------------------------------------------------
    # Timing instrumentation (gated by ``enabled``)
    # ------------------------------------------------------------------
    def span(self, name):
        """Context manager timing one nested section of the span tree.

        Disabled registries return a shared no-op object -- the fast
        path is one attribute check.
        """
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, name)

    def timer(self, name):
        """Context manager observing its elapsed seconds into a histogram."""
        if not self.enabled:
            return _NOOP_SPAN
        return _Timer(self, name)

    def timed(self, name):
        """Decorator: run the wrapped callable inside ``span(name)``."""

        def decorate(func):
            @functools.wraps(func)
            def wrapper(*args, **kwargs):
                if not self.enabled:
                    return func(*args, **kwargs)
                with self.span(name):
                    return func(*args, **kwargs)

            return wrapper

        return decorate

    def record(self, name, elapsed):
        """Append one pre-measured leaf span under the current position.

        The migration hook for code that already measured a duration
        (e.g. the synthesis pass pipeline's ``PassStats.elapsed``):
        records exactly like ``with span(name)`` would have, without
        re-timing.  No-op when disabled.
        """
        if not self.enabled:
            return
        self._push(name)
        self._pop(elapsed)

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, name):
        self._stack().append(name)

    def _pop(self, elapsed):
        stack = self._stack()
        path = tuple(stack)
        stack.pop()
        with self._lock:
            node = self._span_root
            for name in path:
                node = node.child(name)
            node.count += 1
            node.total += elapsed

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self):
        """JSON-pure dict of everything recorded so far."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: h.as_dict()
                    for name, h in self._histograms.items()
                },
                "spans": [
                    c.as_dict() for c in self._span_root.children.values()
                ],
            }

    def to_json(self, indent=2):
        """The snapshot serialised as JSON text."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self):
        """Drop every counter, gauge, histogram and span."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._span_root = _SpanNode("<root>")

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_spans(self):
        """Multi-line span-tree profile (name, calls, total ms)."""
        snapshot = self.snapshot()
        lines = []

        def walk(node, depth):
            lines.append(
                f"  {'  ' * depth}{node['name']:{32 - 2 * depth}s} "
                f"{node['count']:>6d} calls  "
                f"{node['total'] * 1e3:>10.2f} ms"
            )
            for child in node["children"]:
                walk(child, depth + 1)

        for root in snapshot["spans"]:
            walk(root, 0)
        if not lines:
            return "span tree: (empty -- enable profiling to trace)"
        header = (
            f"  {'span':32s} {'calls':>12s}  {'total':>13s}"
        )
        return "\n".join(["span tree:", header] + lines)

    def render_metrics(self):
        """Multi-line counters / gauges / histograms table."""
        return render_metrics([self.snapshot()])


def merge_snapshots(snapshots):
    """Merge registry snapshot dicts into one counters/gauges/histograms view.

    Counters sum across snapshots, gauges take the last write and
    histograms merge counts/count/sum/min/max -- so a process-global
    registry and a component's private registry export as one surface
    (the merged table of :func:`render_metrics` and the Prometheus
    exposition of :func:`render_prometheus` both build on this).
    """
    counters = {}
    gauges = {}
    histograms = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        gauges.update(snapshot.get("gauges", {}))
        for name, h in snapshot.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = dict(h)
            else:
                merged["count"] += h["count"]
                merged["sum"] += h["sum"]
                for bound in ("min", "max"):
                    values = [
                        v for v in (merged[bound], h[bound])
                        if v is not None
                    ]
                    merged[bound] = (
                        (min(values) if bound == "min" else max(values))
                        if values else None
                    )
                merged["counts"] = [
                    a + b for a, b in zip(merged["counts"], h["counts"])
                ]
                merged["mean"] = (
                    merged["sum"] / merged["count"]
                    if merged["count"] else None
                )
    return {
        "counters": counters, "gauges": gauges, "histograms": histograms,
    }


def render_metrics(snapshots):
    """Render one merged metrics table from snapshot dicts.

    Counters sum across snapshots, gauges take the last write and
    histograms merge count/sum/min/max -- so a process-global registry
    and a component's private registry print as one table.
    """
    merged = merge_snapshots(snapshots)
    counters = merged["counters"]
    gauges = merged["gauges"]
    histograms = merged["histograms"]
    lines = ["metrics:"]
    for name in sorted(counters):
        lines.append(f"  {name:44s} {counters[name]:>12}")
    for name in sorted(gauges):
        value = gauges[name]
        shown = f"{value:.6g}" if isinstance(value, float) else str(value)
        lines.append(f"  {name:44s} {shown:>12}")
    for name in sorted(histograms):
        h = histograms[name]
        if not h["count"]:
            continue
        lines.append(
            f"  {name:44s} n={h['count']} mean={h['mean']:.3g} "
            f"min={h['min']:.3g} max={h['max']:.3g}"
        )
    if len(lines) == 1:
        return "metrics: (none recorded)"
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
#: Content-Type of the Prometheus text exposition format.  Stock
#: scrapers require the ``version=0.0.4`` parameter and reject generic
#: ``text/plain`` responses.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name):
    """Sanitize a metric name into the Prometheus grammar.

    Prometheus names match ``[a-zA-Z_:][a-zA-Z0-9_:]*``; the registry's
    dotted names (``executor.queue_latency_s``) become underscore form
    (``executor_queue_latency_s``).

    >>> prometheus_name("executor.errors.decode")
    'executor_errors_decode'
    >>> prometheus_name("9lives")
    '_9lives'
    """
    sanitized = _PROM_INVALID.sub("_", str(name))
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] in "_:"):
        sanitized = "_" + sanitized
    return sanitized


def _prometheus_value(value):
    """One sample value in Prometheus text syntax."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def render_prometheus(snapshots):
    """Render snapshot dicts in the Prometheus text exposition format.

    Counters export with the conventional ``_total`` suffix, gauges
    verbatim (non-numeric gauge values are skipped -- Prometheus samples
    are floats), and histograms as cumulative ``_bucket{le="..."}``
    series closed by ``le="+Inf"`` plus the ``_sum``/``_count`` pair, so
    ``/metrics?format=prometheus`` is scrapable by stock tooling.
    Snapshots merge exactly as in :func:`render_metrics`
    (:func:`merge_snapshots`).

    >>> registry = MetricsRegistry()
    >>> registry.inc("executor.requests", 3)
    >>> registry.observe("wait", 0.5, bounds=(1.0, 2.0))
    >>> print(render_prometheus([registry.snapshot()]))
    # TYPE executor_requests_total counter
    executor_requests_total 3
    # TYPE wait histogram
    wait_bucket{le="1"} 1
    wait_bucket{le="2"} 1
    wait_bucket{le="+Inf"} 1
    wait_sum 0.5
    wait_count 1
    <BLANKLINE>
    """
    merged = merge_snapshots(snapshots)
    lines = []
    for name in sorted(merged["counters"]):
        prom = prometheus_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prometheus_value(merged['counters'][name])}")
    for name in sorted(merged["gauges"]):
        value = merged["gauges"][name]
        if not isinstance(value, (int, float)):
            continue
        prom = prometheus_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prometheus_value(value)}")
    for name in sorted(merged["histograms"]):
        h = merged["histograms"][name]
        prom = prometheus_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, count in zip(h["bounds"], h["counts"]):
            cumulative += count
            lines.append(
                f'{prom}_bucket{{le="{format(float(bound), "g")}"}} '
                f"{cumulative}"
            )
        lines.append(f'{prom}_bucket{{le="+Inf"}} {h["count"]}')
        lines.append(f"{prom}_sum {_prometheus_value(h['sum'])}")
        lines.append(f"{prom}_count {h['count']}")
    return "\n".join(lines) + "\n"


def histogram_quantile(histogram, q):
    """Upper-bound quantile estimate from one histogram snapshot dict.

    Walks the cumulative bucket counts and returns the upper bound of
    the bucket containing quantile ``q`` (observations in the overflow
    bucket report the observed ``max``).  ``None`` when the histogram is
    missing or empty.  This is the estimator ``swgate top`` uses for
    p50/p99 queue and request latency.

    >>> h = {"bounds": [1.0, 2.0], "counts": [8, 1, 1], "count": 10,
    ...      "max": 5.0}
    >>> histogram_quantile(h, 0.5)
    1.0
    >>> histogram_quantile(h, 0.99)
    5.0
    """
    if not histogram or not histogram.get("count"):
        return None
    target = q * histogram["count"]
    cumulative = 0
    for bound, count in zip(histogram["bounds"], histogram["counts"]):
        cumulative += count
        if cumulative >= target:
            return float(bound)
    return histogram.get("max")


# ----------------------------------------------------------------------
# Structured event log
# ----------------------------------------------------------------------
def _json_pure(value):
    """Coerce ``value`` into the JSON-pure subset the event ring holds."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _json_pure(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_pure(v) for v in value]
    # numpy scalars (np.int64 block words, np.float64 latencies) carry
    # their native value through .item(); anything else stringifies.
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _json_pure(value.item())
        except (TypeError, ValueError):
            pass
    return str(value)


class EventLog:
    """Bounded thread-safe ring of JSON-pure structured events.

    The serving daemon's access log, slow-request captures and
    per-class error events all land here: each :meth:`emit` stamps a
    monotone sequence number, a wall-clock timestamp and a ``kind``,
    coerces every field into the JSON-pure subset (anything exotic
    stringifies), appends to a fixed-capacity ring (oldest events drop,
    counted by :attr:`dropped`) and -- when a ``sink`` is configured --
    appends one JSON line to it (``swgate serve --access-log PATH``).

    >>> log = EventLog(capacity=2)
    >>> _ = log.emit("access", path="/healthz", status=200)
    >>> _ = log.emit("access", path="/v1/run", status=200)
    >>> _ = log.emit("error", path="/v1/run", status=400)
    >>> [e["kind"] for e in log.tail()]
    ['access', 'error']
    >>> log.dropped
    1
    >>> [e["path"] for e in log.tail(kind="error")]
    ['/v1/run']
    """

    def __init__(self, capacity=512, sink=None):
        if capacity < 1:
            raise ValueError(
                f"event log capacity must be >= 1, got {capacity!r}"
            )
        self.capacity = int(capacity)
        self._events = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._dropped = 0
        self._owns_sink = False
        if sink is None or hasattr(sink, "write"):
            self._sink = sink
        else:
            self._sink = open(sink, "a", encoding="utf-8")
            self._owns_sink = True

    def __len__(self):
        with self._lock:
            return len(self._events)

    @property
    def dropped(self):
        """Events pushed out of the ring by the capacity bound."""
        with self._lock:
            return self._dropped

    def emit(self, kind, **fields):
        """Record one event; returns the stored (JSON-pure) dict."""
        event = {"kind": str(kind)}
        for name, value in fields.items():
            event[name] = _json_pure(value)
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            event["ts"] = time.time()
            if len(self._events) == self.capacity:
                self._dropped += 1
            self._events.append(event)
            if self._sink is not None:
                self._sink.write(json.dumps(event, sort_keys=True) + "\n")
                self._sink.flush()
        return event

    def tail(self, n=50, kind=None):
        """The most recent ``n`` events (oldest first), optionally
        filtered to one ``kind``; ``n=None`` returns everything held."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e["kind"] == kind]
        if n is not None and n >= 0:
            events = events[len(events) - min(n, len(events)):]
        return events

    def clear(self):
        """Drop every held event (the sink file is left as written)."""
        with self._lock:
            self._events.clear()

    def close(self):
        """Flush and close a sink this log opened itself."""
        with self._lock:
            if self._sink is not None and self._owns_sink:
                self._sink.close()
            self._sink = None
            self._owns_sink = False


# ----------------------------------------------------------------------
# Process-wide registry and conveniences
# ----------------------------------------------------------------------
_PROFILING = False
_REGISTRY = MetricsRegistry(enabled=False)


def get_registry():
    """The process-global registry library instrumentation writes to."""
    return _REGISTRY


def set_registry(registry):
    """Replace the process-global registry; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


@contextmanager
def use_registry(registry):
    """Temporarily route global instrumentation into ``registry``."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def enable():
    """Enable timing instrumentation process-wide.

    Flips the global registry's switch and the default inherited by
    registries constructed afterwards (``MetricsRegistry(enabled=None)``,
    the executor/cache per-instance default).
    """
    global _PROFILING
    _PROFILING = True
    _REGISTRY.enable()


def disable():
    """Disable timing instrumentation process-wide."""
    global _PROFILING
    _PROFILING = False
    _REGISTRY.disable()


def profiling():
    """True when :func:`enable` is in effect."""
    return _PROFILING


def span(name):
    """``get_registry().span(name)`` -- the library instrumentation hook."""
    return _REGISTRY.span(name)


def timer(name):
    """``get_registry().timer(name)``."""
    return _REGISTRY.timer(name)


def inc(name, value=1):
    """``get_registry().inc(name, value)``."""
    _REGISTRY.inc(name, value)


def observe(name, value, bounds=DEFAULT_TIME_BUCKETS):
    """``get_registry().observe(name, value)``."""
    _REGISTRY.observe(name, value, bounds=bounds)


def record(name, elapsed):
    """``get_registry().record(name, elapsed)``."""
    _REGISTRY.record(name, elapsed)


def timed(name):
    """Decorator timing calls on the *current* global registry."""

    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            registry = _REGISTRY
            if not registry.enabled:
                return func(*args, **kwargs)
            with registry.span(name):
                return func(*args, **kwargs)

        return wrapper

    return decorate


def report(extra=None):
    """Span-tree profile + merged metrics table, ready to print.

    ``extra`` lists additional registries (e.g. an executor's private
    one) whose counters and histograms merge into the metrics table;
    the span tree always comes from the global registry, where all
    library-level tracing lands.
    """
    snapshots = [_REGISTRY.snapshot()]
    for registry in extra or ():
        snapshots.append(registry.snapshot())
    return "\n".join(
        [_REGISTRY.render_spans(), "", render_metrics(snapshots)]
    )
