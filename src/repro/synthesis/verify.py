"""Equivalence checking and physical confirmation of mappings.

Every synthesis result is checked twice:

* **Boolean** -- :func:`verify_equivalence` compares a mapped netlist
  against its specification (a MIG, another netlist, or a plain
  callable) through the vectorised evaluators, exhaustively up to
  :data:`MAX_EXHAUSTIVE_INPUTS` primary inputs and by seeded random
  sampling above that;
* **physical** -- :func:`verify_physical` executes the netlist on
  :class:`~repro.circuits.engine.CircuitEngine` (steady-state phasor
  and, optionally, full time-domain trace semantics) and checks the
  decoded words against the Boolean reference, reporting the worst
  per-level decode margin seen.
"""

import itertools
from dataclasses import dataclass

import numpy as np

from repro.errors import SynthesisError

#: Input counts up to this verify over all 2**n assignments.
MAX_EXHAUSTIVE_INPUTS = 12


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of one Boolean equivalence check."""

    equivalent: bool
    n_vectors: int
    exhaustive: bool
    counterexample: dict = None  # first mismatching assignment
    mismatched_outputs: tuple = ()

    def describe(self):
        """One-line verdict for reports."""
        coverage = (
            "exhaustive" if self.exhaustive
            else f"{self.n_vectors} sampled vectors"
        )
        if self.equivalent:
            return f"equivalent ({coverage})"
        return (
            f"NOT equivalent ({coverage}): outputs "
            f"{sorted(self.mismatched_outputs)} differ on "
            f"{self.counterexample}"
        )


def input_vectors(input_names, max_exhaustive=MAX_EXHAUSTIVE_INPUTS,
                  n_samples=256, seed=0):
    """Assignment batch: exhaustive when small, seeded sampling above.

    Returns ``(batch, exhaustive)``.
    """
    input_names = list(input_names)
    if not input_names:
        raise SynthesisError("specification has no inputs")
    n = len(input_names)
    if n <= max_exhaustive:
        batch = [
            dict(zip(input_names, bits))
            for bits in itertools.product((0, 1), repeat=n)
        ]
        return batch, True
    rng = np.random.default_rng(seed)
    columns = rng.integers(0, 2, size=(int(n_samples), n))
    batch = [
        {name: int(row[k]) for k, name in enumerate(input_names)}
        for row in columns
    ]
    return batch, False


def random_input_batch(input_names, n_entries, rng=None, seed=0):
    """``n_entries`` seeded-random assignments over ``input_names``.

    The shared batch builder of :func:`verify_physical`, the
    ``synthesis-gain`` experiment and the synthesis benchmarks -- one
    place to change if assignment sampling ever becomes stratified.
    """
    input_names = list(input_names)
    if rng is None:
        rng = np.random.default_rng(seed)
    return [
        {name: int(rng.integers(2)) for name in input_names}
        for _ in range(int(n_entries))
    ]


def _evaluate_reference(reference, batch):
    """{output: bits} from a MIG / Netlist / callable specification."""
    evaluate_batch = getattr(reference, "evaluate_batch", None)
    if callable(evaluate_batch):
        return evaluate_batch(batch)
    if callable(reference):
        outputs = {}
        for assignment in batch:
            result = reference(assignment)
            for name, bit in result.items():
                outputs.setdefault(name, []).append(int(bit))
        return outputs
    raise SynthesisError(
        f"reference {reference!r} is neither evaluable nor callable"
    )


def verify_equivalence(netlist, reference, max_exhaustive=None,
                       n_samples=256, seed=0):
    """Check ``netlist`` against ``reference`` on a shared vector set.

    ``reference`` may be a :class:`~repro.synthesis.mig.MIG`, another
    :class:`~repro.circuits.netlist.Netlist`, or a callable mapping one
    assignment dict to an output dict.  Output name sets must match
    exactly.  Returns an :class:`EquivalenceReport`.
    """
    if max_exhaustive is None:
        max_exhaustive = MAX_EXHAUSTIVE_INPUTS
    batch, exhaustive = input_vectors(
        netlist.inputs, max_exhaustive=max_exhaustive,
        n_samples=n_samples, seed=seed,
    )
    got = netlist.evaluate_batch(batch)
    want = _evaluate_reference(reference, batch)
    if set(got) != set(want):
        raise SynthesisError(
            f"output sets differ: netlist {sorted(got)} vs "
            f"reference {sorted(want)}"
        )
    mismatched = []
    counterexample = None
    for name in got:
        for index, (a, b) in enumerate(zip(got[name], want[name])):
            if a != b:
                mismatched.append(name)
                if counterexample is None:
                    counterexample = dict(batch[index])
                break
    return EquivalenceReport(
        equivalent=not mismatched,
        n_vectors=len(batch),
        exhaustive=exhaustive,
        counterexample=counterexample,
        mismatched_outputs=tuple(mismatched),
    )


@dataclass(frozen=True)
class PhysicalReport:
    """Outcome of executing a mapping on the circuit engine."""

    mode: str
    correct: bool
    n_entries: int
    word_errors: int
    min_margin: float = None

    def describe(self):
        """One-line verdict for reports."""
        margin = (
            "-" if self.min_margin is None else f"{self.min_margin:.3f}"
        )
        verdict = "physics matches logic" if self.correct else (
            f"{self.word_errors}/{self.n_entries} word errors"
        )
        return f"{self.mode}: {verdict}, min margin {margin}"


def verify_physical(netlist, n_bits=4, n_entries=None, modes=("phasor",),
                    seed=0, engine=None, **engine_kwargs):
    """Run ``netlist`` on the physical engine; one report per mode.

    ``n_entries`` defaults to one word group (``n_bits`` assignments);
    assignments are seeded-random over the primary inputs.  Returns
    ``{mode: PhysicalReport}``.
    """
    from repro.circuits.engine import CircuitEngine

    if engine is None:
        engine = CircuitEngine(netlist, n_bits=n_bits, **engine_kwargs)
    if n_entries is None:
        n_entries = engine.n_bits
    batch = random_input_batch(netlist.inputs, n_entries, seed=seed)
    reports = {}
    for mode in modes:
        result = engine.run(batch, strict=False, mode=mode)
        reports[mode] = PhysicalReport(
            mode=mode,
            correct=result.correct,
            n_entries=result.n_entries,
            word_errors=result.word_errors,
            min_margin=result.min_margin,
        )
    return reports
