"""A small Boolean-expression front end for the MIG builder.

Grammar (lowest to highest precedence)::

    expr    := xorexp ('|' xorexp)*
    xorexp  := andexp ('^' andexp)*
    andexp  := unary ('&' unary)*
    unary   := '~' unary | atom
    atom    := '0' | '1' | identifier | 'maj' '(' expr ',' expr ',' expr ')'
             | '(' expr ')'

Identifiers become primary inputs on first use (shared across the
expressions of one specification), ``maj(...)`` builds a majority node
directly, and the derived operators lower to their majority forms
(``a & b -> MAJ(a, b, 0)``, ``a | b -> MAJ(a, b, 1)``).  The builder is
naive by design -- repeated subexpressions produce repeated nodes, which
the optimization passes then share -- so parsed specifications exercise
the whole pipeline.

>>> mig = parse_spec({"carry": "maj(a, b, c)", "sum": "a ^ b ^ c"})
>>> sorted(mig.inputs)
['a', 'b', 'c']
>>> mig.evaluate({"a": 1, "b": 1, "c": 0})
{'carry': 1, 'sum': 0}
>>> parse_expression("~(a & b) | 0").evaluate({"a": 1, "b": 0})["out"]
1
"""

import re

from repro.errors import SynthesisError
from repro.synthesis.mig import MIG

_TOKEN = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z0-9_]*)|(?P<const>[01])"
    r"|(?P<op>[&|^~(),]))"
)

#: ``maj`` is a keyword, not an input name.
_MAJ = "maj"


def tokenize(text):
    """Token list of ``text``; raises on anything outside the grammar."""
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:  # only trailing whitespace left
                break
            raise SynthesisError(
                f"unexpected character {remainder[0]!r} in expression "
                f"{text!r}"
            )
        if match.group("name"):
            tokens.append(("name", match.group("name")))
        elif match.group("const"):
            tokens.append(("const", int(match.group("const"))))
        elif match.group("op"):
            tokens.append(("op", match.group("op")))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser emitting MIG literals."""

    def __init__(self, tokens, mig, text):
        self.tokens = tokens
        self.position = 0
        self.mig = mig
        self.text = text
        # Inputs shared across expressions of one spec.
        self.literals = mig.input_literals()

    def peek(self):
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return (None, None)

    def take(self, kind=None, value=None):
        token_kind, token_value = self.peek()
        if token_kind is None:
            raise SynthesisError(f"unexpected end of expression {self.text!r}")
        if kind is not None and token_kind != kind:
            raise SynthesisError(
                f"expected {kind} but found {token_value!r} in {self.text!r}"
            )
        if value is not None and token_value != value:
            raise SynthesisError(
                f"expected {value!r} but found {token_value!r} in "
                f"{self.text!r}"
            )
        self.position += 1
        return token_value

    def parse(self):
        literal = self.expr()
        if self.peek() != (None, None):
            raise SynthesisError(
                f"trailing tokens after expression in {self.text!r}"
            )
        return literal

    def expr(self):
        literal = self.xorexp()
        while self.peek() == ("op", "|"):
            self.take()
            literal = self.mig.or_(literal, self.xorexp())
        return literal

    def xorexp(self):
        literal = self.andexp()
        while self.peek() == ("op", "^"):
            self.take()
            literal = self.mig.xor(literal, self.andexp())
        return literal

    def andexp(self):
        literal = self.unary()
        while self.peek() == ("op", "&"):
            self.take()
            literal = self.mig.and_(literal, self.unary())
        return literal

    def unary(self):
        if self.peek() == ("op", "~"):
            self.take()
            return self.mig.inv(self.unary())
        return self.atom()

    def atom(self):
        kind, value = self.peek()
        if kind == "const":
            self.take()
            return self.mig.const(value)
        if kind == "name" and value == _MAJ:
            self.take()
            self.take("op", "(")
            a = self.expr()
            self.take("op", ",")
            b = self.expr()
            self.take("op", ",")
            c = self.expr()
            self.take("op", ")")
            return self.mig.maj(a, b, c)
        if kind == "name":
            self.take()
            if value not in self.literals:
                self.literals[value] = self.mig.add_input(value)
            return self.literals[value]
        if (kind, value) == ("op", "("):
            self.take()
            literal = self.expr()
            self.take("op", ")")
            return literal
        if kind is None:
            raise SynthesisError(
                f"unexpected end of expression {self.text!r}"
            )
        raise SynthesisError(
            f"unexpected token {value!r} in expression {self.text!r}"
        )


def parse_into(mig, text):
    """Parse ``text`` into ``mig``; returns the expression's literal.

    New identifiers become primary inputs of ``mig``; identifiers that
    already name inputs are reused, so multi-output specifications share
    their input nodes.
    """
    tokens = tokenize(text)
    if not tokens:
        raise SynthesisError("empty expression")
    return _Parser(tokens, mig, text).parse()


def parse_expression(text, name="out", output=None):
    """A fresh one-output MIG computing ``text``.

    ``output`` (default ``"out"`` via ``name``) names the single output.
    """
    output = output if output is not None else name
    mig = MIG(output)
    mig.set_output(output, parse_into(mig, text))
    return mig


def parse_spec(expressions, name="spec"):
    """A MIG computing every ``{output name: expression}`` entry.

    Expressions share input nodes by identifier; outputs register in
    the dict's iteration order.
    """
    if not expressions:
        raise SynthesisError("no output expressions supplied")
    mig = MIG(name)
    for output, text in expressions.items():
        mig.set_output(output, parse_into(mig, text))
    return mig
