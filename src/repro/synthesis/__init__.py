"""Logic-synthesis front end: Boolean specifications to physical netlists.

The layer every new workload enters through.  Four stages, mirroring a
production transpiler pipeline (front-end IR, optimization passes,
technology mapping, verification):

1. **Ingestion** -- :class:`~repro.synthesis.mig.MIG` (majority-inverter
   graph with first-class XOR and free complemented edges) built from
   truth tables (:func:`~repro.synthesis.table.from_truth_table`),
   Boolean expressions (:func:`~repro.synthesis.parse.parse_spec`,
   with ``&``, ``|``, ``^``, ``~`` and ``maj(...)``), or programmatic
   construction.
2. **Optimization** -- :func:`~repro.synthesis.passes.optimize` runs
   the pass pipeline (constant propagation, inverter push, structural
   hashing, depth-oriented associativity rebalancing, dead-node
   elimination) to a fixpoint with per-pass statistics.
3. **Technology mapping** -- :func:`~repro.synthesis.mapping.to_netlist`
   lowers the MIG onto the physical ``MAJ3``/``XOR2`` library with free
   ``INV``/``BUF`` polarity cells
   (:data:`~repro.circuits.library.PHYSICAL_BINDINGS`), reported
   through :func:`~repro.circuits.estimate.circuit_cost`.
4. **Verification** -- :func:`~repro.synthesis.verify.verify_equivalence`
   (exhaustive or seeded-sampled Boolean check) and
   :func:`~repro.synthesis.verify.verify_physical` (execution on
   :class:`~repro.circuits.engine.CircuitEngine` in phasor and trace
   modes).

:func:`~repro.synthesis.flow.synthesize` runs stages 2-4 in one call;
:mod:`~repro.synthesis.suite` ships the benchmark circuits the
``synthesis-gain`` experiment and ``bench_synthesis`` track.
"""

from repro.synthesis.mig import CONST0, CONST1, MIG, MigNode
from repro.synthesis.parse import parse_expression, parse_into, parse_spec
from repro.synthesis.table import from_truth_table, truth_table_of
from repro.synthesis.passes import (
    AssociativityRebalance,
    ConstantPropagation,
    DeadNodeElimination,
    InverterPush,
    PassStats,
    StructuralHashing,
    default_passes,
    optimize,
)
from repro.synthesis.mapping import (
    MappingReport,
    mapping_report,
    physical_cell_count,
    physical_depth,
    to_netlist,
)
from repro.synthesis.verify import (
    EquivalenceReport,
    PhysicalReport,
    input_vectors,
    verify_equivalence,
    verify_physical,
)
from repro.synthesis.flow import SynthesisResult, synthesize
from repro.synthesis.suite import SuiteCircuit, get_circuit, suite

__all__ = [
    "MIG",
    "MigNode",
    "CONST0",
    "CONST1",
    "parse_expression",
    "parse_into",
    "parse_spec",
    "from_truth_table",
    "truth_table_of",
    "optimize",
    "default_passes",
    "PassStats",
    "ConstantPropagation",
    "InverterPush",
    "StructuralHashing",
    "AssociativityRebalance",
    "DeadNodeElimination",
    "to_netlist",
    "mapping_report",
    "MappingReport",
    "physical_cell_count",
    "physical_depth",
    "verify_equivalence",
    "verify_physical",
    "input_vectors",
    "EquivalenceReport",
    "PhysicalReport",
    "synthesize",
    "SynthesisResult",
    "suite",
    "get_circuit",
    "SuiteCircuit",
]
