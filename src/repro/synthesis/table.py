"""Truth-table ingestion: arbitrary Boolean functions into the MIG.

A function of ``n`` inputs is given as its output column over all
``2**n`` assignments, indexed little-endian (row ``i`` assigns input
``k`` the bit ``(i >> k) & 1`` -- the convention of
:func:`repro.core.encoding.int_to_bits`).  Construction is a memoised
Shannon decomposition: each cofactor pair merges through a majority-form
multiplexer on the split variable, constants terminate the recursion,
and equal cofactors skip their variable entirely.  The emitted graph is
*structurally* naive (each distinct cofactor builds once, but no
cross-output sharing beyond the memo) -- the optimization passes take it
from there.

>>> mig = from_truth_table("01101001", inputs=("a", "b", "c"))  # parity
>>> mig.evaluate({"a": 1, "b": 1, "c": 0})
{'f': 0}
>>> mig.evaluate({"a": 1, "b": 1, "c": 1})
{'f': 1}
>>> from_truth_table([0, 1, 1, 1], inputs=("x", "y")).evaluate(
...     {"x": 1, "y": 0})
{'f': 1}
"""

from repro.errors import SynthesisError
from repro.synthesis.mig import MIG


def _normalise_column(column):
    if isinstance(column, str):
        column = [c for c in column.strip()]
    bits = []
    for value in column:
        if value in (0, 1):
            bits.append(int(value))
        elif value in ("0", "1"):
            bits.append(int(value))
        else:
            raise SynthesisError(
                f"truth-table entries must be 0/1, got {value!r}"
            )
    return tuple(bits)


def from_truth_table(column, inputs=None, output="f", mig=None, name=None):
    """Build (or extend) a MIG computing one truth-table column.

    Parameters
    ----------
    column:
        ``2**n`` output bits as a sequence or a '0'/'1' string, row ``i``
        little-endian over the inputs.
    inputs:
        Input names; default ``x0..x{n-1}``.  When ``mig`` is given,
        names that already exist are reused.
    output:
        Output name to register.
    mig:
        Optional existing MIG to extend (multi-output specs).
    """
    bits = _normalise_column(column)
    n_rows = len(bits)
    if n_rows == 0 or n_rows & (n_rows - 1):
        raise SynthesisError(
            f"truth table must have a power-of-two length, got {n_rows}"
        )
    n_inputs = n_rows.bit_length() - 1
    if inputs is None:
        inputs = [f"x{i}" for i in range(n_inputs)]
    else:
        inputs = list(inputs)
    if len(inputs) != n_inputs:
        raise SynthesisError(
            f"{n_rows}-row table needs {n_inputs} inputs, got {len(inputs)}"
        )
    if mig is None:
        mig = MIG(name if name is not None else output)
    existing = mig.input_literals()
    literals = [
        existing[name] if name in existing else mig.add_input(name)
        for name in inputs
    ]

    memo = {}

    def build(bits):
        if all(b == 0 for b in bits):
            return mig.const(0)
        if all(b == 1 for b in bits):
            return mig.const(1)
        if bits in memo:
            return memo[bits]
        # Split on the highest variable: low half assigns it 0.
        half = len(bits) // 2
        variable = literals[half.bit_length() - 1]
        low = build(bits[:half])
        high = build(bits[half:])
        literal = low if low == high else mig.mux(variable, low, high)
        memo[bits] = literal
        return literal

    mig.set_output(output, build(bits))
    return mig


def truth_table_of(evaluator, input_names, output):
    """The output column of ``evaluator`` over all assignments.

    ``evaluator(assignments) -> {output name: bit}``; rows are indexed
    little-endian over ``input_names`` -- the inverse of
    :func:`from_truth_table`, useful for round-trip checks.
    """
    input_names = list(input_names)
    column = []
    for index in range(2 ** len(input_names)):
        assignment = {
            name: (index >> k) & 1 for k, name in enumerate(input_names)
        }
        column.append(int(evaluator(assignment)[output]))
    return column
