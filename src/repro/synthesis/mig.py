"""Majority-inverter graph (MIG): the logic-synthesis IR.

Spin-wave logic is majority-native, so the synthesis front-end speaks
the majority-inverter graph dialect: nodes are 3-input majorities (plus
first-class 2-input XORs, which the physical library realises directly
as amplitude-readout gates), and inverters live on *edges* as
complemented literals -- matching the hardware, where inversion is a
free detector-placement choice rather than a gate.

Literals follow the AIG convention: literal ``2*n + c`` refers to node
``n``, complemented when ``c`` is 1.  Node 0 is the constant-0 node, so
``CONST0 == 0`` and ``CONST1 == 1`` as literals.  AND/OR/MUX are
derived operators (``AND(a, b) = MAJ(a, b, 0)`` etc.); the builder is
deliberately *naive* -- every call appends a node, and all sharing,
simplification and restructuring is the job of the optimization passes
(:mod:`repro.synthesis.passes`), whose per-pass statistics then mean
something.

>>> mig = MIG("demo")
>>> a, b, c = (mig.add_input(x) for x in "abc")
>>> carry = mig.maj(a, b, c)
>>> total = mig.xor(mig.xor(a, b), c)
>>> mig.set_output("sum", total)
>>> mig.set_output("carry", carry)
>>> mig.evaluate({"a": 1, "b": 0, "c": 1})
{'sum': 0, 'carry': 1}
>>> mig.n_gates, mig.depth()
(3, 2)
>>> mig.evaluate({"a": 1, "b": 0, "c": 0})["sum"]
1
"""

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SynthesisError

#: The constant literals.
CONST0 = 0
CONST1 = 1

#: Gate node kinds (inputs and the constant are not gates).
GATE_KINDS = ("MAJ", "XOR")


@dataclass(frozen=True)
class MigNode:
    """One MIG node: the constant, a primary input, or a gate.

    ``fanin`` holds *literals* (``2*node + complement``), not node ids.
    """

    kind: str  # "const", "input", "MAJ", "XOR"
    fanin: tuple = field(default_factory=tuple)
    name: str = None  # inputs only


def is_complemented(literal):
    """True when ``literal`` carries an inversion."""
    return bool(literal & 1)


def node_of(literal):
    """The node id a literal refers to."""
    return literal >> 1


class MIG:
    """A majority-inverter graph with first-class XOR nodes."""

    def __init__(self, name="mig"):
        self.name = name
        self._nodes = [MigNode("const")]
        self._levels = [0]
        self._input_ids = []
        self._input_index = {}
        self._outputs = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name):
        """Declare a primary input; returns its (plain) literal."""
        if not name or not isinstance(name, str):
            raise SynthesisError(f"input name must be a string, got {name!r}")
        if name in self._input_index:
            raise SynthesisError(f"input {name!r} already exists")
        if name in self._outputs:
            raise SynthesisError(
                f"input {name!r} collides with an output name"
            )
        node_id = len(self._nodes)
        self._nodes.append(MigNode("input", name=name))
        self._levels.append(0)
        self._input_ids.append(node_id)
        self._input_index[name] = node_id
        return 2 * node_id

    def const(self, value):
        """The literal of constant ``value`` (0 or 1)."""
        if value not in (0, 1):
            raise SynthesisError(f"constant must be 0 or 1, got {value!r}")
        return CONST1 if value else CONST0

    def _check_literal(self, literal):
        if not isinstance(literal, (int, np.integer)) or literal < 0:
            raise SynthesisError(f"bad literal {literal!r}")
        if node_of(literal) >= len(self._nodes):
            raise SynthesisError(
                f"literal {literal!r} refers to a node that does not exist"
            )
        return int(literal)

    def _add_gate(self, kind, fanin):
        fanin = tuple(self._check_literal(f) for f in fanin)
        node_id = len(self._nodes)
        self._nodes.append(MigNode(kind, fanin=fanin))
        self._levels.append(
            1 + max(self._levels[node_of(f)] for f in fanin)
        )
        return 2 * node_id

    def maj(self, a, b, c):
        """New 3-input majority node; returns its literal."""
        return self._add_gate("MAJ", (a, b, c))

    def xor(self, a, b):
        """New 2-input XOR node; returns its literal."""
        return self._add_gate("XOR", (a, b))

    @staticmethod
    def inv(literal):
        """The complemented literal (a free edge attribute)."""
        return literal ^ 1

    # Derived operators (the majority expressions of Section III logic).
    def and_(self, a, b):
        """``AND(a, b) = MAJ(a, b, 0)``."""
        return self.maj(a, b, CONST0)

    def or_(self, a, b):
        """``OR(a, b) = MAJ(a, b, 1)``."""
        return self.maj(a, b, CONST1)

    def xnor(self, a, b):
        """``XNOR(a, b) = ~XOR(a, b)``."""
        return self.inv(self.xor(a, b))

    def mux(self, select, d0, d1):
        """``select ? d1 : d0`` as OR(AND(d0, ~s), AND(d1, s))."""
        return self.or_(
            self.and_(d0, self.inv(select)), self.and_(d1, select)
        )

    def set_output(self, name, literal):
        """Register (or re-point) primary output ``name`` at ``literal``.

        Output names must not collide with input names: the technology
        mapper emits one free polarity cell (BUF/INV) *named* after each
        output, so the physical netlist's output keys match the spec.
        """
        if not name or not isinstance(name, str):
            raise SynthesisError(f"output name must be a string, got {name!r}")
        if name in self._input_index:
            raise SynthesisError(
                f"output {name!r} collides with an input name"
            )
        self._outputs[name] = self._check_literal(literal)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def inputs(self):
        """Primary input names in declaration order."""
        return [self._nodes[i].name for i in self._input_ids]

    @property
    def outputs(self):
        """{output name: literal} in registration order."""
        return dict(self._outputs)

    def input_literals(self):
        """{input name: plain literal} in declaration order."""
        return {
            self._nodes[i].name: 2 * i for i in self._input_ids
        }

    @property
    def n_nodes(self):
        """Total node count (constant + inputs + gates)."""
        return len(self._nodes)

    @property
    def n_gates(self):
        """Gate (MAJ/XOR) node count."""
        return sum(1 for n in self._nodes if n.kind in GATE_KINDS)

    def node(self, node_id):
        """The :class:`MigNode` record of ``node_id``."""
        try:
            return self._nodes[node_id]
        except IndexError:
            raise SynthesisError(f"unknown node {node_id!r}") from None

    def nodes(self):
        """All nodes in construction (= topological) order."""
        return list(self._nodes)

    def level(self, literal):
        """Logic level of a literal's node (const/inputs are 0)."""
        return self._levels[node_of(self._check_literal(literal))]

    def depth(self):
        """Deepest output level (inverters are free, so edges cost 0)."""
        if not self._outputs:
            return max(self._levels, default=0)
        return max(self._levels[node_of(l)] for l in self._outputs.values())

    def gate_counts(self):
        """Histogram {kind: count} over gate nodes."""
        counts = {}
        for node in self._nodes:
            if node.kind in GATE_KINDS:
                counts[node.kind] = counts.get(node.kind, 0) + 1
        return counts

    def reachable(self):
        """Set of node ids reachable from the outputs (incl. themselves)."""
        stack = [node_of(l) for l in self._outputs.values()]
        seen = set()
        while stack:
            node_id = stack.pop()
            if node_id in seen:
                continue
            seen.add(node_id)
            stack.extend(node_of(f) for f in self._nodes[node_id].fanin)
        return seen

    def fanout_counts(self):
        """{node id: fanout} over the reachable graph (outputs count 1)."""
        counts = {}
        reachable = self.reachable()
        for node_id in reachable:
            for literal in self._nodes[node_id].fanin:
                driver = node_of(literal)
                counts[driver] = counts.get(driver, 0) + 1
        for literal in self._outputs.values():
            driver = node_of(literal)
            counts[driver] = counts.get(driver, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, assignments):
        """Boolean evaluation: {input name: bit} -> {output name: bit}."""
        outputs = self.evaluate_batch([assignments])
        return {name: bits[0] for name, bits in outputs.items()}

    def evaluate_batch(self, assignments_batch):
        """Vectorised evaluation over many assignments.

        Mirrors :meth:`repro.circuits.netlist.Netlist.evaluate_batch`:
        returns ``{output name: list of bits}``.  Raises on missing
        inputs or non-binary values.
        """
        assignments_batch = list(assignments_batch)
        if not assignments_batch:
            raise SynthesisError("no assignments supplied")
        n_sets = len(assignments_batch)
        values = np.zeros((len(self._nodes), n_sets), dtype=np.int64)
        for node_id in self._input_ids:
            name = self._nodes[node_id].name
            try:
                column = [a[name] for a in assignments_batch]
            except KeyError:
                raise SynthesisError(
                    f"no value supplied for input {name!r}"
                ) from None
            array = np.asarray(column, dtype=np.int64)
            if not np.isin(array, (0, 1)).all():
                raise SynthesisError("logic values must all be 0 or 1")
            values[node_id] = array

        def literal_value(literal):
            column = values[node_of(literal)]
            return 1 - column if is_complemented(literal) else column

        for node_id, node in enumerate(self._nodes):
            if node.kind == "MAJ":
                a, b, c = (literal_value(f) for f in node.fanin)
                values[node_id] = (a + b + c >= 2).astype(np.int64)
            elif node.kind == "XOR":
                a, b = (literal_value(f) for f in node.fanin)
                values[node_id] = a ^ b
        return {
            name: literal_value(literal).tolist()
            for name, literal in self._outputs.items()
        }

    # ------------------------------------------------------------------
    # Rebuilding (the pass framework's engine)
    # ------------------------------------------------------------------
    def rebuild(self, rewrite=None, reachable_only=False):
        """Copy into a fresh MIG, mapping every gate through ``rewrite``.

        ``rewrite(new_mig, kind, fanin_literals)`` receives the node's
        kind and its fanin literals already translated into the new
        graph, and returns the literal standing for the node there --
        either a fresh gate (``new_mig.maj(...)``) or any simplified
        literal.  ``None`` keeps the plain copy.  Inputs and outputs map
        automatically; with ``reachable_only`` nodes dead in *this*
        graph are skipped (dead-node elimination).

        Returns ``(new_mig, literal_map)`` where ``literal_map[old node
        id]`` is the new literal of that node's plain (uncomplemented)
        value.
        """
        new = MIG(self.name)
        keep = self.reachable() if reachable_only else None
        literal_map = {0: CONST0}
        for node_id, node in enumerate(self._nodes):
            if node.kind == "const":
                continue
            if node.kind == "input":
                # Inputs always survive: the spec's interface is fixed.
                literal_map[node_id] = new.add_input(node.name)
                continue
            if keep is not None and node_id not in keep:
                continue
            fanin = tuple(
                literal_map[node_of(f)] ^ (f & 1) for f in node.fanin
            )
            replacement = None
            if rewrite is not None:
                replacement = rewrite(new, node.kind, fanin)
            if replacement is None:
                replacement = (
                    new.maj(*fanin) if node.kind == "MAJ" else new.xor(*fanin)
                )
            literal_map[node_id] = replacement
        for name, literal in self._outputs.items():
            new.set_output(name, literal_map[node_of(literal)] ^ (literal & 1))
        return new, literal_map

    def copy(self):
        """A structural deep copy."""
        new, _ = self.rebuild()
        return new
