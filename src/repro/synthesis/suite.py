"""The synthesis benchmark-circuit suite.

Each entry is a deliberately *naive* specification -- operator chains,
repeated subexpressions, textbook minterm expansions -- written exactly
the way a front end would emit it, so the optimization pipeline has
honest work to do: structural hashing finds the shared subexpressions,
the rebalancer collapses the chains, and the mapper then shows a
measurable physical gain over mapping the naive graph directly.  Every
entry carries an independent Python ``reference`` implementation (not
derived from the MIG) that the verification layer checks both mappings
against.

>>> circuit = get_circuit("parity8")
>>> mig = circuit.build()
>>> mig.depth()  # naive XOR chain: one level per operand
7
>>> assignment = {f"x{i}": (1 if i in (0, 3, 5) else 0) for i in range(8)}
>>> mig.evaluate(assignment) == circuit.reference(assignment)
True
"""

from dataclasses import dataclass

from repro.errors import SynthesisError
from repro.synthesis.mig import MIG
from repro.synthesis.parse import parse_into


@dataclass(frozen=True)
class SuiteCircuit:
    """One benchmark entry: a builder plus its independent reference."""

    name: str
    description: str
    build: object  # () -> MIG
    reference: object  # (assignments) -> {output: bit}


def _parity8():
    """8-input parity as a straight XOR chain (depth 7 naive)."""
    mig = MIG("parity8")
    literals = [mig.add_input(f"x{i}") for i in range(8)]
    accumulator = literals[0]
    for literal in literals[1:]:
        accumulator = mig.xor(accumulator, literal)
    mig.set_output("parity", accumulator)
    return mig


def _parity8_reference(assignments):
    bits = [assignments[f"x{i}"] for i in range(8)]
    return {"parity": sum(bits) % 2}


def _comparator4():
    """4-bit equality: per-bit XNOR, then a straight AND chain."""
    mig = MIG("comparator4")
    equal_bits = []
    for i in range(4):
        a = mig.add_input(f"a{i}")
        b = mig.add_input(f"b{i}")
        equal_bits.append(mig.xnor(a, b))
    accumulator = equal_bits[0]
    for bit in equal_bits[1:]:
        accumulator = mig.and_(accumulator, bit)
    mig.set_output("eq", accumulator)
    return mig


def _comparator4_reference(assignments):
    a = [assignments[f"a{i}"] for i in range(4)]
    b = [assignments[f"b{i}"] for i in range(4)]
    return {"eq": int(a == b)}


def _mux4():
    """4:1 multiplexer as its textbook minterm OR chain.

    Written fully expanded -- four 3-term AND minterms OR-chained, with
    the select complements spelled out per minterm -- so hashing and
    rebalancing both bite.
    """
    mig = MIG("mux4")
    expression = (
        "(d0 & ~s1 & ~s0) | (d1 & ~s1 & s0) | (d2 & s1 & ~s0) "
        "| (d3 & s1 & s0)"
    )
    mig.set_output("y", parse_into(mig, expression))
    return mig


def _mux4_reference(assignments):
    select = assignments["s1"] * 2 + assignments["s0"]
    return {"y": assignments[f"d{select}"]}


def _alu_slice():
    """1-bit ALU slice: AND / OR / XOR / ADD selected by two op bits.

    The add result recomputes ``a ^ b`` instead of reusing the XOR
    row's node (front-end style), and the op-select one-hot minterms
    repeat the select complements -- shared subexpressions on a plate.
    """
    mig = MIG("alu_slice")
    result = parse_into(
        mig,
        "((a & b) & ~op1 & ~op0) | ((a | b) & ~op1 & op0) "
        "| ((a ^ b) & op1 & ~op0) | (((a ^ b) ^ cin) & op1 & op0)",
    )
    carry = parse_into(mig, "maj(a, b, cin) & op1 & op0")
    mig.set_output("result", result)
    mig.set_output("cout", carry)
    return mig


def _alu_slice_reference(assignments):
    a, b, cin = assignments["a"], assignments["b"], assignments["cin"]
    op = assignments["op1"] * 2 + assignments["op0"]
    if op == 0:
        result, carry = a & b, 0
    elif op == 1:
        result, carry = a | b, 0
    elif op == 2:
        result, carry = a ^ b, 0
    else:
        total = a + b + cin
        result, carry = total & 1, total >> 1
    return {"result": result, "cout": carry}


def _popcount5():
    """Population count of 5 bits via naive compressor chains."""
    mig = MIG("popcount5")
    x = [mig.add_input(f"x{i}") for i in range(5)]
    # 3:2 compressor on x0..x2 and a half adder on x3, x4 -- sums and
    # carries written as independent expressions (no sharing).
    sum_low = mig.xor(mig.xor(x[0], x[1]), x[2])
    carry_low = mig.maj(x[0], x[1], x[2])
    sum_high = mig.xor(x[3], x[4])
    carry_high = mig.and_(x[3], x[4])
    bit0 = mig.xor(sum_low, sum_high)
    carry_mid = mig.and_(sum_low, sum_high)
    bit1 = mig.xor(mig.xor(carry_low, carry_high), carry_mid)
    bit2 = mig.maj(carry_low, carry_high, carry_mid)
    mig.set_output("c0", bit0)
    mig.set_output("c1", bit1)
    mig.set_output("c2", bit2)
    return mig


def _popcount5_reference(assignments):
    total = sum(assignments[f"x{i}"] for i in range(5))
    return {"c0": total & 1, "c1": (total >> 1) & 1, "c2": (total >> 2) & 1}


SUITE = (
    SuiteCircuit(
        "parity8",
        "8-input parity tree (naive XOR chain)",
        _parity8,
        _parity8_reference,
    ),
    SuiteCircuit(
        "comparator4",
        "4-bit equality comparator (XNOR bits, AND chain)",
        _comparator4,
        _comparator4_reference,
    ),
    SuiteCircuit(
        "mux4",
        "4:1 multiplexer (expanded minterm OR chain)",
        _mux4,
        _mux4_reference,
    ),
    SuiteCircuit(
        "alu_slice",
        "1-bit ALU slice: AND/OR/XOR/ADD with carry, op-select muxing",
        _alu_slice,
        _alu_slice_reference,
    ),
    SuiteCircuit(
        "popcount5",
        "5-input population count (compressor chains)",
        _popcount5,
        _popcount5_reference,
    ),
)


def suite():
    """All benchmark circuits, in canonical order."""
    return list(SUITE)


def get_circuit(name):
    """The :class:`SuiteCircuit` called ``name``; raises when unknown."""
    for circuit in SUITE:
        if circuit.name == name:
            return circuit
    available = ", ".join(c.name for c in SUITE)
    raise SynthesisError(
        f"unknown suite circuit {name!r}; available: {available}"
    )
