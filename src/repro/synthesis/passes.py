"""MIG optimization passes and the fixpoint pipeline.

Each pass rebuilds the graph in topological order through
:meth:`~repro.synthesis.mig.MIG.rebuild`, applying local rules as nodes
are copied -- fanins arrive already translated, so simplifications
cascade upward within a single sweep.  Function is always preserved
(every rule is a majority/XOR axiom); the property tests check each pass
against exhaustive evaluation on randomized graphs.

The standard pipeline (:func:`default_passes`):

``ConstantPropagation``
    Majority axioms ``M(x, x, y) = x`` and ``M(x, ~x, y) = y`` (which
    subsume all two-constant cases, since ``0 = ~1``) plus the XOR
    rules ``x ^ x = 0``, ``x ^ ~x = 1``, ``x ^ 0 = x``, ``x ^ 1 = ~x``.
``InverterPush``
    The majority self-duality ``M(~a, ~b, ~c) = ~M(a, b, c)`` pushes
    inverter-heavy fanins (two or more complemented edges) to the
    output, and XOR complements fold to output parity -- fewer
    inverters for structural hashing to see through, and fewer INV
    cells in the mapped netlist.
``StructuralHashing``
    Common-subexpression sharing: commutativity-canonical keys (sorted
    fanin literals; XOR keys are complement-stripped with the parity on
    the output) merge equivalent nodes.
``AssociativityRebalance``
    Depth-oriented associativity rewrites: maximal single-fanout
    AND/OR/XOR chains (ANDs and ORs being the constant-carrying
    majority forms) re-associate into balanced trees, combining the
    shallowest operands first -- the depth-optimal (Huffman) order.
``DeadNodeElimination``
    Drops gates no output can reach (superseded chain members, merged
    duplicates, constant-folded remnants).

:func:`optimize` runs the pipeline to a fixpoint (or a round budget)
and returns per-pass :class:`PassStats`.

>>> from repro.synthesis.parse import parse_expression
>>> mig = parse_expression("(a & b) & ((a & b) ^ (c & d))")
>>> optimized, stats = optimize(mig)
>>> optimized.evaluate({"a": 1, "b": 1, "c": 1, "d": 0})["out"]
1
>>> optimized.n_gates < mig.n_gates  # the a & b node is shared
True
"""

import time
from dataclasses import dataclass

from repro import obs
from repro.errors import SynthesisError
from repro.synthesis.mig import (
    CONST0,
    CONST1,
    GATE_KINDS,
    MIG,
    is_complemented,
    node_of,
)


@dataclass(frozen=True)
class PassStats:
    """One pass application: size/depth before and after, and cost."""

    name: str
    round: int
    gates_before: int
    gates_after: int
    depth_before: int
    depth_after: int
    rewrites: int
    elapsed: float

    @property
    def changed(self):
        """True when the pass altered the graph."""
        return (
            self.rewrites > 0
            or self.gates_after != self.gates_before
            or self.depth_after != self.depth_before
        )

    def describe(self):
        """One-line summary for reports."""
        return (
            f"{self.name}: gates {self.gates_before} -> {self.gates_after}, "
            f"depth {self.depth_before} -> {self.depth_after}, "
            f"{self.rewrites} rewrites, {self.elapsed * 1e3:.2f} ms"
        )


class MigPass:
    """Base class: rebuild the graph through :meth:`rewrite`."""

    name = "identity"

    def run(self, mig):
        """Apply the pass; returns ``(new_mig, n_rewrites)``."""
        self._rewrites = 0
        new, _ = mig.rebuild(rewrite=self._dispatch)
        return new, self._rewrites

    def _dispatch(self, new, kind, fanin):
        replacement = self.rewrite(new, kind, fanin)
        if replacement is not None:
            self._rewrites += 1
        return replacement

    def rewrite(self, new, kind, fanin):
        """Return a replacement literal, or ``None`` for a plain copy."""
        return None


class ConstantPropagation(MigPass):
    """Constant/duplicate folding through the majority and XOR axioms."""

    name = "constant-propagation"

    def rewrite(self, new, kind, fanin):
        if kind == "MAJ":
            a, b, c = fanin
            for x, y, z in ((a, b, c), (a, c, b), (b, c, a)):
                if x == y:  # M(x, x, y) = x  (covers 0,0 and 1,1)
                    return x
                if x == (y ^ 1):  # M(x, ~x, y) = y  (covers 0,1)
                    return z
            return None
        a, b = fanin
        if a == b:
            return CONST0
        if a == (b ^ 1):
            return CONST1
        if a in (CONST0, CONST1):
            return b ^ (a & 1)
        if b in (CONST0, CONST1):
            return a ^ (b & 1)
        return None


class InverterPush(MigPass):
    """Self-duality normalisation: complements migrate to outputs."""

    name = "inverter-push"

    def rewrite(self, new, kind, fanin):
        if kind == "MAJ":
            # Constants stay as written (the AND/OR structure markers);
            # flip only when a strict majority of the *variable* edges
            # is complemented, so the rewrite is its own fixpoint.
            variables = [f for f in fanin if f not in (CONST0, CONST1)]
            flipped = [f for f in variables if is_complemented(f)]
            if len(flipped) * 2 > len(variables):
                return new.maj(*(f ^ 1 for f in fanin)) ^ 1
            return None
        a, b = fanin
        parity = (a & 1) ^ (b & 1)
        if parity and (is_complemented(a) or is_complemented(b)):
            # Single complemented edge: fold it onto the output.
            return new.xor(a & ~1, b & ~1) ^ 1
        if is_complemented(a) and is_complemented(b):
            return new.xor(a & ~1, b & ~1)
        return None


class StructuralHashing(MigPass):
    """Commutativity-canonical common-subexpression sharing."""

    name = "structural-hashing"

    def run(self, mig):
        self._rewrites = 0
        self._table = {}
        new, _ = mig.rebuild(rewrite=self._dispatch)
        self._table = None
        return new, self._rewrites

    def rewrite(self, new, kind, fanin):
        if kind == "MAJ":
            key = ("M", tuple(sorted(fanin)))
            parity = 0
        else:
            a, b = fanin
            parity = (a & 1) ^ (b & 1)
            key = ("X", tuple(sorted((a & ~1, b & ~1))))
        if key in self._table:
            return self._table[key] ^ parity
        literal = new.maj(*fanin) if kind == "MAJ" else new.xor(*fanin)
        # The fresh node's plain literal, with XOR parity stripped.
        self._table[key] = literal ^ parity if kind == "XOR" else literal
        # Only genuine merges count as rewrites; record and return the
        # canonical literal (parity folded back for XOR).
        self._rewrites -= 1  # compensated by _dispatch's increment
        return self._table[key] ^ parity if kind == "XOR" else literal


class AssociativityRebalance(MigPass):
    """Depth-oriented re-association of AND/OR/XOR chains.

    A chain is a run of same-flavour nodes -- AND (``MAJ(a, b, 0)``),
    OR (``MAJ(a, b, 1)``) or XOR -- each consumed exactly once,
    uncomplemented, by the next.  The chain head re-associates its
    leaves into a balanced tree, always combining the two shallowest
    operands (depth-optimal for unequal leaf depths).  Only applied
    when it strictly reduces the head's depth, so the pass is
    idempotent on already-balanced trees; superseded chain members go
    dead and the elimination pass sweeps them.
    """

    name = "associativity-rebalance"

    @staticmethod
    def _flavour(node):
        """'X', ('A'|'O'), or None, plus the two operand literals."""
        if node.kind == "XOR":
            return "X", list(node.fanin)
        if node.kind != "MAJ":
            return None, None
        constants = [f for f in node.fanin if f in (CONST0, CONST1)]
        if len(constants) != 1:
            return None, None
        operands = [f for f in node.fanin if f not in (CONST0, CONST1)]
        if len(operands) != 2:
            return None, None
        return ("O" if constants[0] == CONST1 else "A"), operands

    def run(self, mig):
        rewrites = 0
        fanout = mig.fanout_counts()
        nodes = mig.nodes()

        flavours = {}
        for node_id, node in enumerate(nodes):
            flavour, operands = self._flavour(node)
            if flavour is not None:
                flavours[node_id] = (flavour, operands)

        def absorbable(literal, flavour):
            """Can ``literal`` dissolve into a ``flavour`` chain head?"""
            if is_complemented(literal):
                return False
            node_id = node_of(literal)
            return (
                node_id in flavours
                and flavours[node_id][0] == flavour
                and fanout.get(node_id, 0) == 1
            )

        def leaves(literal, flavour):
            if not absorbable(literal, flavour):
                return [literal]
            collected = []
            for operand in flavours[node_of(literal)][1]:
                collected.extend(leaves(operand, flavour))
            return collected

        # A member dissolves into its consumer when that consumer is a
        # same-flavour node using it once, uncomplemented; chain heads
        # are the flavoured nodes nobody absorbs.
        absorbed = set()
        for node_id, (flavour, operands) in flavours.items():
            for operand in operands:
                if absorbable(operand, flavour):
                    absorbed.add(node_of(operand))
        heads = {}
        for node_id, (flavour, operands) in flavours.items():
            if node_id in absorbed:
                continue  # a chain member; its head will absorb it
            chain_leaves = []
            for operand in operands:
                chain_leaves.extend(leaves(operand, flavour))
            if len(chain_leaves) >= 3:
                heads[node_id] = (flavour, chain_leaves)

        new = MIG(mig.name)
        literal_map = {0: CONST0}

        def mapped(literal):
            return literal_map[node_of(literal)] ^ (literal & 1)

        def balanced(flavour, operand_literals):
            """Combine shallowest-first; returns the tree's root literal."""
            queue = sorted(
                ((new.level(l), index, l) for index, l in
                 enumerate(operand_literals))
            )
            counter = len(queue)
            while len(queue) > 1:
                (_, _, x), (_, _, y), *rest = queue
                queue = rest
                if flavour == "X":
                    combined = new.xor(x, y)
                elif flavour == "A":
                    combined = new.and_(x, y)
                else:
                    combined = new.or_(x, y)
                queue.append((new.level(combined), counter, combined))
                counter += 1
                queue.sort()
            return queue[0][2]

        for node_id, node in enumerate(nodes):
            if node.kind == "const":
                continue
            if node.kind == "input":
                literal_map[node_id] = new.add_input(node.name)
                continue
            if node_id in heads:
                flavour, chain_leaves = heads[node_id]
                mapped_leaves = [mapped(l) for l in chain_leaves]
                # Predict the balanced depth; rebuild only on a strict
                # improvement over the straight copy.
                depths = sorted(new.level(l) for l in mapped_leaves)
                while len(depths) > 1:
                    x, y, *rest = depths
                    depths = sorted(rest + [max(x, y) + 1])
                copied_depth = 1 + max(
                    new.level(mapped(f)) for f in node.fanin
                )
                if depths[0] < copied_depth:
                    literal_map[node_id] = balanced(flavour, mapped_leaves)
                    rewrites += 1
                    continue
            fanin = tuple(mapped(f) for f in node.fanin)
            literal_map[node_id] = (
                new.maj(*fanin) if node.kind == "MAJ" else new.xor(*fanin)
            )
        for name, literal in mig.outputs.items():
            new.set_output(name, mapped(literal))
        return new, rewrites


class DeadNodeElimination(MigPass):
    """Drop every gate unreachable from the outputs."""

    name = "dead-node-elimination"

    def run(self, mig):
        before = mig.n_gates
        new, _ = mig.rebuild(reachable_only=True)
        return new, before - new.n_gates


def default_passes():
    """The standard pipeline, in application order."""
    return [
        ConstantPropagation(),
        InverterPush(),
        StructuralHashing(),
        AssociativityRebalance(),
        DeadNodeElimination(),
    ]


def optimize(mig, passes=None, max_rounds=8):
    """Run ``passes`` over ``mig`` to a fixpoint or a round budget.

    Returns ``(optimized_mig, [PassStats, ...])``.  A round applies
    every pass once; the loop stops as soon as a full round leaves the
    graph unchanged (no rewrites, same gate count, same depth) or after
    ``max_rounds`` rounds.
    """
    if max_rounds < 1:
        raise SynthesisError(f"max_rounds must be >= 1, got {max_rounds!r}")
    passes = list(passes) if passes is not None else default_passes()
    stats = []
    for round_index in range(1, max_rounds + 1):
        round_changed = False
        for pipeline_pass in passes:
            gates_before = mig.n_gates
            depth_before = mig.depth()
            started = time.perf_counter()
            mig, rewrites = pipeline_pass.run(mig)
            elapsed = time.perf_counter() - started
            # Mirror the hand-measured duration into the obs span tree
            # (``swgate synth --profile`` renders it); PassStats keeps
            # its own ``elapsed`` for the stats return shape.
            obs.record(f"synth/pass/{pipeline_pass.name}", elapsed)
            record = PassStats(
                name=pipeline_pass.name,
                round=round_index,
                gates_before=gates_before,
                gates_after=mig.n_gates,
                depth_before=depth_before,
                depth_after=mig.depth(),
                rewrites=rewrites,
                elapsed=elapsed,
            )
            stats.append(record)
            round_changed |= record.changed
        if not round_changed:
            break
    return mig, stats
