"""Technology mapping: MIG literals onto the physical spin-wave library.

The mapper lowers an optimized (or naive) MIG onto the
:class:`~repro.circuits.netlist.Netlist` operation set the circuit
engine executes: ``MAJ -> MAJ3`` cells, ``XOR -> XOR2`` cells, and every
complemented edge becomes an ``INV`` cell -- which
:data:`~repro.circuits.library.PHYSICAL_BINDINGS` prices at zero and
:class:`~repro.circuits.engine.CircuitEngine` resolves as a free
detector-placement / re-excitation polarity choice at the regeneration
boundary, exactly the Section III free-inverter rule.  One shared INV
cell serves every complemented use of a node, and each primary output
gets one polarity cell (BUF or INV) carrying the output's *name*, so
engine results key naturally by specification outputs.

:func:`mapping_report` prices the mapped netlist through
:func:`repro.circuits.estimate.circuit_cost` and reports both netlist
depth (INV/BUF levels included -- what the engine schedules) and
*physical* depth (transducer levels only -- what actually costs wave
propagation).
"""

from dataclasses import dataclass

from repro.circuits.estimate import circuit_cost
from repro.circuits.library import PHYSICAL_BINDINGS
from repro.circuits.netlist import Netlist
from repro.errors import SynthesisError
from repro.synthesis.mig import CONST0, CONST1, GATE_KINDS, node_of

#: MIG gate kind -> netlist operation.
_OPERATION = {"MAJ": "MAJ3", "XOR": "XOR2"}


def to_netlist(mig, name=None):
    """Map ``mig`` onto a physically executable :class:`Netlist`.

    Only nodes reachable from the outputs are mapped.  Raises when the
    MIG has no outputs (nothing to map).
    """
    outputs = mig.outputs
    if not outputs:
        raise SynthesisError("cannot map a MIG without outputs")
    netlist = Netlist(name if name is not None else mig.name)
    input_names = {
        node.name for node in mig.nodes() if node.kind == "input"
    }
    collisions = input_names & set(outputs)
    if collisions:  # MIG construction forbids this; guard regardless
        raise SynthesisError(
            f"input names {sorted(collisions)} collide with outputs"
        )
    # Inputs and outputs own their names outright; generated internal
    # names (cells, constants, shared inverters) dodge both.
    used = set(outputs) | input_names

    def fresh(base):
        candidate = base
        while candidate in used:
            candidate += "_"
        used.add(candidate)
        return candidate

    reachable = mig.reachable()
    node_names = {}  # node id -> netlist name of the plain value
    const_names = {}
    inverted_names = {}  # node id -> shared INV cell name

    def const_name(value):
        if value not in const_names:
            const_names[value] = netlist.add_const(fresh(f"c{value}"), value)
        return const_names[value]

    def literal_name(literal):
        node_id = node_of(literal)
        if node_id == 0:  # the constant node
            return const_name(1 if literal & 1 else 0)
        base = node_names[node_id]
        if not literal & 1:
            return base
        if node_id not in inverted_names:
            inverted_names[node_id] = netlist.add_cell(
                fresh(f"{base}_n"), "INV", (base,)
            )
        return inverted_names[node_id]

    for node_id, node in enumerate(mig.nodes()):
        if node.kind == "input":
            node_names[node_id] = netlist.add_input(node.name)
        elif node.kind in GATE_KINDS and node_id in reachable:
            fanin = tuple(literal_name(f) for f in node.fanin)
            node_names[node_id] = netlist.add_cell(
                fresh(f"n{node_id}"), _OPERATION[node.kind], fanin
            )

    for output, literal in outputs.items():
        operation = "INV" if literal & 1 else "BUF"
        cell = netlist.add_cell(
            output, operation, (literal_name(literal & ~1),)
        )
        netlist.mark_output(cell)
    return netlist


def physical_cell_count(netlist):
    """Transducer-level (MAJ3/XOR2) cells in ``netlist``."""
    return sum(
        count
        for operation, count in netlist.cell_counts().items()
        if operation in PHYSICAL_BINDINGS
    )


def physical_depth(netlist):
    """Deepest output counted in *physical* cells only.

    INV/BUF cells are free polarity choices resolved at regeneration
    boundaries, so they cost no wave propagation; this is the depth
    figure :func:`to_netlist` optimizes for, while
    :meth:`~repro.circuits.netlist.Netlist.depth` counts every
    scheduled level.
    """
    graph = netlist.graph()
    depth = {}
    for name in netlist.topological_order():
        node = graph.nodes[name]["node"]
        if node.kind in ("input", "const0", "const1"):
            depth[name] = 0
            continue
        below = max(depth[driver] for driver in node.fanin)
        depth[name] = below + (1 if node.kind in PHYSICAL_BINDINGS else 0)
    if not netlist.outputs:
        return max(depth.values(), default=0)
    return max(depth[name] for name in netlist.outputs)


@dataclass(frozen=True)
class MappingReport:
    """Mapped-netlist metrics: the naive-vs-optimized scorecard."""

    netlist: Netlist
    depth: int  # scheduled levels (INV/BUF included)
    physical_depth: int  # transducer levels only
    n_cells: int  # all cells
    n_physical: int  # MAJ3 + XOR2
    cell_counts: dict
    cost: object = None  # CircuitCost when a library was supplied

    def describe(self):
        """One-line summary for reports."""
        counts = ", ".join(
            f"{count} {operation}"
            for operation, count in sorted(self.cell_counts.items())
        )
        return (
            f"{self.netlist.name}: physical depth {self.physical_depth} "
            f"(scheduled {self.depth}), {self.n_physical} physical cells "
            f"({counts})"
        )


def mapping_report(netlist, library=None):
    """Measure a mapped netlist (optionally priced through ``library``).

    ``library`` is a :class:`~repro.circuits.library.CellLibrary`; when
    given, ``cost`` carries the
    :class:`~repro.circuits.estimate.CircuitCost` aggregate
    (area/delay/energy along the critical path).
    """
    counts = netlist.cell_counts()
    return MappingReport(
        netlist=netlist,
        depth=netlist.depth(),
        physical_depth=physical_depth(netlist),
        n_cells=sum(counts.values()),
        n_physical=physical_cell_count(netlist),
        cell_counts=counts,
        cost=circuit_cost(netlist, library) if library is not None else None,
    )
