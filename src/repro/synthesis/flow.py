"""The end-to-end synthesis flow: spec in, verified physical netlist out.

:func:`synthesize` strings the subsystem's four layers together --
ingestion produced the MIG already (truth table, expression parser, or
programmatic construction); this module runs the optimization pipeline,
maps both the naive and the optimized graph onto the physical library,
and verifies each mapping against the original specification.  The
result object is the scorecard every consumer reads: the CLI renders
it, the ``synthesis-gain`` experiment measures its physical meaning,
and the benchmark suite snapshots it across PRs.
"""

import time
from dataclasses import dataclass

from repro import obs
from repro.errors import SynthesisError
from repro.synthesis.mapping import mapping_report, to_netlist
from repro.synthesis.passes import optimize
from repro.synthesis.verify import verify_equivalence


@dataclass(frozen=True)
class SynthesisResult:
    """Everything one synthesis run produced."""

    name: str
    mig: object  # the specification as built (naive)
    optimized_mig: object
    pass_stats: tuple  # PassStats per pass application
    naive: object  # MappingReport of the unoptimized mapping
    optimized: object  # MappingReport of the optimized mapping
    equivalence: dict  # {"naive": EquivalenceReport, "optimized": ...}
    optimize_elapsed: float

    @property
    def verified(self):
        """True when both mappings matched the specification."""
        return all(r.equivalent for r in self.equivalence.values())

    @property
    def depth_gain(self):
        """Scheduled-depth levels removed by optimization."""
        return self.naive.depth - self.optimized.depth

    @property
    def physical_depth_gain(self):
        """Transducer levels removed by optimization."""
        return self.naive.physical_depth - self.optimized.physical_depth

    @property
    def cell_gain(self):
        """Physical (MAJ3/XOR2) cells removed by optimization."""
        return self.naive.n_physical - self.optimized.n_physical

    def describe(self):
        """Multi-line scorecard for CLI / report use."""
        lines = [
            f"synthesis of {self.name!r}:",
            f"  naive:     {self.naive.describe()}",
            f"  optimized: {self.optimized.describe()}",
            f"  gain: {self.physical_depth_gain} physical levels, "
            f"{self.cell_gain} physical cells "
            f"(optimize took {self.optimize_elapsed * 1e3:.1f} ms)",
        ]
        for label, report in self.equivalence.items():
            lines.append(f"  {label} mapping: {report.describe()}")
        return "\n".join(lines)


def synthesize(mig, name=None, passes=None, max_rounds=8, library=None,
               verify=True, reference=None, n_samples=256, seed=0):
    """Optimize, map and verify one MIG specification.

    Parameters
    ----------
    mig:
        The specification (:class:`~repro.synthesis.mig.MIG` with
        registered outputs).
    passes, max_rounds:
        Forwarded to :func:`~repro.synthesis.passes.optimize`.
    library:
        Optional :class:`~repro.circuits.library.CellLibrary` pricing
        both mappings (:class:`~repro.circuits.estimate.CircuitCost`).
    verify:
        Check both mappings against ``reference`` (default: the input
        MIG itself) -- exhaustive up to 12 inputs, seeded sampling
        above.
    reference:
        Optional independent specification (callable or evaluable); the
        suite passes its Python references in here.

    Returns a :class:`SynthesisResult`.  Raises
    :class:`~repro.errors.SynthesisError` when verification was
    requested and either mapping failed it -- an unsound optimization
    must never go unnoticed.
    """
    if not mig.outputs:
        raise SynthesisError("specification has no outputs")
    name = name if name is not None else mig.name
    started = time.perf_counter()
    with obs.span("synth/optimize"):
        optimized_mig, pass_stats = optimize(
            mig, passes=passes, max_rounds=max_rounds
        )
    optimize_elapsed = time.perf_counter() - started

    with obs.span("synth/map"):
        naive_netlist = to_netlist(mig, name=f"{name}_naive")
        optimized_netlist = to_netlist(optimized_mig, name=name)
        naive = mapping_report(naive_netlist, library=library)
        optimized = mapping_report(optimized_netlist, library=library)

    equivalence = {}
    if verify:
        spec = reference if reference is not None else mig
        with obs.span("synth/verify"):
            for label, netlist in (
                ("naive", naive_netlist), ("optimized", optimized_netlist)
            ):
                equivalence[label] = verify_equivalence(
                    netlist, spec, n_samples=n_samples, seed=seed
                )
        failed = [l for l, r in equivalence.items() if not r.equivalent]
        if failed:
            details = "; ".join(
                f"{l}: {equivalence[l].describe()}" for l in failed
            )
            raise SynthesisError(
                f"mapping of {name!r} is not equivalent to its "
                f"specification ({details})"
            )

    return SynthesisResult(
        name=name,
        mig=mig,
        optimized_mig=optimized_mig,
        pass_stats=tuple(pass_stats),
        naive=naive,
        optimized=optimized,
        equivalence=equivalence,
        optimize_elapsed=optimize_elapsed,
    )
