"""repro -- n-bit data parallel spin wave logic gates.

A full-stack reproduction of Mahmoud et al., *n-bit Data Parallel Spin
Wave Logic Gate* (DATE 2020): analytic spin-wave physics, a
finite-difference LLG micromagnetic solver (the OOMMF substitute), a fast
linear waveguide model, the multi-frequency in-line gate itself, circuit
composition, OOMMF MIF/OVF interoperability, and the benchmark harness
that regenerates every figure and table of the paper's evaluation.

Quickstart::

    from repro import byte_majority_gate, GateSimulator

    gate = byte_majority_gate()
    sim = GateSimulator(gate)
    result = sim.run([a_bits, b_bits, c_bits])   # three 8-bit words
    print(result.decoded)                        # bitwise MAJ3(a, b, c)
"""

from repro import obs
from repro.backends import (
    Backend,
    NumpyBackend,
    ScipyFFTBackend,
    available_backends,
    get_backend,
    set_backend,
)
from repro.obs import MetricsRegistry
from repro.materials import FECOB_PMA, YIG, PERMALLOY, Material, get_material
from repro.physics import (
    FvmswDispersion,
    ExchangeDispersion,
    BvmswDispersion,
    MsswDispersion,
    wavelength_for_frequency,
    wavenumber_for_frequency,
)
from repro.waveguide import (
    Waveguide,
    LinearWaveguideModel,
    WaveSource,
    Detector,
    NoiseModel,
)
from repro.core import (
    PhaseEncoding,
    FrequencyPlan,
    InlineGateLayout,
    TransducerSpec,
    DataParallelGate,
    GateKind,
    GateSimulator,
    GateRunResult,
    CostModel,
    comparison,
)

__version__ = "1.0.0"

__all__ = [
    "obs",
    "MetricsRegistry",
    "Backend",
    "NumpyBackend",
    "ScipyFFTBackend",
    "available_backends",
    "get_backend",
    "set_backend",
    "Material",
    "FECOB_PMA",
    "YIG",
    "PERMALLOY",
    "get_material",
    "FvmswDispersion",
    "ExchangeDispersion",
    "BvmswDispersion",
    "MsswDispersion",
    "wavelength_for_frequency",
    "wavenumber_for_frequency",
    "Waveguide",
    "LinearWaveguideModel",
    "WaveSource",
    "Detector",
    "NoiseModel",
    "PhaseEncoding",
    "FrequencyPlan",
    "InlineGateLayout",
    "TransducerSpec",
    "DataParallelGate",
    "GateKind",
    "GateSimulator",
    "GateRunResult",
    "CostModel",
    "comparison",
    "byte_majority_gate",
    "byte_xor_gate",
]


def byte_majority_gate(waveguide=None, use_paper_multipliers=True):
    """The paper's validated gate: 8-bit data parallel 3-input majority.

    Returns a ready-to-simulate :class:`~repro.core.DataParallelGate` on
    the default 50 nm x 1 nm Fe60Co20B20 waveguide with the 10-80 GHz
    frequency plan.  ``use_paper_multipliers=False`` lets the layout
    engine pick its own (smallest collision-free) source spacings.
    """
    if use_paper_multipliers:
        layout = InlineGateLayout.paper_byte_layout(waveguide=waveguide)
    else:
        layout = InlineGateLayout.paper_byte_layout(
            waveguide=waveguide, multipliers=None
        )
    return DataParallelGate(layout, kind=GateKind.MAJORITY)


def byte_xor_gate(waveguide=None):
    """An 8-bit data parallel 2-input XOR gate (amplitude readout)."""
    waveguide = waveguide if waveguide is not None else Waveguide()
    plan = FrequencyPlan.paper_byte_plan()
    layout = InlineGateLayout(waveguide, plan, n_inputs=2)
    return DataParallelGate(layout, kind=GateKind.XOR)
