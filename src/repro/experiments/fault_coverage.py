"""Manufacturing-test study: fault coverage of the byte gate.

A DATE-audience extension of the paper: if byte-wide SW gates are to be
manufactured, they must be testable.  This experiment enumerates the
single-transducer fault universe (dead, stuck-phase, weak sources) of
the byte majority gate, applies the exhaustive 8-pattern functional test
set, and reports:

* logic coverage -- which faults flip some output bit, and
* parametric (amplitude-measurement) coverage -- which faults shift a
  detector amplitude beyond a tolerance.

The headline structural result: weak-source faults are *provably
invisible* to logic testing in the noiseless interference model (the
phasors stay colinear, so every decision is still cast correctly), yet
trivially caught by a 10%-tolerance amplitude measurement -- SW gate
production test needs a parametric component.

Each fault's full pattern set is evaluated through the batched phasor
backend (:meth:`~repro.core.simulate.GateSimulator.run_phasor_batch` via
:mod:`repro.core.faults`): one vectorised call per fault instead of a
per-pattern simulation loop.  The batch builds as an array-native
:class:`~repro.waveguide.SourceBank` -- the fault corrupts one column of
the bank -- so a fault universe sweep never constructs per-word
``WaveSource`` objects.
"""

from repro.analysis.tables import render_table
from repro.core.faults import (
    default_patterns,
    enumerate_faults,
    fault_coverage,
    parametric_coverage,
)


def run(gate=None, weak_severity=0.5, amplitude_tolerance=0.1):
    """Compute logic and parametric coverage; returns the record dict."""
    from repro import byte_majority_gate

    gate = gate if gate is not None else byte_majority_gate()
    faults = enumerate_faults(gate, weak_severity=weak_severity)
    patterns = default_patterns(gate)
    logic = fault_coverage(gate, faults=faults, patterns=patterns)
    parametric = parametric_coverage(
        gate,
        faults=faults,
        patterns=patterns,
        amplitude_tolerance=amplitude_tolerance,
    )

    def by_kind(record):
        counts = {}
        detected_faults = {f.describe() for f, _ in record["detected"]}
        for fault in faults:
            kind = fault.kind
            total, caught = counts.get(kind, (0, 0))
            counts[kind] = (
                total + 1,
                caught + (fault.describe() in detected_faults),
            )
        return counts

    return {
        "n_faults": len(faults),
        "n_patterns": len(patterns),
        "logic": logic,
        "parametric": parametric,
        "logic_by_kind": by_kind(logic),
        "parametric_by_kind": by_kind(parametric),
        "weak_severity": weak_severity,
        "amplitude_tolerance": amplitude_tolerance,
    }


def report(results):
    """Render the per-kind coverage table."""
    headers = ["fault kind", "faults", "logic coverage", "parametric coverage"]
    rows = []
    for kind in sorted(results["logic_by_kind"]):
        total, logic_caught = results["logic_by_kind"][kind]
        _, parametric_caught = results["parametric_by_kind"][kind]
        rows.append(
            [
                kind,
                str(total),
                f"{logic_caught / total:.0%}",
                f"{parametric_caught / total:.0%}",
            ]
        )
    rows.append(
        [
            "TOTAL",
            str(results["n_faults"]),
            f"{results['logic']['coverage']:.0%}",
            f"{results['parametric']['coverage']:.0%}",
        ]
    )
    table = render_table(
        headers,
        rows,
        title=(
            "Single-transducer fault coverage of the byte MAJ gate "
            f"({results['n_patterns']} exhaustive functional patterns)"
        ),
    )
    footer = [
        "",
        f"weak-source severity {results['weak_severity']:g}, parametric "
        f"amplitude tolerance {results['amplitude_tolerance']:.0%}.",
        "Weak-source faults keep the interference phasors colinear, so "
        "logic (and even phase-margin) testing cannot see them; an "
        "amplitude measurement catches every one.",
    ]
    return table + "\n" + "\n".join(footer)
