"""Circuit-level manufacturing test: fault coverage of a physical adder.

The gate-level study (:mod:`repro.experiments.fault_coverage`) asks
which transducer faults a single gate's exhaustive pattern set catches;
this experiment lifts the question to *circuits*: the synthesized full
adder (and optionally wider ripple-carry blocks) is compiled onto
physical spin-wave cells by the circuit engine, the single-transducer
fault universe of every physical cell is enumerated, and each fault is
simulated against the exhaustive primary-input pattern set -- faults now
have to propagate through downstream majority/XOR stages (with
regeneration at every level) before they become observable at a primary
output.

Two circuit-level effects emerge on top of the gate-level story:

* logic masking -- a stuck fault that flips a cell output may still be
  absorbed by a downstream majority vote on some patterns, so per-fault
  detecting-pattern counts shrink relative to the isolated gate;
* weak-source invisibility survives composition -- regeneration
  re-excites every level at full amplitude, so a weak source's amplitude
  deficit never crosses a level boundary and stays undetectable by logic
  testing anywhere in the circuit, exactly as for the lone gate.

The answer to the second effect is the **parametric sweep**
(:func:`weak_source_amplitude_sweep`): instead of comparing decoded
words, the tester reads the carrier amplitude every cell's detector
records during the run and flags any deviation from the fault-free
reference beyond a relative tolerance.  Sweeping the weak-source
severity reports the *detection threshold* -- the weakest amplitude
deficit the parametric measurement still catches -- which is the
manufacturing-test spec the logic-only study cannot provide.
"""

from itertools import product

import numpy as np

from repro.analysis.tables import render_table
from repro.circuits.engine import CellFault, CircuitEngine
from repro.circuits.library import PHYSICAL_BINDINGS, physical_arity
from repro.circuits.synth import full_adder, ripple_carry_adder
from repro.core.faults import TransducerFault, _FAULT_KINDS
from repro.errors import NetlistError


def enumerate_circuit_faults(
    engine, kinds=_FAULT_KINDS, channels=None, weak_severity=0.5
):
    """The single-fault universe of every physical cell of ``engine``.

    ``channels`` restricts the data-parallel channels faulted (default:
    all ``engine.n_bits``); each (cell, kind, channel, input) combination
    yields one :class:`~repro.circuits.engine.CellFault`.
    """
    if channels is None:
        channels = range(engine.n_bits)
    faults = []
    for cells in engine.schedule:
        for node in cells:
            if node.kind not in PHYSICAL_BINDINGS:
                continue
            n_inputs = physical_arity(node.kind)
            for kind in kinds:
                for channel in channels:
                    for input_index in range(n_inputs):
                        faults.append(
                            CellFault(
                                node.name,
                                TransducerFault(
                                    kind=kind,
                                    channel=channel,
                                    input_index=input_index,
                                    severity=weak_severity,
                                ),
                            )
                        )
    return faults


def exhaustive_assignments(netlist):
    """All ``2**n_inputs`` primary-input assignments of ``netlist``."""
    inputs = netlist.inputs
    if len(inputs) > 12:
        raise NetlistError(
            f"{len(inputs)} primary inputs: exhaustive patterns infeasible"
        )
    return [
        dict(zip(inputs, bits))
        for bits in product((0, 1), repeat=len(inputs))
    ]


def circuit_fault_coverage(engine, faults=None, patterns=None):
    """Run ``patterns`` against every circuit fault; coverage record.

    Each pattern is broadcast across all data-parallel channels (every
    channel of one word group carries the same assignment), matching the
    gate-level exhaustive functional set where every channel of input
    ``j`` carries the same bit -- so a channel-``c`` fault meets the
    *whole* pattern set, not just the patterns that happen to land on
    channel ``c``.  A fault is *detected* when some pattern's
    primary-output word differs from the fault-free physical response
    (an outright decode failure counts as detected).  Returns the same
    record shape as :func:`repro.core.faults.fault_coverage`, with
    detections reported as (fault, first detecting pattern index).
    """
    if faults is None:
        faults = enumerate_circuit_faults(engine)
    if patterns is None:
        patterns = exhaustive_assignments(engine.netlist)
    if not patterns:
        raise NetlistError("need at least one test pattern")

    n_bits = engine.n_bits
    broadcast = [dict(p) for p in patterns for _ in range(n_bits)]
    golden = engine.run(broadcast).outputs
    output_names = engine.netlist.outputs

    detected = []
    undetected = []
    for fault in faults:
        result = engine.run(broadcast, faults=[fault], strict=False)
        hit = None
        for index in range(result.n_entries):
            if result.failed[index] or any(
                result.outputs[o][index] != golden[o][index]
                for o in output_names
            ):
                hit = index // n_bits
                break
        if hit is None:
            undetected.append(fault)
        else:
            detected.append((fault, hit))
    total = len(faults)
    return {
        "coverage": len(detected) / total if total else 1.0,
        "detected": detected,
        "undetected": undetected,
        "n_patterns": len(patterns),
        "n_faults": total,
    }


def _broadcast_patterns(patterns, n_bits):
    """Each pattern repeated across all data-parallel channels."""
    return [dict(p) for p in patterns for _ in range(n_bits)]


def _cell_amplitudes(result):
    """{cell name: (n_entries,) decode-amplitude array}, physical cells only."""
    return {
        name: np.asarray(record.amplitudes, dtype=float)
        for name, record in result.cells.items()
        if record.amplitudes is not None and len(record.amplitudes)
    }


def weak_source_amplitude_sweep(
    engine,
    cell=None,
    channel=0,
    input_index=0,
    severities=(0.95, 0.9, 0.75, 0.5, 0.25, 0.1),
    amplitude_tolerance=0.05,
    patterns=None,
    mode="phasor",
):
    """Parametric weak-source detection threshold at circuit scope.

    Injects a ``weak-source`` fault of each ``severities`` entry at
    ``(cell, channel, input_index)`` (default victim: the first
    phase-readout -- MAJ3 -- cell of the schedule, the family where
    logic testing is provably blind; any physical cell otherwise) and
    runs the exhaustive pattern set through the engine twice per point
    -- fault-free and faulted.  Detection is *parametric*: a fault is
    caught when some (cell, instance) decode amplitude deviates from the
    fault-free reference by more than ``amplitude_tolerance`` relative
    to the largest reference amplitude; decoded words are compared too
    (``logic_visible``) -- a phase-readout victim stays logic-invisible
    at every severity, while an amplitude-readout (XOR) victim flips
    decoded bits once the deficit crosses the threshold ratio, which the
    sweep exposes when pointed there.  Regeneration confines the deficit
    to the victim cell's own detector, so the sweep doubles as a check
    that parametric measurement must probe *every* cell, not just
    primary outputs.

    Returns a dict with per-severity records and ``threshold`` -- the
    largest severity (smallest amplitude deficit) still detected, or
    ``None`` when nothing was.
    """
    if not severities:
        raise NetlistError("need at least one weak-source severity")
    if amplitude_tolerance <= 0:
        raise NetlistError(
            f"amplitude_tolerance must be positive, got {amplitude_tolerance!r}"
        )
    if cell is None:
        physical = [
            node
            for cells in engine.schedule
            for node in cells
            if node.kind in PHYSICAL_BINDINGS
        ]
        if not physical:
            raise NetlistError("the circuit has no physical cells to fault")
        preferred = [node for node in physical if node.kind == "MAJ3"]
        cell = (preferred[0] if preferred else physical[0]).name
    if patterns is None:
        patterns = exhaustive_assignments(engine.netlist)
    broadcast = _broadcast_patterns(patterns, engine.n_bits)
    golden = engine.run(broadcast, mode=mode)
    golden_amplitudes = _cell_amplitudes(golden)
    scale = max(float(a.max()) for a in golden_amplitudes.values())
    output_names = engine.netlist.outputs

    points = []
    threshold = None
    for severity in sorted(severities, reverse=True):
        fault = CellFault(
            cell,
            TransducerFault(
                "weak-source",
                channel=channel,
                input_index=input_index,
                severity=severity,
            ),
        )
        result = engine.run(broadcast, faults=[fault], strict=False, mode=mode)
        deviation = 0.0
        worst_cell = None
        for name, amplitudes in _cell_amplitudes(result).items():
            cell_deviation = float(
                np.nanmax(np.abs(amplitudes - golden_amplitudes[name]))
            )
            if cell_deviation > deviation:
                deviation = cell_deviation
                worst_cell = name
        logic_visible = any(
            result.failed[i]
            or any(
                result.outputs[o][i] != golden.outputs[o][i]
                for o in output_names
            )
            for i in range(result.n_entries)
        )
        detected = deviation > amplitude_tolerance * scale
        if detected and threshold is None:
            threshold = severity
        points.append(
            {
                "severity": severity,
                "deficit": 1.0 - severity,
                "relative_deviation": deviation / scale,
                "worst_cell": worst_cell,
                "detected": detected,
                "logic_visible": logic_visible,
            }
        )
    return {
        "cell": cell,
        "channel": channel,
        "input_index": input_index,
        "amplitude_tolerance": amplitude_tolerance,
        "n_patterns": len(patterns),
        "points": points,
        "threshold": threshold,
        "mode": mode,
    }


def run(width=1, n_bits=4, weak_severity=0.5, channels=None,
        severities=(0.95, 0.9, 0.75, 0.5, 0.25, 0.1),
        amplitude_tolerance=0.05):
    """Fault coverage of a physical ``width``-bit adder circuit.

    ``width == 1`` compiles the lone full adder; larger widths compile
    the ripple-carry chain (pattern count grows as ``4**width``).  On
    top of the logic-coverage sweep, the parametric weak-source
    amplitude sweep (:func:`weak_source_amplitude_sweep`) reports the
    severity threshold at which amplitude measurement catches what logic
    testing provably cannot.
    """
    if width == 1:
        netlist, _, _ = full_adder()
    else:
        netlist = ripple_carry_adder(width)
    engine = CircuitEngine(netlist, n_bits=n_bits)
    faults = enumerate_circuit_faults(
        engine, channels=channels, weak_severity=weak_severity
    )
    patterns = exhaustive_assignments(netlist)
    record = circuit_fault_coverage(engine, faults=faults, patterns=patterns)
    parametric = weak_source_amplitude_sweep(
        engine,
        severities=severities,
        amplitude_tolerance=amplitude_tolerance,
        patterns=patterns,
    )

    by_kind = {}
    detected_set = {f for f, _ in record["detected"]}
    for fault in faults:
        kind = fault.fault.kind
        total, caught = by_kind.get(kind, (0, 0))
        by_kind[kind] = (total + 1, caught + (fault in detected_set))

    return {
        "circuit": netlist.name,
        "depth": netlist.depth(),
        "n_cells": engine.n_physical_cells,
        "n_bits": engine.n_bits,
        "n_faults": record["n_faults"],
        "n_patterns": record["n_patterns"],
        "coverage": record["coverage"],
        "by_kind": by_kind,
        "undetected": [f.describe() for f in record["undetected"]],
        "weak_severity": weak_severity,
        "parametric": parametric,
    }


def report(results):
    """Render the per-kind circuit coverage table."""
    headers = ["fault kind", "faults", "logic coverage"]
    rows = []
    for kind in sorted(results["by_kind"]):
        total, caught = results["by_kind"][kind]
        rows.append([kind, str(total), f"{caught / total:.0%}"])
    rows.append(
        ["TOTAL", str(results["n_faults"]), f"{results['coverage']:.0%}"]
    )
    table = render_table(
        headers,
        rows,
        title=(
            f"Circuit-level fault coverage of {results['circuit']} "
            f"({results['n_cells']} physical cells, depth "
            f"{results['depth']}, {results['n_patterns']} exhaustive "
            "patterns through the physical engine)"
        ),
    )
    parametric = results["parametric"]
    sweep_rows = []
    for point in parametric["points"]:
        sweep_rows.append(
            [
                f"{point['severity']:g}",
                f"{point['deficit']:.0%}",
                f"{point['relative_deviation']:.3f}",
                "yes" if point["logic_visible"] else "no",
                "yes" if point["detected"] else "no",
            ]
        )
    sweep_table = render_table(
        ["severity", "deficit", "rel. deviation", "logic sees it", "parametric"],
        sweep_rows,
        title=(
            f"Parametric weak-source sweep at {parametric['cell']} "
            f"(ch{parametric['channel']}.in{parametric['input_index']}, "
            f"tolerance {parametric['amplitude_tolerance']:g})"
        ),
    )
    if parametric["threshold"] is None:
        threshold_line = (
            "No severity in the sweep crossed the parametric tolerance."
        )
    else:
        threshold_line = (
            f"Parametric detection threshold: severity "
            f"{parametric['threshold']:g} "
            f"({1.0 - parametric['threshold']:.0%} amplitude deficit) is "
            "still caught by amplitude measurement."
        )
    footer = [
        "",
        f"weak-source severity {results['weak_severity']:g}; "
        f"{results['n_bits']}-bit data-parallel cells.",
        "Transduced regeneration re-excites every level at full "
        "amplitude, so weak-source faults stay invisible to circuit-"
        "level logic testing too -- parametric (amplitude) measurement "
        "remains mandatory at manufacturing test.",
        threshold_line,
    ]
    return table + "\n\n" + sweep_table + "\n" + "\n".join(footer)
