"""Circuit-level manufacturing test: fault coverage of a physical adder.

The gate-level study (:mod:`repro.experiments.fault_coverage`) asks
which transducer faults a single gate's exhaustive pattern set catches;
this experiment lifts the question to *circuits*: the synthesized full
adder (and optionally wider ripple-carry blocks) is compiled onto
physical spin-wave cells by the circuit engine, the single-transducer
fault universe of every physical cell is enumerated, and each fault is
simulated against the exhaustive primary-input pattern set -- faults now
have to propagate through downstream majority/XOR stages (with
regeneration at every level) before they become observable at a primary
output.

Two circuit-level effects emerge on top of the gate-level story:

* logic masking -- a stuck fault that flips a cell output may still be
  absorbed by a downstream majority vote on some patterns, so per-fault
  detecting-pattern counts shrink relative to the isolated gate;
* weak-source invisibility survives composition -- regeneration
  re-excites every level at full amplitude, so a weak source's amplitude
  deficit never crosses a level boundary and stays undetectable by logic
  testing anywhere in the circuit, exactly as for the lone gate.
"""

from itertools import product

from repro.analysis.tables import render_table
from repro.circuits.engine import CellFault, CircuitEngine
from repro.circuits.library import PHYSICAL_BINDINGS
from repro.circuits.synth import full_adder, ripple_carry_adder
from repro.core.faults import TransducerFault, _FAULT_KINDS
from repro.errors import NetlistError


def enumerate_circuit_faults(
    engine, kinds=_FAULT_KINDS, channels=None, weak_severity=0.5
):
    """The single-fault universe of every physical cell of ``engine``.

    ``channels`` restricts the data-parallel channels faulted (default:
    all ``engine.n_bits``); each (cell, kind, channel, input) combination
    yields one :class:`~repro.circuits.engine.CellFault`.
    """
    if channels is None:
        channels = range(engine.n_bits)
    faults = []
    for cells in engine.schedule:
        for node in cells:
            if node.kind not in PHYSICAL_BINDINGS:
                continue
            n_inputs = engine.gate_for(node.kind).layout.n_inputs
            for kind in kinds:
                for channel in channels:
                    for input_index in range(n_inputs):
                        faults.append(
                            CellFault(
                                node.name,
                                TransducerFault(
                                    kind=kind,
                                    channel=channel,
                                    input_index=input_index,
                                    severity=weak_severity,
                                ),
                            )
                        )
    return faults


def exhaustive_assignments(netlist):
    """All ``2**n_inputs`` primary-input assignments of ``netlist``."""
    inputs = netlist.inputs
    if len(inputs) > 12:
        raise NetlistError(
            f"{len(inputs)} primary inputs: exhaustive patterns infeasible"
        )
    return [
        dict(zip(inputs, bits))
        for bits in product((0, 1), repeat=len(inputs))
    ]


def circuit_fault_coverage(engine, faults=None, patterns=None):
    """Run ``patterns`` against every circuit fault; coverage record.

    Each pattern is broadcast across all data-parallel channels (every
    channel of one word group carries the same assignment), matching the
    gate-level exhaustive functional set where every channel of input
    ``j`` carries the same bit -- so a channel-``c`` fault meets the
    *whole* pattern set, not just the patterns that happen to land on
    channel ``c``.  A fault is *detected* when some pattern's
    primary-output word differs from the fault-free physical response
    (an outright decode failure counts as detected).  Returns the same
    record shape as :func:`repro.core.faults.fault_coverage`, with
    detections reported as (fault, first detecting pattern index).
    """
    if faults is None:
        faults = enumerate_circuit_faults(engine)
    if patterns is None:
        patterns = exhaustive_assignments(engine.netlist)
    if not patterns:
        raise NetlistError("need at least one test pattern")

    n_bits = engine.n_bits
    broadcast = [dict(p) for p in patterns for _ in range(n_bits)]
    golden = engine.run(broadcast).outputs
    output_names = engine.netlist.outputs

    detected = []
    undetected = []
    for fault in faults:
        result = engine.run(broadcast, faults=[fault], strict=False)
        hit = None
        for index in range(result.n_entries):
            if result.failed[index] or any(
                result.outputs[o][index] != golden[o][index]
                for o in output_names
            ):
                hit = index // n_bits
                break
        if hit is None:
            undetected.append(fault)
        else:
            detected.append((fault, hit))
    total = len(faults)
    return {
        "coverage": len(detected) / total if total else 1.0,
        "detected": detected,
        "undetected": undetected,
        "n_patterns": len(patterns),
        "n_faults": total,
    }


def run(width=1, n_bits=4, weak_severity=0.5, channels=None):
    """Fault coverage of a physical ``width``-bit adder circuit.

    ``width == 1`` compiles the lone full adder; larger widths compile
    the ripple-carry chain (pattern count grows as ``4**width``).
    """
    if width == 1:
        netlist, _, _ = full_adder()
    else:
        netlist = ripple_carry_adder(width)
    engine = CircuitEngine(netlist, n_bits=n_bits)
    faults = enumerate_circuit_faults(
        engine, channels=channels, weak_severity=weak_severity
    )
    patterns = exhaustive_assignments(netlist)
    record = circuit_fault_coverage(engine, faults=faults, patterns=patterns)

    by_kind = {}
    detected_set = {f for f, _ in record["detected"]}
    for fault in faults:
        kind = fault.fault.kind
        total, caught = by_kind.get(kind, (0, 0))
        by_kind[kind] = (total + 1, caught + (fault in detected_set))

    return {
        "circuit": netlist.name,
        "depth": netlist.depth(),
        "n_cells": engine.n_physical_cells,
        "n_bits": engine.n_bits,
        "n_faults": record["n_faults"],
        "n_patterns": record["n_patterns"],
        "coverage": record["coverage"],
        "by_kind": by_kind,
        "undetected": [f.describe() for f in record["undetected"]],
        "weak_severity": weak_severity,
    }


def report(results):
    """Render the per-kind circuit coverage table."""
    headers = ["fault kind", "faults", "logic coverage"]
    rows = []
    for kind in sorted(results["by_kind"]):
        total, caught = results["by_kind"][kind]
        rows.append([kind, str(total), f"{caught / total:.0%}"])
    rows.append(
        ["TOTAL", str(results["n_faults"]), f"{results['coverage']:.0%}"]
    )
    table = render_table(
        headers,
        rows,
        title=(
            f"Circuit-level fault coverage of {results['circuit']} "
            f"({results['n_cells']} physical cells, depth "
            f"{results['depth']}, {results['n_patterns']} exhaustive "
            "patterns through the physical engine)"
        ),
    )
    footer = [
        "",
        f"weak-source severity {results['weak_severity']:g}; "
        f"{results['n_bits']}-bit data-parallel cells.",
        "Transduced regeneration re-excites every level at full "
        "amplitude, so weak-source faults stay invisible to circuit-"
        "level logic testing too -- parametric (amplitude) measurement "
        "remains mandatory at manufacturing test.",
    ]
    return table + "\n" + "\n".join(footer)
