"""LLG cross-validation -- the linear model versus the full solver.

The paper validates its gate with OOMMF; our byte-wide experiments run
on the linear travelling-wave model.  This experiment closes the loop:
it builds a reduced in-line majority gate (1-2 frequency channels, a few
hundred nanometres) and evaluates it with *both* backends -- the
finite-difference LLG solver (our OOMMF substitute) and the linear model
-- checking that the decoded bits agree for every input combination.

The reduced gate is laid out on an ``exchange``-dispersion waveguide,
the relation the local (no-dipolar) 1-D micromagnetic configuration
realises, so both backends share the same wavelengths by construction.
"""

from itertools import product

import numpy as np

from repro.analysis.tables import render_table
from repro.core.frequency_plan import FrequencyPlan
from repro.core.gate import DataParallelGate
from repro.core.layout import InlineGateLayout
from repro.core.readout import decode_channel
from repro.core.simulate import GateSimulator, build_micromagnetic_simulation
from repro.units import GHZ
from repro.waveguide import Waveguide


def build_reduced_gate(frequencies=(10.0 * GHZ,), multipliers=None):
    """A small n-channel 3-input MAJ gate for LLG cross-validation."""
    waveguide = Waveguide(dispersion_model="exchange")
    plan = FrequencyPlan(list(frequencies))
    layout = InlineGateLayout(
        waveguide,
        plan,
        n_inputs=3,
        multipliers=multipliers,
    )
    return DataParallelGate(layout)


def run_llg_case(gate, bits, duration=None, dt=0.1e-12, cell_size=4e-9,
                 field_amplitude=8e3):
    """One input combination on the LLG backend; returns decode info."""
    words = [[b] * gate.n_bits for b in bits]
    sim, probes = build_micromagnetic_simulation(
        gate, words, cell_size=cell_size, field_amplitude=field_amplitude
    )
    reference = GateSimulator(gate)
    t_start = reference.settle_time()
    if duration is None:
        slowest = min(gate.layout.plan.frequencies)
        duration = t_start + 10.0 / slowest
    sim.run(duration, dt=dt)

    calibration = reference.calibration()
    decodes = []
    for channel, probe in enumerate(probes):
        t = probe.times()
        mx = probe.component(0)
        reference_phase, _ = calibration[channel]
        decode = decode_channel(
            t,
            mx,
            gate.layout.plan.frequencies[channel],
            reference_phase=reference_phase,
            t_start=t_start,
        )
        decodes.append(decode)
    return {
        "inputs": bits,
        "decoded": [d.bit for d in decodes],
        "expected": gate.expected_output(words),
        "phases": [d.phase for d in decodes],
        "margins": [d.margin for d in decodes],
        "amplitudes": [d.amplitude for d in decodes],
    }


def run(frequencies=(10.0 * GHZ,), combos=None, dt=0.1e-12, cell_size=4e-9):
    """Cross-validate the reduced gate over input ``combos`` (default all 8)."""
    gate = build_reduced_gate(frequencies=frequencies)
    simulator = GateSimulator(gate)
    if combos is None:
        combos = list(product((0, 1), repeat=3))
    rows = []
    for bits in combos:
        words = [[b] * gate.n_bits for b in bits]
        linear = simulator.run_phasor(words)
        llg = run_llg_case(gate, bits, dt=dt, cell_size=cell_size)
        rows.append(
            {
                "inputs": bits,
                "expected": linear.expected,
                "linear_decoded": linear.decoded,
                "llg_decoded": llg["decoded"],
                "llg_margin": float(min(llg["margins"])),
                "llg_amplitude": float(max(llg["amplitudes"])),
                "agree": linear.decoded == llg["decoded"],
                "llg_correct": llg["decoded"] == llg["expected"],
            }
        )
    return {
        "gate": gate.describe(),
        "rows": rows,
        "all_agree": all(r["agree"] for r in rows),
        "all_correct": all(r["llg_correct"] for r in rows),
    }


def report(results):
    """Render the backend agreement table."""
    headers = [
        "inputs",
        "expected",
        "linear model",
        "LLG solver",
        "agree",
        "LLG margin [rad]",
    ]
    rows = []
    for r in results["rows"]:
        rows.append(
            [
                " ".join(str(b) for b in r["inputs"]),
                "".join(str(b) for b in r["expected"]),
                "".join(str(b) for b in r["linear_decoded"]),
                "".join(str(b) for b in r["llg_decoded"]),
                "yes" if r["agree"] else "NO",
                f"{r['llg_margin']:.3f}",
            ]
        )
    table = render_table(
        headers,
        rows,
        title=f"LLG cross-validation -- {results['gate']}",
    )
    footer = [
        "",
        f"backends agree on every combination: "
        f"{'yes' if results['all_agree'] else 'NO'}",
        f"LLG decodes match Boolean majority: "
        f"{'yes' if results['all_correct'] else 'NO'}",
        "This is the reproduction's stand-in for the paper's OOMMF "
        "validation, on a reduced geometry (see DESIGN.md).",
    ]
    return table + "\n" + "\n".join(footer)
