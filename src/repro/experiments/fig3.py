"""Fig. 3 -- byte-based majority gate response in time and frequency.

The paper drives the byte-wide 3-input majority gate with all eight
(I1, I2, I3) combinations (each input replicated across the 8 frequency
channels), records the Mx/Ms trace at the output region, and shows:

* time traces with amplitude ~0.005 Mx/Ms,
* an |FFT| with peaks at exactly the excitation frequencies 10-80 GHz
  and *no* peaks elsewhere -- the no-inter-frequency-interference
  observation that underpins the whole data-parallel scheme.

``run()`` regenerates both: for every input combination it simulates the
gate, extracts the FFT peak amplitude at each channel and the spurious
(out-of-band) power ratio.
"""

from itertools import product

from repro.analysis.spectra import amplitude_at, spectrum_peaks, spurious_power_ratio
from repro.analysis.tables import render_table
from repro.core.simulate import GateSimulator
from repro.units import GHZ

#: Source amplitude chosen so trace levels land near the paper's
#: ~0.005 Mx/Ms at the detectors (each source contributes ~1.7e-3).
DEFAULT_SOURCE_AMPLITUDE = 1.7e-3


def run(gate=None, duration=3e-9, source_amplitude=DEFAULT_SOURCE_AMPLITUDE):
    """Simulate all 8 input combinations; returns the fig3 result dict.

    Keys: ``combos`` (list of dicts with bits, trace, peak amplitudes,
    spurious ratio), ``frequencies``, ``t``.
    """
    import numpy as np

    from repro import byte_majority_gate

    gate = gate if gate is not None else byte_majority_gate()
    simulator = GateSimulator(gate)
    simulator.amplitudes = simulator.amplitudes * source_amplitude
    frequencies = gate.layout.plan.frequencies

    combos = []
    t = None
    for bits in product((0, 1), repeat=3):
        words = [[b] * gate.n_bits for b in bits]
        result = simulator.run(words, duration=duration)
        t = result.t
        # The paper's Fig. 3 probes one output location; the first
        # channel's detector sees every frequency in the shared guide.
        trace = result.traces[0]
        peaks = [amplitude_at(t, trace, f) for f in frequencies]
        combos.append(
            {
                "inputs": bits,
                "trace": trace,
                "max_mx": float(np.max(np.abs(trace))),
                "peak_amplitudes": peaks,
                "spurious_ratio": spurious_power_ratio(t, trace, frequencies),
                "detected_peaks": spectrum_peaks(t, trace, threshold_ratio=0.2),
                "decoded": result.decoded,
                "expected": result.expected,
                "correct": result.correct,
            }
        )
    return {"t": t, "frequencies": list(frequencies), "combos": combos}


def report(results):
    """Render the fig3 rows: per-combination peak table + cleanliness."""
    frequencies = results["frequencies"]
    headers = ["I1 I2 I3"] + [
        f"{f / GHZ:g} GHz" for f in frequencies
    ] + ["max|Mx/Ms|", "spurious", "MAJ ok"]
    rows = []
    for combo in results["combos"]:
        bits = " ".join(str(b) for b in combo["inputs"])
        peak_cells = [f"{a:.4f}" for a in combo["peak_amplitudes"]]
        rows.append(
            [bits]
            + peak_cells
            + [
                f"{combo['max_mx']:.4f}",
                f"{combo['spurious_ratio']:.2e}",
                "yes" if combo["correct"] else "NO",
            ]
        )
    table = render_table(
        headers,
        rows,
        title=(
            "Fig. 3 -- byte MAJ gate |FFT| peak amplitude per excitation "
            "frequency (Mx/Ms units)"
        ),
    )
    notes = [
        "",
        "Paper shape: peaks only at the 8 excitation frequencies, "
        "time-domain amplitude ~0.005 Mx/Ms.",
        "Spurious column = fraction of spectral power outside the 8 "
        "carrier bands (paper: no visible off-carrier peaks).",
    ]
    return table + "\n" + "\n".join(notes)
