"""How far does *n* scale? -- channel capacity of the in-line gate.

The paper validates n = 8 and argues the structure is generic; this
experiment quantifies the usable channel count of a given waveguide.
Two physical limits bound the frequency band:

* **low side** -- channels must clear the band edge (no propagation
  below it) with headroom for the readout filter;
* **high side** -- a transducer of length L cannot efficiently couple to
  wavelengths shorter than ~2L (the cell averages the wave out), so
  f_max satisfies lambda(f_max) = 2 * L_transducer.

Within the band, channels are packed at uniform spacing and each design
is laid out and decoded end-to-end; the per-bit area is the payoff
curve: the data-parallel win grows with n while the decode margin holds.
"""

from itertools import product

from repro.analysis.tables import render_table
from repro.core.frequency_plan import FrequencyPlan
from repro.core.gate import DataParallelGate
from repro.core.layout import InlineGateLayout, TransducerSpec
from repro.core.simulate import GateSimulator
from repro.errors import LayoutError, ReproError
from repro.physics.solve import wavelength_for_frequency, wavenumber_for_frequency
from repro.units import GHZ
from repro.waveguide import Waveguide


def usable_band(waveguide, transducer=None, edge_headroom=1.5):
    """(f_low, f_high) of the waveguide/transducer combination [Hz]."""
    transducer = transducer if transducer is not None else TransducerSpec()
    dispersion = waveguide.dispersion()
    f_low = edge_headroom * dispersion.frequency(0.0)
    # Solve lambda(f_high) = 2 * transducer length via the wavenumber.
    from scipy.optimize import brentq

    lambda_min = 2.0 * transducer.length

    def objective(f):
        return wavelength_for_frequency(dispersion, f) - lambda_min

    f_probe = f_low * 1.01
    if objective(f_probe) < 0:
        raise ReproError(
            "transducer too long: no frequency above the band edge has "
            f"lambda >= {lambda_min:.3g} m"
        )
    f_high = brentq(objective, f_probe, 1e13, rtol=1e-9)
    return f_low, float(f_high)


def design_plan(n_bits, f_low, f_high):
    """Uniformly spaced n-channel plan inside [f_low, f_high]."""
    if n_bits == 1:
        return FrequencyPlan([0.5 * (f_low + f_high)])
    step = (f_high - f_low) / (n_bits - 1)
    return FrequencyPlan([f_low + i * step for i in range(n_bits)])


def run(
    waveguide=None,
    channel_counts=(1, 2, 4, 8, 12, 16),
    n_inputs=3,
    check_all_combos=False,
):
    """Design, lay out and verify gates of increasing width."""
    waveguide = waveguide if waveguide is not None else Waveguide()
    transducer = TransducerSpec()
    f_low, f_high = usable_band(waveguide, transducer)

    rows = []
    for n_bits in channel_counts:
        plan = design_plan(n_bits, f_low, f_high)
        try:
            plan.validate_against(waveguide.dispersion())
        except Exception as error:  # spacing too tight for this n
            rows.append(
                {
                    "n_bits": n_bits,
                    "feasible": False,
                    "reason": str(error),
                }
            )
            continue
        try:
            layout = InlineGateLayout(
                waveguide, plan, n_inputs=n_inputs, transducer=transducer
            )
        except LayoutError as error:
            rows.append(
                {"n_bits": n_bits, "feasible": False, "reason": str(error)}
            )
            continue
        gate = DataParallelGate(layout)
        simulator = GateSimulator(gate)
        combos = (
            list(product((0, 1), repeat=n_inputs))
            if check_all_combos
            else [(0,) * n_inputs, (1,) * n_inputs, (1, 0, 1)[:n_inputs]]
        )
        # All input combinations of one design evaluate as a single
        # vectorised batch (one SourceBank, one phasor GEMM per design).
        results = simulator.run_phasor_batch(
            [[[b] * n_bits for b in bits] for bits in combos]
        )
        functional = all(result.correct for result in results)
        min_margin = float(min(result.min_margin for result in results))
        rows.append(
            {
                "n_bits": n_bits,
                "feasible": True,
                "functional": functional,
                "min_margin": float(min_margin),
                "area": layout.area,
                "area_per_bit": layout.area / n_bits,
                "length": layout.total_length,
                "min_spacing": plan.min_spacing(),
            }
        )
    return {
        "band": (f_low, f_high),
        "rows": rows,
        "per_bit_area_decreasing": _per_bit_decreasing(rows),
    }


def _per_bit_decreasing(rows):
    # n = 1 is a degenerate mid-band design (one tiny gate); the
    # data-parallel claim concerns n >= 2.
    areas = [
        r["area_per_bit"]
        for r in rows
        if r.get("feasible") and r["n_bits"] >= 2
    ]
    return all(a >= b for a, b in zip(areas, areas[1:]))


def report(results):
    """Render the capacity sweep."""
    f_low, f_high = results["band"]
    headers = [
        "n bits",
        "feasible",
        "works",
        "min margin [rad]",
        "area [um^2]",
        "area/bit [um^2]",
        "spacing [GHz]",
    ]
    rows = []
    for r in results["rows"]:
        if not r.get("feasible"):
            rows.append([str(r["n_bits"]), "no", "-", "-", "-", "-", "-"])
            continue
        rows.append(
            [
                str(r["n_bits"]),
                "yes",
                "yes" if r["functional"] else "NO",
                f"{r['min_margin']:.3f}",
                f"{r['area'] * 1e12:.4f}",
                f"{r['area_per_bit'] * 1e12:.4f}",
                f"{r['min_spacing'] / GHZ:.1f}",
            ]
        )
    table = render_table(
        headers,
        rows,
        title=(
            "Channel capacity -- n-bit gates packed into the usable band "
            f"[{f_low / GHZ:.1f}, {f_high / GHZ:.1f}] GHz"
        ),
    )
    footer = [
        "",
        "Band limits: low = 1.5x band edge (propagation + filter "
        "headroom), high = lambda(f) >= 2 x 10 nm transducer length.",
        "area/bit monotonically decreasing: "
        f"{'yes' if results['per_bit_area_decreasing'] else 'NO'} "
        "-- the data-parallel area win grows with n (paper Section III).",
    ]
    return table + "\n" + "\n".join(footer)
