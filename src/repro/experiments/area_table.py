"""Section V.B -- area/delay/energy comparison, parallel vs scalar.

Paper numbers for the 8-bit 3-input majority gate:

* conventional (8 scalar gates): 0.116 um^2,
* byte-parallel in-line gate:    0.0279 um^2,
* ratio 4.16x, with matching delay and energy (same transducer counts).

This experiment regenerates the comparison from the layout engine and
the transducer cost model.
"""

from repro.analysis.tables import render_table
from repro.core.layout import InlineGateLayout
from repro.core.metrics import CostModel, comparison

#: Paper's published figures [m^2].
PAPER_SCALAR_AREA = 0.116e-12
PAPER_PARALLEL_AREA = 0.0279e-12
PAPER_AREA_RATIO = 4.16


def run(layout=None, cost_model=None):
    """Compute both implementations' costs; returns the result dict."""
    layout = layout if layout is not None else InlineGateLayout.paper_byte_layout()
    cost_model = cost_model if cost_model is not None else CostModel()
    result = comparison(layout, cost_model)
    return {
        "layout": layout,
        "parallel": result.parallel,
        "scalar": result.scalar,
        "area_ratio": result.area_ratio,
        "delay_ratio": result.delay_ratio,
        "energy_ratio": result.energy_ratio,
        "paper": {
            "scalar_area": PAPER_SCALAR_AREA,
            "parallel_area": PAPER_PARALLEL_AREA,
            "area_ratio": PAPER_AREA_RATIO,
        },
    }


def report(results):
    """Render the Section V.B comparison with paper references."""
    parallel = results["parallel"]
    scalar = results["scalar"]
    paper = results["paper"]
    headers = ["implementation", "area [um^2]", "delay [ns]", "energy [aJ]", "cells"]
    rows = [
        scalar.as_row("8x scalar MAJ gates"),
        parallel.as_row("byte parallel gate"),
    ]
    table = render_table(
        headers, rows, title="Section V.B -- implementation comparison"
    )
    footer = [
        "",
        f"area ratio (scalar/parallel): {results['area_ratio']:.2f}x "
        f"(paper: {paper['area_ratio']:.2f}x)",
        f"paper areas: scalar {paper['scalar_area'] * 1e12:.3f} um^2, "
        f"parallel {paper['parallel_area'] * 1e12:.4f} um^2",
        f"delay ratio: {results['delay_ratio']:.2f} "
        "(paper: ~1, transducer-dominated)",
        f"energy ratio: {results['energy_ratio']:.2f} "
        "(paper: 1, same transducer count)",
        "Shape check: parallel wins on area by ~4x with no energy "
        "overhead; delay parity holds to within the propagation "
        "difference of the longer shared waveguide.",
    ]
    return table + "\n" + "\n".join(footer)
