"""Circuit-level noise robustness: margin vs jitter across synthesized blocks.

The gate-level study (:mod:`repro.experiments.noise_robustness`)
measures one gate's word error rate under transducer non-idealities;
this experiment asks how the margins hold up once gates compose into
*circuits* through the physical engine.  Every level re-thresholds and
re-excites (transduced regeneration), so per-level phase errors do not
accumulate analogically -- but every cell of every level rolls its own
independent jitter dice, so deeper and wider blocks see more chances for
a single channel to cross the decision boundary, and one flipped carry
corrupts everything downstream.

For each synthesized block (full adder, ripple-carry adders, the
majority tree) and each phase-noise sigma, a Monte-Carlo batch of random
primary-input assignments runs through the engine with one independent
noise realisation per (cell, word-group); the word error rate and the
worst per-level decode margin are reported.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.circuits.executor import CircuitExecutor
from repro.circuits.synth import full_adder, majority_tree, ripple_carry_adder
from repro.errors import NetlistError
from repro.waveguide import NoiseModel

DEFAULT_SIGMAS = (0.0, 0.1, 0.2, 0.4)


def default_blocks():
    """The standard synthesized benchmark blocks."""
    adder, _, _ = full_adder()
    return [adder, ripple_carry_adder(2), majority_tree(9)]


def _random_batch(netlist, n_trials, rng):
    inputs = netlist.inputs
    return [
        {name: int(rng.integers(2)) for name in inputs}
        for _ in range(n_trials)
    ]


def run(blocks=None, sigmas=DEFAULT_SIGMAS, n_trials=16, n_bits=4, seed=11,
        mode="phasor"):
    """Word error rate and worst margin vs phase noise, per block.

    ``mode="trace"`` runs the same sweep through the waveform-accurate
    time-domain circuit path (finite-window lock-in decode) instead of
    the steady-state phasor backend.
    """
    if n_trials < 1:
        raise NetlistError(f"n_trials must be >= 1, got {n_trials!r}")
    blocks = list(blocks) if blocks is not None else default_blocks()
    rng = np.random.default_rng(seed)
    # One executor serves every block: all circuits share one bindings
    # object (memoised weights/bases) and one compile cache, so each
    # netlist is lowered to its packed artifact exactly once across the
    # whole sigma sweep.
    executor = CircuitExecutor(n_bits=n_bits)
    rows = []
    for netlist in blocks:
        artifact = executor.cache.get_or_compile(netlist, executor.bindings)
        batch = _random_batch(netlist, n_trials, rng)
        error_rates = []
        min_margins = []
        for index, sigma in enumerate(sigmas):
            noise = (
                NoiseModel(phase_sigma=sigma, seed=seed + 1000 * index)
                if sigma > 0
                else None
            )
            result = executor.run(
                netlist, batch, noise=noise, strict=False, mode=mode
            )
            error_rates.append(result.word_errors / result.n_entries)
            min_margins.append(result.min_margin)
        rows.append(
            {
                "circuit": netlist.name,
                "depth": netlist.depth(),
                "n_cells": artifact.n_physical_cells,
                "error_rates": error_rates,
                "min_margins": min_margins,
            }
        )
    return {
        "sigmas": list(sigmas),
        "rows": rows,
        "n_trials": n_trials,
        "n_bits": n_bits,
        "mode": mode,
        "serving": executor.describe(),
    }


def report(results):
    """Render error-rate and margin tables over the sigma sweep."""
    sigma_headers = [f"sigma={s:g}" for s in results["sigmas"]]
    headers = ["circuit", "depth", "cells"] + sigma_headers
    rows = []
    for row in results["rows"]:
        rows.append(
            [row["circuit"], str(row["depth"]), str(row["n_cells"])]
            + [f"{rate:.0%}" for rate in row["error_rates"]]
        )
    table = render_table(
        headers,
        rows,
        title=(
            "Circuit word error rate vs transducer phase noise "
            f"({results['n_trials']} random words/point, "
            f"{results['n_bits']}-bit cells, independent per-cell jitter, "
            f"{results.get('mode', 'phasor')} backend)"
        ),
    )
    margin_rows = []
    for row in results["rows"]:
        margin_rows.append(
            [row["circuit"], str(row["depth"]), str(row["n_cells"])]
            + [
                "-" if m is None else f"{m:.3f}"
                for m in row["min_margins"]
            ]
        )
    margin_table = render_table(
        headers,
        margin_rows,
        title="Worst per-level decode margin [rad] over the same sweep",
    )
    footer = [
        "",
        "Regeneration stops analogue error accumulation, but every "
        "(cell, level) rolls independent jitter: deeper/wider blocks "
        "fail first, and a flipped carry corrupts all downstream sums.",
    ]
    serving = results.get("serving")
    if serving is not None:
        footer.append(f"packed serving: {serving}")
    return table + "\n\n" + margin_table + "\n" + "\n".join(footer)
