"""Section V -- scalability: damping versus input count.

In long gates the first input's wave is attenuated more than the last
input's; for enough inputs the worst-case majority margin goes negative
(a minority of nearby sources outvotes the majority of far ones) and the
gate fails.  The paper prescribes graded excitation energies,
E(I_n) < E(I_{n-1}) < ... < E(I_1), to restore correct behaviour.

``run()`` computes the worst-case decode margin versus fan-in with and
without compensation, plus the energy grading the compensation implies,
then cross-checks a failing case end-to-end on the simulator.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.core.frequency_plan import FrequencyPlan
from repro.core.gate import DataParallelGate
from repro.core.layout import InlineGateLayout
from repro.core.scaling import (
    compensation_amplitudes,
    decode_margin,
    excitation_energies,
)
from repro.core.simulate import GateSimulator
from repro.units import GHZ
from repro.waveguide import Waveguide

DEFAULT_INPUT_COUNTS = (3, 5, 7, 9, 11, 13, 15)


def run(
    input_counts=DEFAULT_INPUT_COUNTS,
    frequency=10.0 * GHZ,
    waveguide=None,
    multiplier=2,
):
    """Margin vs fan-in, uncompensated and compensated."""
    waveguide = waveguide if waveguide is not None else Waveguide()
    plan = FrequencyPlan([frequency])
    rows = []
    for m in input_counts:
        layout = InlineGateLayout(
            waveguide, plan, n_inputs=m, multipliers=[multiplier]
        )
        uncompensated, worst_bits = decode_margin(layout, channel=0)
        amplitudes = compensation_amplitudes(layout)
        compensated, _ = decode_margin(
            layout, channel=0, amplitudes=amplitudes[0]
        )
        energies = excitation_energies(amplitudes)[0]
        rows.append(
            {
                "n_inputs": m,
                "uncompensated_margin": uncompensated,
                "compensated_margin": compensated,
                "worst_combination": worst_bits,
                "energy_grading": energies.tolist(),
                "grading_span": float(energies.max() / energies.min()),
                "layout_length": layout.total_length,
            }
        )

    # End-to-end check on the simulator for the largest fan-in: the
    # worst-case pattern must decode wrongly without compensation (if the
    # margin analysis says so) and correctly with it.
    check = _end_to_end_check(waveguide, plan, rows[-1], multiplier)
    return {"rows": rows, "end_to_end": check}


def _end_to_end_check(waveguide, plan, row, multiplier):
    m = row["n_inputs"]
    layout = InlineGateLayout(
        waveguide, plan, n_inputs=m, multipliers=[multiplier]
    )
    gate = DataParallelGate(layout)
    words = [[b] for b in row["worst_combination"]]
    plain = GateSimulator(gate).run_phasor(words)
    graded = GateSimulator(
        gate, amplitudes=compensation_amplitudes(layout)
    ).run_phasor(words)
    return {
        "n_inputs": m,
        "worst_combination": row["worst_combination"],
        "uncompensated_correct": plain.correct,
        "compensated_correct": graded.correct,
        "margin_predicts_failure": row["uncompensated_margin"] < 0,
    }


def report(results):
    """Render margin vs fan-in and the compensation summary."""
    headers = [
        "inputs m",
        "margin (uniform drive)",
        "margin (graded drive)",
        "energy span E1/Em",
        "length [nm]",
    ]
    rows = []
    for r in results["rows"]:
        rows.append(
            [
                str(r["n_inputs"]),
                f"{r['uncompensated_margin']:+.3f}",
                f"{r['compensated_margin']:+.3f}",
                f"{r['grading_span']:.2f}x",
                f"{r['layout_length'] * 1e9:.0f}",
            ]
        )
    table = render_table(
        headers,
        rows,
        title=(
            "Section V -- worst-case majority decode margin vs fan-in "
            "(negative = gate fails)"
        ),
    )
    check = results["end_to_end"]
    footer = [
        "",
        f"end-to-end at m={check['n_inputs']} "
        f"(worst pattern {check['worst_combination']}): "
        f"uniform drive correct={check['uncompensated_correct']}, "
        f"graded drive correct={check['compensated_correct']}",
        "Paper shape: damping erodes the margin as inputs are added; "
        "grading input energies E(I_n) < ... < E(I_1) restores "
        "functionality.",
    ]
    return table + "\n" + "\n".join(footer)
