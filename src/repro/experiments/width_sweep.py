"""Section V -- waveguide width variation.

The paper scaled the waveguide width to 500 nm and observed (i) the gate
still functions, (ii) no crosstalk appears, and (iii) the ferromagnetic
resonance frequency decreases with width, so wider guides admit lower
first frequencies.

``run()`` sweeps the width, recomputes the width-quantised band edge,
re-lays-out and re-simulates the byte majority gate at each width, and
reports functionality plus the n=1/n=2 width-mode isolation.
"""

from itertools import product

import numpy as np

from repro.analysis.tables import render_table
from repro.core.frequency_plan import FrequencyPlan
from repro.core.gate import DataParallelGate
from repro.core.layout import InlineGateLayout
from repro.core.simulate import GateSimulator
from repro.physics.width_modes import crosstalk_isolation_db
from repro.units import GHZ, NM
from repro.waveguide import Waveguide

DEFAULT_WIDTHS = tuple(w * 1e-9 for w in (50, 100, 150, 200, 300, 400, 500))


def run(widths=DEFAULT_WIDTHS, check_all_combos=True):
    """Sweep widths; returns per-width band edge, functionality, isolation."""
    plan = FrequencyPlan.paper_byte_plan()
    rows = []
    for width in widths:
        waveguide = Waveguide(width=width, include_width_modes=True)
        band_edge = waveguide.band_edge()
        layout = InlineGateLayout(waveguide, plan, n_inputs=3)
        gate = DataParallelGate(layout)
        simulator = GateSimulator(gate)
        combos = (
            list(product((0, 1), repeat=3)) if check_all_combos else [(1, 0, 1)]
        )
        functional = True
        min_margin = np.inf
        for bits in combos:
            words = [[b] * gate.n_bits for b in bits]
            result = simulator.run_phasor(words)
            functional &= result.correct
            min_margin = min(min_margin, result.min_margin)
        isolation = crosstalk_isolation_db(
            waveguide.dispersion(), width, plan.frequencies[0]
        )
        rows.append(
            {
                "width": width,
                "band_edge": band_edge,
                "functional": functional,
                "min_margin": float(min_margin),
                "mode_isolation_db": isolation,
                "gate_length": layout.total_length,
                "area": layout.area,
            }
        )
    edges = [r["band_edge"] for r in rows]
    return {
        "rows": rows,
        "monotonic_decreasing": all(a >= b for a, b in zip(edges, edges[1:])),
    }


def report(results):
    """Render the width sweep series."""
    headers = [
        "width [nm]",
        "band edge [GHz]",
        "gate works",
        "min margin [rad]",
        "mode-2 isolation [dB]",
        "area [um^2]",
    ]
    rows = []
    for r in results["rows"]:
        isolation = r["mode_isolation_db"]
        isolation_text = "inf" if np.isinf(isolation) else f"{isolation:.1f}"
        rows.append(
            [
                f"{r['width'] / NM:.0f}",
                f"{r['band_edge'] / GHZ:.2f}",
                "yes" if r["functional"] else "NO",
                f"{r['min_margin']:.3f}",
                isolation_text,
                f"{r['area'] * 1e12:.4f}",
            ]
        )
    table = render_table(
        headers,
        rows,
        title="Section V -- waveguide width variation (50..500 nm)",
    )
    footer = [
        "",
        "band edge decreases monotonically with width: "
        f"{'yes' if results['monotonic_decreasing'] else 'NO'} "
        "(paper: FMR decreases as width increases)",
        "Paper shape: gate functional at every width, no crosstalk "
        "(here: large spectral isolation of the n=2 width mode).",
    ]
    return table + "\n" + "\n".join(footer)
