"""Fig. 4(a-h) -- per-frequency majority outputs of the byte gate.

The paper shows the time trace at each of the 8 output detectors for all
8 (I1, I2, I3) combinations: every channel obeys the 3-input majority
truth table (constructive interference and phase 0 when the majority of
inputs is 0; phase pi when two or more inputs are 1).

``run()`` decodes every (channel, input combination) pair with both the
lock-in and FFT phasor estimators and checks the full 8x8 truth map.
"""

from itertools import product

import numpy as np

from repro.analysis.tables import render_table
from repro.core.simulate import GateSimulator
from repro.units import GHZ
from repro.experiments.fig3 import DEFAULT_SOURCE_AMPLITUDE


def run(gate=None, duration=3e-9, source_amplitude=DEFAULT_SOURCE_AMPLITUDE):
    """Decode all channels for all combos; returns the fig4 result dict."""
    from repro import byte_majority_gate
    from repro.core.readout import decode_channel

    gate = gate if gate is not None else byte_majority_gate()
    simulator = GateSimulator(gate)
    simulator.amplitudes = simulator.amplitudes * source_amplitude
    frequencies = gate.layout.plan.frequencies

    combos = []
    for bits in product((0, 1), repeat=3):
        words = [[b] * gate.n_bits for b in bits]
        result = simulator.run(words, duration=duration)
        channels = []
        calibration = simulator.calibration()
        t_start = simulator.settle_time()
        for channel in range(gate.n_bits):
            trace = result.traces[channel]
            lockin = result.decodes[channel]
            reference_phase, reference_amplitude = calibration[channel]
            fft = decode_channel(
                result.t,
                trace,
                frequencies[channel],
                reference_phase=reference_phase,
                reference_amplitude=reference_amplitude,
                t_start=t_start,
                method="fft",
            )
            channels.append(
                {
                    "frequency": frequencies[channel],
                    "trace_amplitude": float(np.max(np.abs(trace))),
                    "lockin_bit": lockin.bit,
                    "fft_bit": fft.bit,
                    "phase": lockin.phase,
                    "margin": lockin.margin,
                    "expected": result.expected[channel],
                }
            )
        combos.append(
            {
                "inputs": bits,
                "channels": channels,
                "decoded": result.decoded,
                "expected": result.expected,
                "correct": result.correct,
            }
        )

    methods_agree = all(
        ch["lockin_bit"] == ch["fft_bit"]
        for combo in combos
        for ch in combo["channels"]
    )
    all_correct = all(combo["correct"] for combo in combos)
    return {
        "frequencies": list(frequencies),
        "combos": combos,
        "methods_agree": methods_agree,
        "all_correct": all_correct,
    }


def report(results):
    """Render the fig4 truth map: decoded bit per (combo, channel)."""
    frequencies = results["frequencies"]
    headers = ["I1 I2 I3", "MAJ"] + [
        f"{f / GHZ:g}G" for f in frequencies
    ] + ["min margin [rad]"]
    rows = []
    for combo in results["combos"]:
        bits = " ".join(str(b) for b in combo["inputs"])
        expected = str(combo["expected"][0])
        decoded_cells = [str(ch["lockin_bit"]) for ch in combo["channels"]]
        min_margin = min(ch["margin"] for ch in combo["channels"])
        rows.append([bits, expected] + decoded_cells + [f"{min_margin:.3f}"])
    table = render_table(
        headers,
        rows,
        title=(
            "Fig. 4 -- decoded majority bit at each frequency channel "
            "(a-h = 10..80 GHz), all input combinations"
        ),
    )
    footer = [
        "",
        f"all 64 channel decodes correct: {'yes' if results['all_correct'] else 'NO'}",
        "lock-in vs FFT phasor estimators agree: "
        f"{'yes' if results['methods_agree'] else 'NO'}",
        "Paper shape: every detector reproduces the MAJ3 truth table; "
        "phase 0 when <=1 input is 1, phase pi when >=2 inputs are 1.",
    ]
    return table + "\n" + "\n".join(footer)
