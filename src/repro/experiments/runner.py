"""Registry and uniform driver for the experiment modules."""

from repro import obs
from repro.errors import ReproError
from repro.experiments import (
    area_table,
    channel_capacity,
    circuit_faults,
    circuit_noise,
    distance_table,
    drive_limits,
    fault_coverage,
    fig3,
    fig4,
    llg_validation,
    noise_robustness,
    scalability,
    synthesis_gain,
    width_sweep,
)

#: Experiment id -> (module, description).  Ids match DESIGN.md; the
#: last two are beyond-paper extensions.
EXPERIMENTS = {
    "fig3": (fig3, "Fig. 3: byte MAJ gate time/frequency response"),
    "fig4": (fig4, "Fig. 4: per-frequency majority outputs"),
    "table-dist": (distance_table, "Section IV.B: source distance table"),
    "table-area": (area_table, "Section V.B: area/delay/energy comparison"),
    "width": (width_sweep, "Section V: waveguide width variation"),
    "scale": (scalability, "Section V: scalability under damping"),
    "llg-x": (llg_validation, "LLG solver cross-validation (slow)"),
    "capacity": (channel_capacity, "extension: channel count scaling"),
    "noise": (noise_robustness, "extension: transducer noise robustness"),
    "faults": (fault_coverage, "extension: manufacturing-test coverage"),
    "drive": (drive_limits, "extension: nonlinear drive-amplitude limits"),
    "circuit-faults": (
        circuit_faults,
        "extension: physical-adder circuit fault coverage",
    ),
    "circuit-noise": (
        circuit_noise,
        "extension: circuit margin vs transducer noise",
    ),
    "synthesis-gain": (
        synthesis_gain,
        "extension: physical payoff of logic optimization",
    ),
}


def run_experiment(name, metrics=None, **kwargs):
    """Run experiment ``name``; returns ``(results, report_text)``.

    ``metrics`` opts into observability: ``True`` records timing
    instrumentation on the process-global registry for the duration of
    the run, while a :class:`~repro.obs.MetricsRegistry` routes the
    run's library instrumentation into that registry instead.  Either
    way the registry's :meth:`~repro.obs.MetricsRegistry.snapshot` is
    attached to dict results under ``results["metrics"]``.
    """
    try:
        module, _ = EXPERIMENTS[name]
    except KeyError:
        available = ", ".join(sorted(EXPERIMENTS))
        raise ReproError(
            f"unknown experiment {name!r}; available: {available}"
        ) from None
    if not metrics:
        results = module.run(**kwargs)
        return results, module.report(results)
    if isinstance(metrics, obs.MetricsRegistry):
        registry = metrics
        registry.enable()
        with obs.use_registry(registry):
            with registry.span(f"experiment/{name}"):
                results = module.run(**kwargs)
    else:
        registry = obs.get_registry()
        was_profiling = obs.profiling()
        obs.enable()
        try:
            with registry.span(f"experiment/{name}"):
                results = module.run(**kwargs)
        finally:
            if not was_profiling:
                obs.disable()
    # Render the report before attaching the snapshot so report()
    # implementations never see the extra key.
    text = module.report(results)
    if isinstance(results, dict):
        results["metrics"] = registry.snapshot()
    return results, text
