"""What logic optimization buys *physically*: margins and throughput.

Depth and cell counts are synthesis-side proxies; this experiment closes
the loop by executing every suite circuit's naive and optimized mapping
on the physical circuit engine and measuring what actually changes at
the waveguide level:

* **decode margins** -- each removed logic level is one fewer
  regeneration stage whose worst-case channel must clear the decision
  boundary; the per-level minimum margins of both mappings are compared
  directly;
* **throughput** -- fewer (cell x word-group) GEMMs per batch mean more
  words per second through the same engine; both mappings time a warmed
  batched run over the same seeded assignment batch;
* **conformance** -- both mappings must decode exactly the Boolean
  reference on every entry, and one designated circuit re-runs in
  full time-domain trace mode to confirm the optimized mapping survives
  waveform physics, not just steady-state phasors.
"""

import time

import numpy as np

from repro.analysis.tables import render_table
from repro.circuits.executor import CircuitExecutor
from repro.errors import SynthesisError
from repro.synthesis import suite as synthesis_suite
from repro.synthesis.flow import synthesize
from repro.synthesis.verify import random_input_batch

DEFAULT_TRACE_CIRCUIT = "comparator4"


def _timed_run(executor, netlist, batch):
    """(CircuitRunResult, words/s) of one warmed batched evaluation."""
    # Warm run compiles the packed artifact (and any weights/bases not
    # already shared from a previous circuit) so the timed run measures
    # steady-state serving throughput.
    executor.run(netlist, batch[: executor.n_bits])
    started = time.perf_counter()
    result = executor.run(netlist, batch, strict=False)
    elapsed = time.perf_counter() - started
    return result, len(batch) / elapsed


def run(circuits=None, n_bits=4, n_groups=2, seed=7,
        trace_circuit=DEFAULT_TRACE_CIRCUIT):
    """Naive-vs-optimized physical comparison over the synthesis suite.

    For each circuit the specification is synthesized (optimize + map +
    Boolean verification against the independent Python reference),
    then both mappings execute one seeded random batch of ``n_groups``
    word groups on ``n_bits``-wide cells.  ``trace_circuit`` names the
    suite entry whose optimized mapping additionally runs in trace mode.
    """
    if n_groups < 1:
        raise SynthesisError(f"n_groups must be >= 1, got {n_groups!r}")
    circuits = list(circuits) if circuits is not None else synthesis_suite()
    rng = np.random.default_rng(seed)
    # Every mapping of every circuit is served by one executor: one
    # shared bindings object (weights and trace bases memoised across
    # circuits) and one compile cache of packed artifacts.
    executor = CircuitExecutor(n_bits=n_bits)
    rows = []
    trace_report = None
    for circuit in circuits:
        result = synthesize(circuit.build(), reference=circuit.reference)
        batch = None
        measurements = {}
        for label, report in (
            ("naive", result.naive), ("optimized", result.optimized)
        ):
            if batch is None:
                batch = random_input_batch(
                    report.netlist.inputs, n_groups * n_bits, rng=rng
                )
            run_result, words_per_second = _timed_run(
                executor, report.netlist, batch
            )
            if not run_result.correct:
                raise SynthesisError(
                    f"{label} mapping of {circuit.name!r} disagrees with "
                    "the Boolean reference on the physical engine"
                )
            measurements[label] = {
                "depth": report.depth,
                "physical_depth": report.physical_depth,
                "n_physical": report.n_physical,
                "min_margin": run_result.min_margin,
                "words_per_second": words_per_second,
            }
        naive, optimized = measurements["naive"], measurements["optimized"]
        rows.append(
            {
                "circuit": circuit.name,
                "naive": naive,
                "optimized": optimized,
                "throughput_ratio": (
                    optimized["words_per_second"]
                    / naive["words_per_second"]
                ),
                "margin_delta": (
                    optimized["min_margin"] - naive["min_margin"]
                ),
                "verified": result.verified,
            }
        )
        if circuit.name == trace_circuit:
            netlist = result.optimized.netlist
            phasor = executor.run(netlist, batch, strict=False)
            trace = executor.run(netlist, batch, strict=False, mode="trace")
            trace_report = {
                "circuit": circuit.name,
                "phasor_correct": phasor.correct,
                "trace_correct": trace.correct,
                "decodes_agree": trace.outputs == phasor.outputs,
                "trace_min_margin": trace.min_margin,
            }
    return {
        "rows": rows,
        "n_bits": n_bits,
        "n_entries": n_groups * n_bits,
        "seed": seed,
        "trace": trace_report,
        "serving": executor.describe(),
    }


def report(results):
    """Render the naive-vs-optimized physical scorecard."""
    headers = [
        "circuit",
        "depth n->o",
        "cells n->o",
        "margin n",
        "margin o",
        "kwords/s n",
        "kwords/s o",
        "speedup",
    ]
    rows = []
    for row in results["rows"]:
        naive, optimized = row["naive"], row["optimized"]
        rows.append(
            [
                row["circuit"],
                f"{naive['physical_depth']} -> "
                f"{optimized['physical_depth']}",
                f"{naive['n_physical']} -> {optimized['n_physical']}",
                f"{naive['min_margin']:.3f}",
                f"{optimized['min_margin']:.3f}",
                f"{naive['words_per_second'] / 1e3:.1f}",
                f"{optimized['words_per_second'] / 1e3:.1f}",
                f"{row['throughput_ratio']:.2f}x",
            ]
        )
    table = render_table(
        headers,
        rows,
        title=(
            "Physical gain of logic optimization "
            f"({results['n_entries']} words, {results['n_bits']}-bit "
            "cells, phasor backend; depth/cells count transducer levels)"
        ),
    )
    lines = [table, ""]
    trace = results.get("trace")
    if trace is not None:
        agree = "agree" if trace["decodes_agree"] else "DISAGREE"
        lines.append(
            f"trace-mode confirmation ({trace['circuit']}): "
            f"optimized mapping {'correct' if trace['trace_correct'] else 'WRONG'}"
            f" through full waveform physics, phasor/trace decodes {agree}, "
            f"min margin {trace['trace_min_margin']:.3f}"
        )
    lines.append(
        "Every removed level is one fewer regeneration stage; fewer "
        "(cell x group) GEMMs per batch turn directly into words/s."
    )
    serving = results.get("serving")
    if serving is not None:
        lines.append(f"packed serving: {serving}")
    return "\n".join(lines)
