"""Noise robustness of the byte gate (beyond-paper extension).

The paper's OOMMF runs are noiseless; any physical realisation sees
transducer amplitude spread, phase jitter, placement error and thermal
agitation.  This experiment measures the byte majority gate's word error
rate versus each non-ideality in isolation, and converts the thermal
phase-noise model of :mod:`repro.mm.thermal` into an operating
temperature statement.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.core.encoding import int_to_bits
from repro.core.simulate import GateSimulator
from repro.mm.thermal import thermal_phase_noise_sigma
from repro.waveguide import NoiseModel

DEFAULT_SIGMAS = (0.0, 0.05, 0.1, 0.2, 0.4, 0.8)


def _word_error_rate(gate, noise_builder, sigmas, n_trials, rng):
    """Error rate per sigma; all trials of one sigma run as one batch.

    Each batch entry carries its own noise realisation (``seed=trial``)
    drawn as one vectorised RNG block per trial
    (:meth:`~repro.waveguide.NoiseModel.source_perturbations`), so the
    Monte-Carlo draws match the historical one-simulator-per-trial loop
    exactly; ``strict=False`` maps outright gate failures (e.g. every
    source of a channel noise-clipped to zero amplitude) to ``None``
    entries, which count as word errors.
    """
    simulator = GateSimulator(gate)
    rates = []
    for sigma in sigmas:
        words_batch = [
            [
                int_to_bits(int(rng.integers(1 << gate.n_bits)), gate.n_bits)
                for _ in range(gate.n_data_inputs)
            ]
            for _ in range(n_trials)
        ]
        noises = [noise_builder(sigma, seed=trial) for trial in range(n_trials)]
        runs = simulator.run_phasor_batch(
            words_batch, noises=noises, strict=False
        )
        errors = sum(1 for run in runs if run is None or not run.correct)
        rates.append(errors / n_trials)
    return rates


def run(gate=None, sigmas=DEFAULT_SIGMAS, n_trials=30, seed=7):
    """Word error rate vs phase / amplitude / placement noise."""
    from repro import byte_majority_gate

    gate = gate if gate is not None else byte_majority_gate()
    rng = np.random.default_rng(seed)

    phase_rates = _word_error_rate(
        gate,
        lambda s, seed: NoiseModel(phase_sigma=s, seed=seed),
        sigmas,
        n_trials,
        rng,
    )
    amplitude_rates = _word_error_rate(
        gate,
        lambda s, seed: NoiseModel(amplitude_sigma=s, seed=seed),
        sigmas,
        n_trials,
        rng,
    )
    # Placement sigma in fractions of the shortest wavelength.
    shortest = min(gate.layout.wavelengths)
    position_rates = _word_error_rate(
        gate,
        lambda s, seed: NoiseModel(position_sigma=s * shortest, seed=seed),
        sigmas,
        n_trials,
        rng,
    )

    # Thermal phase jitter of a 10x50x1 nm ME cell at 300 K, using the
    # internal field of the PMA film as the restoring stiffness.
    material = gate.layout.waveguide.material
    transducer = gate.layout.transducer
    volume = (
        transducer.length
        * transducer.width
        * gate.layout.waveguide.thickness
    )
    h_int = material.internal_field_perpendicular()
    thermal_sigma = thermal_phase_noise_sigma(material, h_int, volume, 300.0)

    return {
        "sigmas": list(sigmas),
        "phase_rates": phase_rates,
        "amplitude_rates": amplitude_rates,
        "position_rates": position_rates,
        "position_unit": shortest,
        "thermal_phase_sigma_300k": thermal_sigma,
        "n_trials": n_trials,
    }


def report(results):
    """Render error rate vs noise tables plus the thermal statement."""
    headers = [
        "sigma",
        "phase noise [rad]",
        "amplitude noise [rel]",
        "placement [x lambda_min]",
    ]
    rows = []
    for i, sigma in enumerate(results["sigmas"]):
        rows.append(
            [
                f"{sigma:.2f}",
                f"{results['phase_rates'][i]:.0%}",
                f"{results['amplitude_rates'][i]:.0%}",
                f"{results['position_rates'][i]:.0%}",
            ]
        )
    table = render_table(
        headers,
        rows,
        title=(
            "Word error rate of the byte MAJ gate vs transducer "
            f"non-idealities ({results['n_trials']} random word triples "
            "per point)"
        ),
    )
    thermal = results["thermal_phase_sigma_300k"]
    footer = [
        "",
        f"thermal phase jitter of one 10x50x1 nm ME cell at 300 K: "
        f"{thermal:.4f} rad "
        "(equipartition estimate; compare against the phase column).",
        "Majority decoding absorbs per-channel phase errors below "
        "pi/2; the byte gate is limited by its *worst* channel, so "
        "errors appear well before the single-channel threshold.",
    ]
    return table + "\n" + "\n".join(footer)
