"""Section IV.B distance table -- d_i = n_i * lambda_i from the dispersion.

The paper reports the distances between same-frequency sources for the
byte gate: d = 166, 100, 117, 165, 174, 130, 168, 176 nm for 10-80 GHz.
These derive from the FVMSW dispersion of the Fe60Co20B20 film; this
experiment recomputes every wavelength from our dispersion module and
compares n_i * lambda_i against the published values.
"""

from repro.analysis.tables import render_table
from repro.core.frequency_plan import FrequencyPlan
from repro.core.layout import PAPER_BYTE_DISTANCES, PAPER_BYTE_MULTIPLIERS
from repro.units import GHZ, NM
from repro.waveguide import Waveguide


def run(waveguide=None):
    """Compute lambda_i and d_i; returns the comparison dict."""
    waveguide = waveguide if waveguide is not None else Waveguide()
    plan = FrequencyPlan.paper_byte_plan()
    dispersion = waveguide.dispersion()
    wavelengths = plan.wavelengths(dispersion)
    rows = []
    for i, frequency in enumerate(plan.frequencies):
        multiplier = PAPER_BYTE_MULTIPLIERS[i]
        measured = multiplier * wavelengths[i]
        paper = PAPER_BYTE_DISTANCES[i]
        rows.append(
            {
                "frequency": frequency,
                "wavelength": wavelengths[i],
                "multiplier": multiplier,
                "measured_distance": measured,
                "paper_distance": paper,
                "relative_error": (measured - paper) / paper,
            }
        )
    worst = max(abs(r["relative_error"]) for r in rows)
    return {
        "rows": rows,
        "worst_relative_error": worst,
        "band_edge": dispersion.frequency(0.0),
    }


def report(results):
    """Render the paper-vs-measured distance table."""
    headers = [
        "f [GHz]",
        "lambda [nm]",
        "n",
        "d = n*lambda [nm]",
        "paper d [nm]",
        "error",
    ]
    rows = []
    for r in results["rows"]:
        rows.append(
            [
                f"{r['frequency'] / GHZ:g}",
                f"{r['wavelength'] / NM:.2f}",
                str(r["multiplier"]),
                f"{r['measured_distance'] / NM:.1f}",
                f"{r['paper_distance'] / NM:.0f}",
                f"{r['relative_error']:+.1%}",
            ]
        )
    table = render_table(
        headers,
        rows,
        title=(
            "Section IV.B -- same-frequency source distances from the "
            "FVMSW dispersion"
        ),
    )
    footer = [
        "",
        f"band edge (k=0 FMR): {results['band_edge'] / GHZ:.2f} GHz",
        f"worst |error| vs paper: {results['worst_relative_error']:.1%}",
    ]
    return table + "\n" + "\n".join(footer)
