"""Experiment harness: one module per paper table/figure.

Each experiment module exposes a ``run(...)`` function returning a plain
dict of results plus a ``report(results)`` function rendering the same
rows/series the paper presents.  The ``benchmarks/`` suite and the
``swgate`` CLI both drive these entry points, so the numbers in the
paper-versus-measured tables always come from the same code path.
"""

from repro.experiments import (
    area_table,
    channel_capacity,
    circuit_faults,
    circuit_noise,
    distance_table,
    drive_limits,
    fault_coverage,
    fig3,
    fig4,
    llg_validation,
    noise_robustness,
    scalability,
    synthesis_gain,
    width_sweep,
)
from repro.experiments.runner import EXPERIMENTS, run_experiment

__all__ = [
    "fig3",
    "fig4",
    "distance_table",
    "area_table",
    "width_sweep",
    "scalability",
    "llg_validation",
    "channel_capacity",
    "noise_robustness",
    "fault_coverage",
    "drive_limits",
    "circuit_faults",
    "circuit_noise",
    "synthesis_gain",
    "EXPERIMENTS",
    "run_experiment",
]
