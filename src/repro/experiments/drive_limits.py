"""Drive-amplitude limits of data parallelism (nonlinearity study).

The paper operates at Mx/Ms ~ 0.005 and observes no inter-frequency
interaction (Fig. 3).  This experiment maps how far that can be pushed:
with the weakly nonlinear waveguide model it sweeps the source amplitude
and reports, for the byte majority gate,

* the worst-channel nonlinear phase error (converts into decode-margin
  erosion and eventually bit flips), and
* the worst in-band four-magnon intermodulation (2*f_i - f_j collisions
  -- with the paper's uniform 10 GHz grid *every* interior channel has
  IM3 collisions, e.g. 2x20-30 = 10 GHz), as signal-to-crosstalk.

The outcome justifies the paper's small-signal operating point and
quantifies the headroom: decoding survives to a few times the paper's
amplitude, with SXR degrading 40 dB per decade of drive (IM3 ~ a^3
against a linear signal).
"""

import math

import numpy as np

from repro.analysis.tables import render_table
from repro.core.simulate import GateSimulator
from repro.waveguide.nonlinear import NonlinearWaveguideModel

DEFAULT_AMPLITUDES = (0.001, 0.005, 0.02, 0.05, 0.1, 0.2)

#: The paper's nominal operating amplitude (Mx/Ms units).
PAPER_AMPLITUDE = 0.005


def run(gate=None, amplitudes=DEFAULT_AMPLITUDES, t_shift=-5.0, chi3=0.25):
    """Sweep drive amplitude; returns phase error, SXR and decode status."""
    from repro import byte_majority_gate

    gate = gate if gate is not None else byte_majority_gate()
    layout = gate.layout
    model = NonlinearWaveguideModel(
        layout.waveguide, t_shift=t_shift, chi3=chi3
    )
    simulator = GateSimulator(gate)
    simulator.model = model  # swap in the nonlinear backend
    simulator._calibration = None  # recalibrate on the new model

    test_words = [
        [1, 0, 1, 0, 1, 0, 1, 0],
        [0, 0, 1, 1, 0, 0, 1, 1],
        [0, 1, 0, 1, 0, 1, 0, 1],
    ]

    # Calibrate once at the paper's small-signal operating point: a real
    # device is characterised there, so driving harder exposes the
    # *differential* nonlinear phase shift.  (The self-shift at constant
    # drive is common-mode and would be absorbed by recalibration --
    # phase encoding at fixed amplitude is first-order immune to it.)
    simulator.amplitudes = np.ones(
        (gate.n_bits, layout.n_inputs)
    ) * PAPER_AMPLITUDE
    calibration = simulator.calibration()

    rows = []
    for amplitude in amplitudes:
        simulator.amplitudes = np.ones(
            (gate.n_bits, layout.n_inputs)
        ) * amplitude
        simulator._calibration = calibration  # keep small-signal cal

        # Worst-case *differential* phase error vs the small-signal
        # calibration, over (channel, source) pairs.
        worst_phase = 0.0
        for channel in range(gate.n_bits):
            frequency = layout.plan.frequencies[channel]
            detector = layout.detector_positions[channel]
            for position in layout.source_positions[channel]:
                distance = abs(detector - position)
                error = abs(
                    model.nonlinear_phase_error(amplitude, frequency, distance)
                    - model.nonlinear_phase_error(
                        PAPER_AMPLITUDE, frequency, distance
                    )
                )
                worst_phase = max(worst_phase, error)

        # Worst in-band signal-to-crosstalk over channels.
        sources = simulator.build_sources(test_words)
        worst_sxr = math.inf
        for channel in range(gate.n_bits):
            frequency = layout.plan.frequencies[channel]
            detector = layout.detector_positions[channel]
            sxr = model.signal_to_crosstalk_db(sources, detector, frequency)
            worst_sxr = min(worst_sxr, sxr)

        result = simulator.run_phasor(test_words)
        rows.append(
            {
                "amplitude": amplitude,
                "worst_phase_error": worst_phase,
                "worst_sxr_db": worst_sxr,
                "decodes_correctly": result.correct,
                "min_margin": result.min_margin,
            }
        )
    return {
        "rows": rows,
        "t_shift": t_shift,
        "chi3": chi3,
        "paper_amplitude": PAPER_AMPLITUDE,
    }


def report(results):
    """Render the drive-limit sweep."""
    headers = [
        "drive Mx/Ms",
        "worst NL phase [rad]",
        "worst in-band SXR [dB]",
        "decodes",
        "min margin [rad]",
    ]
    rows = []
    for r in results["rows"]:
        sxr = r["worst_sxr_db"]
        rows.append(
            [
                f"{r['amplitude']:.3f}"
                + (" (paper)" if r["amplitude"] == results["paper_amplitude"] else ""),
                f"{r['worst_phase_error']:.4f}",
                "inf" if math.isinf(sxr) else f"{sxr:.1f}",
                "yes" if r["decodes_correctly"] else "NO",
                f"{r['min_margin']:+.3f}",
            ]
        )
    table = render_table(
        headers,
        rows,
        title=(
            "Drive-amplitude limits of the byte MAJ gate "
            f"(T = {results['t_shift']:g}, chi3 = {results['chi3']:g})"
        ),
    )
    footer = [
        "",
        "The uniform 10..80 GHz grid makes every interior channel an IM3 "
        "collision target (2*f_i - f_j lands on the grid), so the "
        "signal-to-crosstalk ratio is the real ceiling on drive level.",
        "Paper shape: at the Mx/Ms ~ 0.005 operating point nonlinear "
        "phase error and crosstalk are negligible -- the Fig. 3 'no "
        "inter-frequency interference' observation.",
    ]
    return table + "\n" + "\n".join(footer)
