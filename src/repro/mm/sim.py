"""The micromagnetic simulation driver.

:class:`Simulation` wires a state, a list of effective-field terms,
sources and probes to the time integrators: the same role OOMMF's
problem-specification + evolver pair plays.  Typical use::

    sim = Simulation(state, terms=[ExchangeField(), UniaxialAnisotropyField(),
                                   ThinFilmDemagField()])
    sim.add_source(Source(region={"x": (0, 10e-9)},
                          waveform=SineWaveform(3e4, 10e9)))
    probe = sim.add_region_probe(x=(500e-9, 510e-9))
    sim.run(3e-9, dt=20e-15)
    mx = probe.component(0)
"""

import numpy as np

from repro.errors import SimulationError
from repro.mm.fields.exchange import ExchangeField
from repro.mm.integrators import integrate_into
from repro.mm.kernels import LLGWorkspace
from repro.mm.llg import effective_field, llg_rhs_from_field, max_torque
from repro.mm.probes import PointProbe, RegionProbe


class Simulation:
    """Drives the LLG dynamics of one :class:`~repro.mm.state.State`."""

    def __init__(self, state, terms=None, renormalize_every=100, alpha_profile=None):
        """``alpha_profile`` optionally replaces the scalar material
        damping with a per-cell array (mesh shape) -- used to build
        absorbing boundary regions that suppress end reflections."""
        self.state = state
        self.terms = list(terms) if terms is not None else []
        self.probes = []
        self.t = 0.0
        if renormalize_every < 1:
            raise SimulationError(
                f"renormalize_every must be >= 1, got {renormalize_every!r}"
            )
        self.renormalize_every = int(renormalize_every)
        if alpha_profile is not None:
            alpha_profile = np.asarray(alpha_profile, dtype=float)
            if alpha_profile.shape != state.mesh.shape:
                raise SimulationError(
                    f"alpha_profile shape {alpha_profile.shape} != mesh "
                    f"{state.mesh.shape}"
                )
            if np.any(alpha_profile <= 0) or np.any(alpha_profile > 1):
                raise SimulationError("alpha_profile values must lie in (0, 1]")
        self.alpha_profile = alpha_profile
        self._steps_accepted = 0
        self._workspace = None
        self._workspace_key = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_term(self, term):
        """Append an effective-field term; returns it for chaining."""
        self.terms.append(term)
        return term

    def add_source(self, source):
        """Materialise a :class:`~repro.mm.sources.Source` onto the mesh."""
        return self.add_term(source.to_field(self.state.mesh))

    def add_point_probe(self, point, label=""):
        """Attach a single-cell probe at physical ``point`` [m]."""
        probe = PointProbe(self.state.mesh, point, label=label)
        self.probes.append(probe)
        return probe

    def add_region_probe(self, label="", **region):
        """Attach an averaging probe over ``mesh.region_mask(**region)``."""
        mask = self.state.mesh.region_mask(**region)
        probe = RegionProbe(mask, label=label)
        self.probes.append(probe)
        return probe

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def _rhs(self, t, m):
        """Reference (allocating) right-hand side; kept for equivalence
        testing against the workspace path :meth:`ensure_workspace` drives."""
        self.state.m = m
        h = effective_field(self.state, self.terms, t)
        return llg_rhs_from_field(
            m, h, self.state.material, alpha=self.alpha_profile
        )

    def ensure_workspace(self):
        """The :class:`~repro.mm.kernels.LLGWorkspace` driving this sim.

        Built lazily and rebuilt whenever the mesh, the term list, the
        material or the damping profile changes, so ``add_term`` /
        ``relax`` (which swaps the material) stay correct.  Calling this
        before :meth:`run` pre-pays the buffer allocation.
        """
        key = (
            self.state.mesh.shape,
            tuple(id(term) for term in self.terms),
            self.state.material,
            id(self.alpha_profile),
        )
        if self._workspace is None or self._workspace_key != key:
            self._workspace = LLGWorkspace(
                self.state.mesh,
                self.state.material,
                self.terms,
                alpha=self.alpha_profile,
            )
            self._workspace_key = key
        return self._workspace

    def _after_step(self, t, m):
        self.state.m = m
        self._steps_accepted += 1
        if self._steps_accepted % self.renormalize_every == 0:
            self.state.normalize()
        self.t = t
        for probe in self.probes:
            probe.record(self.state, t)

    def suggest_dt(self, safety=0.1):
        """Step suggestion from the stiffest (exchange) term, if present."""
        for term in self.terms:
            if isinstance(term, ExchangeField):
                return term.max_stable_dt(self.state, safety=safety)
        return None

    def run(self, duration, dt, adaptive=False, tol=1e-4):
        """Integrate for ``duration`` seconds from the current time.

        Drives the zero-allocation workspace path: every RK stage and
        field term evaluates into :class:`~repro.mm.kernels.LLGWorkspace`
        buffers.  Probes record after every accepted step.  Returns self.
        """
        if duration <= 0:
            raise SimulationError(f"duration must be positive, got {duration!r}")
        if not self.terms:
            raise SimulationError("no field terms configured")
        workspace = self.ensure_workspace()
        t_end = self.t + duration
        y = np.ascontiguousarray(self.state.m, dtype=float)
        integrate_into(
            workspace.bound_rhs(self.state),
            self.t,
            y,
            t_end,
            dt,
            workspace.rk,
            adaptive=adaptive,
            tol=tol,
            callback=self._after_step,
        )
        self.state.m = y
        self.state.normalize()
        self.t = t_end
        return self

    def relax(self, torque_tol=1.0, dt=None, max_duration=50e-9, chunk=0.25e-9):
        """Evolve with high damping until |m x H| falls below ``torque_tol``.

        Temporarily raises the damping to 0.5 to reach the metastable
        state quickly, then restores the material.  Returns the final
        maximum torque [A/m].
        """
        original = self.state.material
        self.state.material = original.with_(alpha=0.5)
        try:
            if dt is None:
                dt = self.suggest_dt() or 1e-13
            elapsed = 0.0
            while elapsed < max_duration:
                self.run(chunk, dt=dt)
                elapsed += chunk
                torque = max_torque(self.state, self.terms, self.t)
                if torque < torque_tol:
                    return torque
            raise SimulationError(
                f"relaxation did not converge below {torque_tol} A/m in "
                f"{max_duration:.3g} s (last torque {torque:.4g} A/m)"
            )
        finally:
            self.state.material = original

    def energies(self):
        """Energy of every term [J], keyed by term name (duplicates numbered)."""
        table = {}
        for term in self.terms:
            key = term.name
            index = 2
            while key in table:
                key = f"{term.name}_{index}"
                index += 1
            table[key] = term.energy(self.state, self.t)
        return table

    def total_energy(self):
        """Sum of all term energies [J]."""
        return float(sum(self.energies().values()))
