"""Time integrators for the LLG equation.

Two schemes are provided:

* :func:`rk4_step` -- classic fixed-step fourth-order Runge-Kutta, the
  default for driven (excited) simulations where the forcing frequency
  fixes the natural step anyway;
* :func:`rkf45_step` -- Runge-Kutta-Fehlberg 4(5) with an embedded error
  estimate, used by the adaptive :func:`integrate` driver for relaxation
  runs where the stiffness varies over time.

Each scheme exists in two forms: the original allocating form
(``rhs(t, y) -> dy/dt``, independently testable on scalar ODEs) and a
buffer-reusing ``*_into`` form (``rhs_into(t, y, out)``) that evaluates
every stage into preallocated :class:`RKScratch` buffers -- the hot path
the micromagnetic drivers run through
:class:`~repro.mm.kernels.LLGWorkspace`.  The allocating functions are
kept as the reference implementation the kernel-equivalence tests
compare against.
"""

import numpy as np

from repro import obs
from repro.errors import SimulationError

# Runge-Kutta-Fehlberg 4(5) Butcher tableau.
_RKF_A = (
    (),
    (1.0 / 4.0,),
    (3.0 / 32.0, 9.0 / 32.0),
    (1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0),
    (439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0),
    (-8.0 / 27.0, 2.0, -3544.0 / 2565.0, 1859.0 / 4104.0, -11.0 / 40.0),
)
_RKF_C = (0.0, 1.0 / 4.0, 3.0 / 8.0, 12.0 / 13.0, 1.0, 1.0 / 2.0)
_RKF_B5 = (16.0 / 135.0, 0.0, 6656.0 / 12825.0, 28561.0 / 56430.0, -9.0 / 50.0, 2.0 / 55.0)
_RKF_B4 = (25.0 / 216.0, 0.0, 1408.0 / 2565.0, 2197.0 / 4104.0, -1.0 / 5.0, 0.0)


class RKScratch:
    """Preallocated slope/stage buffers for the in-place RK kernels.

    Sized for the largest scheme (six RKF45 stages); RK4 uses the first
    four slope buffers.  One instance serves any number of steps on
    arrays of the given ``shape``.

    The slope buffers ``k[i]`` are rows of one stacked ``(6, size)``
    matrix (``k_matrix``), so every Runge-Kutta stage combination
    ``sum_i c_i * k_i`` runs as a single BLAS vector-matrix product
    instead of one multiply-add pass per tableau coefficient.
    """

    def __init__(self, shape, dtype=float):
        size = int(np.prod(shape))
        self.k_matrix = np.empty((6, size), dtype=dtype)
        self.k = [self.k_matrix[i].reshape(shape) for i in range(6)]
        self.stage = np.empty(shape, dtype=dtype)
        self.out = np.empty(shape, dtype=dtype)
        self.y4 = np.empty(shape, dtype=dtype)
        self.stage_flat = self.stage.reshape(size)
        self.out_flat = self.out.reshape(size)
        self.y4_flat = self.y4.reshape(size)
        # Tableau coefficient rows in the scratch dtype, so every stage
        # combination runs as a single-precision GEMV when the buffers
        # are float32 (for float64 these are the module arrays
        # themselves -- asarray is a no-op -- keeping the default path
        # bit-identical).
        self.rk4_b = np.asarray(_RK4_B, dtype=dtype)
        self.rkf_a_rows = tuple(
            np.asarray(row, dtype=dtype) for row in _RKF_A_ROWS
        )
        self.rkf_b5 = np.asarray(_RKF_B5_ARR, dtype=dtype)
        self.rkf_b4 = np.asarray(_RKF_B4_ARR, dtype=dtype)


def rk4_step(rhs, t, y, dt):
    """One classic RK4 step; returns ``y(t + dt)``."""
    k1 = rhs(t, y)
    k2 = rhs(t + 0.5 * dt, y + 0.5 * dt * k1)
    k3 = rhs(t + 0.5 * dt, y + 0.5 * dt * k2)
    k4 = rhs(t + dt, y + dt * k3)
    return y + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


_RK4_B = np.array([1.0 / 6.0, 2.0 / 6.0, 2.0 / 6.0, 1.0 / 6.0])


def rk4_step_into(rhs_into, t, y, dt, work):
    """Buffer-reusing RK4 step: writes ``y(t + dt)`` into ``work.out``.

    ``rhs_into(t, y, out)`` must write dy/dt into ``out``; ``work`` is an
    :class:`RKScratch`.  Returns ``work.out`` (do not retain it across
    steps -- copy into your own array or swap buffers).
    """
    k1, k2, k3, k4 = work.k[0], work.k[1], work.k[2], work.k[3]
    stage, out = work.stage, work.out
    rhs_into(t, y, k1)
    np.multiply(k1, 0.5 * dt, out=stage)
    stage += y
    rhs_into(t + 0.5 * dt, stage, k2)
    np.multiply(k2, 0.5 * dt, out=stage)
    stage += y
    rhs_into(t + 0.5 * dt, stage, k3)
    np.multiply(k3, dt, out=stage)
    stage += y
    rhs_into(t + dt, stage, k4)
    np.matmul(dt * work.rk4_b, work.k_matrix[:4], out=work.out_flat)
    out += y
    return out


def rkf45_step(rhs, t, y, dt):
    """One RKF45 step; returns ``(y5, error_estimate)``.

    ``y5`` is the fifth-order solution, ``error_estimate`` the max-norm
    difference between the embedded fourth- and fifth-order results.
    """
    ks = []
    for stage in range(6):
        yi = y
        for coeff, k in zip(_RKF_A[stage], ks):
            yi = yi + dt * coeff * k
        ks.append(rhs(t + _RKF_C[stage] * dt, yi))
    y5 = y
    y4 = y
    for b5, b4, k in zip(_RKF_B5, _RKF_B4, ks):
        y5 = y5 + dt * b5 * k
        y4 = y4 + dt * b4 * k
    error = float(np.max(np.abs(y5 - y4)))
    return y5, error


_RKF_A_ROWS = tuple(np.array(row[:s]) for s, row in enumerate(_RKF_A))
_RKF_B5_ARR = np.array(_RKF_B5)
_RKF_B4_ARR = np.array(_RKF_B4)


def rkf45_step_into(rhs_into, t, y, dt, work):
    """Buffer-reusing RKF45 step: ``(work.out, error_estimate)``.

    Same contract as :func:`rk4_step_into`; every tableau combination is
    one BLAS product against the stacked slope matrix, and the embedded
    fourth-order solution reuses ``work.y4``.
    """
    ks = work.k
    k_matrix = work.k_matrix
    stage, out, y4 = work.stage, work.out, work.y4
    rhs_into(t, y, ks[0])
    for s in range(1, 6):
        np.matmul(dt * work.rkf_a_rows[s], k_matrix[:s], out=work.stage_flat)
        stage += y
        rhs_into(t + _RKF_C[s] * dt, stage, ks[s])
    np.matmul(dt * work.rkf_b5, k_matrix, out=work.out_flat)
    out += y
    np.matmul(dt * work.rkf_b4, k_matrix, out=work.y4_flat)
    y4 += y
    np.subtract(out, y4, out=y4)
    np.abs(y4, out=y4)
    error = float(y4.max())
    return out, error


def _validate_span(t0, t_end, dt):
    if t_end < t0:
        raise SimulationError(f"t_end ({t_end!r}) before t0 ({t0!r})")
    if dt <= 0:
        raise SimulationError(f"dt must be positive, got {dt!r}")


def integrate(
    rhs,
    t0,
    y0,
    t_end,
    dt,
    adaptive=False,
    tol=1e-4,
    dt_min=None,
    dt_max=None,
    callback=None,
    max_steps=50_000_000,
):
    """Integrate ``dy/dt = rhs(t, y)`` from ``t0`` to ``t_end``.

    With ``adaptive=False``, fixed RK4 steps of ``dt`` are taken (the last
    step is shortened to land exactly on ``t_end``).  With
    ``adaptive=True``, RKF45 with standard step-size control targeting a
    local max-norm error of ``tol`` per step is used; ``dt`` is the
    initial step.

    Every right-hand-side evaluation attempt counts against
    ``max_steps`` -- including *rejected* adaptive steps, so a
    persistently failing step exhausts the budget instead of spinning
    forever.

    ``callback(t, y)`` is invoked after every accepted step.  Returns the
    final ``(t, y)``.
    """
    _validate_span(t0, t_end, dt)
    dt_min = dt * 1e-6 if dt_min is None else dt_min
    dt_max = (t_end - t0) if dt_max is None else dt_max

    t, y = t0, y0
    steps = 0
    rejections = 0
    # Step/rejection counters flush to the obs registry once per call
    # (in the ``finally``), never per step -- the hot loop stays free of
    # locking.
    try:
        while t < t_end:
            if steps >= max_steps:
                raise SimulationError(
                    f"integration exceeded max_steps={max_steps} "
                    f"({rejections} rejected; t={t:.4g} of {t_end:.4g})"
                )
            step = min(dt, t_end - t)
            if adaptive:
                y_new, error = rkf45_step(rhs, t, y, step)
                scale = max(error / tol, 1e-10)
                if error > tol and step > dt_min:
                    # Reject and retry with a smaller step; the attempt
                    # still consumes budget so a stuck step cannot loop
                    # forever.
                    dt = max(0.9 * step * scale ** (-0.25), dt_min)
                    steps += 1
                    rejections += 1
                    continue
                t, y = t + step, y_new
                dt = min(max(0.9 * step * scale ** (-0.2), dt_min), dt_max)
            else:
                y = rk4_step(rhs, t, y, step)
                t = t + step
            steps += 1
            if callback is not None:
                callback(t, y)
    finally:
        if steps:
            obs.inc("llg.steps", steps)
        if rejections:
            obs.inc("llg.rejected", rejections)
    return t, y


def integrate_into(
    rhs_into,
    t0,
    y,
    t_end,
    dt,
    work,
    adaptive=False,
    tol=1e-4,
    dt_min=None,
    dt_max=None,
    callback=None,
    max_steps=50_000_000,
):
    """In-place counterpart of :func:`integrate`: advances ``y`` itself.

    ``rhs_into(t, y, out)`` writes dy/dt into ``out``; ``work`` is an
    :class:`RKScratch` matching ``y``'s shape.  Accepted steps are copied
    back into ``y`` (one memcpy per step -- negligible next to the four
    to six field evaluations), so ``callback(t, y)`` always observes the
    same array object and no per-step allocation occurs.  The step/
    rejection budget behaves exactly like :func:`integrate`.  Returns the
    final ``(t, y)``.
    """
    _validate_span(t0, t_end, dt)
    dt_min = dt * 1e-6 if dt_min is None else dt_min
    dt_max = (t_end - t0) if dt_max is None else dt_max

    t = t0
    steps = 0
    rejections = 0
    try:
        while t < t_end:
            if steps >= max_steps:
                raise SimulationError(
                    f"integration exceeded max_steps={max_steps} "
                    f"({rejections} rejected; t={t:.4g} of {t_end:.4g})"
                )
            step = min(dt, t_end - t)
            if adaptive:
                out, error = rkf45_step_into(rhs_into, t, y, step, work)
                scale = max(error / tol, 1e-10)
                if error > tol and step > dt_min:
                    dt = max(0.9 * step * scale ** (-0.25), dt_min)
                    steps += 1
                    rejections += 1
                    continue
                y[...] = out
                t = t + step
                dt = min(max(0.9 * step * scale ** (-0.2), dt_min), dt_max)
            else:
                y[...] = rk4_step_into(rhs_into, t, y, step, work)
                t = t + step
            steps += 1
            if callback is not None:
                callback(t, y)
    finally:
        if steps:
            obs.inc("llg.steps", steps)
        if rejections:
            obs.inc("llg.rejected", rejections)
    return t, y
