"""Time integrators for the LLG equation.

Two schemes are provided:

* :func:`rk4_step` -- classic fixed-step fourth-order Runge-Kutta, the
  default for driven (excited) simulations where the forcing frequency
  fixes the natural step anyway;
* :func:`rkf45_step` -- Runge-Kutta-Fehlberg 4(5) with an embedded error
  estimate, used by the adaptive :func:`integrate` driver for relaxation
  runs where the stiffness varies over time.

Integrators operate on plain arrays through a right-hand-side callable
``rhs(t, m) -> dm/dt`` so they are independently testable on scalar ODEs.
"""

import numpy as np

from repro.errors import SimulationError

# Runge-Kutta-Fehlberg 4(5) Butcher tableau.
_RKF_A = (
    (),
    (1.0 / 4.0,),
    (3.0 / 32.0, 9.0 / 32.0),
    (1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0),
    (439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0),
    (-8.0 / 27.0, 2.0, -3544.0 / 2565.0, 1859.0 / 4104.0, -11.0 / 40.0),
)
_RKF_C = (0.0, 1.0 / 4.0, 3.0 / 8.0, 12.0 / 13.0, 1.0, 1.0 / 2.0)
_RKF_B5 = (16.0 / 135.0, 0.0, 6656.0 / 12825.0, 28561.0 / 56430.0, -9.0 / 50.0, 2.0 / 55.0)
_RKF_B4 = (25.0 / 216.0, 0.0, 1408.0 / 2565.0, 2197.0 / 4104.0, -1.0 / 5.0, 0.0)


def rk4_step(rhs, t, y, dt):
    """One classic RK4 step; returns ``y(t + dt)``."""
    k1 = rhs(t, y)
    k2 = rhs(t + 0.5 * dt, y + 0.5 * dt * k1)
    k3 = rhs(t + 0.5 * dt, y + 0.5 * dt * k2)
    k4 = rhs(t + dt, y + dt * k3)
    return y + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


def rkf45_step(rhs, t, y, dt):
    """One RKF45 step; returns ``(y5, error_estimate)``.

    ``y5`` is the fifth-order solution, ``error_estimate`` the max-norm
    difference between the embedded fourth- and fifth-order results.
    """
    ks = []
    for stage in range(6):
        yi = y
        for coeff, k in zip(_RKF_A[stage], ks):
            yi = yi + dt * coeff * k
        ks.append(rhs(t + _RKF_C[stage] * dt, yi))
    y5 = y
    y4 = y
    for b5, b4, k in zip(_RKF_B5, _RKF_B4, ks):
        y5 = y5 + dt * b5 * k
        y4 = y4 + dt * b4 * k
    error = float(np.max(np.abs(y5 - y4)))
    return y5, error


def integrate(
    rhs,
    t0,
    y0,
    t_end,
    dt,
    adaptive=False,
    tol=1e-4,
    dt_min=None,
    dt_max=None,
    callback=None,
    max_steps=50_000_000,
):
    """Integrate ``dy/dt = rhs(t, y)`` from ``t0`` to ``t_end``.

    With ``adaptive=False``, fixed RK4 steps of ``dt`` are taken (the last
    step is shortened to land exactly on ``t_end``).  With
    ``adaptive=True``, RKF45 with standard step-size control targeting a
    local max-norm error of ``tol`` per step is used; ``dt`` is the
    initial step.

    ``callback(t, y)`` is invoked after every accepted step.  Returns the
    final ``(t, y)``.
    """
    if t_end < t0:
        raise SimulationError(f"t_end ({t_end!r}) before t0 ({t0!r})")
    if dt <= 0:
        raise SimulationError(f"dt must be positive, got {dt!r}")
    dt_min = dt * 1e-6 if dt_min is None else dt_min
    dt_max = (t_end - t0) if dt_max is None else dt_max

    t, y = t0, y0
    steps = 0
    while t < t_end:
        if steps >= max_steps:
            raise SimulationError(
                f"integration exceeded max_steps={max_steps} "
                f"(t={t:.4g} of {t_end:.4g})"
            )
        step = min(dt, t_end - t)
        if adaptive:
            y_new, error = rkf45_step(rhs, t, y, step)
            scale = max(error / tol, 1e-10)
            if error > tol and step > dt_min:
                # Reject and retry with a smaller step.
                dt = max(0.9 * step * scale ** (-0.25), dt_min)
                continue
            t, y = t + step, y_new
            dt = min(max(0.9 * step * scale ** (-0.2), dt_min), dt_max)
        else:
            y = rk4_step(rhs, t, y, step)
            t = t + step
        steps += 1
        if callback is not None:
            callback(t, y)
    return t, y
