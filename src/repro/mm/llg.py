"""The Landau-Lifshitz-Gilbert right-hand side.

The Gilbert form

    dm/dt = -gamma*mu0 (m x H) + alpha (m x dm/dt)

is algebraically equivalent to the explicit Landau-Lifshitz form used
here (convenient for Runge-Kutta schemes):

    dm/dt = -gamma*mu0/(1+alpha^2) * [ m x H  +  alpha * m x (m x H) ]

which is what OOMMF's ``Oxs_RungeKuttaEvolve`` integrates.
"""

import numpy as np

from repro.constants import MU0


def effective_field(state, terms, t=0.0):
    """Sum the field terms into H_eff, shape ``(nx, ny, nz, 3)`` [A/m]."""
    h = np.zeros(state.mesh.shape + (3,), dtype=float)
    for term in terms:
        h += term.field(state, t)
    return h


def llg_rhs_from_field(m, h_eff, material, alpha=None):
    """dm/dt for magnetisation ``m`` in field ``h_eff`` (arrays).

    ``alpha`` optionally overrides the material damping; it may be a
    scalar or an array of mesh shape (broadcast per cell), which is how
    absorbing boundary regions are realised.
    """
    if alpha is None:
        alpha = material.alpha
    else:
        alpha = np.asarray(alpha, dtype=float)
        if alpha.ndim > 0:
            alpha = alpha[..., np.newaxis]  # broadcast over components
    prefactor = -material.gamma * MU0 / (1.0 + alpha * alpha)
    m_cross_h = np.cross(m, h_eff)
    m_cross_m_cross_h = np.cross(m, m_cross_h)
    return prefactor * (m_cross_h + alpha * m_cross_m_cross_h)


def llg_rhs(state, terms, t=0.0):
    """dm/dt of ``state`` under effective-field ``terms`` at time ``t``."""
    h_eff = effective_field(state, terms, t)
    return llg_rhs_from_field(state.m, h_eff, state.material)


def max_torque(state, terms, t=0.0):
    """Largest |m x H| over the mesh [A/m] -- a convergence criterion.

    Relaxation runs stop when this drops below a tolerance.
    """
    h_eff = effective_field(state, terms, t)
    torque = np.cross(state.m, h_eff)
    return float(np.max(np.linalg.norm(torque, axis=-1)))
