"""Finite-temperature (stochastic) LLG dynamics.

The paper's OOMMF validation runs at T = 0; real devices operate at room
temperature where a fluctuating thermal field perturbs the phase-encoded
waves.  This module implements the standard Langevin extension of the
LLG equation (Brown, 1963): a Gaussian random field h_th with

    <h_th,i(r, t) h_th,j(r', t')> =
        (2 * alpha * k_B * T) / (gamma * mu0^2 * Ms * V_cell)
        * delta_ij delta_rr' delta(t - t')

which on a discrete time grid of step ``dt`` becomes a per-cell,
per-step normal deviate of standard deviation

    sigma = sqrt(2 * alpha * k_B * T / (gamma * mu0^2 * Ms * V_cell * dt)).

Stochastic integration uses the Heun (predictor-corrector) scheme, the
Stratonovich-consistent standard for micromagnetics.
"""

import math

import numpy as np

from repro.constants import KB, MU0
from repro.errors import SimulationError
from repro.mm.llg import effective_field, llg_rhs_from_field


def thermal_field_sigma(material, cell_volume, dt, temperature):
    """Standard deviation [A/m] of each thermal field component.

    Zero at ``temperature == 0``.  Raises for non-physical inputs.
    """
    if temperature < 0:
        raise SimulationError(
            f"temperature must be non-negative, got {temperature!r}"
        )
    if cell_volume <= 0:
        raise SimulationError(
            f"cell_volume must be positive, got {cell_volume!r}"
        )
    if dt <= 0:
        raise SimulationError(f"dt must be positive, got {dt!r}")
    if temperature == 0:
        return 0.0
    variance = (2.0 * material.alpha * KB * temperature) / (
        material.gamma * MU0**2 * material.ms * cell_volume * dt
    )
    return math.sqrt(variance)


class ThermalLangevinRun:
    """Heun-scheme stochastic LLG integrator at fixed temperature.

    Unlike the deterministic :class:`~repro.mm.sim.Simulation` driver,
    the thermal field must be resampled once per step and shared between
    the predictor and corrector stages, so this runner owns its stepping
    loop.

    Parameters
    ----------
    state:
        The :class:`~repro.mm.state.State` to evolve (modified in place).
    terms:
        Deterministic effective-field terms.
    temperature:
        Bath temperature [K].
    seed:
        RNG seed (deterministic runs for tests/repro).
    """

    def __init__(self, state, terms, temperature, seed=0):
        if not terms:
            raise SimulationError("no field terms configured")
        self.state = state
        self.terms = list(terms)
        if temperature < 0:
            raise SimulationError(
                f"temperature must be non-negative, got {temperature!r}"
            )
        self.temperature = float(temperature)
        self.rng = np.random.default_rng(seed)
        self.t = 0.0

    def _deterministic_field(self, m, t):
        self.state.m = m
        return effective_field(self.state, self.terms, t)

    def _thermal_field(self, dt):
        sigma = thermal_field_sigma(
            self.state.material,
            self.state.mesh.cell_volume,
            dt,
            self.temperature,
        )
        if sigma == 0.0:
            return 0.0
        return self.rng.normal(
            0.0, sigma, size=self.state.mesh.shape + (3,)
        )

    def step(self, dt):
        """One Heun predictor-corrector step of length ``dt``."""
        material = self.state.material
        m0 = self.state.m
        h_th = self._thermal_field(dt)

        h0 = self._deterministic_field(m0, self.t) + h_th
        k0 = llg_rhs_from_field(m0, h0, material)
        m_pred = m0 + dt * k0

        h1 = self._deterministic_field(m_pred, self.t + dt) + h_th
        k1 = llg_rhs_from_field(m_pred, h1, material)

        m_new = m0 + 0.5 * dt * (k0 + k1)
        norms = np.linalg.norm(m_new, axis=-1, keepdims=True)
        self.state.m = m_new / norms
        self.t += dt
        return self.state

    def run(self, duration, dt, callback=None):
        """Integrate for ``duration`` with fixed steps ``dt``."""
        if duration <= 0:
            raise SimulationError(f"duration must be positive, got {duration!r}")
        if dt <= 0:
            raise SimulationError(f"dt must be positive, got {dt!r}")
        n_steps = max(int(round(duration / dt)), 1)
        for _ in range(n_steps):
            self.step(dt)
            if callback is not None:
                callback(self.t, self.state)
        return self.state


def equilibrium_cone_angle(material, h_eff, cell_volume, temperature):
    """RMS thermal tilt angle [rad] of a macrospin in field ``h_eff``.

    Equipartition estimate: each transverse mode carries k_B*T/2 against
    the stiffness mu0*Ms*H_eff*V/2 per unit angle^2, so

        <theta^2> = 2 * k_B * T / (mu0 * Ms * H_eff * V).

    Used by the tests to check the Langevin integrator thermalises to
    the right magnitude, and by users to size transducer volumes against
    thermal phase noise.
    """
    if temperature < 0:
        raise SimulationError("temperature must be non-negative")
    if h_eff <= 0 or cell_volume <= 0:
        raise SimulationError("h_eff and cell_volume must be positive")
    if temperature == 0:
        return 0.0
    variance = 2.0 * KB * temperature / (
        MU0 * material.ms * h_eff * cell_volume
    )
    return math.sqrt(variance)


def thermal_phase_noise_sigma(material, h_eff, transducer_volume, temperature):
    """Thermal phase-jitter estimate [rad] for a phase-encoded wave.

    The transverse thermal cone translates directly into phase
    uncertainty of the excited wave; to first order the RMS phase error
    equals the RMS cone angle of the transducer-volume moment.  Feed the
    result into :class:`repro.waveguide.NoiseModel(phase_sigma=...)` to
    close the loop between device physics and gate-level robustness.
    """
    return equilibrium_cone_angle(
        material, h_eff, transducer_volume, temperature
    )
