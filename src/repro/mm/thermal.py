"""Finite-temperature (stochastic) LLG dynamics.

The paper's OOMMF validation runs at T = 0; real devices operate at room
temperature where a fluctuating thermal field perturbs the phase-encoded
waves.  This module implements the standard Langevin extension of the
LLG equation (Brown, 1963): a Gaussian random field h_th with

    <h_th,i(r, t) h_th,j(r', t')> =
        (2 * alpha * k_B * T) / (gamma * mu0^2 * Ms * V_cell)
        * delta_ij delta_rr' delta(t - t')

which on a discrete time grid of step ``dt`` becomes a per-cell,
per-step normal deviate of standard deviation

    sigma = sqrt(2 * alpha * k_B * T / (gamma * mu0^2 * Ms * V_cell * dt)).

Stochastic integration uses the Heun (predictor-corrector) scheme, the
Stratonovich-consistent standard for micromagnetics.
"""

import math

import numpy as np

from repro.constants import KB, MU0
from repro.errors import SimulationError
from repro.mm.kernels import LLGWorkspace


def thermal_field_sigma(material, cell_volume, dt, temperature):
    """Standard deviation [A/m] of each thermal field component.

    Zero at ``temperature == 0``.  Raises for non-physical inputs.
    """
    if temperature < 0:
        raise SimulationError(
            f"temperature must be non-negative, got {temperature!r}"
        )
    if cell_volume <= 0:
        raise SimulationError(
            f"cell_volume must be positive, got {cell_volume!r}"
        )
    if dt <= 0:
        raise SimulationError(f"dt must be positive, got {dt!r}")
    if temperature == 0:
        return 0.0
    variance = (2.0 * material.alpha * KB * temperature) / (
        material.gamma * MU0**2 * material.ms * cell_volume * dt
    )
    return math.sqrt(variance)


class ThermalLangevinRun:
    """Heun-scheme stochastic LLG integrator at fixed temperature.

    Unlike the deterministic :class:`~repro.mm.sim.Simulation` driver,
    the thermal field must be resampled once per step and shared between
    the predictor and corrector stages, so this runner owns its stepping
    loop.

    Parameters
    ----------
    state:
        The :class:`~repro.mm.state.State` to evolve (modified in place).
    terms:
        Deterministic effective-field terms.
    temperature:
        Bath temperature [K].
    seed:
        RNG seed (deterministic runs for tests/repro).
    """

    def __init__(self, state, terms, temperature, seed=0):
        if not terms:
            raise SimulationError("no field terms configured")
        self.state = state
        self.terms = list(terms)
        if temperature < 0:
            raise SimulationError(
                f"temperature must be non-negative, got {temperature!r}"
            )
        self.temperature = float(temperature)
        self.rng = np.random.default_rng(seed)
        self.t = 0.0
        # Workspace-driven stepping: every Heun stage evaluates into
        # these preallocated buffers, so the per-step cost is FFT/ufunc
        # work plus the one unavoidable RNG fill.
        shape = state.mesh.shape + (3,)
        self._workspace = LLGWorkspace(state.mesh, state.material, self.terms)
        self._h_th = np.empty(shape, dtype=float)
        self._k0 = np.empty(shape, dtype=float)
        self._k1 = np.empty(shape, dtype=float)
        self._m_pred = np.empty(shape, dtype=float)
        self._m_new = np.empty(shape, dtype=float)
        self._norm = np.empty(state.mesh.shape, dtype=float)

    def _thermal_field_into(self, dt, out):
        """Sample the per-step thermal field into ``out``; False if T=0."""
        sigma = thermal_field_sigma(
            self.state.material,
            self.state.mesh.cell_volume,
            dt,
            self.temperature,
        )
        if sigma == 0.0:
            return False
        self.rng.standard_normal(out=out)
        out *= sigma
        return True

    def step(self, dt):
        """One Heun predictor-corrector step of length ``dt``."""
        workspace = self._workspace
        if self.state.material is not workspace.material:
            workspace.configure(self.state.material)
        m0 = self.state.m
        thermal = self._thermal_field_into(dt, self._h_th)

        h = workspace.effective_field_into(self.state, self.t)
        if thermal:
            h += self._h_th
        workspace.rhs_from_field_into(m0, h, self._k0)
        np.multiply(self._k0, dt, out=self._m_pred)
        self._m_pred += m0

        self.state.m = self._m_pred
        h = workspace.effective_field_into(self.state, self.t + dt)
        if thermal:
            h += self._h_th
        workspace.rhs_from_field_into(self._m_pred, h, self._k1)

        m_new = self._m_new
        np.add(self._k0, self._k1, out=m_new)
        m_new *= 0.5 * dt
        m_new += m0
        np.einsum("...i,...i->...", m_new, m_new, out=self._norm)
        np.sqrt(self._norm, out=self._norm)
        m_new /= self._norm[..., np.newaxis]
        m0[...] = m_new
        self.state.m = m0
        self.t += dt
        return self.state

    def run(self, duration, dt, callback=None):
        """Integrate for ``duration`` with fixed steps ``dt``."""
        if duration <= 0:
            raise SimulationError(f"duration must be positive, got {duration!r}")
        if dt <= 0:
            raise SimulationError(f"dt must be positive, got {dt!r}")
        n_steps = max(int(round(duration / dt)), 1)
        for _ in range(n_steps):
            self.step(dt)
            if callback is not None:
                callback(self.t, self.state)
        return self.state


def equilibrium_cone_angle(material, h_eff, cell_volume, temperature):
    """RMS thermal tilt angle [rad] of a macrospin in field ``h_eff``.

    Equipartition estimate: each transverse mode carries k_B*T/2 against
    the stiffness mu0*Ms*H_eff*V/2 per unit angle^2, so

        <theta^2> = 2 * k_B * T / (mu0 * Ms * H_eff * V).

    Used by the tests to check the Langevin integrator thermalises to
    the right magnitude, and by users to size transducer volumes against
    thermal phase noise.
    """
    if temperature < 0:
        raise SimulationError("temperature must be non-negative")
    if h_eff <= 0 or cell_volume <= 0:
        raise SimulationError("h_eff and cell_volume must be positive")
    if temperature == 0:
        return 0.0
    variance = 2.0 * KB * temperature / (
        MU0 * material.ms * h_eff * cell_volume
    )
    return math.sqrt(variance)


def thermal_phase_noise_sigma(material, h_eff, transducer_volume, temperature):
    """Thermal phase-jitter estimate [rad] for a phase-encoded wave.

    The transverse thermal cone translates directly into phase
    uncertainty of the excited wave; to first order the RMS phase error
    equals the RMS cone angle of the transducer-volume moment.  Feed the
    result into :class:`repro.waveguide.NoiseModel(phase_sigma=...)` to
    close the loop between device physics and gate-level robustness.
    """
    return equilibrium_cone_angle(
        material, h_eff, transducer_volume, temperature
    )
