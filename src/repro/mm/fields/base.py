"""Field-term interface shared by all effective-field contributions."""

import numpy as np

from repro.constants import MU0


class FieldTerm:
    """One contribution to the effective field H_eff.

    Subclasses implement :meth:`field`.  The default :meth:`energy` uses
    the generic linear-term expression

        E = -(mu0 * Ms / 2) * sum_cells (m . H) * V_cell

    which is correct for self-consistent bilinear terms (exchange,
    anisotropy, demag); terms linear in ``m`` (Zeeman, applied) override
    the prefactor via :attr:`energy_prefactor` = 1.
    """

    #: 0.5 for bilinear terms (double counting), 1.0 for linear terms.
    energy_prefactor = 0.5

    #: Set True on terms that depend on time (excitation sources).
    time_dependent = False

    def field(self, state, t=0.0):
        """Return this term's H contribution, shape ``(nx, ny, nz, 3)`` [A/m]."""
        raise NotImplementedError

    def energy(self, state, t=0.0):
        """Total energy of this term [J]."""
        h = self.field(state, t)
        dot = np.einsum("...i,...i->...", state.m, h)
        return float(
            -self.energy_prefactor
            * MU0
            * state.material.ms
            * dot.sum()
            * state.mesh.cell_volume
        )

    @property
    def name(self):
        """Term name used in energy tables."""
        return type(self).__name__
