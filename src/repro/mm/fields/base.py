"""Field-term interface shared by all effective-field contributions."""

import numpy as np

from repro.constants import MU0


class FieldTerm:
    """One contribution to the effective field H_eff.

    Subclasses implement :meth:`field`.  The default :meth:`energy` uses
    the generic linear-term expression

        E = -(mu0 * Ms / 2) * sum_cells (m . H) * V_cell

    which is correct for self-consistent bilinear terms (exchange,
    anisotropy, demag); terms linear in ``m`` (Zeeman, applied) override
    the prefactor via :attr:`energy_prefactor` = 1.

    Terms participate in the zero-allocation kernel path through
    :meth:`add_field_into`, which *accumulates* the contribution into a
    caller-owned buffer.  The base implementation falls back to
    ``out += self.field(state, t)`` so any third-party term works
    unchanged; the built-in terms override it with fused in-place
    kernels (scratch arrays are cached per mesh shape via
    :meth:`_scratch`).
    """

    #: 0.5 for bilinear terms (double counting), 1.0 for linear terms.
    energy_prefactor = 0.5

    #: Set True on terms that depend on time (excitation sources).
    time_dependent = False

    def field(self, state, t=0.0):
        """Return this term's H contribution, shape ``(nx, ny, nz, 3)`` [A/m]."""
        raise NotImplementedError

    def add_field_into(self, state, out, t=0.0):
        """Accumulate this term's H contribution into ``out`` [A/m].

        ``out`` has shape ``(nx, ny, nz, 3)`` and already holds the sum
        of previously applied terms; implementations must *add* to it
        (never overwrite) and must not retain a reference to it.
        Returns ``out``.
        """
        out += self.field(state, t)
        return out

    def cell_linear_operator(self, state):
        """Optional ``(3, 3)`` matrix ``A`` with ``H = A @ m`` per cell.

        Terms whose field is the same time-independent linear map of the
        local magnetisation in every cell (uniaxial anisotropy, local
        demag tensors) return it here so
        :class:`~repro.mm.kernels.LLGWorkspace` can fuse them -- all such
        terms sum into a single matrix applied as one BLAS product per
        field evaluation.  The matrix must depend only on the state's
        material (and the term's own constants); return ``None`` (the
        default) for everything else.
        """
        return None

    def _scratch(self, shape, n=1, dtype=float):
        """Per-term scratch arrays of ``shape``, cached across calls.

        Returns a tuple of ``n`` arrays (uninitialised).  The cache is
        keyed on ``(shape, n, dtype)`` so a term reused across meshes
        stays correct; the common case (one term, one mesh) allocates
        exactly once.
        """
        key = (shape, n, np.dtype(dtype).str)
        cache = getattr(self, "_scratch_cache", None)
        if cache is None:
            cache = {}
            self._scratch_cache = cache
        if key not in cache:
            cache[key] = tuple(np.empty(shape, dtype=dtype) for _ in range(n))
        return cache[key]

    def energy(self, state, t=0.0):
        """Total energy of this term [J]."""
        h = self.field(state, t)
        dot = np.einsum("...i,...i->...", state.m, h)
        return float(
            -self.energy_prefactor
            * MU0
            * state.material.ms
            * dot.sum()
            * state.mesh.cell_volume
        )

    @property
    def name(self):
        """Term name used in energy tables."""
        return type(self).__name__
