"""Demagnetising field terms.

:class:`DemagField` computes the full magnetostatic field by FFT-based
convolution of the Newell tensor with the magnetisation -- the exact
(within discretisation) treatment OOMMF uses.  :class:`ThinFilmDemagField`
is the local thin-film approximation H = -Ms*m_z*z_hat (demag factor
N_zz = 1), adequate for laterally extended ultrathin films and orders of
magnitude cheaper; the ablation benchmark quantifies the difference.
"""

import numpy as np

from repro.mm.fields.base import FieldTerm
from repro.mm.fields.newell import demag_tensor


class DemagField(FieldTerm):
    """Full demagnetisation via Newell tensor + FFT convolution.

    The tensor FFTs are precomputed at construction for a given mesh, so
    each field evaluation costs 3 forward and 3 inverse real FFTs.
    """

    _TENSOR_ROWS = (("xx", "xy", "xz"), ("xy", "yy", "yz"), ("xz", "yz", "zz"))

    def __init__(self, mesh):
        self.mesh = mesh
        self._padded = tuple(2 * n if n > 1 else 1 for n in mesh.shape)
        tensor = demag_tensor(mesh, self._padded)
        self._axes = (0, 1, 2)
        self._n_hat = {
            key: np.fft.rfftn(component, s=self._padded, axes=self._axes)
            for key, component in tensor.items()
        }
        # Reusable FFT input / spectral accumulation buffers: the zero
        # padding of ``_pad`` is written once here and never touched
        # again (field evaluations only overwrite the [:nx,:ny,:nz]
        # corner), so each call performs no allocation beyond what
        # ``np.fft`` itself returns.
        spectral_shape = self._n_hat["xx"].shape
        self._pad = np.zeros(self._padded, dtype=float)
        self._m_hat = [None, None, None]
        self._acc = np.empty(spectral_shape, dtype=complex)
        self._spec_tmp = np.empty(spectral_shape, dtype=complex)

    def _check_state(self, state):
        if state.mesh.shape != self.mesh.shape:
            raise ValueError(
                f"state mesh {state.mesh.shape} does not match the mesh this "
                f"DemagField was built for {self.mesh.shape}"
            )

    def _spectra(self, state):
        """Forward FFTs of Ms*m, reusing the padded input buffer."""
        nx, ny, nz = self.mesh.shape
        ms = state.material.ms
        corner = self._pad[:nx, :ny, :nz]
        for comp in range(3):
            np.multiply(state.m[..., comp], ms, out=corner)
            self._m_hat[comp] = np.fft.rfftn(
                self._pad, s=self._padded, axes=self._axes
            )
        return self._m_hat

    def field(self, state, t=0.0):
        h = np.empty(self.mesh.shape + (3,), dtype=float)
        h.fill(0.0)
        return self.add_field_into(state, h, t)

    def add_field_into(self, state, out, t=0.0):
        """Accumulate the FFT-convolution demag field into ``out``.

        The padded real input buffer and the spectral accumulators are
        reused across calls; the tensor contraction runs through in-place
        ufuncs so only the unavoidable ``np.fft`` outputs allocate.
        """
        self._check_state(state)
        m_hat = self._spectra(state)
        nx, ny, nz = self.mesh.shape
        acc, tmp = self._acc, self._spec_tmp
        for comp, row in enumerate(self._TENSOR_ROWS):
            np.multiply(self._n_hat[row[0]], m_hat[0], out=acc)
            np.multiply(self._n_hat[row[1]], m_hat[1], out=tmp)
            acc += tmp
            np.multiply(self._n_hat[row[2]], m_hat[2], out=tmp)
            acc += tmp
            full = np.fft.irfftn(acc, s=self._padded, axes=self._axes)
            out[..., comp] -= full[:nx, :ny, :nz]
        return out


class ThinFilmDemagField(FieldTerm):
    """Local thin-film demag approximation: H = -Ms * m_z * z_hat.

    Exact for an infinite uniformly magnetised film; for the paper's
    1 nm x 50 nm cross-section waveguides it captures the dominant
    perpendicular shape anisotropy at negligible cost.  A general
    diagonal factor tuple ``(n_x, n_y, n_z)`` may be supplied for other
    shapes (it should sum to 1).
    """

    def __init__(self, factors=(0.0, 0.0, 1.0)):
        factors = tuple(float(f) for f in factors)
        if len(factors) != 3:
            raise ValueError(f"need 3 demag factors, got {factors!r}")
        if any(f < 0 for f in factors):
            raise ValueError(f"demag factors must be non-negative: {factors!r}")
        self.factors = factors

    def field(self, state, t=0.0):
        ms = state.material.ms
        h = np.empty(state.mesh.shape + (3,), dtype=float)
        for comp in range(3):
            h[..., comp] = -ms * self.factors[comp] * state.m[..., comp]
        return h

    def add_field_into(self, state, out, t=0.0):
        """In-place accumulation of the diagonal demag tensor."""
        ms = state.material.ms
        (scaled,) = self._scratch(state.mesh.shape)
        for comp in range(3):
            factor = -ms * self.factors[comp]
            if factor != 0.0:
                np.multiply(state.m[..., comp], factor, out=scaled)
                out[..., comp] += scaled
        return out

    def cell_linear_operator(self, state):
        """``diag(-Ms * factors)`` (enables workspace fusion)."""
        return np.diag(-state.material.ms * np.asarray(self.factors))
