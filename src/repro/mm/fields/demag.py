"""Demagnetising field terms.

:class:`DemagField` computes the full magnetostatic field by FFT-based
convolution of the Newell tensor with the magnetisation -- the exact
(within discretisation) treatment OOMMF uses.  :class:`ThinFilmDemagField`
is the local thin-film approximation H = -Ms*m_z*z_hat (demag factor
N_zz = 1), adequate for laterally extended ultrathin films and orders of
magnitude cheaper; the ablation benchmark quantifies the difference.
"""

import numpy as np

from repro.mm.fields.base import FieldTerm
from repro.mm.fields.newell import demag_tensor


class DemagField(FieldTerm):
    """Full demagnetisation via Newell tensor + FFT convolution.

    The tensor FFTs are precomputed at construction for a given mesh, so
    each field evaluation costs 3 forward and 3 inverse real FFTs.
    """

    def __init__(self, mesh):
        self.mesh = mesh
        self._padded = tuple(2 * n if n > 1 else 1 for n in mesh.shape)
        tensor = demag_tensor(mesh, self._padded)
        self._axes = (0, 1, 2)
        self._n_hat = {
            key: np.fft.rfftn(component, s=self._padded, axes=self._axes)
            for key, component in tensor.items()
        }

    def field(self, state, t=0.0):
        if state.mesh.shape != self.mesh.shape:
            raise ValueError(
                f"state mesh {state.mesh.shape} does not match the mesh this "
                f"DemagField was built for {self.mesh.shape}"
            )
        ms = state.material.ms
        m_hat = [
            np.fft.rfftn(ms * state.m[..., comp], s=self._padded, axes=self._axes)
            for comp in range(3)
        ]
        n = self._n_hat
        h_hat = (
            n["xx"] * m_hat[0] + n["xy"] * m_hat[1] + n["xz"] * m_hat[2],
            n["xy"] * m_hat[0] + n["yy"] * m_hat[1] + n["yz"] * m_hat[2],
            n["xz"] * m_hat[0] + n["yz"] * m_hat[1] + n["zz"] * m_hat[2],
        )
        nx, ny, nz = self.mesh.shape
        h = np.empty(self.mesh.shape + (3,), dtype=float)
        for comp in range(3):
            full = np.fft.irfftn(h_hat[comp], s=self._padded, axes=self._axes)
            h[..., comp] = -full[:nx, :ny, :nz]
        return h


class ThinFilmDemagField(FieldTerm):
    """Local thin-film demag approximation: H = -Ms * m_z * z_hat.

    Exact for an infinite uniformly magnetised film; for the paper's
    1 nm x 50 nm cross-section waveguides it captures the dominant
    perpendicular shape anisotropy at negligible cost.  A general
    diagonal factor tuple ``(n_x, n_y, n_z)`` may be supplied for other
    shapes (it should sum to 1).
    """

    def __init__(self, factors=(0.0, 0.0, 1.0)):
        factors = tuple(float(f) for f in factors)
        if len(factors) != 3:
            raise ValueError(f"need 3 demag factors, got {factors!r}")
        if any(f < 0 for f in factors):
            raise ValueError(f"demag factors must be non-negative: {factors!r}")
        self.factors = factors

    def field(self, state, t=0.0):
        ms = state.material.ms
        h = np.empty(state.mesh.shape + (3,), dtype=float)
        for comp in range(3):
            h[..., comp] = -ms * self.factors[comp] * state.m[..., comp]
        return h
