"""Demagnetising field terms.

:class:`DemagField` computes the full magnetostatic field by FFT-based
convolution of the Newell tensor with the magnetisation -- the exact
(within discretisation) treatment OOMMF uses.  :class:`ThinFilmDemagField`
is the local thin-film approximation H = -Ms*m_z*z_hat (demag factor
N_zz = 1), adequate for laterally extended ultrathin films and orders of
magnitude cheaper; the ablation benchmark quantifies the difference.
"""

import warnings

import numpy as np

from repro import obs
from repro.backends import get_backend
from repro.mm.fields.base import FieldTerm
from repro.mm.fields.newell import demag_tensor


class DemagField(FieldTerm):
    """Full demagnetisation via Newell tensor + FFT convolution.

    The tensor FFTs are precomputed at construction for a given mesh, so
    each field evaluation costs 3 forward and 3 inverse real FFTs.

    ``backend`` (default :func:`repro.backends.get_backend`) supplies
    the FFT engine and the working dtype: the Newell tensor spectra are
    always computed in float64 and then cast, while the padded input,
    spectral and inverse-transform buffers are preallocated once in the
    backend dtype and reused through the backend's ``out=``-style FFT
    calls -- on the default NumPy backend a field evaluation performs
    no heap allocation at all.
    """

    _TENSOR_ROWS = (("xx", "xy", "xz"), ("xy", "yy", "yz"), ("xz", "yz", "zz"))

    def __init__(self, mesh, backend=None):
        self.mesh = mesh
        self.backend = backend if backend is not None else get_backend()
        self._padded = tuple(2 * n if n > 1 else 1 for n in mesh.shape)
        tensor = demag_tensor(mesh, self._padded)
        self._axes = (0, 1, 2)
        # Tensor spectra: compute double, store backend (the cast is a
        # no-op on the default backend).
        self._n_hat = {
            key: self.backend.cast(
                np.fft.rfftn(component, s=self._padded, axes=self._axes),
                kind="complex",
            )
            for key, component in tensor.items()
        }
        # Reusable FFT workspaces: the zero padding of ``_pad`` is
        # written once here and never touched again (field evaluations
        # only overwrite the [:nx,:ny,:nz] corner); the magnetisation
        # spectra, the accumulators and the inverse-transform output all
        # live in preallocated buffers the backend FFTs fill in place.
        spectral_shape = self._n_hat["xx"].shape
        self._pad = self.backend.zeros(self._padded, kind="real")
        self._m_hat = [
            self.backend.empty(spectral_shape, kind="complex")
            for _ in range(3)
        ]
        self._acc = self.backend.empty(spectral_shape, kind="complex")
        self._spec_tmp = self.backend.empty(spectral_shape, kind="complex")
        self._full = self.backend.empty(self._padded, kind="real")

    def _check_state(self, state):
        mesh = state.mesh
        if mesh.shape != self.mesh.shape or (
            (mesh.dx, mesh.dy, mesh.dz)
            != (self.mesh.dx, self.mesh.dy, self.mesh.dz)
        ):
            # Cell geometry matters as much as shape: the precomputed
            # Newell tensor encodes dx/dy/dz, so a same-shape mesh with
            # different cells would silently convolve against the wrong
            # tensor.
            raise ValueError(
                f"state mesh (shape {mesh.shape}, cell "
                f"({mesh.dx!r}, {mesh.dy!r}, {mesh.dz!r})) does not match "
                f"the mesh this DemagField was built for (shape "
                f"{self.mesh.shape}, cell ({self.mesh.dx!r}, "
                f"{self.mesh.dy!r}, {self.mesh.dz!r}))"
            )

    def _spectra(self, state):
        """Forward FFTs of Ms*m into the preallocated spectral buffers."""
        nx, ny, nz = self.mesh.shape
        ms = state.material.ms
        corner = self._pad[:nx, :ny, :nz]
        for comp in range(3):
            np.multiply(state.m[..., comp], ms, out=corner)
            self._m_hat[comp] = self.backend.rfftn(
                self._pad, s=self._padded, axes=self._axes,
                out=self._m_hat[comp],
            )
        return self._m_hat

    def field(self, state, t=0.0):
        h = np.empty(self.mesh.shape + (3,), dtype=float)
        h.fill(0.0)
        return self.add_field_into(state, h, t)

    def add_field_into(self, state, out, t=0.0):
        """Accumulate the FFT-convolution demag field into ``out``.

        The padded real input buffer, the spectral accumulators and the
        inverse-transform output are all reused across calls; the tensor
        contraction runs through in-place ufuncs, so on backends with
        ``out=`` FFT support (the NumPy default) the whole evaluation is
        allocation-free.
        """
        self._check_state(state)
        with obs.span("mm/demag_fft"):
            m_hat = self._spectra(state)
            nx, ny, nz = self.mesh.shape
            acc, tmp = self._acc, self._spec_tmp
            for comp, row in enumerate(self._TENSOR_ROWS):
                np.multiply(self._n_hat[row[0]], m_hat[0], out=acc)
                np.multiply(self._n_hat[row[1]], m_hat[1], out=tmp)
                acc += tmp
                np.multiply(self._n_hat[row[2]], m_hat[2], out=tmp)
                acc += tmp
                full = self.backend.irfftn(
                    acc, s=self._padded, axes=self._axes, out=self._full
                )
                out[..., comp] -= full[:nx, :ny, :nz]
        return out


class ThinFilmDemagField(FieldTerm):
    """Local thin-film demag approximation: H = -Ms * m_z * z_hat.

    Exact for an infinite uniformly magnetised film; for the paper's
    1 nm x 50 nm cross-section waveguides it captures the dominant
    perpendicular shape anisotropy at negligible cost.  A general
    diagonal factor tuple ``(n_x, n_y, n_z)`` may be supplied for other
    shapes; the factors must sum to ~1 (the demag tensor's trace), and
    clearly unphysical sums (<= 0 or > 1.5, e.g. a transposed or typo'd
    tuple) are rejected outright while mild deviations only warn.
    """

    def __init__(self, factors=(0.0, 0.0, 1.0)):
        factors = tuple(float(f) for f in factors)
        if len(factors) != 3:
            raise ValueError(f"need 3 demag factors, got {factors!r}")
        if any(f < 0 for f in factors):
            raise ValueError(f"demag factors must be non-negative: {factors!r}")
        total = sum(factors)
        if total <= 0.0 or total > 1.5:
            raise ValueError(
                f"demag factors should sum to ~1 (tensor trace), got sum "
                f"{total!r} from {factors!r}"
            )
        if abs(total - 1.0) > 1e-6:
            warnings.warn(
                f"demag factors {factors!r} sum to {total!r}, not 1; the "
                "diagonal approximation then violates the demag tensor's "
                "trace and skews the anisotropy fusion",
                stacklevel=2,
            )
        self.factors = factors

    def field(self, state, t=0.0):
        ms = state.material.ms
        h = np.empty(state.mesh.shape + (3,), dtype=float)
        for comp in range(3):
            h[..., comp] = -ms * self.factors[comp] * state.m[..., comp]
        return h

    def add_field_into(self, state, out, t=0.0):
        """In-place accumulation of the diagonal demag tensor."""
        ms = state.material.ms
        (scaled,) = self._scratch(state.mesh.shape)
        for comp in range(3):
            factor = -ms * self.factors[comp]
            if factor != 0.0:
                np.multiply(state.m[..., comp], factor, out=scaled)
                out[..., comp] += scaled
        return out

    def cell_linear_operator(self, state):
        """``diag(-Ms * factors)`` (enables workspace fusion)."""
        return np.diag(-state.material.ms * np.asarray(self.factors))
