"""Static Zeeman field term: a uniform external field."""

import numpy as np

from repro.mm.fields.base import FieldTerm


class ZeemanField(FieldTerm):
    """Uniform external field ``h`` [A/m] (3-vector)."""

    energy_prefactor = 1.0  # linear in m: no double-counting factor

    def __init__(self, h):
        self.h = np.asarray(h, dtype=float)
        if self.h.shape != (3,):
            raise ValueError(f"h must be a 3-vector, got shape {self.h.shape}")

    def field(self, state, t=0.0):
        out = np.empty(state.mesh.shape + (3,), dtype=float)
        out[...] = self.h
        return out

    def add_field_into(self, state, out, t=0.0):
        """Broadcast accumulation -- no intermediate full-mesh array."""
        out += self.h
        return out
