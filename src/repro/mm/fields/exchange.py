"""Heisenberg exchange on the finite-difference mesh.

H_ex = (2*Aex / (mu0*Ms)) * laplacian(m)

with the 6-neighbour Laplacian and Neumann (free-spin / mirror) boundary
conditions, the same discretisation OOMMF's ``Oxs_UniformExchange`` uses.
"""

import numpy as np

from repro.constants import MU0
from repro.mm.fields.base import FieldTerm


def _laplacian(m, deltas):
    """6-neighbour vector Laplacian with Neumann boundaries.

    ``m`` has shape (nx, ny, nz, 3); ``deltas`` = (dx, dy, dz).  At the
    boundaries the missing neighbour is mirrored (m[-1] := m[0]), which
    makes the boundary contribution vanish -- the free-spin condition.
    """
    lap = np.zeros_like(m)
    for axis in range(3):
        if m.shape[axis] == 1:
            continue  # no variation along this axis
        d2 = deltas[axis] ** 2
        fwd = np.roll(m, -1, axis=axis)
        bwd = np.roll(m, 1, axis=axis)
        # Neumann BC: replace the wrapped-around neighbours by the edge value.
        head = [slice(None)] * 4
        tail = [slice(None)] * 4
        head[axis] = slice(0, 1)
        tail[axis] = slice(-1, None)
        fwd[tuple(tail)] = m[tuple(tail)]
        bwd[tuple(head)] = m[tuple(head)]
        lap += (fwd - 2.0 * m + bwd) / d2
    return lap


class ExchangeField(FieldTerm):
    """Uniform exchange stiffness field term."""

    def __init__(self, aex=None):
        """``aex`` overrides the material's exchange constant when given."""
        self.aex = aex

    def _aex(self, state):
        return state.material.aex if self.aex is None else self.aex

    def field(self, state, t=0.0):
        mesh = state.mesh
        prefactor = 2.0 * self._aex(state) / (MU0 * state.material.ms)
        return prefactor * _laplacian(state.m, (mesh.dx, mesh.dy, mesh.dz))

    def max_stable_dt(self, state, safety=0.1):
        """Heuristic explicit-integration time-step limit [s].

        The stiffest mode is the checkerboard mode at the Nyquist
        wavenumber of the finest axis; its precession period bounds the
        stable step of an explicit Runge-Kutta scheme.
        """
        mesh = state.mesh
        deltas = [d for d, n in zip((mesh.dx, mesh.dy, mesh.dz), mesh.shape) if n > 1]
        if not deltas:
            return np.inf
        d_min = min(deltas)
        k_max = np.pi / d_min
        lam = 2.0 * self._aex(state) / (MU0 * state.material.ms**2)
        omega_max = state.material.gamma * MU0 * state.material.ms * lam * k_max**2
        # Factor len(deltas): each active axis contributes its own Nyquist mode.
        omega_max *= len(deltas)
        return safety * 2.0 * np.pi / omega_max
