"""Heisenberg exchange on the finite-difference mesh.

H_ex = (2*Aex / (mu0*Ms)) * laplacian(m)

with the 6-neighbour Laplacian and Neumann (free-spin / mirror) boundary
conditions, the same discretisation OOMMF's ``Oxs_UniformExchange`` uses.
"""

import numpy as np

from repro.constants import MU0
from repro.mm.fields.base import FieldTerm


def _axis_index(axis, s):
    """Index tuple selecting slice ``s`` along ``axis`` of an (x,y,z,3) array."""
    index = [slice(None)] * 4
    index[axis] = s
    return tuple(index)


#: Above this flattened trailing size ``ny * nz * 3`` the dense fused
#: operator of :func:`trailing_laplacian_operator` stops paying for its
#: extra FLOPs and the sliced stencil takes over.
TRAILING_FUSE_LIMIT = 192


def neumann_laplacian(n):
    """Dense 1-D second-difference matrix with mirror (Neumann) ends.

    Row ``i`` holds the ``[1, -2, 1]`` stencil; at the ends the mirrored
    neighbour cancels one centre term, leaving ``[-1, 1]`` -- exactly the
    boundary handling of :func:`_laplacian`.  Unscaled (multiply by
    ``1/delta**2`` yourself).
    """
    matrix = np.zeros((n, n))
    idx = np.arange(n)
    matrix[idx, idx] = -2.0
    matrix[idx[:-1], idx[:-1] + 1] = 1.0
    matrix[idx[1:], idx[1:] - 1] = 1.0
    matrix[0, 0] = -1.0
    matrix[-1, -1] = -1.0
    return matrix


def trailing_laplacian_operator(ny, nz, scale_y, scale_z):
    """Operator applying the scaled y/z Laplacian to the trailing index.

    Acting on the flattened ``(ny*nz*3,)`` trailing block of a C-ordered
    ``(nx, ny, nz, 3)`` array, so a mesh-wide application is one matrix
    product ``m.reshape(nx, -1) @ op.T``.  Built via Kronecker products:
    y varies slowest, the vector component fastest.
    """
    k = ny * nz * 3
    op = np.zeros((k, k))
    if scale_y != 0.0:
        op += scale_y * np.kron(neumann_laplacian(ny), np.eye(nz * 3))
    if scale_z != 0.0:
        op += scale_z * np.kron(
            np.eye(ny), np.kron(neumann_laplacian(nz), np.eye(3))
        )
    return op


def _laplacian(m, deltas):
    """6-neighbour vector Laplacian with Neumann boundaries.

    ``m`` has shape (nx, ny, nz, 3); ``deltas`` = (dx, dy, dz).  At the
    boundaries the missing neighbour is mirrored (m[-1] := m[0]), which
    makes the boundary contribution vanish -- the free-spin condition.
    """
    lap = np.zeros_like(m)
    for axis in range(3):
        if m.shape[axis] == 1:
            continue  # no variation along this axis
        d2 = deltas[axis] ** 2
        fwd = np.roll(m, -1, axis=axis)
        bwd = np.roll(m, 1, axis=axis)
        # Neumann BC: replace the wrapped-around neighbours by the edge value.
        head = [slice(None)] * 4
        tail = [slice(None)] * 4
        head[axis] = slice(0, 1)
        tail[axis] = slice(-1, None)
        fwd[tuple(tail)] = m[tuple(tail)]
        bwd[tuple(head)] = m[tuple(head)]
        lap += (fwd - 2.0 * m + bwd) / d2
    return lap


class ExchangeField(FieldTerm):
    """Uniform exchange stiffness field term."""

    def __init__(self, aex=None):
        """``aex`` overrides the material's exchange constant when given."""
        self.aex = aex

    def _aex(self, state):
        return state.material.aex if self.aex is None else self.aex

    def field(self, state, t=0.0):
        mesh = state.mesh
        prefactor = 2.0 * self._aex(state) / (MU0 * state.material.ms)
        return prefactor * _laplacian(state.m, (mesh.dx, mesh.dy, mesh.dz))

    def laplacian_scales(self, state):
        """Per-axis stencil scales ``prefactor / delta**2`` (0 if inert).

        This is the hook :class:`~repro.mm.kernels.LLGWorkspace` uses to
        fold this term into its fused field evaluation.
        """
        mesh = state.mesh
        prefactor = 2.0 * self._aex(state) / (MU0 * state.material.ms)
        return tuple(
            prefactor / delta**2 if n > 1 else 0.0
            for n, delta in zip(mesh.shape, (mesh.dx, mesh.dy, mesh.dz))
        )

    def _accumulate_axis(self, m, out, axis, scale):
        """``out += scale * laplacian_axis(m)`` via first differences.

        Two diff passes give the interior second difference; the Neumann
        boundary rows reduce to the first/last difference plane for free
        (the mirrored neighbour cancels one centre term).
        """
        d_shape = list(m.shape)
        d_shape[axis] -= 1
        (d,) = self._scratch(tuple(d_shape))
        (buf,) = self._scratch(m.shape)
        np.subtract(
            m[_axis_index(axis, slice(1, None))],
            m[_axis_index(axis, slice(None, -1))],
            out=d,
        )
        d *= scale
        mid = _axis_index(axis, slice(1, -1))
        np.subtract(
            d[_axis_index(axis, slice(1, None))],
            d[_axis_index(axis, slice(None, -1))],
            out=buf[mid],
        )
        out[mid] += buf[mid]
        head = _axis_index(axis, slice(0, 1))
        tail = _axis_index(axis, slice(-1, None))
        out[head] += d[head]
        out[tail] -= d[tail]
        return out

    def _trailing_operator(self, shape, scale_y, scale_z):
        """Cached transposed right-multiplication operator for y/z."""
        key = (shape[1], shape[2], scale_y, scale_z)
        cache = getattr(self, "_trailing_cache", None)
        if cache is None:
            cache = {}
            self._trailing_cache = cache
        if key not in cache:
            cache[key] = np.ascontiguousarray(
                trailing_laplacian_operator(
                    shape[1], shape[2], scale_y, scale_z
                ).T
            )
        return cache[key]

    def add_field_into(self, state, out, t=0.0):
        """Fused Laplacian accumulation (no roll copies).

        The x stencil runs as two contiguous first-difference passes;
        the y/z stencils collapse into one cached dense operator applied
        as a single BLAS matrix product when the trailing block is small
        (``ny*nz*3 <= TRAILING_FUSE_LIMIT``), falling back to sliced
        differences otherwise.
        """
        m = state.m
        if not (m.flags.c_contiguous and out.flags.c_contiguous):
            out += self.field(state, t)
            return out
        scales = self.laplacian_scales(state)
        if scales[0] != 0.0:
            self._accumulate_axis(m, out, 0, scales[0])
        if scales[1] == 0.0 and scales[2] == 0.0:
            return out
        k = m.shape[1] * m.shape[2] * 3
        if k <= TRAILING_FUSE_LIMIT:
            op = self._trailing_operator(m.shape, scales[1], scales[2])
            (buf,) = self._scratch((m.shape[0], k))
            np.matmul(m.reshape(m.shape[0], k), op, out=buf)
            flat = out.reshape(m.shape[0], k)
            flat += buf
        else:
            for axis in (1, 2):
                if scales[axis] != 0.0:
                    self._accumulate_axis(m, out, axis, scales[axis])
        return out

    def max_stable_dt(self, state, safety=0.1):
        """Heuristic explicit-integration time-step limit [s].

        The stiffest mode is the checkerboard mode at the Nyquist
        wavenumber of the finest axis; its precession period bounds the
        stable step of an explicit Runge-Kutta scheme.
        """
        mesh = state.mesh
        deltas = [d for d, n in zip((mesh.dx, mesh.dy, mesh.dz), mesh.shape) if n > 1]
        if not deltas:
            return np.inf
        d_min = min(deltas)
        k_max = np.pi / d_min
        lam = 2.0 * self._aex(state) / (MU0 * state.material.ms**2)
        omega_max = state.material.gamma * MU0 * state.material.ms * lam * k_max**2
        # Factor len(deltas): each active axis contributes its own Nyquist mode.
        omega_max *= len(deltas)
        return safety * 2.0 * np.pi / omega_max
