"""First-order uniaxial magnetocrystalline anisotropy.

H_ani = (2*Ku / (mu0*Ms)) * (m . u) * u

for easy axis ``u``; this is the PMA term that keeps the paper's
Fe60Co20B20 film perpendicular without external bias.
"""

import numpy as np

from repro.constants import MU0
from repro.errors import FieldError
from repro.mm.fields.base import FieldTerm


class UniaxialAnisotropyField(FieldTerm):
    """Uniaxial anisotropy with easy axis ``axis`` and constant ``ku``.

    Both default to the material's values.
    """

    def __init__(self, ku=None, axis=None):
        self.ku = ku
        if axis is not None:
            axis = np.asarray(axis, dtype=float)
            norm = np.linalg.norm(axis)
            if norm == 0:
                raise FieldError("anisotropy axis must be non-zero")
            axis = axis / norm
        self.axis = axis

    def _params(self, state):
        ku = state.material.ku if self.ku is None else self.ku
        axis = (
            np.asarray(state.material.anisotropy_axis)
            if self.axis is None
            else self.axis
        )
        return ku, axis

    def field(self, state, t=0.0):
        ku, axis = self._params(state)
        prefactor = 2.0 * ku / (MU0 * state.material.ms)
        projection = np.einsum("...i,i->...", state.m, axis)
        return prefactor * projection[..., np.newaxis] * axis

    def energy(self, state, t=0.0):
        """E = Ku * sum (1 - (m.u)^2) * V_cell  (zero when aligned)."""
        ku, axis = self._params(state)
        projection = np.einsum("...i,i->...", state.m, axis)
        density = ku * (1.0 - projection**2)
        return float(density.sum() * state.mesh.cell_volume)
