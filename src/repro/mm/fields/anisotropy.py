"""First-order uniaxial magnetocrystalline anisotropy.

H_ani = (2*Ku / (mu0*Ms)) * (m . u) * u

for easy axis ``u``; this is the PMA term that keeps the paper's
Fe60Co20B20 film perpendicular without external bias.
"""

import numpy as np

from repro.constants import MU0
from repro.errors import FieldError
from repro.mm.fields.base import FieldTerm


class UniaxialAnisotropyField(FieldTerm):
    """Uniaxial anisotropy with easy axis ``axis`` and constant ``ku``.

    Both default to the material's values.
    """

    def __init__(self, ku=None, axis=None):
        self.ku = ku
        if axis is not None:
            axis = np.asarray(axis, dtype=float)
            norm = np.linalg.norm(axis)
            if norm == 0:
                raise FieldError("anisotropy axis must be non-zero")
            axis = axis / norm
        self.axis = axis

    def _params(self, state):
        ku = state.material.ku if self.ku is None else self.ku
        axis = (
            np.asarray(state.material.anisotropy_axis)
            if self.axis is None
            else self.axis
        )
        return ku, axis

    def field(self, state, t=0.0):
        ku, axis = self._params(state)
        prefactor = 2.0 * ku / (MU0 * state.material.ms)
        projection = np.einsum("...i,i->...", state.m, axis)
        return prefactor * projection[..., np.newaxis] * axis

    def add_field_into(self, state, out, t=0.0):
        """In-place accumulation: projection and outer product via views."""
        ku, axis = self._params(state)
        prefactor = 2.0 * ku / (MU0 * state.material.ms)
        m = state.m
        projection, scaled = self._scratch(m.shape[:-1], n=2)
        np.multiply(m[..., 0], axis[0], out=projection)
        for comp in (1, 2):
            if axis[comp] != 0.0:
                np.multiply(m[..., comp], axis[comp], out=scaled)
                projection += scaled
        for comp in range(3):
            coefficient = prefactor * axis[comp]
            if coefficient != 0.0:
                np.multiply(projection, coefficient, out=scaled)
                out[..., comp] += scaled
        return out

    def cell_linear_operator(self, state):
        """``(2*Ku/(mu0*Ms)) * u u^T`` -- the per-cell linear form of
        ``H_ani = prefactor * (m . u) * u`` (enables workspace fusion)."""
        ku, axis = self._params(state)
        if np.ndim(ku) != 0:
            return None  # per-cell Ku cannot merge into one matrix
        prefactor = 2.0 * float(ku) / (MU0 * state.material.ms)
        return prefactor * np.outer(axis, axis)

    def energy(self, state, t=0.0):
        """E = Ku * sum (1 - (m.u)^2) * V_cell  (zero when aligned)."""
        ku, axis = self._params(state)
        projection = np.einsum("...i,i->...", state.m, axis)
        density = ku * (1.0 - projection**2)
        return float(density.sum() * state.mesh.cell_volume)
