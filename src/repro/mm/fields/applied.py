"""Time-dependent applied (excitation) fields.

An :class:`AppliedField` applies a waveform-modulated local field inside
a masked region of the mesh -- the numerical model of an ME cell or
microwave antenna transducer.  Waveform objects live in
:mod:`repro.mm.sources`; anything callable ``waveform(t) -> float``
works.
"""

import numpy as np

from repro.errors import FieldError
from repro.mm.fields.base import FieldTerm


class AppliedField(FieldTerm):
    """Localised time-varying field h(r, t) = mask(r) * amplitude(t) * u.

    Parameters
    ----------
    mask:
        Boolean array of mesh shape selecting the excited cells (e.g.
        from :meth:`repro.mm.mesh.Mesh.region_mask`).
    direction:
        Unit vector of the applied field (normalised automatically).
    waveform:
        Callable ``t -> float`` giving the instantaneous amplitude [A/m].
    """

    energy_prefactor = 1.0  # linear (Zeeman-like) term
    time_dependent = True

    def __init__(self, mask, direction, waveform):
        self.mask = np.asarray(mask, dtype=bool)
        if not self.mask.any():
            raise FieldError("excitation mask selects no cells")
        direction = np.asarray(direction, dtype=float)
        norm = np.linalg.norm(direction)
        if norm == 0:
            raise FieldError("excitation direction must be non-zero")
        self.direction = direction / norm
        if not callable(waveform):
            raise FieldError("waveform must be callable t -> amplitude")
        self.waveform = waveform

    def field(self, state, t=0.0):
        self._check_mask(state)
        h = np.zeros(state.mesh.shape + (3,), dtype=float)
        amplitude = float(self.waveform(t))
        if amplitude != 0.0:
            h[self.mask] = amplitude * self.direction
        return h

    def _check_mask(self, state):
        if self.mask.shape != state.mesh.shape:
            raise FieldError(
                f"mask shape {self.mask.shape} does not match mesh "
                f"{state.mesh.shape}"
            )

    def add_field_into(self, state, out, t=0.0):
        """Accumulate the excitation only over the masked cells.

        The flat cell indices of the mask are resolved once and cached,
        so each call touches ``n_masked * 3`` elements instead of
        allocating and summing a full-mesh array.
        """
        self._check_mask(state)
        amplitude = float(self.waveform(t))
        if amplitude == 0.0:
            return out
        if not out.flags.c_contiguous:
            # reshape would copy and the accumulation would be lost
            out[self.mask] += amplitude * self.direction
            return out
        indices = getattr(self, "_mask_indices", None)
        if indices is None:
            indices = np.flatnonzero(self.mask.reshape(-1))
            self._mask_indices = indices
        flat = out.reshape(-1, 3)
        for comp in range(3):
            component = amplitude * self.direction[comp]
            if component != 0.0:
                flat[indices, comp] += component
        return out
