"""Effective-field terms for the LLG equation.

Each term implements the :class:`~repro.mm.fields.base.FieldTerm`
interface: ``field(state, t)`` returns its contribution to H_eff [A/m]
and ``energy(state, t)`` the corresponding total energy [J].
"""

from repro.mm.fields.base import FieldTerm
from repro.mm.fields.exchange import ExchangeField
from repro.mm.fields.anisotropy import UniaxialAnisotropyField
from repro.mm.fields.zeeman import ZeemanField
from repro.mm.fields.demag import DemagField, ThinFilmDemagField
from repro.mm.fields.applied import AppliedField

__all__ = [
    "FieldTerm",
    "ExchangeField",
    "UniaxialAnisotropyField",
    "ZeemanField",
    "DemagField",
    "ThinFilmDemagField",
    "AppliedField",
]
