"""Newell demagnetisation tensor for rectangular cells.

Implements the analytic cell-to-cell demagnetisation tensor of
Newell, Williams and Dunlop, *A generalization of the demagnetizing
tensor for nonuniform magnetization*, JGR 98, 9551 (1993) -- the same
formulation OOMMF's ``Oxs_Demag`` evolves.  The tensor between two equal
cuboidal cells displaced by ``(X, Y, Z)`` is a triple second difference
of the auxiliary functions ``f`` (diagonal components) and ``g``
(off-diagonal components):

    N_ab(X, Y, Z) = -1/(4*pi*dx*dy*dz) *
        sum_{i,j,k in {-1,0,1}} c_i c_j c_k  F_ab(X+i*dx, Y+j*dy, Z+k*dz)

with stencil weights ``c = (1, -2, 1)``.  All functions are vectorised
over displacement grids so the full tensor for a mesh is assembled in a
handful of NumPy operations.
"""

import numpy as np

_STENCIL = ((-1, 1.0), (0, -2.0), (1, 1.0))


def _safe_divide(num, den):
    """num/den with 0 where den == 0 (removable singularities)."""
    out = np.zeros(np.broadcast(num, den).shape, dtype=float)
    np.divide(num, den, out=out, where=(den != 0))
    return out


def newell_f(x, y, z):
    """Newell's f(x, y, z), the Nxx auxiliary potential (eq. 27).

    Even in each of its arguments; removable singularities are mapped
    to zero contributions.
    """
    x = np.abs(np.asarray(x, dtype=float))
    y = np.abs(np.asarray(y, dtype=float))
    z = np.abs(np.asarray(z, dtype=float))
    r = np.sqrt(x * x + y * y + z * z)

    term1 = 0.5 * y * (z * z - x * x) * np.arcsinh(
        _safe_divide(y, np.sqrt(x * x + z * z))
    )
    term2 = 0.5 * z * (y * y - x * x) * np.arcsinh(
        _safe_divide(z, np.sqrt(x * x + y * y))
    )
    term3 = -x * y * z * np.arctan(_safe_divide(y * z, x * r))
    term4 = (1.0 / 6.0) * (2.0 * x * x - y * y - z * z) * r
    return term1 + term2 + term3 + term4


def newell_g(x, y, z):
    """Newell's g(x, y, z), the Nxy auxiliary potential (eq. 32).

    Odd in x and y, even in z.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    z = np.abs(np.asarray(z, dtype=float))
    r = np.sqrt(x * x + y * y + z * z)

    term1 = x * y * z * np.arcsinh(_safe_divide(z, np.sqrt(x * x + y * y)))
    term2 = (y / 6.0) * (3.0 * z * z - y * y) * np.arcsinh(
        _safe_divide(x, np.sqrt(y * y + z * z))
    )
    term3 = (x / 6.0) * (3.0 * z * z - x * x) * np.arcsinh(
        _safe_divide(y, np.sqrt(x * x + z * z))
    )
    term4 = -(z**3 / 6.0) * np.arctan(_safe_divide(x * y, z * r))
    term5 = -(z * y * y / 2.0) * np.arctan(_safe_divide(x * z, y * r))
    term6 = -(z * x * x / 2.0) * np.arctan(_safe_divide(y * z, x * r))
    term7 = -x * y * r / 3.0
    return term1 + term2 + term3 + term4 + term5 + term6 + term7


def _second_difference(func, x, y, z, dx, dy, dz):
    """Triple (1, -2, 1) second difference of ``func`` at displacements."""
    total = np.zeros(np.broadcast(x, y, z).shape, dtype=float)
    for ix, cx in _STENCIL:
        for iy, cy in _STENCIL:
            for iz, cz in _STENCIL:
                total += cx * cy * cz * func(x + ix * dx, y + iy * dy, z + iz * dz)
    return total


def nxx(x, y, z, dx, dy, dz):
    """Diagonal tensor component N_xx for displacement (x, y, z)."""
    return -_second_difference(newell_f, x, y, z, dx, dy, dz) / (
        4.0 * np.pi * dx * dy * dz
    )


def nyy(x, y, z, dx, dy, dz):
    """N_yy via axis permutation of N_xx."""
    return nxx(y, x, z, dy, dx, dz)


def nzz(x, y, z, dx, dy, dz):
    """N_zz via axis permutation of N_xx."""
    return nxx(z, y, x, dz, dy, dx)


def nxy(x, y, z, dx, dy, dz):
    """Off-diagonal tensor component N_xy for displacement (x, y, z)."""
    return -_second_difference(newell_g, x, y, z, dx, dy, dz) / (
        4.0 * np.pi * dx * dy * dz
    )


def nxz(x, y, z, dx, dy, dz):
    """N_xz via axis permutation of N_xy."""
    return nxy(x, z, y, dx, dz, dy)


def nyz(x, y, z, dx, dy, dz):
    """N_yz via axis permutation of N_xy."""
    return nxy(y, z, x, dy, dz, dx)


def demag_tensor(mesh, padded_shape=None):
    """Assemble the 6 unique tensor components on the padded FFT grid.

    Returns a dict with keys ``"xx", "yy", "zz", "xy", "xz", "yz"``; each
    value is an array of shape ``padded_shape`` (default ``2*n`` per axis,
    clamped to 1 where ``n == 1``) storing N(delta) at index
    ``delta mod padded_shape`` so a circular convolution reproduces the
    aperiodic one.
    """
    if padded_shape is None:
        padded_shape = tuple(2 * n if n > 1 else 1 for n in mesh.shape)

    deltas = []
    for axis in range(3):
        n = mesh.shape[axis]
        p = padded_shape[axis]
        d = (mesh.dx, mesh.dy, mesh.dz)[axis]
        # Displacement indices stored FFT-style: 0, 1, ..., -2, -1.
        idx = np.arange(p)
        idx = np.where(idx < p - p // 2, idx, idx - p)
        # Displacements beyond +-(n-1) are never used by the valid block
        # of the convolution; their values are irrelevant but harmless.
        deltas.append(idx * d)

    gx = deltas[0].reshape(-1, 1, 1)
    gy = deltas[1].reshape(1, -1, 1)
    gz = deltas[2].reshape(1, 1, -1)

    cell = (mesh.dx, mesh.dy, mesh.dz)
    return {
        "xx": nxx(gx, gy, gz, *cell),
        "yy": nyy(gx, gy, gz, *cell),
        "zz": nzz(gx, gy, gz, *cell),
        "xy": nxy(gx, gy, gz, *cell),
        "xz": nxz(gx, gy, gz, *cell),
        "yz": nyz(gx, gy, gz, *cell),
    }


def self_demag_factors(dx, dy, dz):
    """Self-demagnetisation factors (N_xx, N_yy, N_zz) of a single cell.

    They satisfy N_xx + N_yy + N_zz = 1; a cube gives (1/3, 1/3, 1/3).
    """
    return (
        float(nxx(0.0, 0.0, 0.0, dx, dy, dz)),
        float(nyy(0.0, 0.0, 0.0, dx, dy, dz)),
        float(nzz(0.0, 0.0, 0.0, dx, dy, dz)),
    )
