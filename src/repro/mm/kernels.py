"""Zero-allocation kernel layer for the LLG hot path.

Profiling the micromagnetic solver shows the wall-clock is dominated by
the NumPy allocator, not by FLOPs: every ``effective_field`` call
allocates a fresh ``(nx, ny, nz, 3)`` array per term, and each RK stage
allocates several more full-mesh temporaries.  This module provides the
in-place counterpart:

* :class:`LLGWorkspace` preallocates every scratch array the LLG
  right-hand side and the Runge-Kutta schemes need for a given mesh, so
  steady-state stepping performs no heap allocation at all;
* :func:`cross_into` / :func:`llg_rhs_from_field_into` compute the two
  LLG cross products and the damping combination directly into caller
  buffers, replacing three ``np.cross``/arithmetic temporaries;
* field terms contribute through ``FieldTerm.add_field_into(state, out,
  t)`` (see :mod:`repro.mm.fields.base`), accumulating into the shared
  field buffer instead of returning fresh arrays.

The reference allocating API (:func:`repro.mm.llg.llg_rhs`,
``FieldTerm.field``) is unchanged and remains the ground truth the
equivalence tests compare against.
"""

import numpy as np

from repro.backends import get_backend
from repro.constants import MU0
from repro.errors import SimulationError
from repro.mm.fields.exchange import (
    TRAILING_FUSE_LIMIT,
    trailing_laplacian_operator,
)
from repro.mm.integrators import RKScratch

_CROSS_INDICES = ((0, 1, 2), (1, 2, 0), (2, 0, 1))


def cross_into(a, b, out, tmp):
    """``out[...] = a x b`` over the last axis, allocation-free.

    ``tmp`` is a scalar scratch array of shape ``a.shape[:-1]``.  ``out``
    must not alias ``a`` or ``b``.
    """
    a0, a1, a2 = a[..., 0], a[..., 1], a[..., 2]
    b0, b1, b2 = b[..., 0], b[..., 1], b[..., 2]
    for i, (aj, ak), (bj, bk) in (
        (0, (a1, a2), (b1, b2)),
        (1, (a2, a0), (b2, b0)),
        (2, (a0, a1), (b0, b1)),
    ):
        component = out[..., i]
        np.multiply(aj, bk, out=component)
        np.multiply(ak, bj, out=tmp)
        component -= tmp
    return out


def damping_prefactors(material, alpha=None):
    """``(alpha, prefactor)`` of the Landau-Lifshitz form, broadcastable.

    ``alpha`` may override the material damping with a scalar or a
    per-cell array of mesh shape (returned expanded to ``(..., 1)`` so it
    broadcasts over the vector components, exactly as
    :func:`repro.mm.llg.llg_rhs_from_field` does).
    """
    if alpha is None:
        alpha = float(material.alpha)
    else:
        alpha = np.asarray(alpha, dtype=float)
        if alpha.ndim > 0:
            alpha = alpha[..., np.newaxis]
        else:
            alpha = float(alpha)
    prefactor = -material.gamma * MU0 / (1.0 + alpha * alpha)
    return alpha, prefactor


def llg_rhs_from_field_into(m, h_eff, out, alpha, prefactor, mxh, tmp):
    """Fused LLG right-hand side written into ``out``.

    Computes ``prefactor * (m x H + alpha * m x (m x H))`` without
    allocating: ``mxh`` is a vector scratch (shape of ``m``), ``tmp`` a
    scalar scratch (mesh shape), and ``alpha``/``prefactor`` come from
    :func:`damping_prefactors`.
    """
    cross_into(m, h_eff, mxh, tmp)
    cross_into(m, mxh, out, tmp)
    if isinstance(alpha, float):
        out *= alpha
    else:
        np.multiply(out, alpha, out=out)
    out += mxh
    if isinstance(prefactor, float):
        out *= prefactor
    else:
        np.multiply(out, prefactor, out=out)
    return out


class LLGWorkspace:
    """Preallocated scratch arrays for the LLG hot path of one mesh.

    One workspace binds a mesh shape, a term list and the damping
    parameters; it owns

    * ``h`` -- the shared effective-field accumulator,
    * ``mxh`` + a scalar scratch for the fused cross products,
    * an :class:`~repro.mm.integrators.RKScratch` (``.rk``) with the six
      slope buffers and stage/output buffers the in-place Runge-Kutta
      kernels use.

    The workspace-driven right-hand side :meth:`rhs_into` is the drop-in
    replacement for the allocating closure the simulation driver used to
    build; it rebinds ``state.m`` to the stage buffer (no copy) so
    time-dependent terms see the staged magnetisation.
    """

    def __init__(self, mesh, material, terms=(), alpha=None, backend=None):
        self.mesh = mesh
        self.terms = list(terms)
        self.backend = backend if backend is not None else get_backend()
        dtype = self.backend.real_dtype
        shape = mesh.shape + (3,)
        size = int(np.prod(shape))
        # Every scratch buffer follows the backend dtype; ufuncs and
        # GEMMs writing into them downcast in place (same-kind casting),
        # so a float32 workspace steps in float32 even when the caller's
        # state array is float64.  The default backend keeps float64.
        self.h = np.empty(shape, dtype=dtype)
        # m x H and m x (m x H) live as rows of one (2, size) matrix so
        # the damping combination pref * (row0 + alpha * row1) collapses
        # into a single BLAS vector-matrix product (scalar alpha only).
        self._cross_pair = np.empty((2, size), dtype=dtype)
        self.mxh = self._cross_pair[0].reshape(shape)
        self.mxmxh = self._cross_pair[1].reshape(shape)
        self.tmp_cell = np.empty(mesh.shape, dtype=dtype)
        self.rk = RKScratch(shape, dtype=dtype)
        # The hot path cycles over a handful of fixed arrays (this
        # workspace's buffers, the integrator's stage/slope buffers, the
        # caller's state array), so component views and flat views are
        # cached by array identity instead of being recreated per call.
        self._view_cache = {}
        self._mxh_views = tuple(self.mxh[..., i] for i in range(3))
        self._mxmxh_views = tuple(self.mxmxh[..., i] for i in range(3))
        self.configure(material, alpha=alpha)

    def configure(self, material, alpha=None):
        """(Re)bind the material/damping constants; returns self.

        Cheap for scalar damping; for per-cell ``alpha`` the broadcast
        prefactor array is recomputed once here rather than per step.
        """
        if alpha is not None:
            alpha = np.asarray(alpha, dtype=float)
            if alpha.ndim > 0 and alpha.shape != self.mesh.shape:
                raise SimulationError(
                    f"alpha shape {alpha.shape} != mesh {self.mesh.shape}"
                )
        self.material = material
        self.alpha, self.prefactor = damping_prefactors(material, alpha)
        if isinstance(self.alpha, float):
            self._damping_coeffs = self.backend.cast(
                np.array([self.prefactor, self.prefactor * self.alpha])
            )
        else:
            self._damping_coeffs = None
        self._plan = None
        self._plan_material = None
        return self

    # ------------------------------------------------------------------
    # Fused field-evaluation plan
    # ------------------------------------------------------------------
    def _build_plan(self, state):
        """Compile the term list into a fused evaluation plan.

        Splits the terms three ways, keyed on the material identity (the
        plan is rebuilt when the material object changes):

        * cell-linear terms (``cell_linear_operator``) sum into one
          ``3x3`` matrix,
        * the first exchange-like term (``laplacian_scales``) contributes
          its x stencil as a contiguous diff kernel plus, when the
          trailing block is small enough, a dense y/z operator that is
          merged with the linear matrix into a single right-multiplied
          ``(ny*nz*3)^2`` matrix -- the whole local physics then costs
          two BLAS products per evaluation,
        * everything else stays on the generic ``add_field_into`` path.
        """
        nx, ny, nz = self.mesh.shape
        k = ny * nz * 3
        linear = None
        exchange = None
        general = []
        for term in self.terms:
            operator = term.cell_linear_operator(state)
            if operator is not None:
                linear = operator if linear is None else linear + operator
                continue
            if exchange is None and hasattr(term, "laplacian_scales"):
                exchange = term
                continue
            general.append(term)

        x_scale = 0.0
        scale_y = scale_z = 0.0
        if exchange is not None:
            x_scale, scale_y, scale_z = exchange.laplacian_scales(state)
            if (scale_y or scale_z) and k > TRAILING_FUSE_LIMIT:
                # Trailing block too wide for the dense fusion: run the
                # whole exchange term through its own kernel instead.
                general.insert(0, exchange)
                x_scale = scale_y = scale_z = 0.0

        dtype = self.backend.real_dtype
        right = None
        if scale_y or scale_z:
            right = trailing_laplacian_operator(ny, nz, scale_y, scale_z)
            if linear is not None:
                right += np.kron(np.eye(ny * nz), linear)
                linear = None
            # Built in float64, stored (contiguous) in the backend
            # dtype: the fused operator is a per-step GEMM operand.
            right = np.ascontiguousarray(self.backend.cast(right.T))
            self._right_buf = np.empty((nx, k), dtype=dtype)
        linear_t = None
        if linear is not None:
            linear_t = np.ascontiguousarray(self.backend.cast(linear.T))
            self._right_buf = np.empty((nx * ny * nz, 3), dtype=dtype)
        if x_scale != 0.0:
            self._diff_buf = np.empty((nx - 1, ny, nz, 3), dtype=dtype)

        self._plan = (x_scale, right, linear_t, tuple(general))
        self._plan_material = state.material
        return self._plan

    def effective_field_into(self, state, t=0.0, out=None):
        """Accumulate every term into ``out`` (default: the ``h`` buffer)."""
        out = self.h if out is None else out
        m = state.m
        if not (m.flags.c_contiguous and out.flags.c_contiguous):
            out.fill(0.0)
            for term in self.terms:
                term.add_field_into(state, out, t)
            return out
        if self._plan is None or self._plan_material is not state.material:
            self._build_plan(state)
        x_scale, right, linear_t, general = self._plan
        written = False
        if x_scale != 0.0:
            # x exchange: two contiguous first-difference passes writing
            # the full buffer (interior second difference + the free
            # Neumann boundary planes), no zero fill needed.
            d = self._diff_buf
            np.subtract(m[1:], m[:-1], out=d)
            np.subtract(d[1:], d[:-1], out=out[1:-1])
            out[1:-1] *= x_scale
            np.multiply(d[0], x_scale, out=out[0])
            np.multiply(d[-1], -x_scale, out=out[-1])
            written = True
        if right is not None:
            m2 = m.reshape(self.mesh.shape[0], -1)
            flat = out.reshape(self.mesh.shape[0], -1)
            if written:
                np.matmul(m2, right, out=self._right_buf)
                flat += self._right_buf
            else:
                np.matmul(m2, right, out=flat)
                written = True
        elif linear_t is not None:
            m2 = m.reshape(-1, 3)
            flat = out.reshape(-1, 3)
            if written:
                np.matmul(m2, linear_t, out=self._right_buf)
                flat += self._right_buf
            else:
                np.matmul(m2, linear_t, out=flat)
                written = True
        if not written:
            out.fill(0.0)
        for term in general:
            term.add_field_into(state, out, t)
        return out

    def _cached_views(self, array):
        """``(comp0, comp1, comp2, flat)`` views of ``array``, id-cached.

        The cache pins the array (keeping ``id`` stable) and is cleared
        when it outgrows the handful of hot-path buffers it is meant for.
        """
        key = id(array)
        entry = self._view_cache.get(key)
        if entry is None:
            if len(self._view_cache) > 32:
                self._view_cache.clear()
            flat = array.reshape(-1) if array.flags.c_contiguous else None
            entry = (
                array[..., 0],
                array[..., 1],
                array[..., 2],
                flat,
                array,  # pin: keeps id(array) valid for the cache's life
            )
            self._view_cache[key] = entry
        return entry

    def rhs_from_field_into(self, m, h_eff, out):
        """Fused dm/dt for ``m`` in ``h_eff``, written into ``out``."""
        if self._damping_coeffs is not None and out.flags.c_contiguous:
            m0, m1, m2, _, _ = self._cached_views(m)
            h0, h1, h2, _, _ = self._cached_views(h_eff)
            x0, x1, x2 = self._mxh_views
            y0, y1, y2 = self._mxmxh_views
            tmp = self.tmp_cell
            # m x H into the pair's first row ...
            np.multiply(m1, h2, out=x0)
            np.multiply(m2, h1, out=tmp)
            x0 -= tmp
            np.multiply(m2, h0, out=x1)
            np.multiply(m0, h2, out=tmp)
            x1 -= tmp
            np.multiply(m0, h1, out=x2)
            np.multiply(m1, h0, out=tmp)
            x2 -= tmp
            # ... m x (m x H) into the second ...
            np.multiply(m1, x2, out=y0)
            np.multiply(m2, x1, out=tmp)
            y0 -= tmp
            np.multiply(m2, x0, out=y1)
            np.multiply(m0, x2, out=tmp)
            y1 -= tmp
            np.multiply(m0, x1, out=y2)
            np.multiply(m1, x0, out=tmp)
            y2 -= tmp
            # ... and one BLAS product applies damping and prefactor.
            _, _, _, out_flat, _ = self._cached_views(out)
            np.matmul(self._damping_coeffs, self._cross_pair, out=out_flat)
            return out
        return llg_rhs_from_field_into(
            m, h_eff, out, self.alpha, self.prefactor, self.mxh, self.tmp_cell
        )

    def rhs_into(self, state, t, m, out):
        """Full dm/dt at ``(t, m)`` written into ``out``.

        Rebinds ``state.m = m`` (reference only) so field terms evaluate
        at the staged magnetisation, matching the allocating driver.
        """
        state.m = m
        self.effective_field_into(state, t)
        return self.rhs_from_field_into(m, self.h, out)

    def bound_rhs(self, state):
        """``rhs_into(t, y, out)`` closure over ``state`` for the integrators."""

        def rhs_into(t, y, out):
            return self.rhs_into(state, t, y, out)

        return rhs_into
