"""Scalar time-series logging for simulations (ODT-compatible).

OOMMF's drivers emit a data-table row per step (time, energies, average
magnetisation); :class:`EnergyLogger` reproduces that behaviour for our
:class:`~repro.mm.sim.Simulation` so runs can be archived as ``.odt``
files and compared against real OOMMF output column-for-column.
"""

from repro.mm.llg import max_torque
from repro.oommf.odt import OdtTable


class EnergyLogger:
    """Records (t, <m>, per-term energies, total, max torque) each step.

    Attach via ``sim.probes.append(EnergyLogger(sim, stride=10))`` --
    it implements the probe ``record`` interface.  Retrieve the data
    with :meth:`table` (an :class:`~repro.oommf.odt.OdtTable`).
    """

    def __init__(self, sim, stride=1):
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride!r}")
        self.sim = sim
        self.stride = int(stride)
        self._count = 0
        self._term_names = list(self._energies().keys())
        self._rows = []

    def _energies(self):
        return self.sim.energies()

    # -- probe interface -------------------------------------------------
    def record(self, state, t):
        self._count += 1
        if (self._count - 1) % self.stride:
            return
        average = state.average()
        energies = self._energies()
        row = [float(t)]
        row.extend(float(c) for c in average)
        row.extend(float(energies[name]) for name in self._term_names)
        row.append(float(sum(energies.values())))
        row.append(max_torque(state, self.sim.terms, t))
        self._rows.append(row)

    def sample(self, state):  # probe-protocol compatibility
        return state.average()

    def clear(self):
        """Discard all recorded rows."""
        self._rows.clear()
        self._count = 0

    def __len__(self):
        return len(self._rows)

    # -- output ----------------------------------------------------------
    def columns(self):
        """Column names of the logged table."""
        return (
            ["Time", "mx", "my", "mz"]
            + [f"E {name}" for name in self._term_names]
            + ["E total", "Max torque"]
        )

    def table(self, title="repro energy log"):
        """The log as an :class:`~repro.oommf.odt.OdtTable`."""
        units = (
            ["s", "", "", ""]
            + ["J"] * len(self._term_names)
            + ["J", "A/m"]
        )
        table = OdtTable(self.columns(), units=units, title=title)
        for row in self._rows:
            table.add_row(row)
        return table
