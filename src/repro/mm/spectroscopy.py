"""Numerical dispersion spectroscopy on the LLG solver.

The standard micromagnetic technique for measuring omega(k): excite a
broadband pulse at one end of a waveguide, record the transverse
magnetisation m_x(x, t) over the whole mesh, and 2-D Fourier transform;
the spectral weight concentrates on the dispersion curve.  This closes
the loop between the analytic relations in :mod:`repro.physics` (which
the gate layout trusts) and the solver (which represents the device).

Typical use::

    result = measure_dispersion(material=FECOB_PMA, length=2e-6,
                                cell=4e-9, duration=2e-9, dt=0.1e-12)
    k, f = extract_branch(result)
    # compare f against ExchangeDispersion(material, thickness).frequency(k)
"""

import numpy as np

from repro.errors import SimulationError
from repro.mm.fields.applied import AppliedField
from repro.mm.fields.anisotropy import UniaxialAnisotropyField
from repro.mm.fields.demag import ThinFilmDemagField
from repro.mm.fields.exchange import ExchangeField
from repro.mm.mesh import Mesh
from repro.mm.sim import Simulation
from repro.mm.sources import GaussianPulseWaveform
from repro.mm.state import State


def record_space_time(sim, component=0, stride=1):
    """Attach a recorder capturing m_component(x, t) during ``sim.run``.

    Returns a dict the caller reads after the run: ``frames`` (list of
    1-D arrays along x) and ``times``.  Works on 1-D (nx, 1, 1) meshes.
    """
    record = {"frames": [], "times": [], "_count": 0}

    class _Recorder:
        def record(self, state, t):
            record["_count"] += 1
            if (record["_count"] - 1) % stride:
                return
            record["frames"].append(
                np.array(state.m[:, 0, 0, component], dtype=float)
            )
            record["times"].append(float(t))

        def sample(self, state):  # probe interface compatibility
            return np.zeros(3)

    sim.probes.append(_Recorder())
    return record


def space_time_spectrum(frames, times, cell):
    """2-D FFT |m(k, f)| of a space-time magnetisation record.

    Parameters
    ----------
    frames:
        Sequence of 1-D arrays m_x(x) at successive times.
    times:
        Matching sample times [s] (must be uniform).
    cell:
        Spatial sampling period [m].

    Returns
    -------
    dict with ``k`` (rad/m, >= 0), ``f`` (Hz, >= 0) and ``amplitude``
    (2-D array indexed [k, f]).
    """
    frames = np.asarray(frames, dtype=float)
    times = np.asarray(times, dtype=float)
    if frames.ndim != 2 or len(times) != frames.shape[0]:
        raise SimulationError(
            f"frames {frames.shape} and times {times.shape} inconsistent"
        )
    if len(times) < 8:
        raise SimulationError("need at least 8 time samples")
    dt = times[1] - times[0]
    if dt <= 0 or not np.allclose(np.diff(times), dt, rtol=1e-6, atol=0.0):
        raise SimulationError("time samples must be uniform")

    n_t, n_x = frames.shape
    window_t = np.hanning(n_t)[:, np.newaxis]
    window_x = np.hanning(n_x)[np.newaxis, :]
    spectrum = np.fft.fft2(frames * window_t * window_x)
    # Keep f >= 0 half; fold k to >= 0 (the +k and -k branches are
    # mirror images for a symmetric excitation).
    spectrum = spectrum[: n_t // 2 + 1, :]
    amplitude = np.abs(spectrum)
    k_axis_full = 2.0 * np.pi * np.fft.fftfreq(n_x, cell)
    positive = k_axis_full >= 0
    folded = amplitude[:, positive].copy()
    negative_map = (-k_axis_full[~positive]).argsort()
    neg_part = amplitude[:, ~positive][:, negative_map]
    # Align: positive axis sorted ascending.
    order = k_axis_full[positive].argsort()
    folded = folded[:, order]
    k_axis = k_axis_full[positive][order]
    usable = min(folded.shape[1] - 1, neg_part.shape[1])
    folded[:, 1 : 1 + usable] += neg_part[:, :usable]
    f_axis = np.fft.rfftfreq(n_t, dt)[: folded.shape[0]]
    return {"k": k_axis, "f": f_axis, "amplitude": folded.T}


def extract_branch(spectrum, k_min=None, k_max=None, threshold_ratio=0.05):
    """Ridge extraction: dominant frequency at each wavenumber.

    Returns ``(k, f)`` arrays for bins whose peak amplitude exceeds
    ``threshold_ratio`` of the global maximum -- the measured dispersion
    branch.
    """
    k = spectrum["k"]
    f = spectrum["f"]
    amplitude = spectrum["amplitude"]  # [k, f]
    peak = amplitude.max()
    if peak == 0:
        raise SimulationError("empty spectrum: no spin-wave signal")
    ks, fs = [], []
    for i, k_value in enumerate(k):
        if k_min is not None and k_value < k_min:
            continue
        if k_max is not None and k_value > k_max:
            continue
        row = amplitude[i]
        j = int(row.argmax())
        if row[j] < threshold_ratio * peak or j == 0:
            continue
        ks.append(k_value)
        fs.append(f[j])
    if not ks:
        raise SimulationError("no spectral ridge above threshold")
    return np.asarray(ks), np.asarray(fs)


def measure_dispersion(
    material,
    length=1.5e-6,
    cell=4e-9,
    thickness=None,
    duration=1.5e-9,
    dt=0.1e-12,
    stride=20,
    pulse_amplitude=2e4,
    pulse_sigma=4e-12,
    absorber_fraction=0.2,
):
    """End-to-end numerical dispersion measurement on a 1-D film.

    Excites a short Gaussian field pulse near one end (broadband up to
    ~1/(2*pi*sigma) ~ 40 GHz at the default), records m_x(x, t) and
    returns the :func:`space_time_spectrum` dict plus the raw record.
    The far end carries an absorbing damping ramp.

    This is the expensive entry point (a full LLG run); the analysis
    helpers above are cheap and separately testable.
    """
    nx = max(int(round(length / cell)), 16)
    mesh = Mesh(nx, 1, 1, cell, cell, cell if thickness is None else thickness)
    state = State.uniform(mesh, material)

    x = mesh.cell_centers(0)
    total = nx * cell
    absorber = absorber_fraction * total
    ramp = np.clip((x - (total - absorber)) / absorber, 0.0, 1.0)
    alpha_profile = (
        material.alpha + (0.5 - material.alpha) * ramp**2
    ).reshape(nx, 1, 1) * np.ones(mesh.shape)

    sim = Simulation(
        state,
        terms=[
            ExchangeField(),
            UniaxialAnisotropyField(),
            ThinFilmDemagField(),
        ],
        alpha_profile=alpha_profile,
    )
    mask = mesh.region_mask(x=(2 * cell, 6 * cell))
    pulse = GaussianPulseWaveform(pulse_amplitude, t0=5 * pulse_sigma, sigma=pulse_sigma)
    sim.add_term(AppliedField(mask, (1.0, 0.0, 0.0), pulse))

    record = record_space_time(sim, component=0, stride=stride)
    sim.run(duration, dt=dt)
    spectrum = space_time_spectrum(record["frames"], record["times"], cell)
    spectrum["record"] = record
    return spectrum
