"""Magnetisation state on a mesh.

A :class:`State` couples a unit-vector field ``m`` of shape
``(nx, ny, nz, 3)`` to its :class:`~repro.mm.mesh.Mesh` and
:class:`~repro.materials.Material`.  The LLG equation preserves ``|m|=1``
exactly; numerical integration drifts, so :meth:`normalize` is applied
periodically by the simulation driver.
"""

import numpy as np

from repro.errors import SimulationError


class State:
    """Unit magnetisation field plus its mesh and material."""

    def __init__(self, mesh, material, m=None):
        self.mesh = mesh
        self.material = material
        if m is None:
            m = np.zeros(mesh.shape + (3,), dtype=float)
            m[..., 2] = 1.0
        else:
            m = np.array(m, dtype=float, copy=True)
            if m.shape != mesh.shape + (3,):
                raise SimulationError(
                    f"m has shape {m.shape}, expected {mesh.shape + (3,)}"
                )
        self.m = m

    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, mesh, material, direction=(0.0, 0.0, 1.0)):
        """Uniformly magnetised state along ``direction`` (normalised)."""
        direction = np.asarray(direction, dtype=float)
        norm = np.linalg.norm(direction)
        if norm == 0:
            raise SimulationError("direction must be a non-zero vector")
        m = np.empty(mesh.shape + (3,), dtype=float)
        m[...] = direction / norm
        return cls(mesh, material, m)

    @classmethod
    def random(cls, mesh, material, seed=None):
        """Random unit vectors, uniformly distributed on the sphere."""
        rng = np.random.default_rng(seed)
        v = rng.normal(size=mesh.shape + (3,))
        norms = np.linalg.norm(v, axis=-1, keepdims=True)
        return cls(mesh, material, v / norms)

    # ------------------------------------------------------------------
    def copy(self):
        """Deep copy of the state."""
        return State(self.mesh, self.material, self.m)

    def normalize(self):
        """Rescale every cell's vector back to unit length, in place."""
        norms = np.linalg.norm(self.m, axis=-1, keepdims=True)
        if np.any(norms == 0):
            raise SimulationError("cannot normalise a zero magnetisation vector")
        self.m /= norms
        return self

    def norm_error(self):
        """Maximum deviation of ``|m|`` from 1 over the mesh."""
        norms = np.linalg.norm(self.m, axis=-1)
        return float(np.max(np.abs(norms - 1.0)))

    def average(self, mask=None):
        """Spatially averaged magnetisation ``<m>`` (3-vector).

        ``mask`` optionally restricts the average to a boolean cell
        selection (e.g. a detector region).
        """
        if mask is None:
            return self.m.reshape(-1, 3).mean(axis=0)
        selected = self.m[mask]
        if selected.size == 0:
            raise SimulationError("mask selects no cells")
        return selected.mean(axis=0)

    def magnetisation(self):
        """Full magnetisation field M = Ms * m [A/m]."""
        return self.material.ms * self.m
