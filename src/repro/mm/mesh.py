"""Rectangular finite-difference mesh.

The mesh is a regular grid of ``nx * ny * nz`` cuboidal cells of size
``(dx, dy, dz)``.  Magnetisation fields live on cell centres; array
storage convention throughout the package is ``(nx, ny, nz, 3)``.
"""

from dataclasses import dataclass

import numpy as np

from repro.errors import MeshError


@dataclass(frozen=True)
class Mesh:
    """A regular rectangular mesh of cuboidal cells.

    Parameters
    ----------
    nx, ny, nz:
        Number of cells along each axis (all >= 1).
    dx, dy, dz:
        Cell edge lengths [m] (all > 0).
    origin:
        Coordinates of the *corner* of cell (0, 0, 0) [m]; cell centres
        are offset by half a cell.
    """

    nx: int
    ny: int
    nz: int
    dx: float
    dy: float
    dz: float
    origin: tuple = (0.0, 0.0, 0.0)

    def __post_init__(self):
        for label, n in (("nx", self.nx), ("ny", self.ny), ("nz", self.nz)):
            if not isinstance(n, (int, np.integer)) or n < 1:
                raise MeshError(f"{label} must be a positive integer, got {n!r}")
        for label, d in (("dx", self.dx), ("dy", self.dy), ("dz", self.dz)):
            if d <= 0:
                raise MeshError(f"{label} must be positive, got {d!r}")
        if len(self.origin) != 3:
            raise MeshError(f"origin must have 3 components, got {self.origin!r}")
        object.__setattr__(self, "origin", tuple(float(c) for c in self.origin))

    # ------------------------------------------------------------------
    @property
    def shape(self):
        """Grid shape ``(nx, ny, nz)``."""
        return (self.nx, self.ny, self.nz)

    @property
    def n_cells(self):
        """Total number of cells."""
        return self.nx * self.ny * self.nz

    @property
    def cell_volume(self):
        """Volume of one cell [m^3]."""
        return self.dx * self.dy * self.dz

    @property
    def volume(self):
        """Total mesh volume [m^3]."""
        return self.n_cells * self.cell_volume

    @property
    def extent(self):
        """Physical size ``(Lx, Ly, Lz)`` [m]."""
        return (self.nx * self.dx, self.ny * self.dy, self.nz * self.dz)

    # ------------------------------------------------------------------
    def cell_centers(self, axis):
        """Cell-centre coordinates along ``axis`` (0, 1 or 2) [m]."""
        n = self.shape[axis]
        d = (self.dx, self.dy, self.dz)[axis]
        o = self.origin[axis]
        return o + (np.arange(n) + 0.5) * d

    def coordinate_arrays(self):
        """Broadcastable ``(X, Y, Z)`` cell-centre coordinate arrays."""
        x = self.cell_centers(0).reshape(-1, 1, 1)
        y = self.cell_centers(1).reshape(1, -1, 1)
        z = self.cell_centers(2).reshape(1, 1, -1)
        return np.broadcast_arrays(
            x * np.ones(self.shape),
            y * np.ones(self.shape),
            z * np.ones(self.shape),
        )

    def index_of(self, point):
        """Grid index ``(i, j, k)`` of the cell containing ``point`` [m].

        Raises :class:`~repro.errors.MeshError` when the point is outside
        the mesh.
        """
        idx = []
        sizes = (self.dx, self.dy, self.dz)
        for axis in range(3):
            rel = (point[axis] - self.origin[axis]) / sizes[axis]
            i = int(np.floor(rel))
            if not 0 <= i < self.shape[axis]:
                raise MeshError(
                    f"point {tuple(point)!r} lies outside the mesh "
                    f"(axis {axis}: index {i} not in [0, {self.shape[axis]}))"
                )
            idx.append(i)
        return tuple(idx)

    def region_mask(self, x=None, y=None, z=None):
        """Boolean mask of cells whose centres fall inside an axis box.

        Each of ``x``, ``y``, ``z`` is an optional ``(lo, hi)`` interval
        in metres; ``None`` selects everything along that axis.

        >>> mesh = Mesh(10, 1, 1, 1e-9, 1e-9, 1e-9)
        >>> int(mesh.region_mask(x=(0, 3e-9)).sum())
        3
        """
        mask = np.ones(self.shape, dtype=bool)
        bounds = (x, y, z)
        for axis, interval in enumerate(bounds):
            if interval is None:
                continue
            lo, hi = interval
            if hi < lo:
                raise MeshError(
                    f"empty interval on axis {axis}: ({lo!r}, {hi!r})"
                )
            centers = self.cell_centers(axis)
            axis_mask = (centers >= lo) & (centers <= hi)
            shape = [1, 1, 1]
            shape[axis] = -1
            mask &= axis_mask.reshape(shape)
        return mask

    def zeros_vector_field(self):
        """A fresh ``(nx, ny, nz, 3)`` array of zeros."""
        return np.zeros(self.shape + (3,), dtype=float)

    def describe(self):
        """Human-readable one-line summary."""
        lx, ly, lz = self.extent
        return (
            f"{self.nx}x{self.ny}x{self.nz} cells of "
            f"{self.dx:.3g}x{self.dy:.3g}x{self.dz:.3g} m "
            f"({lx:.3g}x{ly:.3g}x{lz:.3g} m)"
        )
