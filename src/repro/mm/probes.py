"""Probes recording magnetisation time series during a simulation.

A probe is the numerical analogue of an output transducer: it samples
the (locally averaged) magnetisation at every accepted integrator step.
Records are exposed as NumPy arrays via :meth:`times` and
:meth:`components`.
"""

import numpy as np

from repro.errors import SimulationError


class _ProbeBase:
    """Shared storage/printing logic for probes."""

    def __init__(self, label=""):
        self.label = label
        self._times = []
        self._values = []

    def record(self, state, t):
        """Sample ``state`` at time ``t`` (called by the simulation)."""
        self._times.append(float(t))
        self._values.append(self.sample(state))

    def sample(self, state):
        """Return the 3-vector this probe measures; subclass hook."""
        raise NotImplementedError

    def clear(self):
        """Discard all recorded samples."""
        self._times.clear()
        self._values.clear()

    def __len__(self):
        return len(self._times)

    def times(self):
        """Sample times as a 1-D array [s]."""
        return np.asarray(self._times, dtype=float)

    def components(self):
        """Sampled vectors as an ``(n_samples, 3)`` array."""
        if not self._values:
            return np.empty((0, 3), dtype=float)
        return np.asarray(self._values, dtype=float)

    def component(self, axis):
        """One Cartesian component as a 1-D array (0=x, 1=y, 2=z)."""
        return self.components()[:, axis]


class PointProbe(_ProbeBase):
    """Samples the magnetisation of the single cell containing ``point``."""

    def __init__(self, mesh, point, label=""):
        super().__init__(label=label)
        self.index = mesh.index_of(point)
        self.point = tuple(float(c) for c in point)

    def sample(self, state):
        return np.array(state.m[self.index], dtype=float)


class RegionProbe(_ProbeBase):
    """Samples the average magnetisation over a boolean cell mask.

    This models a finite-size detector (e.g. a 10 nm x 50 nm ME cell)
    more faithfully than a point sample.
    """

    def __init__(self, mask, label=""):
        super().__init__(label=label)
        self.mask = np.asarray(mask, dtype=bool)
        if not self.mask.any():
            raise SimulationError("probe mask selects no cells")

    def sample(self, state):
        return np.asarray(state.average(self.mask), dtype=float)
