"""Energy accounting helpers.

Convenience functions over the per-term ``energy`` methods: a labelled
breakdown and the thermal stability ratio used in the transducer cost
discussion.
"""

from repro.constants import KB


def energy_breakdown(state, terms, t=0.0):
    """Per-term energies [J], keyed by term name (duplicates numbered)."""
    table = {}
    for term in terms:
        key = term.name
        index = 2
        while key in table:
            key = f"{term.name}_{index}"
            index += 1
        table[key] = term.energy(state, t)
    return table


def total_energy(state, terms, t=0.0):
    """Sum of all term energies [J]."""
    return float(sum(energy_breakdown(state, terms, t).values()))


def thermal_stability(energy_barrier, temperature=300.0):
    """Energy barrier in units of k_B * T (the Delta of device papers)."""
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature!r}")
    return energy_barrier / (KB * temperature)
