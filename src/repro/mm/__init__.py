"""Finite-difference micromagnetics: the OOMMF substitute.

This package numerically integrates the Landau-Lifshitz-Gilbert equation
on a rectangular finite-difference mesh, exactly the computation OOMMF
performs for the paper's validation runs.  It provides:

* :class:`~repro.mm.mesh.Mesh` -- the discretisation,
* :class:`~repro.mm.state.State` -- the unit magnetisation field,
* effective-field terms in :mod:`repro.mm.fields` (exchange, uniaxial
  anisotropy, Zeeman, demagnetisation via the Newell tensor, and
  time-dependent excitation fields),
* fixed-step RK4 and adaptive RKF45 integrators,
* :class:`~repro.mm.sim.Simulation` -- the driver that wires everything
  together with probes recording time series.

Kernel architecture
-------------------

The hot path is allocation-free.  Two parallel APIs coexist:

* The **reference (allocating) API** -- ``FieldTerm.field(state, t)``
  returns a fresh ``(nx, ny, nz, 3)`` array, :func:`~repro.mm.llg.llg_rhs`
  composes them, and :func:`~repro.mm.integrators.integrate` steps with
  per-stage temporaries.  Simple, independently testable, and the ground
  truth the kernel-equivalence tests compare against.
* The **kernel (in-place) API** -- :class:`~repro.mm.kernels.LLGWorkspace`
  preallocates every scratch array for a mesh once; field terms
  *accumulate* into its shared field buffer through
  ``FieldTerm.add_field_into(state, out, t)`` and the fused
  :func:`~repro.mm.kernels.llg_rhs_from_field_into` computes both LLG
  cross products plus the damping combination without temporaries.  The
  buffer-reusing integrators (:func:`~repro.mm.integrators.rk4_step_into`,
  :func:`~repro.mm.integrators.rkf45_step_into`,
  :func:`~repro.mm.integrators.integrate_into`) evaluate every
  Runge-Kutta stage into one :class:`~repro.mm.integrators.RKScratch`.
  :meth:`Simulation.run <repro.mm.sim.Simulation.run>` and
  :class:`~repro.mm.thermal.ThermalLangevinRun` drive this path.

The ``add_field_into`` contract: ``out`` has shape ``(nx, ny, nz, 3)``
and already holds the sum of previously applied terms; implementations
must **add** their H contribution [A/m] into it (never overwrite), must
not retain a reference to ``out`` across calls, and must return ``out``.
The :class:`~repro.mm.fields.base.FieldTerm` base class falls back to
``out += self.field(state, t)``, so third-party terms work unchanged and
only opt into fused kernels for speed.
"""

from repro.mm.mesh import Mesh
from repro.mm.state import State
from repro.mm.llg import llg_rhs
from repro.mm.integrators import (
    RKScratch,
    integrate,
    integrate_into,
    rk4_step,
    rk4_step_into,
    rkf45_step,
    rkf45_step_into,
)
from repro.mm.kernels import LLGWorkspace
from repro.mm.sim import Simulation
from repro.mm.probes import PointProbe, RegionProbe
from repro.mm.sources import (
    SineWaveform,
    ToneBurstWaveform,
    GaussianPulseWaveform,
    Source,
)
from repro.mm.fields import (
    ExchangeField,
    UniaxialAnisotropyField,
    ZeemanField,
    DemagField,
    ThinFilmDemagField,
    AppliedField,
)
from repro.mm.thermal import ThermalLangevinRun, thermal_field_sigma
from repro.mm.spectroscopy import (
    measure_dispersion,
    space_time_spectrum,
    extract_branch,
)

__all__ = [
    "Mesh",
    "State",
    "llg_rhs",
    "RKScratch",
    "rk4_step",
    "rk4_step_into",
    "rkf45_step",
    "rkf45_step_into",
    "integrate",
    "integrate_into",
    "LLGWorkspace",
    "Simulation",
    "PointProbe",
    "RegionProbe",
    "SineWaveform",
    "ToneBurstWaveform",
    "GaussianPulseWaveform",
    "Source",
    "ExchangeField",
    "UniaxialAnisotropyField",
    "ZeemanField",
    "DemagField",
    "ThinFilmDemagField",
    "AppliedField",
    "ThermalLangevinRun",
    "thermal_field_sigma",
    "measure_dispersion",
    "space_time_spectrum",
    "extract_branch",
]
