"""Finite-difference micromagnetics: the OOMMF substitute.

This package numerically integrates the Landau-Lifshitz-Gilbert equation
on a rectangular finite-difference mesh, exactly the computation OOMMF
performs for the paper's validation runs.  It provides:

* :class:`~repro.mm.mesh.Mesh` -- the discretisation,
* :class:`~repro.mm.state.State` -- the unit magnetisation field,
* effective-field terms in :mod:`repro.mm.fields` (exchange, uniaxial
  anisotropy, Zeeman, demagnetisation via the Newell tensor, and
  time-dependent excitation fields),
* fixed-step RK4 and adaptive RKF45 integrators,
* :class:`~repro.mm.sim.Simulation` -- the driver that wires everything
  together with probes recording time series.
"""

from repro.mm.mesh import Mesh
from repro.mm.state import State
from repro.mm.llg import llg_rhs
from repro.mm.integrators import rk4_step, rkf45_step, integrate
from repro.mm.sim import Simulation
from repro.mm.probes import PointProbe, RegionProbe
from repro.mm.sources import (
    SineWaveform,
    ToneBurstWaveform,
    GaussianPulseWaveform,
    Source,
)
from repro.mm.fields import (
    ExchangeField,
    UniaxialAnisotropyField,
    ZeemanField,
    DemagField,
    ThinFilmDemagField,
    AppliedField,
)
from repro.mm.thermal import ThermalLangevinRun, thermal_field_sigma
from repro.mm.spectroscopy import (
    measure_dispersion,
    space_time_spectrum,
    extract_branch,
)

__all__ = [
    "Mesh",
    "State",
    "llg_rhs",
    "rk4_step",
    "rkf45_step",
    "integrate",
    "Simulation",
    "PointProbe",
    "RegionProbe",
    "SineWaveform",
    "ToneBurstWaveform",
    "GaussianPulseWaveform",
    "Source",
    "ExchangeField",
    "UniaxialAnisotropyField",
    "ZeemanField",
    "DemagField",
    "ThinFilmDemagField",
    "AppliedField",
    "ThermalLangevinRun",
    "thermal_field_sigma",
    "measure_dispersion",
    "space_time_spectrum",
    "extract_branch",
]
