"""Excitation waveforms and transducer source descriptions.

The paper's gates are driven by ME-cell transducers that convert logic
voltages into phase-encoded microwave fields; here a :class:`Source`
couples a mesh region to a :class:`SineWaveform` (or burst/pulse
variants) whose phase carries the logic value.
"""

import math
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.mm.fields.applied import AppliedField


class SineWaveform:
    """Continuous sinusoid ``a * sin(2*pi*f*t + phase)``.

    An optional linear ``ramp`` time [s] fades the amplitude in from zero
    to avoid the broadband transient of a hard turn-on.
    """

    def __init__(self, amplitude, frequency, phase=0.0, ramp=0.0):
        if frequency <= 0:
            raise SimulationError(f"frequency must be positive, got {frequency!r}")
        if ramp < 0:
            raise SimulationError(f"ramp must be non-negative, got {ramp!r}")
        self.amplitude = float(amplitude)
        self.frequency = float(frequency)
        self.phase = float(phase)
        self.ramp = float(ramp)

    def __call__(self, t):
        envelope = 1.0
        if self.ramp > 0 and t < self.ramp:
            envelope = max(t, 0.0) / self.ramp
        return (
            self.amplitude
            * envelope
            * math.sin(2.0 * math.pi * self.frequency * t + self.phase)
        )


class ToneBurstWaveform:
    """Sinusoid gated to the window [t_on, t_off] with linear edges."""

    def __init__(self, amplitude, frequency, t_on, t_off, edge=0.0, phase=0.0):
        if t_off <= t_on:
            raise SimulationError(
                f"t_off ({t_off!r}) must exceed t_on ({t_on!r})"
            )
        if edge < 0 or 2 * edge > (t_off - t_on):
            raise SimulationError(f"invalid edge time {edge!r}")
        self._carrier = SineWaveform(amplitude, frequency, phase=phase)
        self.t_on = float(t_on)
        self.t_off = float(t_off)
        self.edge = float(edge)

    def __call__(self, t):
        if t < self.t_on or t > self.t_off:
            return 0.0
        envelope = 1.0
        if self.edge > 0:
            if t < self.t_on + self.edge:
                envelope = (t - self.t_on) / self.edge
            elif t > self.t_off - self.edge:
                envelope = (self.t_off - t) / self.edge
        return envelope * self._carrier(t)


class GaussianPulseWaveform:
    """Broadband Gaussian field pulse, used to map dispersion spectra.

    ``a * exp(-(t - t0)^2 / (2*sigma^2))`` -- exciting all frequencies up
    to ~1/(2*pi*sigma), which lets a single simulation trace out omega(k).
    """

    def __init__(self, amplitude, t0, sigma):
        if sigma <= 0:
            raise SimulationError(f"sigma must be positive, got {sigma!r}")
        self.amplitude = float(amplitude)
        self.t0 = float(t0)
        self.sigma = float(sigma)

    def __call__(self, t):
        arg = (t - self.t0) / self.sigma
        return self.amplitude * math.exp(-0.5 * arg * arg)


@dataclass
class Source:
    """A transducer: spatial region + direction + waveform.

    ``region`` is a dict of keyword arguments for
    :meth:`repro.mm.mesh.Mesh.region_mask` (e.g. ``{"x": (0, 10e-9)}``).
    """

    region: dict
    waveform: object
    direction: tuple = (1.0, 0.0, 0.0)

    def to_field(self, mesh):
        """Materialise this source as an :class:`AppliedField` on ``mesh``."""
        mask = mesh.region_mask(**self.region)
        return AppliedField(mask, self.direction, self.waveform)
