"""Small unit helpers.

The library computes internally in SI units (metres, seconds, A/m, joules).
These constants make call sites read naturally, e.g. ``50 * NM`` or
``10 * GHZ``, and the formatting helpers render SI quantities with an
engineering prefix for tables and logs.
"""

#: One nanometre in metres.
NM = 1e-9
#: One micrometre in metres.
UM = 1e-6
#: One picosecond in seconds.
PS = 1e-12
#: One nanosecond in seconds.
NS = 1e-9
#: One gigahertz in hertz.
GHZ = 1e9
#: One millitesla in tesla.
MT = 1e-3
#: One femtojoule in joules.
FJ = 1e-15
#: One attojoule in joules.
AJ = 1e-18

_PREFIXES = (
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
)


def si_format(value, unit="", digits=4):
    """Format ``value`` with an engineering SI prefix.

    >>> si_format(166e-9, "m")
    '166 nm'
    >>> si_format(1.0e10, "Hz")
    '10 GHz'
    """
    if value == 0:
        return f"0 {unit}".strip()
    magnitude = abs(value)
    for scale, prefix in _PREFIXES:
        if magnitude >= scale:
            scaled = value / scale
            text = f"{scaled:.{digits}g}"
            return f"{text} {prefix}{unit}".strip()
    scale, prefix = _PREFIXES[-1]
    scaled = value / scale
    return f"{scaled:.{digits}g} {prefix}{unit}".strip()


def nm(value_m):
    """Express a length given in metres as nanometres."""
    return value_m / NM


def ghz(value_hz):
    """Express a frequency given in hertz as gigahertz."""
    return value_hz / GHZ
