"""Coalescing circuit execution front end (PR 6).

A :class:`CircuitExecutor` serves *many* logical circuit-evaluation
requests -- potentially over many distinct netlists -- from one shared
:class:`~repro.circuits.library.GateBindings` (one waveguide model, one
gate template and one memoised weight/basis cache per operation) and
one :class:`~repro.circuits.compiled.CompiledCircuitCache` of packed
artifacts.

Requests enter through :meth:`CircuitExecutor.submit`, which returns an
:class:`ExecutionTicket` immediately; the executor **coalesces** queued
requests that share a coalescing key -- netlist *signature* (content
hash, so structurally equal netlists coalesce even as distinct objects),
execution mode and strictness -- into maximal padded word blocks, and
executes each block through one packed artifact pass: one cross-op GEMM
per level covers every queued request's word groups at once.  Per-group
noise contexts and fault maps keep each request's realisations
bit-identical to a standalone :meth:`CircuitEngine.run` call (pinned by
``tests/test_circuit_conformance.py``).

Flush policy: a queue flushes when its pending word count reaches
``max_block``, when the oldest queued request exceeds ``max_latency``
seconds (every submit sweeps *all* queues, whatever else it triggered),
on an explicit :meth:`flush` or :meth:`sweep`, or when any ticket's
:meth:`~ExecutionTicket.result` is forced.  The executor itself runs no
threads -- a long-lived front end (``repro.serve``'s daemon) calls
:meth:`sweep` from a background flush thread so ``max_latency`` bounds
queue wait even without fresh traffic.  Submission, flushing and
fallback execution are serialised by one internal lock, so many
threads may submit concurrently; tickets resolve through a
``threading.Event`` and can be awaited without forcing a flush
(:meth:`ExecutionTicket.result` with ``timeout``).
Configurations the packed path cannot reproduce (placement noise,
replaced physics hooks, uncalibratable cells) fall back per request to
a per-op :class:`~repro.circuits.engine.CircuitEngine` sharing the same
bindings; the fallback engine map is LRU-bounded to ``cache_size``
entries, like the compile cache.

>>> from repro.circuits.netlist import Netlist
>>> netlist = Netlist("demo")
>>> _ = netlist.add_input("a")
>>> _ = netlist.add_input("b")
>>> _ = netlist.add_cell("s", "XOR2", ("a", "b"))
>>> _ = netlist.mark_output("s")
>>> executor = CircuitExecutor(n_bits=2)
>>> t1 = executor.submit(netlist, [{"a": 0, "b": 1}])
>>> t2 = executor.submit(netlist, [{"a": 1, "b": 1}])
>>> (t1.result().outputs["s"], t2.result().outputs["s"])
([1], [0])
>>> executor.stats["blocks"]  # both requests rode one packed block
1
"""

import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field, fields

import numpy as np

from repro import obs as _obs
from repro.circuits.compiled import (
    CompiledCircuitCache,
    _normalise_faults,
    netlist_signature,
    physics_pristine,
)
from repro.circuits.library import GateBindings, physical_arity
from repro.errors import (
    EncodingError,
    NetlistError,
    SimulationError,
)


def mint_request_id():
    """A fresh request ID (``req-`` + 12 hex chars of a UUID4)."""
    return f"req-{uuid.uuid4().hex[:12]}"


@dataclass
class RequestTrace:
    """Per-request timing breakdown of one executor submission.

    Minted at :meth:`CircuitExecutor.submit` (when the executor traces
    requests, the default) and filled in as the request moves through
    the serving pipeline: queue wait from submit to flush, the compile
    step (with its cache outcome), the shared packed execution of the
    coalesced block, and this request's own strict-check + decode +
    result construction.  The trace rides on the
    :class:`ExecutionTicket`, is attached to the
    :class:`~repro.circuits.engine.CircuitRunResult` it resolves with,
    and is returned over the wire in ``/v1/run`` responses -- so a slow
    remote request is attributable without server-side spelunking.

    ``block_id`` names the coalesced block the request executed in and
    ``coalesced_with`` lists the *other* request IDs that shared it: a
    slow block is attributable to its tenants.  ``path`` is ``"packed"``
    for block execution and ``"fallback"`` for configurations served by
    the per-op engine (placement noise, replaced physics hooks,
    uncalibratable cells).
    """

    request_id: str
    mode: str = "phasor"
    path: str = "packed"
    n_entries: int = 0
    queue_wait_s: float = 0.0
    compile_s: float = 0.0
    compile_cache: str = None
    execute_s: float = 0.0
    decode_s: float = 0.0
    block_id: str = None
    block_requests: int = 1
    block_words: int = 0
    coalesced_with: list = field(default_factory=list)

    @property
    def total_s(self):
        """Sum of the recorded stages (the executor-side latency)."""
        return (
            self.queue_wait_s + self.compile_s + self.execute_s
            + self.decode_s
        )

    def as_dict(self):
        """JSON-pure dict (the ``/v1/run`` wire form, ``total_s`` added)."""
        payload = {
            f.name: getattr(self, f.name) for f in fields(self)
        }
        payload["coalesced_with"] = list(self.coalesced_with)
        payload["total_s"] = self.total_s
        return payload

    @classmethod
    def from_dict(cls, payload):
        """Rebuild a trace from its wire dict (unknown keys ignored)."""
        names = {f.name for f in fields(cls)}
        return cls(**{
            key: value for key, value in payload.items() if key in names
        })


class ExecutionTicket:
    """Handle on one submitted request; resolves when its block runs."""

    __slots__ = (
        "_executor", "_done", "_result", "_error", "_event", "request_id",
        "trace",
    )

    def __init__(self, executor, request_id=None):
        self._executor = executor
        self._done = False
        self._result = None
        self._error = None
        self._event = threading.Event()
        self.request_id = (
            mint_request_id() if request_id is None else str(request_id)
        )
        self.trace = None

    def _resolve(self, result=None, error=None, trace=None):
        self._result = result
        self._error = error
        if trace is not None:
            self.trace = trace
        self._done = True
        self._event.set()

    @property
    def done(self):
        """True once the request's block has executed."""
        return self._done

    def wait(self, timeout=None):
        """Block until the ticket resolves (or ``timeout`` seconds pass)
        without forcing a flush; returns :attr:`done`.

        This is how a serving front end waits for the executor's own
        flush policy (block high-water mark, latency sweep) to resolve
        the request, keeping coalescing opportunities alive instead of
        flushing a near-empty block immediately.
        """
        self._event.wait(timeout)
        return self._done

    def result(self, timeout=None):
        """The request's :class:`CircuitRunResult`, flushing if needed.

        With ``timeout`` the call first waits that many seconds for the
        executor's own flush policy to resolve the ticket (see
        :meth:`wait`); unresolved tickets then force a :meth:`flush`
        either way.  Raises whatever a standalone strict run would have
        raised (the error is captured per request, so one failing
        request never poisons the rest of its coalesced block).
        """
        if timeout is not None:
            self._event.wait(timeout)
        if not self._done:
            self._executor.flush()
        if not self._done:
            raise SimulationError(
                "request was never executed: its queue was dropped "
                "before this ticket resolved"
            )
        if self._error is not None:
            raise self._error
        return self._result


class _Request:
    """One queued submission plus its pre-validated input columns."""

    __slots__ = (
        "netlist", "batch", "faults", "fault_map", "noise", "strict",
        "ticket", "n_entries", "n_groups", "input_columns", "signature",
        "born", "trace",
    )


class CircuitExecutor:
    """Coalesces circuit requests into maximal packed GEMM blocks.

    Parameters
    ----------
    n_bits, waveguide, transducer:
        Forwarded to a fresh :class:`~repro.circuits.library.GateBindings`
        when ``bindings`` is not supplied -- every circuit this executor
        serves shares that one physics configuration (and therefore its
        memoised propagation weights and trace bases).
    bindings:
        An existing bindings object to share (e.g. with engines built
        elsewhere).
    max_block:
        Word-count high-water mark per coalescing queue: submitting the
        request that reaches it flushes the queue immediately.
    max_latency:
        Optional seconds the oldest queued request may wait; every
        submit sweeps *all* queues against it (the executor starts no
        threads itself -- a daemon front end such as ``repro.serve``
        calls :meth:`sweep` periodically so the bound holds without
        fresh traffic).
    cache_size:
        LRU capacity of the compile cache (distinct netlist signatures)
        and of the fallback engine map.
    obs:
        Optional :class:`~repro.obs.MetricsRegistry` holding this
        executor's serving metrics (and, shared onward, its compile
        cache's counters).  Defaults to a private registry so two
        executors in one process never mix counts; pass one explicitly
        to aggregate serving stats into a wider scope (the CLI's
        ``--profile`` report merges it into the process-global view).
    trace_requests:
        When true (the default) every submission mints a
        :class:`RequestTrace` recording its queue wait, compile cache
        outcome, packed execution and decode timings; the trace rides
        on the ticket and the resolved result.  Disable to shed even
        that bookkeeping on hot paths -- tickets then resolve with
        ``trace=None`` exactly as before this field existed.
    events:
        Optional :class:`~repro.obs.EventLog`; when set, each executed
        coalesced block emits one ``"block"`` event naming the block
        and its participating request IDs.
    """

    #: Counter names (under ``executor.``) surfaced by :attr:`stats`.
    _STAT_KEYS = (
        "requests", "words", "blocks", "coalesced_requests", "fallbacks",
    )
    #: Per-request failure classes counted under ``executor.errors.``:
    #: strict decode failures, netlists mutated between submit and
    #: flush, block-level flush exceptions, engine-fallback errors and
    #: any other per-request failure (e.g. result construction).
    _ERROR_KEYS = ("decode", "mutated", "flush", "fallback", "request")

    def __init__(self, n_bits=8, waveguide=None, transducer=None,
                 bindings=None, max_block=64, max_latency=None,
                 cache_size=16, backend=None, obs=None,
                 trace_requests=True, events=None):
        if bindings is None:
            bindings = GateBindings(
                n_bits=n_bits, waveguide=waveguide, transducer=transducer,
                backend=backend,
            )
        self.bindings = bindings
        self.n_bits = bindings.n_bits
        if max_block < 1:
            raise NetlistError(
                f"max_block must be >= 1 word, got {max_block!r}"
            )
        self.max_block = int(max_block)
        self.max_latency = None if max_latency is None else float(max_latency)
        self.obs = obs if obs is not None else _obs.MetricsRegistry()
        self.trace_requests = bool(trace_requests)
        self.events = events
        self.cache = CompiledCircuitCache(
            max_entries=cache_size, obs=self.obs
        )
        # Monotone coalesced-block sequence number (under self._lock);
        # block IDs let an access log's per-request traces be grouped
        # back into the packed blocks that actually executed them.
        self._block_seq = 0
        # One lock serialises queue mutation, flushing and fallback
        # execution: many threads may submit/flush concurrently (the
        # serving daemon does), coalescing still sees a consistent
        # queue.  RLock because a submit-triggered flush re-enters.
        self._lock = threading.RLock()
        self._queues = {}       # key -> list of _Request
        self._queue_words = {}  # key -> pending word count
        self._queue_born = {}   # key -> monotonic time of oldest request
        # signature -> fallback CircuitEngine, LRU-bounded to cache_size
        # (a long-lived executor serving many distinct netlists through
        # the fallback path must not accumulate engines forever).
        self._engines = OrderedDict()

    @property
    def stats(self):
        """Serving counters, rendered from the metrics registry.

        Same keys as the pre-obs ad-hoc dict (``requests``, ``words``,
        ``blocks``, ``coalesced_requests``, ``fallbacks``) plus an
        ``errors`` sub-dict of per-request failure counters.
        """
        stats = {
            key: self.obs.counter(f"executor.{key}")
            for key in self._STAT_KEYS
        }
        stats["errors"] = {
            key: self.obs.counter(f"executor.errors.{key}")
            for key in self._ERROR_KEYS
        }
        return stats

    @property
    def error_count(self):
        """Total requests resolved with an error instead of a result."""
        return sum(
            self.obs.counter(f"executor.errors.{key}")
            for key in self._ERROR_KEYS
        )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, netlist, assignments_batch, faults=(), noise=None,
               strict=True, mode="phasor", request_id=None):
        """Queue one evaluation request; returns its ticket.

        Validation that a standalone run performs up front (mode, empty
        batch, fault plumbing, input presence and 0/1 values) raises
        here, at the call site that caused it; physics-level failures
        surface later through the ticket.

        ``request_id`` names the request in traces, events and block
        tenant lists (the serving daemon passes a client-supplied
        ``X-Request-Id`` through here); omitted, a fresh
        ``req-<hex>`` ID is minted.
        """
        if mode not in ("phasor", "trace"):
            raise NetlistError(
                f"unknown execution mode {mode!r}; "
                "supported: 'phasor', 'trace'"
            )
        batch = list(assignments_batch)
        if not batch:
            raise NetlistError("no assignments supplied")
        request = _Request()
        request.netlist = netlist
        request.batch = batch
        request.faults = list(faults)
        request.fault_map = _normalise_faults(netlist, request.faults)
        for cell, fault in request.fault_map.items():
            # Mirror FaultySimulator's range validation here so a bad
            # fault raises at its own call site instead of surfacing
            # mid-flush and failing the whole coalesced block.
            if not 0 <= fault.channel < self.n_bits:
                raise EncodingError(
                    f"fault channel {fault.channel} out of range"
                )
            arity = physical_arity(netlist.node(cell).kind)
            if not 0 <= fault.input_index < arity:
                raise EncodingError(
                    f"fault input index {fault.input_index} out of range"
                )
        request.noise = noise
        request.strict = strict
        request.ticket = ExecutionTicket(self, request_id=request_id)
        request.n_entries = len(batch)
        request.n_groups = -(-request.n_entries // self.n_bits)
        request.input_columns = self._input_columns(netlist, batch)
        request.signature = netlist_signature(netlist)
        request.born = time.monotonic()
        if self.trace_requests:
            request.trace = RequestTrace(
                request_id=request.ticket.request_id, mode=mode,
                n_entries=request.n_entries,
            )
            request.ticket.trace = request.trace
        else:
            request.trace = None
        self.obs.inc("executor.requests")
        self.obs.inc("executor.words", request.n_entries)

        if (noise is not None and noise.position_sigma > 0) or (
            not physics_pristine()
        ):
            # Packed execution cannot reproduce this configuration;
            # serve it immediately through the per-op engine path.
            self._run_fallback(request, mode)
            return request.ticket

        # Backend identity is part of the coalescing signature: requests
        # may only share a packed block when their artifacts were
        # compiled for the same precision / FFT engine.
        key = (request.signature, mode, strict, self.bindings.backend.key)
        with self._lock:
            self._queues.setdefault(key, []).append(request)
            self._queue_words[key] = (
                self._queue_words.get(key, 0) + request.n_entries
            )
            self._queue_born.setdefault(key, time.monotonic())
            if self._queue_words[key] >= self.max_block:
                self._flush_queue(key)
            # The latency sweep runs unconditionally: a submit that
            # triggered a max_block flush must still bound *other*
            # keys' oldest requests, or mixed traffic lets them wait
            # past max_latency indefinitely.
            self._sweep_stale()
        return request.ticket

    def run(self, netlist, assignments_batch, faults=(), noise=None,
            strict=True, mode="phasor", request_id=None):
        """Submit + resolve in one call (no cross-request coalescing
        beyond whatever is already queued under the same key)."""
        return self.submit(
            netlist, assignments_batch, faults=faults, noise=noise,
            strict=strict, mode=mode, request_id=request_id,
        ).result()

    def _input_columns(self, netlist, batch):
        """Pre-validated {input name: (n_entries,) int64 column}.

        Mirrors the engine's ``_input_values`` semantics (including its
        integer truncation of float values) so submit-time validation
        matches what a standalone run would have raised.
        """
        columns = {}
        n_entries = len(batch)
        for name in netlist.inputs:
            try:
                column = [a[name] for a in batch]
            except KeyError:
                raise NetlistError(
                    f"no value supplied for input {name!r}"
                ) from None
            array = np.asarray(column, dtype=np.int64)
            if array.shape != (n_entries,) or not np.isin(
                array, (0, 1)
            ).all():
                raise NetlistError("logic values must all be 0 or 1")
            columns[name] = array
        return columns

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def flush(self):
        """Execute every pending queue (in submission order of keys)."""
        with self._lock:
            for key in list(self._queues):
                self._flush_queue(key)

    def sweep(self):
        """Flush every queue whose oldest request exceeds ``max_latency``.

        Safe to call from any thread at any time (no-op without a
        ``max_latency`` bound or pending traffic); the serving daemon's
        background flush thread drives this so the latency bound holds
        even when no new submits arrive.  Returns the number of queues
        flushed.
        """
        with self._lock:
            return self._sweep_stale()

    def _sweep_stale(self):
        if self.max_latency is None:
            return 0
        now = time.monotonic()
        stale = [
            k for k, born in self._queue_born.items()
            if now - born >= self.max_latency
        ]
        for key in stale:
            self._flush_queue(key)
        return len(stale)

    @property
    def pending_words(self):
        """Words currently queued and not yet executed."""
        with self._lock:
            return sum(self._queue_words.values())

    def _flush_queue(self, key):
        # Per-key queue state is cleared in the ``finally`` below: a
        # flush that raises anywhere must never leave a stale
        # ``_queue_born`` (or words/requests) entry behind, or the
        # max_latency sweep would keep "flushing" a ghost key forever
        # while real bookkeeping drifted.
        try:
            self._flush_requests(key, self._queues.get(key, ()))
        finally:
            self._queues.pop(key, None)
            self._queue_words.pop(key, None)
            self._queue_born.pop(key, None)

    def _flush_requests(self, key, requests):
        if not requests:
            return
        now = time.monotonic()
        for request in requests:
            wait = now - request.born
            self.obs.observe("executor.queue_latency_s", wait)
            if request.trace is not None:
                request.trace.queue_wait_s = wait
        signature, mode = key[0], key[1]
        live = []
        for request in requests:
            # The queue was keyed on the submit-time signature; a
            # netlist mutated since then must not execute against a
            # stale artifact (or, worse, silently against the new
            # topology while its neighbours expect the old one).
            if netlist_signature(request.netlist) != signature:
                self.obs.inc("executor.errors.mutated")
                request.ticket._resolve(error=NetlistError(
                    f"netlist {request.netlist.name!r} was mutated "
                    "between submit and flush; re-submit the request"
                ), trace=request.trace)
                continue
            live.append(request)
        requests = live
        if not requests:
            return
        tracing = self.trace_requests
        compile_s = execute_s = 0.0
        compile_cache = None
        try:
            # Spans go to *this executor's* registry, never the
            # process-global stack: handler threads flushing here must
            # not interleave span trees with whatever the main thread
            # is profiling (see tests/test_compiled_execution.py's
            # registry-isolation regression).
            with self.obs.span("executor/flush"):
                if tracing:
                    misses_before = self.cache.misses
                    compile_started = time.perf_counter()
                artifact = self.cache.get_or_compile(
                    requests[0].netlist, self.bindings
                )
                if tracing:
                    compile_s = time.perf_counter() - compile_started
                    compile_cache = (
                        "miss" if self.cache.misses > misses_before
                        else "hit"
                    )
                if not artifact.packable:
                    for request in requests:
                        self._run_fallback(request, mode)
                    return
                n_bits = self.n_bits
                total_groups = sum(r.n_groups for r in requests)
                padded = total_groups * n_bits
                buf, failed = artifact._buffers(padded)
                contexts = []
                group_faults = []
                n_valid = []
                spans = []
                group_cursor = 0
                for request in requests:
                    start = group_cursor * n_bits
                    end = (group_cursor + request.n_groups) * n_bits
                    for name, column in request.input_columns.items():
                        row = buf[artifact._slots[name]]
                        row[start + request.n_entries : end] = 0
                        row[start : start + request.n_entries] = column
                    for group in range(request.n_groups):
                        contexts.append(
                            (request.noise, request.n_groups, group)
                        )
                        group_faults.append(request.fault_map)
                        n_valid.append(
                            min(request.n_entries - group * n_bits, n_bits)
                        )
                    spans.append(
                        (request, group_cursor,
                         group_cursor + request.n_groups)
                    )
                    group_cursor += request.n_groups
                if tracing:
                    execute_started = time.perf_counter()
                packed = artifact._execute_padded(
                    buf, failed, total_groups, n_valid, contexts,
                    group_faults, mode, registry=self.obs,
                )
                if tracing:
                    execute_s = time.perf_counter() - execute_started
        except Exception as exc:
            # Should be unreachable after submit-time validation, but
            # any block-level failure -- a compile error, physics
            # ReproError or an unexpected bug -- must still resolve
            # every ticket rather than strand them pending.
            for request in requests:
                if not request.ticket.done:
                    self.obs.inc("executor.errors.flush")
                    request.ticket._resolve(error=exc, trace=request.trace)
            return
        block_words = sum(r.n_entries for r in requests)
        self.obs.inc("executor.blocks")
        self.obs.observe(
            "executor.block_occupancy", block_words / padded,
            bounds=(0.25, 0.5, 0.75, 1.0),
        )
        self.obs.observe(
            "executor.block_words", block_words,
            bounds=(1, 8, 16, 32, 64, 128, 256),
        )
        if len(requests) > 1:
            self.obs.inc("executor.coalesced_requests", len(requests))
        block_id = None
        if tracing:
            self._block_seq += 1
            block_id = f"blk-{self._block_seq}"
            tenant_ids = [r.ticket.request_id for r in requests]
            for request in requests:
                trace = request.trace
                if trace is None:
                    continue
                trace.compile_s = compile_s
                trace.compile_cache = compile_cache
                trace.execute_s = execute_s
                trace.block_id = block_id
                trace.block_requests = len(requests)
                trace.block_words = block_words
                trace.coalesced_with = [
                    rid for rid in tenant_ids
                    if rid != request.ticket.request_id
                ]
            if self.events is not None:
                self.events.emit(
                    "block", block_id=block_id, mode=mode,
                    n_requests=len(requests), n_words=block_words,
                    request_ids=tenant_ids,
                )
        for request, group_start, group_end in spans:
            trace = request.trace
            if trace is not None:
                decode_started = time.perf_counter()
            try:
                if request.strict:
                    error = artifact._first_dead(
                        packed, group_start, group_end
                    )
                    if error is not None:
                        self.obs.inc("executor.errors.decode")
                        if trace is not None:
                            trace.decode_s = (
                                time.perf_counter() - decode_started
                            )
                        request.ticket._resolve(error=error, trace=trace)
                        continue
                expected = request.netlist.evaluate_batch(request.batch)
                result = artifact._build_result(
                    packed, request.netlist, group_start, group_end,
                    request.n_entries, expected, request.faults, mode,
                )
            except Exception as exc:
                self.obs.inc("executor.errors.request")
                if trace is not None:
                    trace.decode_s = time.perf_counter() - decode_started
                request.ticket._resolve(error=exc, trace=trace)
            else:
                if trace is not None:
                    trace.decode_s = time.perf_counter() - decode_started
                    result.trace = trace
                request.ticket._resolve(result=result, trace=trace)

    def _run_fallback(self, request, mode):
        """Serve one request through the per-op engine path."""
        from repro.circuits.engine import CircuitEngine

        self.obs.inc("executor.fallbacks")
        trace = request.trace
        if trace is not None:
            trace.path = "fallback"
        signature = netlist_signature(request.netlist)
        with self._lock:
            engine = self._engines.get(signature)
            if engine is None:
                engine = CircuitEngine(
                    request.netlist, bindings=self.bindings
                )
                self._engines[signature] = engine
                while len(self._engines) > self.cache.max_entries:
                    self._engines.popitem(last=False)
                    self.obs.inc("executor.engine_evictions")
            else:
                self._engines.move_to_end(signature)
            if trace is not None:
                execute_started = time.perf_counter()
            try:
                result = engine.run(
                    request.batch,
                    faults=request.faults,
                    noise=request.noise,
                    strict=request.strict,
                    mode=mode,
                    packed=False,
                )
            except Exception as exc:
                # Mirror _flush_requests: *any* failure -- a physics
                # ReproError or e.g. a TypeError out of a replaced hook
                # -- must resolve the ticket and land in the error
                # counters, or submit() leaks the exception with the
                # request already counted as served.
                self.obs.inc("executor.errors.fallback")
                if trace is not None:
                    trace.execute_s = time.perf_counter() - execute_started
                request.ticket._resolve(error=exc, trace=trace)
            else:
                if trace is not None:
                    trace.execute_s = time.perf_counter() - execute_started
                    result.trace = trace
                request.ticket._resolve(result=result, trace=trace)

    # ------------------------------------------------------------------
    # Warm start
    # ------------------------------------------------------------------
    def warm(self, paths):
        """Preload saved :class:`CompiledCircuit` artifacts (see
        :meth:`CompiledCircuitCache.warm`): a worker started from
        artifacts serves its first requests with zero compile misses.
        Returns the loaded artifacts."""
        with self._lock:
            return self.cache.warm(paths, self.bindings)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self):
        """One-line serving summary for CLI reports."""
        stats = self.stats
        errors = self.error_count
        requests = stats["requests"]
        rate = f"{errors / requests:.1%}" if requests else "0.0%"
        line = (
            f"{stats['requests']} requests ({stats['words']} words) in "
            f"{stats['blocks']} packed blocks; "
            f"{stats['coalesced_requests']} coalesced, "
            f"{stats['fallbacks']} fallbacks, "
            f"{errors} errors ({rate} error rate); compile cache "
            f"{self.cache.hits} hits / {self.cache.misses} misses"
        )
        latency = self.obs.histogram("executor.queue_latency_s")
        if latency is not None and latency["count"]:
            line += (
                f"; queue latency mean "
                f"{latency['mean'] * 1e3:.3f} ms over {latency['count']} "
                f"requests"
            )
        return line
