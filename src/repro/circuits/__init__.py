"""Circuit-level composition of spin-wave gates.

Majority-inverter logic is the natural target of SW majority gates; this
package provides a small netlist layer (networkx-backed), a cell library
with cost models and physical gate bindings, MAJ-based synthesis of
adders, circuit-level area/delay/energy estimation contrasting
data-parallel against scalar implementations -- the system-level
extrapolation of the paper's Section V.B gate-level comparison -- and a
physical circuit-simulation engine
(:class:`~repro.circuits.engine.CircuitEngine`) executing whole netlists
on the batched phasor backend with transduced regeneration, fault
injection and noise.  Arbitrary Boolean specifications compile onto
this layer through the logic-synthesis front end
(:mod:`repro.synthesis`): MIG ingestion, optimization passes, and
technology mapping onto :data:`~repro.circuits.library.PHYSICAL_BINDINGS`.

Execution is compile-once: the engine lowers its netlist into a frozen
:class:`~repro.circuits.compiled.CompiledCircuit` artifact (cross-op
packed level GEMMs, preallocated buffers, baked calibration) keyed by a
content hash (:func:`~repro.circuits.compiled.netlist_signature`), and
the serving layer (:class:`~repro.circuits.executor.CircuitExecutor`)
coalesces word batches from many logical requests into maximal packed
blocks over one shared :class:`~repro.circuits.library.GateBindings`.
"""

from repro.circuits.netlist import Netlist, Node
from repro.circuits.library import (
    CellLibrary,
    CellSpec,
    GateBindings,
    default_library,
    physical_gate,
)
from repro.circuits.synth import (
    full_adder,
    majority_tree,
    random_netlist,
    ripple_carry_adder,
)
from repro.circuits.estimate import circuit_cost, parallel_vs_scalar
from repro.circuits.engine import (
    CellFault,
    CircuitEngine,
    CircuitRunResult,
    LevelReport,
)
from repro.circuits.compiled import (
    CompiledCircuit,
    CompiledCircuitCache,
    compile_circuit,
    netlist_signature,
)
from repro.circuits.executor import CircuitExecutor, ExecutionTicket

__all__ = [
    "Netlist",
    "Node",
    "CellLibrary",
    "CellSpec",
    "GateBindings",
    "default_library",
    "physical_gate",
    "full_adder",
    "ripple_carry_adder",
    "majority_tree",
    "random_netlist",
    "circuit_cost",
    "parallel_vs_scalar",
    "CellFault",
    "CircuitEngine",
    "CircuitRunResult",
    "LevelReport",
    "CompiledCircuit",
    "CompiledCircuitCache",
    "compile_circuit",
    "netlist_signature",
    "CircuitExecutor",
    "ExecutionTicket",
]
