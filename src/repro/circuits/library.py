"""Spin-wave cell library: physical gate bindings and per-cell costs.

Cell costs derive from the gate-level models in
:mod:`repro.core.metrics`: a MAJ3 cell is one in-line 3-input gate,
an XOR2 cell a 2-input amplitude-readout gate, an INV is free in the SW
domain (read the complemented output by detector placement, Section III)
apart from a detector-position constraint we charge nothing for.

:data:`PHYSICAL_BINDINGS` is the single source of truth mapping netlist
operations to physical gate templates; :func:`physical_gate` materialises
one binding as a laid-out
:class:`~repro.core.gate.DataParallelGate` -- the cell the circuit
engine (:mod:`repro.circuits.engine`) instantiates per operation, and
the cell :func:`default_library` prices.
"""

from dataclasses import dataclass

from repro.errors import NetlistError

#: Netlist operations realised by a transducer-level gate: operation ->
#: (GateKind value, physical fan-in).  INV and BUF are *not* physical:
#: inversion is a detector-placement choice and a buffer is a wire, so
#: the engine resolves both at the regeneration boundary for free.
PHYSICAL_BINDINGS = {
    "MAJ3": ("majority", 3),
    "XOR2": ("xor", 2),
}


def physical_arity(operation):
    """Transducer fan-in of a physical operation, without laying it out.

    Cheap metadata accessor for callers that only need the input count
    (e.g. fault-universe enumeration): reads
    :data:`PHYSICAL_BINDINGS` instead of materialising a gate and its
    dispersion-solved layout.  Raises
    :class:`~repro.errors.NetlistError` for virtual operations.
    """
    try:
        return PHYSICAL_BINDINGS[operation][1]
    except KeyError:
        raise NetlistError(
            f"operation {operation!r} has no physical gate "
            f"(physical: {sorted(PHYSICAL_BINDINGS)})"
        ) from None


def physical_gate(operation, n_bits=1, waveguide=None, plan=None, transducer=None):
    """Materialise one :data:`PHYSICAL_BINDINGS` entry as a laid-out gate.

    ``n_bits`` is the data-parallel width (the cell processes ``n_bits``
    circuit instances at once); ``plan`` defaults to ``n_bits`` channels
    at 10 GHz spacing from 10 GHz -- the paper's byte plan when
    ``n_bits == 8``.  Raises :class:`~repro.errors.NetlistError` for
    operations without a physical realisation (INV, BUF).
    """
    from repro.core.frequency_plan import FrequencyPlan
    from repro.core.gate import DataParallelGate, GateKind
    from repro.core.layout import InlineGateLayout
    from repro.units import GHZ
    from repro.waveguide import Waveguide

    try:
        kind, n_inputs = PHYSICAL_BINDINGS[operation]
    except KeyError:
        raise NetlistError(
            f"operation {operation!r} has no physical gate "
            f"(physical: {sorted(PHYSICAL_BINDINGS)})"
        ) from None
    waveguide = waveguide if waveguide is not None else Waveguide()
    if plan is None:
        plan = FrequencyPlan.uniform(n_bits, 10.0 * GHZ, 10.0 * GHZ)
    layout = InlineGateLayout(
        waveguide, plan, n_inputs=n_inputs, transducer=transducer
    )
    return DataParallelGate(layout, kind=GateKind(kind))


class GateBindings:
    """Shared physical bindings: one model, gate and simulator per op.

    The lazily-built state every circuit-execution front end needs --
    the engine-wide :class:`~repro.waveguide.LinearWaveguideModel`
    (whose weight/basis caches make repeated evaluation cheap), one
    laid-out :class:`~repro.core.gate.DataParallelGate` template per
    physical operation, and one nominal
    :class:`~repro.core.simulate.GateSimulator` per operation.  A
    :class:`~repro.circuits.engine.CircuitEngine` owns one by default;
    the :class:`~repro.circuits.executor.CircuitExecutor` shares a
    single instance across *many* circuits so memoised propagation
    weights and trace bases amortise over every netlist it serves.
    """

    def __init__(self, n_bits=8, waveguide=None, transducer=None, backend=None):
        from repro.backends import get_backend
        from repro.waveguide import Waveguide

        if n_bits < 1:
            raise NetlistError(f"n_bits must be >= 1, got {n_bits!r}")
        self.n_bits = int(n_bits)
        self.waveguide = waveguide if waveguide is not None else Waveguide()
        self.transducer = transducer
        self.backend = backend if backend is not None else get_backend()
        self._model = None
        self._gates = {}
        self._simulators = {}

    def model(self):
        """The shared linear waveguide model (lazy)."""
        if self._model is None:
            from repro.waveguide.linear_model import LinearWaveguideModel

            self._model = LinearWaveguideModel(
                self.waveguide, backend=self.backend
            )
        return self._model

    def gate(self, operation):
        """The shared laid-out gate template of one operation."""
        if operation not in self._gates:
            self._gates[operation] = physical_gate(
                operation,
                self.n_bits,
                waveguide=self.waveguide,
                transducer=self.transducer,
            )
        return self._gates[operation]

    def simulator(self, operation):
        """The nominal simulator shared by every cell of ``operation``."""
        if operation not in self._simulators:
            from repro.core.simulate import GateSimulator

            self._simulators[operation] = GateSimulator(
                self.gate(operation), model=self.model()
            )
        return self._simulators[operation]

    def faulty_simulator(self, operation, fault):
        """A fault-injected simulator sharing the model and its caches."""
        from repro.core.faults import FaultySimulator

        return FaultySimulator(self.gate(operation), fault, model=self.model())


@dataclass(frozen=True)
class CellSpec:
    """Area [m^2], delay [s] and energy [J] of one library cell."""

    name: str
    area: float
    delay: float
    energy: float

    def __post_init__(self):
        if self.area < 0 or self.delay < 0 or self.energy < 0:
            raise NetlistError(f"cell {self.name!r} has negative cost")


class CellLibrary:
    """Maps netlist operations to :class:`CellSpec` cost entries."""

    def __init__(self, cells):
        self._cells = {}
        for cell in cells:
            if cell.name in self._cells:
                raise NetlistError(f"duplicate cell {cell.name!r}")
            self._cells[cell.name] = cell

    def __contains__(self, name):
        return name in self._cells

    def get(self, name):
        """CellSpec for ``name``; raises NetlistError when missing."""
        try:
            return self._cells[name]
        except KeyError:
            raise NetlistError(
                f"cell {name!r} not in library "
                f"(available: {sorted(self._cells)})"
            ) from None

    def names(self):
        """Sorted cell names."""
        return sorted(self._cells)


def default_library(n_bits=1, waveguide=None, cost_model=None):
    """Build the library from the physical gate models.

    ``n_bits`` = 1 gives scalar cell costs; larger values give the
    per-gate cost of an n-bit data-parallel cell (one cell then processes
    n circuit instances at once -- divide system cost accordingly in
    :func:`repro.circuits.estimate.parallel_vs_scalar`).
    """
    from repro.core.metrics import CostModel, gate_cost
    from repro.waveguide import Waveguide

    waveguide = waveguide if waveguide is not None else Waveguide()
    cost_model = cost_model if cost_model is not None else CostModel()

    cells = []
    for operation in sorted(PHYSICAL_BINDINGS):
        layout = physical_gate(operation, n_bits, waveguide=waveguide).layout
        cost = gate_cost(layout, cost_model)
        cells.append(CellSpec(operation, cost.area, cost.delay, cost.energy))
    cells.extend(
        [
            # Inversion is a detector-placement choice: no extra transducer.
            CellSpec("INV", 0.0, 0.0, 0.0),
            CellSpec("BUF", 0.0, 0.0, 0.0),
        ]
    )
    return CellLibrary(cells)
