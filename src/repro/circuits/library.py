"""Spin-wave cell library with per-cell cost figures.

Cell costs derive from the gate-level models in
:mod:`repro.core.metrics`: a MAJ3 cell is one in-line 3-input gate,
an XOR2 cell a 2-input amplitude-readout gate, an INV is free in the SW
domain (read the complemented output by detector placement, Section III)
apart from a detector-position constraint we charge nothing for.
"""

from dataclasses import dataclass

from repro.errors import NetlistError


@dataclass(frozen=True)
class CellSpec:
    """Area [m^2], delay [s] and energy [J] of one library cell."""

    name: str
    area: float
    delay: float
    energy: float

    def __post_init__(self):
        if self.area < 0 or self.delay < 0 or self.energy < 0:
            raise NetlistError(f"cell {self.name!r} has negative cost")


class CellLibrary:
    """Maps netlist operations to :class:`CellSpec` cost entries."""

    def __init__(self, cells):
        self._cells = {}
        for cell in cells:
            if cell.name in self._cells:
                raise NetlistError(f"duplicate cell {cell.name!r}")
            self._cells[cell.name] = cell

    def __contains__(self, name):
        return name in self._cells

    def get(self, name):
        """CellSpec for ``name``; raises NetlistError when missing."""
        try:
            return self._cells[name]
        except KeyError:
            raise NetlistError(
                f"cell {name!r} not in library "
                f"(available: {sorted(self._cells)})"
            ) from None

    def names(self):
        """Sorted cell names."""
        return sorted(self._cells)


def default_library(n_bits=1, waveguide=None, cost_model=None):
    """Build the library from the physical gate models.

    ``n_bits`` = 1 gives scalar cell costs; larger values give the
    per-gate cost of an n-bit data-parallel cell (one cell then processes
    n circuit instances at once -- divide system cost accordingly in
    :func:`repro.circuits.estimate.parallel_vs_scalar`).
    """
    from repro.core.frequency_plan import FrequencyPlan
    from repro.core.gate import GateKind
    from repro.core.layout import InlineGateLayout
    from repro.core.metrics import CostModel, gate_cost
    from repro.units import GHZ
    from repro.waveguide import Waveguide

    waveguide = waveguide if waveguide is not None else Waveguide()
    cost_model = cost_model if cost_model is not None else CostModel()
    if n_bits == 1:
        plan = FrequencyPlan([10.0 * GHZ])
    else:
        plan = FrequencyPlan.uniform(n_bits, 10.0 * GHZ, 10.0 * GHZ)

    maj_layout = InlineGateLayout(waveguide, plan, n_inputs=3)
    maj_cost = gate_cost(maj_layout, cost_model)
    xor_layout = InlineGateLayout(waveguide, plan, n_inputs=2)
    xor_cost = gate_cost(xor_layout, cost_model)

    cells = [
        CellSpec("MAJ3", maj_cost.area, maj_cost.delay, maj_cost.energy),
        CellSpec("XOR2", xor_cost.area, xor_cost.delay, xor_cost.energy),
        # Inversion is a detector-placement choice: no extra transducer.
        CellSpec("INV", 0.0, 0.0, 0.0),
        CellSpec("BUF", 0.0, 0.0, 0.0),
    ]
    return CellLibrary(cells)
