"""A minimal gate-level netlist with simulation and timing analysis.

Nodes are primary inputs, constants, or cells (MAJ3, INV, XOR2); edges
carry single bits.  The netlist is a DAG (combinational logic only);
:meth:`Netlist.evaluate` computes outputs with plain Boolean semantics,
and :meth:`Netlist.depth` / :meth:`Netlist.critical_path` feed the
circuit cost model.

The topological order and level assignment are computed once and cached
(:meth:`Netlist.topological_order`, :meth:`Netlist.levels`,
:meth:`Netlist.level_schedule`); topology-changing construction methods
(``add_*``) invalidate the cache, while output bookkeeping
(:meth:`Netlist.mark_output`, including re-registration of an existing
output) deliberately does not: the cached tuples depend only on the
DAG, and every output-sensitive query (:meth:`Netlist.evaluate`,
:meth:`Netlist.depth`, :meth:`Netlist.critical_path`) reads the live
output list on top of the cache -- pinned by the regression tests in
``tests/test_circuits.py``.  :meth:`Netlist.evaluate_batch` evaluates
many assignments as whole-array operations -- it is the Boolean
reference the physical circuit engine
(:class:`repro.circuits.engine.CircuitEngine`, which executes the same
levelized schedule on batched spin-wave gates) is pinned against.

>>> netlist = Netlist("demo")
>>> _ = netlist.add_input("a")
>>> _ = netlist.add_input("b")
>>> _ = netlist.add_cell("x", "XOR2", ("a", "b"))
>>> _ = netlist.mark_output("x")
>>> netlist.evaluate({"a": 1, "b": 0})
{'x': 1}
>>> schedule = netlist.level_schedule()
>>> _ = netlist.mark_output("a")  # output edits leave the cache valid
>>> netlist.level_schedule() is schedule
True
>>> netlist.evaluate({"a": 1, "b": 0})
{'x': 1, 'a': 1}
"""

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.core.encoding import validate_bit
from repro.errors import NetlistError

#: Supported cell operations and their evaluators.
_OPERATIONS = {
    "MAJ3": lambda bits: int(sum(bits) >= 2),
    "INV": lambda bits: 1 - bits[0],
    "XOR2": lambda bits: bits[0] ^ bits[1],
    "BUF": lambda bits: bits[0],
}

_ARITY = {"MAJ3": 3, "INV": 1, "XOR2": 2, "BUF": 1}

#: Array-native evaluators: each maps a list of (n,) int arrays (one per
#: fanin) to the (n,) output array -- the vectorised twin of _OPERATIONS.
_BATCH_OPERATIONS = {
    "MAJ3": lambda bits: (bits[0] + bits[1] + bits[2] >= 2).astype(np.int64),
    "INV": lambda bits: 1 - bits[0],
    "XOR2": lambda bits: bits[0] ^ bits[1],
    "BUF": lambda bits: bits[0].copy(),
}


@dataclass(frozen=True)
class Node:
    """One netlist node: a primary input, a constant, or a cell."""

    name: str
    kind: str  # "input", "const0", "const1", or an operation name
    fanin: tuple = field(default_factory=tuple)


class Netlist:
    """A combinational majority-inverter-XOR netlist."""

    def __init__(self, name="netlist"):
        self.name = name
        self._graph = nx.DiGraph()
        self._outputs = []
        # (order, levels, parents, schedule) -- rebuilt lazily after any
        # topology change (see _topology).
        self._topology_cache = None
        # Monotonic counter bumped by every topology change; consumers
        # (the circuit engine, the compile cache) key compiled artifacts
        # on it instead of on schedule identity, so pickling or cache
        # round-trips never force spurious recompiles.
        self._revision = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _check_fresh(self, name):
        if name in self._graph:
            raise NetlistError(f"node {name!r} already exists")

    def add_input(self, name):
        """Declare a primary input; returns its name."""
        self._check_fresh(name)
        self._graph.add_node(name, node=Node(name, "input"))
        self._topology_cache = None
        self._revision += 1
        return name

    def add_const(self, name, value):
        """Declare a constant 0/1 node; returns its name."""
        self._check_fresh(name)
        value = validate_bit(value)
        self._graph.add_node(name, node=Node(name, f"const{value}"))
        self._topology_cache = None
        self._revision += 1
        return name

    def add_cell(self, name, operation, fanin):
        """Add a cell ``operation`` driven by existing nodes ``fanin``."""
        self._check_fresh(name)
        if operation not in _OPERATIONS:
            raise NetlistError(
                f"unknown operation {operation!r}; "
                f"supported: {sorted(_OPERATIONS)}"
            )
        fanin = tuple(fanin)
        if len(fanin) != _ARITY[operation]:
            raise NetlistError(
                f"{operation} takes {_ARITY[operation]} inputs, "
                f"got {len(fanin)}"
            )
        for driver in fanin:
            if driver not in self._graph:
                raise NetlistError(f"fanin node {driver!r} does not exist")
        self._graph.add_node(name, node=Node(name, operation, fanin))
        for driver in fanin:
            self._graph.add_edge(driver, name)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_node(name)
            raise NetlistError(
                f"adding {name!r} would create a combinational loop"
            )
        self._topology_cache = None
        self._revision += 1
        return name

    def mark_output(self, name):
        """Register an existing node as a primary output.

        Re-registering an already-marked output is a no-op (outputs keep
        their first registration order).  Output edits never touch the
        topology cache or bump :attr:`topology_revision`: the cached
        order/levels/schedule describe the DAG alone, and consumers
        keying compiled artifacts on the revision (the circuit engine,
        the compile cache) must not recompile for an output edit --
        only ``add_*`` calls invalidate.  Detector-placement
        inversion is likewise *not* a netlist edit: the engine resolves
        INV/BUF cells at the regeneration boundary, so flipping an
        output's polarity means adding an ``INV`` cell (which does
        invalidate) and marking it.
        """
        if name not in self._graph:
            raise NetlistError(f"cannot mark unknown node {name!r} as output")
        if name not in self._outputs:
            self._outputs.append(name)
        return name

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def topology_revision(self):
        """Monotonic topology revision: bumps on every ``add_*`` call.

        Output bookkeeping (:meth:`mark_output`) does not bump it.  Two
        reads returning the same value guarantee the DAG (and therefore
        the cached level schedule) is unchanged -- a robust staleness
        key for compiled execution artifacts that survives pickling and
        cache round-trips, unlike object identity of the schedule tuple.
        """
        return self._revision

    @property
    def inputs(self):
        """Primary input names in insertion order."""
        return [
            n for n in self._graph.nodes
            if self._graph.nodes[n]["node"].kind == "input"
        ]

    @property
    def outputs(self):
        """Primary output names in registration order."""
        return list(self._outputs)

    def cells(self, operation=None):
        """Cell nodes, optionally filtered by operation."""
        result = []
        for n in self._graph.nodes:
            node = self._graph.nodes[n]["node"]
            if node.kind in _OPERATIONS and (
                operation is None or node.kind == operation
            ):
                result.append(node)
        return result

    def cell_counts(self):
        """Histogram {operation: count} over all cells."""
        counts = {}
        for node in self.cells():
            counts[node.kind] = counts.get(node.kind, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Topology (cached)
    # ------------------------------------------------------------------
    def _topology(self):
        """Cached ``(order, levels, parents, schedule)`` of the DAG.

        One topological sort serves :meth:`evaluate`,
        :meth:`evaluate_batch`, :meth:`depth`, :meth:`critical_path` and
        the physical engine's level schedule; any ``add_*`` call
        invalidates the cache.
        """
        if self._topology_cache is None:
            order = tuple(nx.topological_sort(self._graph))
            levels = {}
            parents = {}
            buckets = {}
            for name in order:
                node = self._graph.nodes[name]["node"]
                if node.kind in ("input", "const0", "const1"):
                    levels[name] = 0
                    parents[name] = None
                else:
                    best = max(node.fanin, key=lambda d: levels[d])
                    levels[name] = 1 + levels[best]
                    parents[name] = best
                    buckets.setdefault(levels[name], []).append(node)
            schedule = tuple(
                tuple(buckets[level]) for level in sorted(buckets)
            )
            self._topology_cache = (order, levels, parents, schedule)
        return self._topology_cache

    def node(self, name):
        """The :class:`Node` record of ``name``; raises when unknown."""
        try:
            return self._graph.nodes[name]["node"]
        except KeyError:
            raise NetlistError(f"unknown node {name!r}") from None

    def topological_order(self):
        """Cached topological node order (tuple of names)."""
        return self._topology()[0]

    def levels(self):
        """{node name: level}; inputs/constants are level 0 (cached)."""
        return dict(self._topology()[1])

    def level_schedule(self):
        """Cells grouped by level: entry ``l - 1`` holds the level-``l``
        :class:`Node` tuples in topological order (cached).

        This is the execution schedule of the physical circuit engine:
        every cell of one level depends only on earlier levels, so a
        level's cells evaluate as one batch
        (:class:`repro.circuits.engine.CircuitEngine`).
        """
        return self._topology()[3]

    # ------------------------------------------------------------------
    # Evaluation and timing
    # ------------------------------------------------------------------
    def evaluate(self, assignments):
        """Evaluate outputs for ``assignments`` {input name: bit}.

        Returns {output name: bit}.  Raises on missing inputs.
        """
        values = {}
        for name in self.topological_order():
            node = self._graph.nodes[name]["node"]
            if node.kind == "input":
                if name not in assignments:
                    raise NetlistError(f"no value supplied for input {name!r}")
                values[name] = validate_bit(assignments[name])
            elif node.kind == "const0":
                values[name] = 0
            elif node.kind == "const1":
                values[name] = 1
            else:
                bits = [values[d] for d in node.fanin]
                values[name] = _OPERATIONS[node.kind](bits)
        missing = [o for o in self._outputs if o not in values]
        if missing:
            raise NetlistError(f"outputs {missing!r} were never computed")
        return {o: values[o] for o in self._outputs}

    def evaluate_batch(self, assignments_batch):
        """Vectorised :meth:`evaluate` over many assignments.

        ``assignments_batch`` is a sequence of ``{input name: bit}``
        mappings; every node evaluates once as a whole-array operation
        over the batch.  Returns ``{output name: list of bits}`` whose
        entry ``i`` equals ``evaluate(assignments_batch[i])``.  This is
        the Boolean reference of the physical circuit engine.
        """
        assignments_batch = list(assignments_batch)
        if not assignments_batch:
            raise NetlistError("no assignments supplied")
        n_sets = len(assignments_batch)
        values = {}
        for name in self.topological_order():
            node = self._graph.nodes[name]["node"]
            if node.kind == "input":
                try:
                    column = [a[name] for a in assignments_batch]
                except KeyError:
                    raise NetlistError(
                        f"no value supplied for input {name!r}"
                    ) from None
                array = np.asarray(
                    [validate_bit(b) for b in column], dtype=np.int64
                )
                values[name] = array
            elif node.kind == "const0":
                values[name] = np.zeros(n_sets, dtype=np.int64)
            elif node.kind == "const1":
                values[name] = np.ones(n_sets, dtype=np.int64)
            else:
                fanin = [values[d] for d in node.fanin]
                values[name] = _BATCH_OPERATIONS[node.kind](fanin)
        missing = [o for o in self._outputs if o not in values]
        if missing:
            raise NetlistError(f"outputs {missing!r} were never computed")
        return {o: values[o].tolist() for o in self._outputs}

    def depth(self):
        """Logic depth in cell levels (inputs/constants are level 0)."""
        levels = self._topology()[1]
        if not self._outputs:
            return max(levels.values(), default=0)
        return max(levels[o] for o in self._outputs)

    def critical_path(self):
        """One deepest input-to-output node path (list of names)."""
        _, levels, parents, _ = self._topology()
        if not levels:
            return []
        terminals = self._outputs or list(levels)
        end = max(terminals, key=lambda n: levels[n])
        path = [end]
        while parents[path[-1]] is not None:
            path.append(parents[path[-1]])
        return list(reversed(path))

    def graph(self):
        """A copy of the underlying networkx DiGraph."""
        return self._graph.copy()

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_dict(self):
        """JSON-pure dict of the netlist (nodes in insertion order).

        The wire format of the serving layer (:mod:`repro.serve`):
        node insertion order is preserved, so :meth:`from_dict` rebuilds
        a netlist whose content hash
        (:func:`~repro.circuits.compiled.netlist_signature`) -- and
        therefore compile-cache and coalescing behaviour -- matches the
        original exactly.

        >>> netlist = Netlist("wire")
        >>> _ = netlist.add_input("a")
        >>> _ = netlist.add_cell("na", "INV", ("a",))
        >>> _ = netlist.mark_output("na")
        >>> clone = Netlist.from_dict(netlist.to_dict())
        >>> clone.evaluate({"a": 0})
        {'na': 1}
        """
        nodes = []
        for name in self._graph.nodes:
            node = self._graph.nodes[name]["node"]
            nodes.append({
                "name": node.name,
                "kind": node.kind,
                "fanin": list(node.fanin),
            })
        return {
            "name": self.name,
            "nodes": nodes,
            "outputs": list(self._outputs),
        }

    @classmethod
    def from_dict(cls, payload):
        """Rebuild a netlist from :meth:`to_dict` output.

        Every node re-enters through the validating ``add_*``
        constructors, so malformed payloads (unknown kinds, missing
        fanin, cycles) raise :class:`~repro.errors.NetlistError` rather
        than building a corrupt DAG.
        """
        if not isinstance(payload, dict):
            raise NetlistError(
                f"netlist payload must be a dict, got {type(payload).__name__}"
            )
        netlist = cls(str(payload.get("name", "netlist")))
        nodes = payload.get("nodes")
        if not isinstance(nodes, list):
            raise NetlistError("netlist payload needs a 'nodes' list")
        for entry in nodes:
            if not isinstance(entry, dict) or "name" not in entry:
                raise NetlistError(
                    f"malformed netlist node entry {entry!r}"
                )
            name = entry["name"]
            kind = entry.get("kind")
            if kind == "input":
                netlist.add_input(name)
            elif kind in ("const0", "const1"):
                netlist.add_const(name, int(kind[-1]))
            elif kind in _OPERATIONS:
                netlist.add_cell(name, kind, tuple(entry.get("fanin", ())))
            else:
                raise NetlistError(
                    f"unknown node kind {kind!r} for node {name!r}"
                )
        for name in payload.get("outputs", ()):
            netlist.mark_output(name)
        return netlist
