"""Circuit-level area/delay/energy estimation.

Sums per-cell library costs over a netlist and contrasts a scalar
implementation with an n-bit data-parallel one: in the parallel style a
single physical circuit processes n independent data words, so its area
is the (somewhat larger) n-bit cell area but its per-word figures divide
by n -- the circuit-level generalisation of the paper's 4.16x gate
result.
"""

from dataclasses import dataclass

from repro.errors import NetlistError


@dataclass(frozen=True)
class CircuitCost:
    """Aggregate cost of one netlist implementation."""

    area: float  # [m^2]
    delay: float  # [s] along the critical path
    energy: float  # [J] per evaluation
    n_cells: int

    def per_word(self, n_words):
        """Cost attributed to one data word when n are processed at once."""
        if n_words < 1:
            raise NetlistError(f"n_words must be >= 1, got {n_words!r}")
        return CircuitCost(
            area=self.area / n_words,
            delay=self.delay,
            energy=self.energy / n_words,
            n_cells=self.n_cells,
        )


def circuit_cost(netlist, library):
    """Total area/energy and critical-path delay of ``netlist``.

    Delay sums the cell delays along the deepest path (wire delay is
    part of each gate's propagation figure already).
    """
    area = 0.0
    energy = 0.0
    n_cells = 0
    for node in netlist.cells():
        spec = library.get(node.kind)
        area += spec.area
        energy += spec.energy
        n_cells += 1
    delay = 0.0
    for name in netlist.critical_path():
        node = netlist.graph().nodes[name]["node"]
        if node.kind in ("input", "const0", "const1"):
            continue
        delay += library.get(node.kind).delay
    return CircuitCost(area=area, delay=delay, energy=energy, n_cells=n_cells)


@dataclass(frozen=True)
class ParallelVsScalar:
    """Comparison of implementing n copies of a circuit."""

    scalar_total: CircuitCost  # n scalar circuits
    parallel_total: CircuitCost  # one n-bit data-parallel circuit
    n_words: int

    @property
    def area_ratio(self):
        """Scalar total area / parallel total area."""
        return self.scalar_total.area / self.parallel_total.area

    @property
    def energy_ratio(self):
        """Scalar total energy / parallel total energy."""
        return self.scalar_total.energy / self.parallel_total.energy

    @property
    def delay_ratio(self):
        """Scalar delay / parallel delay (both single-pass)."""
        return self.scalar_total.delay / self.parallel_total.delay


def parallel_vs_scalar(netlist, n_words, waveguide=None, cost_model=None):
    """Compare n scalar circuit instances against one n-bit parallel one.

    Builds scalar (1-bit) and n-bit cell libraries from the physical gate
    models and scales the scalar circuit cost by ``n_words``.
    """
    from repro.circuits.library import default_library

    if n_words < 1:
        raise NetlistError(f"n_words must be >= 1, got {n_words!r}")
    scalar_lib = default_library(1, waveguide=waveguide, cost_model=cost_model)
    parallel_lib = default_library(
        n_words, waveguide=waveguide, cost_model=cost_model
    )
    scalar_one = circuit_cost(netlist, scalar_lib)
    scalar_total = CircuitCost(
        area=scalar_one.area * n_words,
        delay=scalar_one.delay,
        energy=scalar_one.energy * n_words,
        n_cells=scalar_one.n_cells * n_words,
    )
    parallel_total = circuit_cost(netlist, parallel_lib)
    return ParallelVsScalar(
        scalar_total=scalar_total,
        parallel_total=parallel_total,
        n_words=n_words,
    )
