"""Compile-once circuit execution: frozen packed artifacts (PR 6).

The per-op batched engine path (:meth:`CircuitEngine._execute`) rebuilds
its value dictionaries, regeneration buffers and per-(cell, group) word
lists on *every* run, and issues one phasor GEMM per (level, operation).
This module compiles a netlist **once** into a :class:`CompiledCircuit`
artifact and executes batches against it:

* an immutable level schedule with integer *slot* tables (every node is
  a row of one preallocated ``(n_slots, padded)`` value buffer -- no
  per-run dict churn, no per-cell ``np.zeros``);
* per-level **cross-operation packing**: the nominal propagation weights
  of every operation sharing a level are block-stacked
  (:meth:`~repro.waveguide.LinearWaveguideModel.block_stack_weights`)
  so all same-layout physical cells of the level -- MAJ3 and XOR2 alike
  -- evaluate as **one** complex GEMM per level in phasor mode;
* precomputed INV/BUF masks: all free cells of a level resolve as one
  vectorised ``np.where`` over buffer rows;
* baked-in nominal calibration rows, phase LUTs and amplitude rows per
  operation, plus a lazily-grown per-``(operation, fault)`` calibration
  cache for faulted cells (faulted calibration *includes* the fault,
  exactly like :class:`~repro.core.faults.FaultySimulator`'s inherited
  calibration path).

Semantics are pinned to the per-op path: identical noise seeds (one
derived model per (cell, group)), identical fault mutation order
(noise first, then the victim column), identical dead-decode marking
and strict-mode error messages.  Phasor bits are exact and margins
agree to ~1e-15 (the only difference is BLAS reassociation over the
packed k-dimension); trace mode reuses
:meth:`~repro.core.simulate.GateSimulator.run_batch` on ndarray
gathers, so it shares the time-domain physics verbatim.
``tests/test_circuit_conformance.py`` pins both modes against
:meth:`CircuitEngine.run_scalar` to <= 1e-12.

Artifacts key on :func:`netlist_signature` (a content hash of the DAG
plus outputs) -- :class:`CompiledCircuitCache` is the LRU compile cache
the coalescing :class:`~repro.circuits.executor.CircuitExecutor` serves
many circuits from.  :func:`physics_pristine` guards the whole layer:
when any simulator hook has been replaced (subclassing experiments,
monkeypatched tests), the engine falls back to the per-op path whose
hooks still fire.
"""

import hashlib
import math
import pickle
import time
from collections import OrderedDict
from dataclasses import replace

import numpy as np

from repro import obs
from repro.circuits.engine import (
    CellFault,
    CellRecord,
    CircuitRunResult,
    LevelReport,
)
from repro.circuits.library import PHYSICAL_BINDINGS, physical_arity
from repro.core.faults import FaultySimulator
from repro.core.readout import decode_phasor_block
from repro.core.simulate import GateSimulator
from repro.errors import ArtifactError, NetlistError, SimulationError
from repro.waveguide.linear_model import LinearWaveguideModel

# ----------------------------------------------------------------------
# Physics pristineness: the packed path bakes the *current* simulator
# semantics in at compile time.  If any of these hooks is later replaced
# (a subclass experiment assigned onto the class, a monkeypatched test),
# the baked artifact would silently skip the override -- so the engine
# checks this snapshot and falls back to the per-op path, where every
# hook still fires.
# ----------------------------------------------------------------------
_PRISTINE_HOOKS = (
    (GateSimulator, "build_sources"),
    (GateSimulator, "build_source_bank"),
    (GateSimulator, "mutate_source_bank"),
    (GateSimulator, "run_phasor_batch"),
    (GateSimulator, "run_batch"),
    (GateSimulator, "calibration"),
    (FaultySimulator, "build_sources"),
    (FaultySimulator, "mutate_source_bank"),
)
_PRISTINE_SNAPSHOT = tuple(
    klass.__dict__.get(name) for klass, name in _PRISTINE_HOOKS
)


def physics_pristine():
    """True when the simulator hooks the packed path bakes in are intact.

    Compared by identity against an import-time snapshot of the class
    dictionaries, so both monkeypatching and class-level reassignment
    are detected (instance-level and subclass overrides never reach the
    packed path: the artifact builds its own simulators from
    :class:`~repro.circuits.library.GateBindings`).
    """
    return all(
        klass.__dict__.get(name) is func
        for (klass, name), func in zip(_PRISTINE_HOOKS, _PRISTINE_SNAPSHOT)
    )


def netlist_signature(netlist):
    """Canonical content hash of a netlist's DAG and output list.

    Two netlists with equal signatures have identical node names, kinds,
    fanin wiring and output registrations -- a compiled artifact of one
    executes the other bit-identically.  This is the compile-cache key
    (:class:`CompiledCircuitCache`) and the coalescing key of the
    :class:`~repro.circuits.executor.CircuitExecutor`.  Output edits
    (:meth:`~repro.circuits.netlist.Netlist.mark_output`) change the
    signature even though they do not bump the topology revision --
    caches keyed here never serve stale output lists.
    """
    digest = hashlib.sha256()
    for name in sorted(netlist.topological_order()):
        node = netlist.node(name)
        digest.update(repr((node.name, node.kind, node.fanin)).encode())
    digest.update(repr(tuple(netlist.outputs)).encode())
    return digest.hexdigest()


def _normalise_faults(netlist, faults):
    """{cell name: TransducerFault} with the engine's validation rules."""
    fault_map = {}
    for item in faults:
        if not isinstance(item, CellFault):
            raise NetlistError(
                f"faults must be CellFault instances, got {item!r}"
            )
        node = netlist.node(item.cell)
        if node.kind not in PHYSICAL_BINDINGS:
            raise NetlistError(
                f"cell {item.cell!r} ({node.kind}) has no transducers "
                "to fault (INV/BUF are detector-placement choices)"
            )
        if item.cell in fault_map:
            raise NetlistError(
                f"cell {item.cell!r} carries more than one fault"
            )
        fault_map[item.cell] = item.fault
    return fault_map


class _OpPlan:
    """Packed tables of one operation's cells within one level."""

    __slots__ = (
        "operation", "names", "n_cells", "n_inputs", "fanin_slots",
        "out_slots", "physical_indices", "weights", "cal_phases",
        "cal_amps", "phase_lut", "amp_row", "amplitude_readout",
        "src_offset", "det_offset",
    )


class _LevelPlan:
    """One schedule level: vectorised virtual cells + packed operations."""

    __slots__ = (
        "level", "n_cells", "n_physical", "v_names", "v_src", "v_out",
        "v_invert", "ops", "weights", "n_sources",
    )

    def __init__(self, level, n_cells):
        self.level = level
        self.n_cells = n_cells
        self.n_physical = 0
        self.v_names = []
        self.v_src = None
        self.v_out = None
        self.v_invert = None
        self.ops = []
        self.weights = None
        self.n_sources = 0


class _PackedRun:
    """Scratch state of one padded execution (consumed immediately)."""

    __slots__ = ("n_groups", "n_valid", "buf", "failed", "level_data",
                 "dead_meta")

    def __init__(self, n_groups, n_valid, buf, failed, level_data, dead_meta):
        self.n_groups = n_groups
        self.n_valid = n_valid
        self.buf = buf
        self.failed = failed
        self.level_data = level_data
        self.dead_meta = dead_meta


class CompiledCircuit:
    """A frozen, executable compilation of one netlist onto shared gates.

    Built by :func:`compile_circuit` through four staged passes --
    levelise, allocate slots, pack levels, calibrate -- and then
    executed any number of times via :meth:`run` (or, coalesced across
    requests, via the internal padded entry points the
    :class:`~repro.circuits.executor.CircuitExecutor` drives).  The
    schedule, slot tables and packed weight matrices never change after
    compilation; per-run scratch (value/excitation buffers, the failed
    mask) is preallocated per batch shape and reused.

    ``packable`` is False when some operation's calibration fails (the
    physics cannot produce a reference) -- the engine then falls back to
    the per-op path, which raises the same error lazily.
    """

    def __init__(self, netlist, bindings, registry=None):
        self.netlist = netlist
        self.bindings = bindings
        self.n_bits = bindings.n_bits
        self.signature = netlist_signature(netlist)
        self.topology_revision = netlist.topology_revision
        self.packable = True
        self.unpackable_reason = None
        # Compile spans/counters go to the caller's registry when given
        # (the executor's compile cache passes its private one, so
        # handler-thread compiles never touch the process-global span
        # stack); the registry is a local -- never stored on the
        # artifact, which must stay picklable.
        registry = obs.get_registry() if registry is None else registry
        started = time.perf_counter()
        with registry.span("compile_circuit"):
            with registry.span("levelise"):
                self._stage_levelise()
            with registry.span("allocate"):
                self._stage_allocate_slots()
            with registry.span("pack"):
                self._stage_pack_levels()
            with registry.span("calibrate"):
                self._stage_calibrate()
        # Compile cost travels with the artifact (it is part of the
        # compile-time product, pickled into saved artifacts): request
        # traces report it so a cache-miss request explains its latency.
        self.compile_seconds = time.perf_counter() - started
        registry.inc("circuit.compiles")
        # Per-shape run scratch, grown lazily and reused across runs.
        self._value_buffers = {}
        self._failed_buffers = {}
        self._excite_buffers = {}
        # (operation, fault) -> FaultySimulator / calibration arrays
        # (None when the faulted calibration cannot decode at all).
        self._faulty_sims = {}
        self._faulty_cal = {}

    @property
    def n_physical_cells(self):
        """Number of transducer-level cells in the frozen schedule."""
        return len(self._physical_index)

    # ------------------------------------------------------------------
    # Compilation stages
    # ------------------------------------------------------------------
    def _stage_levelise(self):
        """Freeze the level schedule and the per-cell noise-seed index."""
        self.schedule = self.netlist.level_schedule()
        self._physical_index = {}
        for cells in self.schedule:
            for node in cells:
                if node.kind in PHYSICAL_BINDINGS:
                    self._physical_index[node.name] = len(self._physical_index)

    def _stage_allocate_slots(self):
        """One value-buffer row per node, in topological order."""
        order = self.netlist.topological_order()
        self._slots = {name: i for i, name in enumerate(order)}
        self.n_slots = len(order)
        self._input_rows = []
        self._const_rows = []
        for name in order:
            node = self.netlist.node(name)
            if node.kind == "input":
                self._input_rows.append((name, self._slots[name]))
            elif node.kind == "const0":
                self._const_rows.append((self._slots[name], 0))
            elif node.kind == "const1":
                self._const_rows.append((self._slots[name], 1))

    def _stage_pack_levels(self):
        """Integer gather/scatter tables per level and operation."""
        self.levels = []
        for level_number, cells in enumerate(self.schedule, start=1):
            plan = _LevelPlan(level_number, len(cells))
            virtual = []
            physical = {}
            for node in cells:
                if node.kind in PHYSICAL_BINDINGS:
                    physical.setdefault(node.kind, []).append(node)
                else:
                    virtual.append(node)
            if virtual:
                plan.v_names = [
                    (n.name, self._slots[n.name], n.kind) for n in virtual
                ]
                plan.v_src = np.array(
                    [self._slots[n.fanin[0]] for n in virtual]
                )
                plan.v_out = np.array([self._slots[n.name] for n in virtual])
                plan.v_invert = np.array(
                    [n.kind == "INV" for n in virtual]
                )
            plan.n_physical = sum(len(v) for v in physical.values())
            for operation in sorted(physical):
                nodes = physical[operation]
                op = _OpPlan()
                op.operation = operation
                op.names = tuple(n.name for n in nodes)
                op.n_cells = len(nodes)
                op.n_inputs = physical_arity(operation)
                op.fanin_slots = np.array(
                    [[self._slots[d] for d in n.fanin] for n in nodes]
                )
                op.out_slots = np.array([self._slots[n.name] for n in nodes])
                op.physical_indices = [
                    self._physical_index[n.name] for n in nodes
                ]
                plan.ops.append(op)
            self.levels.append(plan)
        self.has_physical = any(plan.ops for plan in self.levels)

    def _stage_calibrate(self):
        """Bake weights, calibration and excitation tables per operation.

        Skipped entirely for purely virtual netlists, so compiling and
        running them touches no physics (the engine's lazily-built model
        stays unbuilt).  A calibration failure marks the artifact
        unpackable instead of raising: the per-op path reproduces the
        error lazily, at the moment the legacy semantics would.
        """
        if not self.has_physical:
            return
        tables = {}
        for plan in self.levels:
            for op in plan.ops:
                if op.operation not in tables:
                    simulator = self.bindings.simulator(op.operation)
                    try:
                        cal_phases, cal_amps = simulator.calibration_arrays()
                    except SimulationError as exc:
                        self.packable = False
                        self.unpackable_reason = (
                            f"operation {op.operation!r} failed to "
                            f"calibrate: {exc}"
                        )
                        return
                    tables[op.operation] = (
                        simulator.nominal_weights(),
                        cal_phases,
                        cal_amps,
                        simulator._phase_lut,
                        np.asarray(simulator.amplitudes, dtype=float).ravel(),
                        simulator.gate.kind.uses_amplitude_readout,
                    )
                (op.weights, op.cal_phases, op.cal_amps, op.phase_lut,
                 op.amp_row, op.amplitude_readout) = tables[op.operation]
        # Cross-op packing: one block-diagonal weight matrix per level
        # (memoised per operation combination -- levels sharing a combo
        # share one matrix).  Single-op levels use the per-op weights
        # directly, so their GEMM is bit-identical to the per-op path.
        stack_memo = {}
        n_bits = self.n_bits
        for plan in self.levels:
            if not plan.ops:
                continue
            source_offset = detector_offset = 0
            for op in plan.ops:
                op.src_offset = source_offset
                op.det_offset = detector_offset
                source_offset += op.n_inputs * n_bits
                detector_offset += n_bits
            plan.n_sources = source_offset
            if len(plan.ops) == 1:
                plan.weights = plan.ops[0].weights
            else:
                key = tuple(op.operation for op in plan.ops)
                if key not in stack_memo:
                    stack_memo[key] = LinearWaveguideModel.block_stack_weights(
                        [op.weights for op in plan.ops],
                        backend=self.bindings.backend,
                    )
                plan.weights = stack_memo[key]

    # ------------------------------------------------------------------
    # Per-run scratch
    # ------------------------------------------------------------------
    def _buffers(self, padded):
        """The reusable ``(n_slots, padded)`` value buffer + failed mask.

        Constant rows are written once at allocation (nothing else ever
        touches them); the failed mask is cleared on every acquisition.
        """
        buf = self._value_buffers.get(padded)
        if buf is None:
            buf = np.zeros((self.n_slots, padded), dtype=np.int64)
            for slot, value in self._const_rows:
                buf[slot] = value
            self._value_buffers[padded] = buf
        failed = self._failed_buffers.get(padded)
        if failed is None:
            failed = np.zeros(padded, dtype=bool)
            self._failed_buffers[padded] = failed
        else:
            failed[:] = False
        return buf, failed

    def _excite_buffer(self, level_index, plan, n_groups):
        """Reusable excitation block of one level: rows x packed sources.

        Off-segment entries are *structural zeros*: they are never
        written after allocation, and each op's segment is fully
        overwritten per run, so reuse keeps the cross-op GEMM exact.
        """
        key = (level_index, n_groups)
        excite = self._excite_buffers.get(key)
        if excite is None:
            rows = sum(op.n_cells for op in plan.ops) * n_groups
            excite = self.bindings.backend.zeros(
                (rows, plan.n_sources), kind="complex"
            )
            self._excite_buffers[key] = excite
        return excite

    def _fault_simulator(self, operation, fault):
        """Cached FaultySimulator (validates the fault's coordinates)."""
        key = (operation, fault)
        simulator = self._faulty_sims.get(key)
        if simulator is None:
            simulator = self.bindings.faulty_simulator(operation, fault)
            self._faulty_sims[key] = simulator
        return simulator

    def _fault_calibration(self, operation, fault):
        """Per-(operation, fault) calibration rows; None when undecodable.

        Faulted calibration *includes* the fault (the inherited
        calibration path builds the zero-word bank and mutates it), so a
        fault that silences the all-zeros reference -- e.g. stuck-phase-1
        on an XOR2 input -- yields None here and every row of that cell
        decodes dead, exactly like the per-op path's batch-wide
        calibration failure.
        """
        key = (operation, fault)
        if key not in self._faulty_cal:
            simulator = self._fault_simulator(operation, fault)
            try:
                self._faulty_cal[key] = simulator.calibration_arrays()
            except SimulationError:
                self._faulty_cal[key] = None
        return self._faulty_cal[key]

    # ------------------------------------------------------------------
    # Input marshalling
    # ------------------------------------------------------------------
    def _write_inputs(self, buf, batch, group_start, group_end):
        """Write one request's assignments into its group span of ``buf``.

        Same validation and truncation semantics as the engine's
        ``_input_values`` (the buffer rows replace its per-run arrays);
        padding tail bits are explicitly zeroed because the buffer is
        reused across runs.
        """
        n_bits = self.n_bits
        start = group_start * n_bits
        end = group_end * n_bits
        n_entries = len(batch)
        for name, slot in self._input_rows:
            try:
                column = [a[name] for a in batch]
            except KeyError:
                raise NetlistError(
                    f"no value supplied for input {name!r}"
                ) from None
            row = buf[slot]
            row[start + n_entries : end] = 0
            row[start : start + n_entries] = np.asarray(
                column, dtype=np.int64
            )
            if not np.isin(row[start : start + n_entries], (0, 1)).all():
                raise NetlistError("logic values must all be 0 or 1")

    @staticmethod
    def _derived_noise(context, physical_index):
        """The (cell, group) noise model of one group context.

        ``context`` is ``(template, ctx_n_groups, ctx_group)`` -- the
        request-relative group coordinates, so a request executed inside
        a coalesced block draws exactly the realisations it would have
        drawn standalone.
        """
        template, ctx_groups, ctx_group = context
        if template is None:
            return None
        return replace(
            template,
            seed=template.seed + physical_index * ctx_groups + ctx_group + 1,
        )

    # ------------------------------------------------------------------
    # Padded execution (shared by run() and the coalescing executor)
    # ------------------------------------------------------------------
    def _execute_padded(self, buf, failed, n_groups, n_valid, contexts,
                        group_faults, mode, registry=None):
        """Execute every level over ``n_groups`` padded word groups.

        ``contexts[g]`` is the noise context of group ``g``;
        ``group_faults[g]`` its ``{cell: TransducerFault}`` map;
        ``n_valid[g]`` how many of its bits carry real entries.  Never
        raises for dead decodes -- strict handling happens per request
        via :meth:`_first_dead` so one coalesced failure cannot poison
        its neighbours.  ``registry`` routes the level spans/counters
        (the executor passes its private registry; direct callers
        default to the process-global one).
        """
        level_data = []
        dead_meta = []
        draws = {}
        registry = obs.get_registry() if registry is None else registry
        registry.inc("circuit.packed_runs")
        for level_index, plan in enumerate(self.levels):
            if plan.v_out is not None:
                source = buf[plan.v_src]
                buf[plan.v_out] = np.where(
                    plan.v_invert[:, None], 1 - source, source
                )
            op_data = []
            if plan.ops:
                if mode == "trace":
                    with registry.span("circuit/level/trace"):
                        self._execute_level_trace(
                            plan, buf, failed, n_groups, n_valid, contexts,
                            group_faults, op_data, dead_meta,
                        )
                else:
                    registry.inc("circuit.level_gemms")
                    with registry.span("circuit/level/phasor"):
                        self._execute_level_phasor(
                            level_index, plan, buf, failed, n_groups,
                            n_valid, contexts, group_faults, draws, op_data,
                            dead_meta,
                        )
            level_data.append(op_data)
        return _PackedRun(
            n_groups=n_groups,
            n_valid=n_valid,
            buf=buf,
            failed=failed,
            level_data=level_data,
            dead_meta=dead_meta,
        )

    def _execute_level_phasor(self, level_index, plan, buf, failed, n_groups,
                              n_valid, contexts, group_faults, draws,
                              op_data, dead_meta):
        """One cross-op packed GEMM evaluates every physical cell."""
        n_bits = self.n_bits
        padded = n_groups * n_bits
        excite = self._excite_buffer(level_index, plan, n_groups)
        jobs = []
        row_offset = 0
        for op_index, op in enumerate(plan.ops):
            n_cells, n_inputs = op.n_cells, op.n_inputs
            rows = n_cells * n_groups
            n_sources = n_inputs * n_bits
            # Gather fanin bits channel-major: column c*F + f carries
            # fanin f's bit on channel c -- the exact source order of
            # build_source_bank.
            bits = (
                buf[op.fanin_slots]
                .reshape(n_cells, n_inputs, n_groups, n_bits)
                .transpose(0, 2, 3, 1)
                .reshape(rows, n_sources)
            )
            phase = op.phase_lut[bits]
            amplitude = np.broadcast_to(op.amp_row, (rows, n_sources))
            row_refs = None
            forced_dead = None
            mutate = any(contexts[g][0] is not None for g in range(n_groups))
            mutate = mutate or any(
                name in faults
                for faults in group_faults for name in op.names
            )
            if mutate:
                amplitude = np.array(amplitude)
                for cell_index, name in enumerate(op.names):
                    physical_index = op.physical_indices[cell_index]
                    for group in range(n_groups):
                        row = cell_index * n_groups + group
                        noise = self._derived_noise(
                            contexts[group], physical_index
                        )
                        if noise is not None and noise.perturbs_sources:
                            # Keyed by arity too: derived seeds can
                            # collide across coalesced requests with
                            # different group counts, and a colliding
                            # draw must still match this op's width.
                            draw_key = (noise, n_sources)
                            if draw_key not in draws:
                                draws[draw_key] = (
                                    noise.source_perturbations(n_sources)
                                )
                            factor, phase_offset, _ = draws[draw_key]
                            amplitude[row] *= factor
                            phase[row] += phase_offset
                        fault = group_faults[group].get(name)
                        if fault is None:
                            continue
                        # Calibration first: constructing the faulty
                        # simulator validates the fault coordinates.
                        calibration = self._fault_calibration(
                            op.operation, fault
                        )
                        if row_refs is None:
                            row_refs = (
                                np.broadcast_to(
                                    op.cal_phases, (rows, n_bits)
                                ).copy(),
                                np.broadcast_to(
                                    op.cal_amps, (rows, n_bits)
                                ).copy(),
                            )
                            forced_dead = np.zeros(rows, dtype=bool)
                        if calibration is None:
                            forced_dead[row] = True
                            row_refs[0][row] = 0.0
                            row_refs[1][row] = 1.0
                        else:
                            row_refs[0][row] = calibration[0]
                            row_refs[1][row] = calibration[1]
                        # Fault lands after noise, on the victim column.
                        column = fault.channel * n_inputs + fault.input_index
                        if fault.kind == "dead-source":
                            amplitude[row, column] = 0.0
                        elif fault.kind == "weak-source":
                            amplitude[row, column] *= fault.severity
                        elif fault.kind == "stuck-phase-0":
                            phase[row, column] = 0.0
                        else:  # stuck-phase-1
                            phase[row, column] = math.pi
            excite[
                row_offset : row_offset + rows,
                op.src_offset : op.src_offset + n_sources,
            ] = amplitude * np.exp(1j * phase)
            jobs.append((op_index, op, row_offset, rows, row_refs,
                         forced_dead))
            row_offset += rows
        phasors = excite @ plan.weights
        for op_index, op, row_start, rows, row_refs, forced_dead in jobs:
            block = phasors[
                row_start : row_start + rows,
                op.det_offset : op.det_offset + n_bits,
            ]
            if row_refs is None:
                ref_phases, ref_amps = op.cal_phases, op.cal_amps
            else:
                ref_phases, ref_amps = row_refs
            bits, _, amplitudes, margins, dead = decode_phasor_block(
                block, ref_phases, ref_amps,
                amplitude_readout=op.amplitude_readout,
            )
            dead_rows = dead.any(axis=1)
            if forced_dead is not None:
                dead_rows |= forced_dead
            if dead_rows.any():
                bits = np.where(dead_rows[:, None], 0, bits)
                margins = np.where(dead_rows[:, None], math.nan, margins)
                amplitudes = np.where(
                    dead_rows[:, None], math.nan, amplitudes
                )
                for row in np.flatnonzero(dead_rows):
                    cell_index, group = divmod(int(row), n_groups)
                    failed[
                        group * n_bits : group * n_bits + n_valid[group]
                    ] = True
                    name = op.names[cell_index]
                    dead_meta.append((
                        plan.level, op_index, name in group_faults[group],
                        cell_index, group, name,
                    ))
            buf[op.out_slots] = bits.reshape(op.n_cells, padded)
            op_data.append((
                op,
                margins.reshape(op.n_cells, n_groups, n_bits),
                amplitudes.reshape(op.n_cells, n_groups, n_bits),
                dead_rows.reshape(op.n_cells, n_groups),
            ))

    def _execute_level_trace(self, plan, buf, failed, n_groups, n_valid,
                             contexts, group_faults, op_data, dead_meta):
        """Waveform execution per (level, op) on ndarray gathers.

        Per-gate time grids differ, so trace mode cannot cross-op pack;
        instead each operation's (cell, group) rows partition by fault
        and run through the array-native
        :meth:`~repro.core.simulate.GateSimulator.run_batch` -- the same
        physics as the per-op path, fed straight from the value buffer.
        """
        n_bits = self.n_bits
        for op_index, op in enumerate(plan.ops):
            n_cells, n_inputs = op.n_cells, op.n_inputs
            rows = n_cells * n_groups
            entries_all = (
                buf[op.fanin_slots]
                .reshape(n_cells, n_inputs, n_groups, n_bits)
                .transpose(0, 2, 1, 3)
                .reshape(rows, n_inputs, n_bits)
            )
            margins = np.full((n_cells, n_groups, n_bits), math.nan)
            amplitudes = np.full((n_cells, n_groups, n_bits), math.nan)
            dead_rows = np.zeros((n_cells, n_groups), dtype=bool)
            jobs = {}
            for cell_index, name in enumerate(op.names):
                for group in range(n_groups):
                    fault = group_faults[group].get(name)
                    jobs.setdefault(fault, []).append((cell_index, group))
            keys = list(jobs)
            if None in jobs:
                keys.remove(None)
                keys.insert(0, None)
            for fault in keys:
                pairs = jobs[fault]
                if fault is None:
                    simulator = self.bindings.simulator(op.operation)
                else:
                    simulator = self._fault_simulator(op.operation, fault)
                if len(pairs) == rows:
                    entries = entries_all
                else:
                    entries = entries_all[
                        np.array([c * n_groups + g for c, g in pairs])
                    ]
                noises = [
                    self._derived_noise(contexts[g], op.physical_indices[c])
                    for c, g in pairs
                ]
                if all(noise is None for noise in noises):
                    noises = None
                runs = simulator.run_batch(
                    np.ascontiguousarray(entries), noises=noises,
                    strict=False,
                )
                for (cell_index, group), run in zip(pairs, runs):
                    window = slice(group * n_bits, (group + 1) * n_bits)
                    if run is None:
                        failed[
                            group * n_bits : group * n_bits + n_valid[group]
                        ] = True
                        buf[op.out_slots[cell_index], window] = 0
                        dead_rows[cell_index, group] = True
                        dead_meta.append((
                            plan.level, op_index, fault is not None,
                            cell_index, group, op.names[cell_index],
                        ))
                        continue
                    buf[op.out_slots[cell_index], window] = run.decoded
                    margins[cell_index, group] = [
                        d.margin for d in run.decodes
                    ]
                    amplitudes[cell_index, group] = [
                        d.amplitude for d in run.decodes
                    ]
            op_data.append((op, margins, amplitudes, dead_rows))

    # ------------------------------------------------------------------
    # Result construction
    # ------------------------------------------------------------------
    def _first_dead(self, packed, group_start, group_end):
        """The strict-mode error of a request's group span, or None.

        Picks the first dead decode in the per-op path's iteration order
        (level, sorted op, nominal-before-faulted, schedule position,
        group) so strict mode raises the identical message.
        """
        worst = None
        for level, op_index, is_faulted, cell_index, group, name in (
            packed.dead_meta
        ):
            if not group_start <= group < group_end:
                continue
            key = (level, op_index, is_faulted, cell_index, group)
            if worst is None or key < worst[0]:
                worst = (key, name, level)
        if worst is None:
            return None
        return SimulationError(
            f"cell {worst[1]!r} (level {worst[2]}) failed to "
            "decode: a channel produced no decodable carrier"
        )

    def _build_result(self, packed, netlist, group_start, group_end,
                      n_entries, expected, faults, mode):
        """Materialise one request's :class:`CircuitRunResult`.

        Must run before the next execution: the value buffer is shared
        scratch, so every list the result carries is copied out here.
        """
        n_bits = self.n_bits
        start = group_start * n_bits
        buf = packed.buf
        n_valid = packed.n_valid
        records = {}
        level_reports = []
        for plan, op_data in zip(self.levels, packed.level_data):
            for name, slot, kind in plan.v_names:
                records[name] = CellRecord(
                    name=name,
                    operation=kind,
                    level=plan.level,
                    bits=buf[slot, start : start + n_entries].tolist(),
                )
            minimum = math.inf
            have_margin = False
            for op, margins, amplitudes, dead_rows in op_data:
                for cell_index, name in enumerate(op.names):
                    bits_list = []
                    margin_list = []
                    amplitude_list = []
                    row = buf[op.out_slots[cell_index]]
                    for group in range(group_start, group_end):
                        valid = n_valid[group]
                        if dead_rows[cell_index, group]:
                            bits_list.extend([None] * valid)
                            margin_list.extend([math.nan] * valid)
                            amplitude_list.extend([math.nan] * valid)
                            continue
                        window = slice(
                            group * n_bits, group * n_bits + valid
                        )
                        bits_list.extend(row[window].tolist())
                        chunk = margins[cell_index, group, :valid]
                        margin_list.extend(chunk.tolist())
                        amplitude_list.extend(
                            amplitudes[cell_index, group, :valid].tolist()
                        )
                        have_margin = True
                        minimum = min(minimum, chunk.min())
                    records[name] = CellRecord(
                        name=name,
                        operation=op.operation,
                        level=plan.level,
                        bits=bits_list,
                        margins=margin_list,
                        amplitudes=amplitude_list,
                    )
            level_reports.append(
                LevelReport(
                    level=plan.level,
                    n_cells=plan.n_cells,
                    n_physical=plan.n_physical,
                    min_margin=float(minimum) if have_margin else None,
                )
            )
        failed = packed.failed[start : start + n_entries]
        outputs = {}
        for name in netlist.outputs:
            column = buf[self._slots[name], start : start + n_entries]
            outputs[name] = [
                None if failed[i] else int(column[i])
                for i in range(n_entries)
            ]
        return CircuitRunResult(
            outputs=outputs,
            expected=expected,
            failed=failed.tolist(),
            levels=level_reports,
            cells=records,
            n_entries=n_entries,
            faults=list(faults),
            mode=mode,
        )

    # ------------------------------------------------------------------
    # Public execution
    # ------------------------------------------------------------------
    def run(self, assignments_batch, faults=(), noise=None, strict=True,
            mode="phasor"):
        """Evaluate a batch against the compiled artifact.

        Same contract as :meth:`CircuitEngine.run` (which routes here by
        default); raises for configurations the artifact cannot
        reproduce bit-identically -- the engine's ``_run_packed`` guard
        catches those *before* calling, so direct callers see a clear
        error rather than silently divergent physics.
        """
        if mode not in ("phasor", "trace"):
            raise NetlistError(
                f"unknown execution mode {mode!r}; "
                "supported: 'phasor', 'trace'"
            )
        if not self.packable:
            raise SimulationError(
                f"netlist {self.netlist.name!r} is not packable: "
                f"{self.unpackable_reason}"
            )
        if noise is not None and noise.position_sigma > 0:
            raise SimulationError(
                "per-entry placement noise perturbs the source geometry; "
                "the packed path bakes nominal weights in -- use "
                "CircuitEngine.run(packed=False)"
            )
        batch = list(assignments_batch)
        if not batch:
            raise NetlistError("no assignments supplied")
        fault_map = _normalise_faults(self.netlist, faults)
        n_bits = self.n_bits
        n_entries = len(batch)
        n_groups = -(-n_entries // n_bits)
        padded = n_groups * n_bits
        buf, failed = self._buffers(padded)
        self._write_inputs(buf, batch, 0, n_groups)
        n_valid = [
            min(n_entries - group * n_bits, n_bits)
            for group in range(n_groups)
        ]
        contexts = [(noise, n_groups, group) for group in range(n_groups)]
        group_faults = [fault_map] * n_groups
        packed = self._execute_padded(
            buf, failed, n_groups, n_valid, contexts, group_faults, mode
        )
        if strict:
            error = self._first_dead(packed, 0, n_groups)
            if error is not None:
                raise error
        expected = self.netlist.evaluate_batch(batch)
        return self._build_result(
            packed, self.netlist, 0, n_groups, n_entries, expected, faults,
            mode,
        )

    # ------------------------------------------------------------------
    # Artifact serialization
    # ------------------------------------------------------------------
    def save(self, path):
        """Serialise the frozen artifact to ``path`` (pickle payload).

        Only the compile-time product is written -- the netlist, level
        schedule, slot tables, packed weights and baked calibration --
        plus the identity envelope a loader verifies (format version,
        content-hash signature, ``n_bits``, backend key).  Per-process
        runtime state (the bindings, lazily-grown buffers and faulty
        simulators) is deliberately excluded: :meth:`load` re-attaches
        fresh bindings and rebuilds scratch lazily.  This is the fleet
        warm-start path: workers load artifacts instead of paying
        compile + calibration (:meth:`CompiledCircuitCache.warm`).
        """
        state = {
            "format": ARTIFACT_FORMAT,
            "signature": self.signature,
            "n_bits": self.n_bits,
            "backend_key": tuple(self.bindings.backend.key),
            "attrs": {
                name: value for name, value in self.__dict__.items()
                if name not in _RUNTIME_ATTRS
            },
        }
        with open(path, "wb") as handle:
            pickle.dump(state, handle)
        obs.get_registry().inc("circuit.artifact_saves")
        return path

    @classmethod
    def load(cls, path, bindings):
        """Load a saved artifact and attach it to ``bindings``.

        Refuses -- with :class:`~repro.errors.ArtifactError` -- anything
        that cannot be served safely: an unknown format version, a
        backend/precision mismatch (the artifact bakes weights in its
        backend's dtype), a data-width mismatch, and a stale or
        tampered topology (the embedded netlist's recomputed content
        hash must equal the signature the artifact was saved under).
        """
        try:
            with open(path, "rb") as handle:
                state = pickle.load(handle)
        except ArtifactError:
            raise
        except Exception as exc:
            raise ArtifactError(
                f"cannot read compiled artifact {str(path)!r}: {exc}"
            ) from exc
        if not isinstance(state, dict) or "attrs" not in state:
            raise ArtifactError(
                f"{str(path)!r} is not a compiled-circuit artifact"
            )
        if state.get("format") != ARTIFACT_FORMAT:
            raise ArtifactError(
                f"artifact {str(path)!r} has format "
                f"{state.get('format')!r}; this build reads format "
                f"{ARTIFACT_FORMAT}"
            )
        backend_key = tuple(state.get("backend_key", ()))
        if backend_key != tuple(bindings.backend.key):
            raise ArtifactError(
                f"artifact {str(path)!r} was compiled for backend "
                f"{backend_key!r} but these bindings use "
                f"{tuple(bindings.backend.key)!r}; a wrong-precision "
                "artifact must never be served"
            )
        if state.get("n_bits") != bindings.n_bits:
            raise ArtifactError(
                f"artifact {str(path)!r} was compiled at n_bits="
                f"{state.get('n_bits')!r}, bindings have "
                f"n_bits={bindings.n_bits}"
            )
        attrs = state["attrs"]
        netlist = attrs.get("netlist")
        signature = state.get("signature")
        if (
            netlist is None
            or attrs.get("signature") != signature
            or netlist_signature(netlist) != signature
        ):
            raise ArtifactError(
                f"artifact {str(path)!r} failed content-hash "
                "verification: its topology is stale or the payload "
                "was tampered with -- recompile instead of loading"
            )
        artifact = cls.__new__(cls)
        artifact.__dict__.update(attrs)
        # Artifacts saved before compile cost travelled in the payload
        # still load; they simply report an unknown (zero) compile time.
        artifact.__dict__.setdefault("compile_seconds", 0.0)
        artifact.bindings = bindings
        artifact._value_buffers = {}
        artifact._failed_buffers = {}
        artifact._excite_buffers = {}
        artifact._faulty_sims = {}
        artifact._faulty_cal = {}
        obs.get_registry().inc("circuit.artifact_loads")
        return artifact


#: On-disk artifact format version; :meth:`CompiledCircuit.load`
#: refuses snapshots written by an incompatible layout.
ARTIFACT_FORMAT = 1

#: Per-process runtime state excluded from saved artifacts: bindings
#: are re-attached on load, scratch buffers and faulty-simulator
#: caches regrow lazily.
_RUNTIME_ATTRS = frozenset((
    "bindings", "_value_buffers", "_failed_buffers", "_excite_buffers",
    "_faulty_sims", "_faulty_cal",
))


def compile_circuit(netlist, bindings, registry=None):
    """Compile ``netlist`` onto ``bindings`` into a :class:`CompiledCircuit`.

    The staged pipeline (levelise -> allocate slots -> pack levels ->
    calibrate) runs eagerly; the returned artifact is reusable across
    any number of runs and any batch shape.  ``registry`` routes the
    compile spans (defaults to the process-global registry).
    """
    return CompiledCircuit(netlist, bindings, registry=registry)


class CompiledCircuitCache:
    """LRU cache of compiled artifacts keyed by netlist signature.

    One cache serves one :class:`~repro.circuits.library.GateBindings`
    family (the executor owns cache and bindings together): the key is
    ``(signature, n_bits)``, so equal netlists compiled at one width
    share an artifact while the physics configuration stays implicit in
    the owner's bindings.

    Hit/miss/eviction counts live on a :class:`~repro.obs.MetricsRegistry`
    (``obs``; the executor shares its own so one snapshot covers serving
    and compile-cache behaviour together) under ``compile_cache.*``
    names; the historical ``hits``/``misses`` attributes remain as
    read-only properties.
    """

    def __init__(self, max_entries=16, obs=None):
        if max_entries < 1:
            raise NetlistError(
                f"max_entries must be >= 1, got {max_entries!r}"
            )
        self.max_entries = int(max_entries)
        self._entries = OrderedDict()
        from repro.obs import MetricsRegistry

        self.obs = obs if obs is not None else MetricsRegistry()

    def __len__(self):
        return len(self._entries)

    @property
    def hits(self):
        """Lookups served from the cache (registry-backed)."""
        return self.obs.counter("compile_cache.hits")

    @property
    def misses(self):
        """Lookups that compiled a fresh artifact (registry-backed)."""
        return self.obs.counter("compile_cache.misses")

    @property
    def evictions(self):
        """Artifacts dropped by the LRU bound (registry-backed)."""
        return self.obs.counter("compile_cache.evictions")

    @property
    def hit_rate(self):
        """hits / (hits + misses), or None before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else None

    def get_or_compile(self, netlist, bindings):
        """The cached artifact of ``netlist``, compiling on first sight.

        The key includes the bindings' backend identity: artifacts bake
        weights and buffers in the backend dtype, so a float32 artifact
        must never be served to a float64 caller (or vice versa).
        """
        key = (netlist_signature(netlist), bindings.n_bits,
               bindings.backend.key)
        artifact = self._entries.get(key)
        if artifact is not None:
            self._entries.move_to_end(key)
            self.obs.inc("compile_cache.hits")
            return artifact
        self.obs.inc("compile_cache.misses")
        artifact = compile_circuit(netlist, bindings, registry=self.obs)
        self._entries[key] = artifact
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.obs.inc("compile_cache.evictions")
        return artifact

    def warm(self, paths, bindings):
        """Preload saved artifacts so first requests hit, not compile.

        Each path loads through :meth:`CompiledCircuit.load` (which
        verifies format, content hash, width and backend key against
        ``bindings``) and enters the LRU under its own signature --
        afterwards :meth:`get_or_compile` serves those netlists with
        zero misses, the fleet warm-start contract.  Loads count under
        ``compile_cache.warmed`` (not as hits or misses); a failing
        path raises :class:`~repro.errors.ArtifactError` and leaves
        already-loaded artifacts cached.  Returns the loaded artifacts.
        """
        artifacts = []
        for path in paths:
            artifact = CompiledCircuit.load(path, bindings)
            key = (artifact.signature, artifact.n_bits,
                   bindings.backend.key)
            self._entries[key] = artifact
            self._entries.move_to_end(key)
            self.obs.inc("compile_cache.warmed")
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.obs.inc("compile_cache.evictions")
            artifacts.append(artifact)
        return artifacts

    def clear(self):
        """Drop every cached artifact (hit/miss counters persist)."""
        self._entries.clear()
