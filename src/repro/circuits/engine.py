"""Physical circuit simulation: netlists compiled onto batched SW gates.

This module closes the gap between the Boolean netlist layer
(:class:`~repro.circuits.netlist.Netlist`) and the phasor-level physics
backend: a :class:`CircuitEngine` compiles an arbitrary MAJ/XOR/INV DAG
into the levelized schedule cached on the netlist, maps every physical
cell operation to one shared data-parallel gate
(:func:`~repro.circuits.library.physical_gate`), and executes whole
input-assignment batches level by level through
:meth:`~repro.core.simulate.GateSimulator.run_phasor_batch` -- the
:class:`~repro.core.cascade.GateCascade` regeneration semantics
generalised to arbitrary wiring with fanout, constants and
detector-placement inversion.

Execution model
---------------
Each physical cell is an ``n_bits``-wide gate: channel ``c`` carries
circuit instance ``c`` of a group, so a batch of ``B`` assignments packs
into ``ceil(B / n_bits)`` word groups.  Within one level, every
``(cell, group)`` pair of one operation evaluates as a single batched
phasor call (one complex GEMM against the propagation weights cached on
the engine's shared :class:`~repro.waveguide.LinearWaveguideModel`).
Between levels the decoded word is re-excited at full amplitude --
transduced regeneration, the robust cascade option of Section III -- so
INV and BUF cells cost nothing: inversion is a detector-placement /
re-excitation phase choice at the regeneration boundary, exactly the
free-inverter rule the cell library prices.

Two execution *modes* share this schedule.  The default ``"phasor"``
mode evaluates steady-state phasors only; ``"trace"`` mode
(:meth:`CircuitEngine.run_trace_batch`, or ``run(mode="trace")``) runs
the full waveform physics instead: every (cell, group) pair generates
time-domain detector traces through
:meth:`~repro.core.simulate.GateSimulator.run_batch` (the batched
carrier-basis GEMM of
:meth:`~repro.waveguide.LinearWaveguideModel.trace_batch`, memoised per
gate geometry) and decodes them by lock-in demodulation over the settled
analysis window -- so propagation delay, causal wavefronts and
finite-window phase estimation are all part of circuit execution, not
just of single-gate studies.  Both modes share the fault plumbing, the
per-(cell, group) noise seeding and the per-level decode-margin
reports; ``tests/test_circuit_conformance.py`` pins all four semantics
(Boolean, scalar cascade, batched phasor, batched trace) against each
other on randomized netlists.

Faults (:class:`CellFault`, reusing
:class:`~repro.core.faults.FaultySimulator` column mutation) and
transducer noise (:class:`~repro.waveguide.NoiseModel`, one independent
derived seed per cell and group) inject at any physical cell; decode
errors then *propagate* through later levels instead of raising, which
is what circuit-level fault coverage and noise-robustness experiments
measure.  :meth:`CircuitEngine.run_scalar` keeps the per-cell
``run_phasor`` loop as the pinned ground-truth reference (and the
benchmark baseline).

A purely virtual circuit needs no physics at all:

>>> from repro.circuits.netlist import Netlist
>>> netlist = Netlist("demo")
>>> _ = netlist.add_input("a")
>>> _ = netlist.add_cell("na", "INV", ("a",))
>>> _ = netlist.mark_output("na")
>>> engine = CircuitEngine(netlist, n_bits=2)
>>> result = engine.run([{"a": 0}, {"a": 1}])
>>> result.outputs["na"]
[1, 0]
>>> result.correct
True
>>> trace_result = engine.run_trace_batch([{"a": 0}, {"a": 1}])
>>> (trace_result.mode, trace_result.outputs == result.outputs)
('trace', True)
"""

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro import obs
from repro.circuits.library import PHYSICAL_BINDINGS, GateBindings
from repro.core.faults import TransducerFault
from repro.errors import NetlistError, ReproError, SimulationError


@dataclass(frozen=True)
class CellFault:
    """One transducer fault bound to a named physical cell.

    ``fault.channel`` selects the data-parallel channel (and therefore
    which circuit instances of each word group see the defect);
    ``fault.input_index`` selects the cell's input transducer.
    """

    cell: str
    fault: TransducerFault

    def describe(self):
        """Short label for reports."""
        return f"{self.cell}:{self.fault.describe()}"


@dataclass
class CellRecord:
    """Per-instance decode detail of one cell across the batch.

    ``margins``/``amplitudes`` are ``None`` for virtual cells (INV/BUF,
    constants resolved at the regeneration boundary -- no detector).
    """

    name: str
    operation: str
    level: int
    bits: list
    margins: list = None
    amplitudes: list = None


@dataclass
class LevelReport:
    """Decode-margin summary of one schedule level.

    ``min_margin`` is ``None`` for levels without physical cells.
    """

    level: int
    n_cells: int
    n_physical: int
    min_margin: float = None


@dataclass
class CircuitRunResult:
    """Everything produced by one engine evaluation of a batch.

    ``outputs[name][i]`` is ``None`` when entry ``i`` failed outright (a
    fault silenced a decode); ``failed`` marks those entries.  ``levels``
    carries the per-level decode-margin report; ``cells`` the per-cell
    decode detail.  ``mode`` records which execution semantics produced
    the result (``"phasor"`` steady state or ``"trace"`` waveform).
    ``trace`` is the per-request timing breakdown
    (:class:`~repro.circuits.executor.RequestTrace`) when the run was
    served by a tracing :class:`~repro.circuits.executor.CircuitExecutor`
    -- ``None`` for direct engine runs.
    """

    outputs: dict
    expected: dict
    failed: list
    levels: list
    cells: dict
    n_entries: int
    faults: list = field(default_factory=list)
    mode: str = "phasor"
    trace: object = None

    @property
    def correct(self):
        """True when every entry decoded and matches the Boolean model."""
        return self.word_errors == 0

    @property
    def word_errors(self):
        """Entries that failed or disagree with the Boolean reference."""
        errors = 0
        for i in range(self.n_entries):
            if self.failed[i] or any(
                self.outputs[o][i] != self.expected[o][i] for o in self.outputs
            ):
                errors += 1
        return errors

    @property
    def min_margin(self):
        """Smallest decode margin across all physical levels (or None)."""
        margins = [
            r.min_margin for r in self.levels if r.min_margin is not None
        ]
        return min(margins) if margins else None


class CircuitEngine:
    """Executes a netlist on batched data-parallel spin-wave gates.

    Parameters
    ----------
    netlist:
        :class:`~repro.circuits.netlist.Netlist` (combinational DAG).
    n_bits:
        Data-parallel width of every physical cell: one cell carries
        ``n_bits`` circuit instances on its frequency channels.
    waveguide:
        Shared :class:`~repro.waveguide.Waveguide` (default 50 nm
        Fe60Co20B20 strip); every cell's gate is laid out on it and all
        simulators share one :class:`~repro.waveguide.LinearWaveguideModel`
        so identical cells reuse cached propagation weights.
    transducer:
        Optional :class:`~repro.core.layout.TransducerSpec`.
    """

    def __init__(self, netlist, n_bits=8, waveguide=None, transducer=None,
                 bindings=None):
        self.netlist = netlist
        if bindings is None:
            bindings = GateBindings(
                n_bits=n_bits, waveguide=waveguide, transducer=transducer
            )
        self.bindings = bindings
        self.n_bits = bindings.n_bits
        self.waveguide = bindings.waveguide
        self.transducer = bindings.transducer
        self._compiled = None
        self._compile_schedule()

    def _compile_schedule(self):
        """(Re)read the netlist's cached schedule and index its cells.

        Called at construction and again whenever the netlist's topology
        revision moves past the one we compiled against, so a netlist
        grown after the engine was built is picked up transparently
        (the per-operation gates and weight caches stay valid -- only
        the schedule, the noise-seed indices and any packed artifact
        refresh).
        """
        self._schedule_revision = self.netlist.topology_revision
        self.schedule = self.netlist.level_schedule()
        self._compiled = None
        # Deterministic per-cell index (schedule order) seeding the
        # independent noise stream of each (cell, group) evaluation.
        self._physical_index = {}
        for cells in self.schedule:
            for node in cells:
                if node.kind in PHYSICAL_BINDINGS:
                    self._physical_index[node.name] = len(self._physical_index)

    def _refresh_schedule(self):
        """Recompile iff the netlist topology changed since compilation."""
        if self.netlist.topology_revision != self._schedule_revision:
            self._compile_schedule()

    # ------------------------------------------------------------------
    # Compilation: shared model, gates and simulators
    # ------------------------------------------------------------------
    @property
    def n_physical_cells(self):
        """Number of transducer-level cells in the schedule."""
        return len(self._physical_index)

    @property
    def _model(self):
        """The bindings' lazily-built model (None until physics is hit)."""
        return self.bindings._model

    def model(self):
        """The engine-wide shared linear waveguide model (lazy)."""
        return self.bindings.model()

    def gate_for(self, operation):
        """The shared :class:`DataParallelGate` template of one operation."""
        return self.bindings.gate(operation)

    def simulator_for(self, operation):
        """The nominal simulator shared by every cell of ``operation``."""
        return self.bindings.simulator(operation)

    def _faulty_simulator(self, operation, fault):
        """A fault-injected simulator sharing the engine's model/caches."""
        return self.bindings.faulty_simulator(operation, fault)

    def compiled(self):
        """The packed :class:`~repro.circuits.compiled.CompiledCircuit`.

        Compiled lazily on first use and cached until the netlist's
        topology revision moves; the artifact owns the cross-op packed
        weight matrices and preallocated buffers the default
        :meth:`run` path executes against.
        """
        from repro.circuits.compiled import compile_circuit

        self._refresh_schedule()
        if self._compiled is None:
            self._compiled = compile_circuit(self.netlist, self.bindings)
        return self._compiled

    # ------------------------------------------------------------------
    # Batch plumbing
    # ------------------------------------------------------------------
    def _normalise_batch(self, assignments_batch):
        batch = list(assignments_batch)
        if not batch:
            raise NetlistError("no assignments supplied")
        return batch

    def _normalise_faults(self, faults):
        fault_map = {}
        for item in faults:
            if not isinstance(item, CellFault):
                raise NetlistError(
                    f"faults must be CellFault instances, got {item!r}"
                )
            node = self.netlist.node(item.cell)
            if node.kind not in PHYSICAL_BINDINGS:
                raise NetlistError(
                    f"cell {item.cell!r} ({node.kind}) has no transducers "
                    "to fault (INV/BUF are detector-placement choices)"
                )
            if item.cell in fault_map:
                raise NetlistError(
                    f"cell {item.cell!r} carries more than one fault"
                )
            fault_map[item.cell] = item.fault
        return fault_map

    def _input_values(self, batch, padded):
        """{level-0 node: (padded,) int array} from the assignments."""
        values = {}
        for name in self.netlist.topological_order():
            node = self.netlist.node(name)
            if node.kind == "input":
                try:
                    column = [a[name] for a in batch]
                except KeyError:
                    raise NetlistError(
                        f"no value supplied for input {name!r}"
                    ) from None
                array = np.zeros(padded, dtype=np.int64)
                array[: len(batch)] = np.asarray(column, dtype=np.int64)
                if not np.isin(array[: len(batch)], (0, 1)).all():
                    raise NetlistError("logic values must all be 0 or 1")
                values[name] = array
            elif node.kind == "const0":
                values[name] = np.zeros(padded, dtype=np.int64)
            elif node.kind == "const1":
                values[name] = np.ones(padded, dtype=np.int64)
        return values

    def _cell_noise(self, noise, cell_name, group, n_groups):
        """An independent, deterministic noise model per (cell, group)."""
        if noise is None:
            return None
        offset = self._physical_index[cell_name] * n_groups + group
        return replace(noise, seed=noise.seed + offset + 1)

    @staticmethod
    def _group_slice(group, n_bits):
        return slice(group * n_bits, (group + 1) * n_bits)

    def _record_decode(
        self, records, node, level, group, n_valid, decoded, margins, amplitudes
    ):
        record = records.get(node.name)
        if record is None:
            record = CellRecord(
                name=node.name,
                operation=node.kind,
                level=level,
                bits=[],
                margins=[],
                amplitudes=[],
            )
            records[node.name] = record
        record.bits.extend(decoded[:n_valid])
        record.margins.extend(margins[:n_valid])
        record.amplitudes.extend(amplitudes[:n_valid])

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, assignments_batch, faults=(), noise=None, strict=True,
            mode="phasor", packed=True):
        """Evaluate a batch of assignments through the physics.

        Parameters
        ----------
        assignments_batch:
            Sequence of ``{input name: bit}`` mappings (one circuit
            instance each).
        faults:
            Iterable of :class:`CellFault` (at most one per cell, any
            number of distinct cells); each faulted cell evaluates
            through a :class:`~repro.core.faults.FaultySimulator`
            sharing the engine's weight caches, so multi-fault studies
            (e.g. a defect cluster along one carry chain) compose
            naturally.
        noise:
            Optional :class:`~repro.waveguide.NoiseModel` template; every
            (cell, group) evaluation draws an independent realisation
            from a deterministically derived seed.
        strict:
            When True, a dead decode (a fault silencing a phase-readout
            channel) raises; when False the affected entries are marked
            ``failed`` and a regenerated 0 propagates onward.
        mode:
            ``"phasor"`` (default) evaluates steady-state phasors;
            ``"trace"`` runs the full time-domain waveform physics --
            every (cell, group) generates detector traces and decodes
            them by lock-in over the settled window
            (:meth:`~repro.core.simulate.GateSimulator.run_batch`).
        packed:
            When True (default) the batch executes through the
            compile-once packed artifact (:meth:`compiled`): one cross-op
            GEMM per level in phasor mode, preallocated buffers, zero
            per-run Python-list churn.  Configurations the packed path
            cannot reproduce bit-identically (per-entry placement noise,
            physics hooks replaced by subclassing/monkeypatching, a cell
            that fails calibration) fall back to the per-op batched path
            transparently; ``packed=False`` forces that per-op path.

        Returns a :class:`CircuitRunResult`.  Decoded (possibly wrong)
        bits always propagate to later levels -- regeneration restores
        amplitude, not truth -- so fault and noise effects compound
        through the DAG exactly as in hardware.
        """
        if packed:
            result = self._run_packed(
                assignments_batch, faults, noise, strict, mode
            )
            if result is not None:
                return result
        return self._execute(
            assignments_batch, faults, noise, strict, batched=True, mode=mode
        )

    def _run_packed(self, assignments_batch, faults, noise, strict, mode):
        """Try the compiled packed path; None means "use the per-op path".

        The packed artifact bakes nominal calibration and propagation
        weights in at compile time, so it only serves configurations it
        can reproduce bit-identically: shared geometry (no placement
        noise) and pristine physics hooks.  Anything else falls back.
        """
        from repro.circuits import compiled as _compiled

        if mode not in ("phasor", "trace"):
            raise NetlistError(
                f"unknown execution mode {mode!r}; "
                "supported: 'phasor', 'trace'"
            )
        if noise is not None and noise.position_sigma > 0:
            return None
        if not _compiled.physics_pristine():
            return None
        self._refresh_schedule()
        artifact = self.compiled()
        if not artifact.packable:
            return None
        return artifact.run(
            assignments_batch, faults=faults, noise=noise, strict=strict,
            mode=mode,
        )

    def run_trace_batch(self, assignments_batch, faults=(), noise=None,
                        strict=True):
        """Waveform-accurate circuit execution: :meth:`run` in trace mode.

        Convenience alias for ``run(..., mode="trace")`` -- the
        circuit-level counterpart of
        :meth:`~repro.core.simulate.GateSimulator.run_batch`.
        """
        return self.run(
            assignments_batch, faults=faults, noise=noise, strict=strict,
            mode="trace",
        )

    def run_scalar(self, assignments_batch, faults=(), noise=None, strict=True,
                   mode="phasor"):
        """Per-cell scalar reference: one ``run_phasor`` (or, in trace
        mode, one full ``run``) call per (cell, group) -- the
        :class:`~repro.core.cascade.GateCascade`-style loop generalised
        to DAGs.

        Bit-identical semantics to :meth:`run` (same noise seeds, same
        fault plumbing, same ``mode`` options); the batched paths are
        pinned against this reference to <= 1e-12 in
        ``tests/test_circuit_engine.py`` and
        ``tests/test_circuit_conformance.py``, and the throughput
        benchmark uses it as the baseline.
        """
        return self._execute(
            assignments_batch, faults, noise, strict, batched=False, mode=mode
        )

    def _execute(self, assignments_batch, faults, noise, strict, batched,
                 mode="phasor"):
        if mode not in ("phasor", "trace"):
            raise NetlistError(
                f"unknown execution mode {mode!r}; "
                "supported: 'phasor', 'trace'"
            )
        self._refresh_schedule()  # picks up netlist growth (revision key)
        batch = self._normalise_batch(assignments_batch)
        fault_map = self._normalise_faults(faults)
        n_entries = len(batch)
        n_groups = -(-n_entries // self.n_bits)
        padded = n_groups * self.n_bits
        values = self._input_values(batch, padded)
        failed = np.zeros(padded, dtype=bool)
        records = {}
        level_reports = []

        for level, cells in enumerate(self.schedule, start=1):
            physical = {}
            level_margins = []
            for node in cells:
                if node.kind in PHYSICAL_BINDINGS:
                    physical.setdefault(node.kind, []).append(node)
                    continue
                source = values[node.fanin[0]]
                values[node.name] = (
                    1 - source if node.kind == "INV" else source.copy()
                )
                records[node.name] = CellRecord(
                    name=node.name,
                    operation=node.kind,
                    level=level,
                    bits=values[node.name][:n_entries].tolist(),
                )
            n_physical = sum(len(nodes) for nodes in physical.values())
            with obs.span(f"circuit/level/{mode}"):
                for operation in sorted(physical):
                    nominal = []
                    faulted = []
                    for node in physical[operation]:
                        (faulted if node.name in fault_map
                         else nominal).append(node)
                    if nominal:
                        self._evaluate_cells(
                            self.simulator_for(operation),
                            nominal,
                            values,
                            failed,
                            records,
                            level_margins,
                            noise=noise,
                            n_entries=n_entries,
                            n_groups=n_groups,
                            level=level,
                            strict=strict,
                            batched=batched,
                            mode=mode,
                        )
                    for node in faulted:
                        self._evaluate_cells(
                            self._faulty_simulator(
                                operation, fault_map[node.name]
                            ),
                            [node],
                            values,
                            failed,
                            records,
                            level_margins,
                            noise=noise,
                            n_entries=n_entries,
                            n_groups=n_groups,
                            level=level,
                            strict=strict,
                            batched=batched,
                            mode=mode,
                        )
            level_reports.append(
                LevelReport(
                    level=level,
                    n_cells=len(cells),
                    n_physical=n_physical,
                    min_margin=min(level_margins) if level_margins else None,
                )
            )

        expected = self.netlist.evaluate_batch(batch)
        outputs = {}
        for name in self.netlist.outputs:
            column = values[name][:n_entries]
            outputs[name] = [
                None if failed[i] else int(column[i])
                for i in range(n_entries)
            ]
        return CircuitRunResult(
            outputs=outputs,
            expected=expected,
            failed=failed[:n_entries].tolist(),
            levels=level_reports,
            cells=records,
            n_entries=n_entries,
            faults=list(faults),
            mode=mode,
        )

    def _evaluate_cells(
        self,
        simulator,
        nodes,
        values,
        failed,
        records,
        level_margins,
        noise,
        n_entries,
        n_groups,
        level,
        strict,
        batched,
        mode,
    ):
        """Evaluate ``nodes`` (one operation) for every word group."""
        n_bits = self.n_bits
        entries = []
        meta = []
        noises = [] if noise is not None else None
        for node in nodes:
            fanin_values = [values[driver] for driver in node.fanin]
            values[node.name] = np.zeros(len(failed), dtype=np.int64)
            if batched:
                # Array-native word blocks: (n_groups, n_inputs, n_bits)
                # slices feed the batched simulators directly -- no
                # per-(cell, group) .tolist() round trip on the hot path.
                block = np.stack(fanin_values)  # (n_inputs, padded)
                entries.append(
                    block.reshape(len(fanin_values), n_groups, n_bits)
                    .transpose(1, 0, 2)
                )
            for group in range(n_groups):
                if not batched:
                    window = self._group_slice(group, n_bits)
                    entries.append(
                        [v[window].tolist() for v in fanin_values]
                    )
                meta.append((node, group))
                if noises is not None:
                    noises.append(
                        self._cell_noise(noise, node.name, group, n_groups)
                    )
        if batched:
            entries = np.concatenate(entries, axis=0)

        if mode == "trace":
            if batched:
                runs = simulator.run_batch(entries, noises=noises, strict=False)
            else:
                runs = self._scalar_trace_runs(simulator, entries, noises)
        elif batched:
            runs = simulator.run_phasor_batch(
                entries, noises=noises, strict=False
            )
        else:
            runs = self._scalar_runs(simulator, entries, noises)

        for (node, group), run in zip(meta, runs):
            window = self._group_slice(group, n_bits)
            n_valid = min(n_entries - group * n_bits, n_bits)
            if run is None:
                if strict:
                    raise SimulationError(
                        f"cell {node.name!r} (level {level}) failed to "
                        "decode: a channel produced no decodable carrier"
                    )
                failed[group * n_bits : group * n_bits + n_valid] = True
                self._record_decode(
                    records, node, level, group, n_valid,
                    [None] * n_bits, [math.nan] * n_bits, [math.nan] * n_bits,
                )
                continue
            values[node.name][window] = run.decoded
            margins = [d.margin for d in run.decodes]
            amplitudes = [d.amplitude for d in run.decodes]
            self._record_decode(
                records, node, level, group, n_valid,
                run.decoded, margins, amplitudes,
            )
            level_margins.extend(margins[:n_valid])

    @staticmethod
    def _scalar_loop(simulator, entries, noises, method):
        """One ``simulator.<method>(words)`` call per entry, under that
        entry's derived noise model; decode failures become ``None`` --
        the scalar protocol both batched paths are pinned against."""
        runner = getattr(simulator, method)
        if noises is None:
            noises = [simulator.noise] * len(entries)
        saved = simulator.noise
        runs = []
        try:
            for words, entry_noise in zip(entries, noises):
                simulator.noise = entry_noise
                try:
                    runs.append(runner(words))
                except ReproError:
                    runs.append(None)
        finally:
            simulator.noise = saved
        return runs

    @classmethod
    def _scalar_runs(cls, simulator, entries, noises):
        """Per-entry ``run_phasor`` loop mirroring ``run_phasor_batch``."""
        return cls._scalar_loop(simulator, entries, noises, "run_phasor")

    @classmethod
    def _scalar_trace_runs(cls, simulator, entries, noises):
        """Per-entry full ``run`` loop mirroring ``run_batch``.

        The time-domain twin of :meth:`_scalar_runs`: one complete
        waveform simulation and lock-in decode per (cell, group) entry.
        """
        return cls._scalar_loop(simulator, entries, noises, "run")
