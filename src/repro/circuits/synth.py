"""MAJ/XOR-based synthesis of standard arithmetic blocks.

Spin-wave logic favours majority-inverter graphs: a full adder is two
majority gates plus XORs (carry = MAJ3(a, b, cin); sum = a ^ b ^ cin),
and wider adders chain full adders.  These constructors return
:class:`~repro.circuits.netlist.Netlist` objects ready for evaluation
and cost estimation.
"""

from repro.core.encoding import int_to_bits
from repro.errors import NetlistError
from repro.circuits.netlist import Netlist


def full_adder(netlist=None, a="a", b="b", cin="cin", prefix="fa"):
    """One-bit full adder: returns (netlist, sum_name, carry_name).

    carry = MAJ3(a, b, cin); sum = (a XOR b) XOR cin.  When ``netlist``
    is given the nodes are appended (inputs must already exist).
    """
    fresh = netlist is None
    if fresh:
        netlist = Netlist(name=f"{prefix}_adder")
        for name in (a, b, cin):
            netlist.add_input(name)
    carry = netlist.add_cell(f"{prefix}_carry", "MAJ3", (a, b, cin))
    half = netlist.add_cell(f"{prefix}_axb", "XOR2", (a, b))
    total = netlist.add_cell(f"{prefix}_sum", "XOR2", (half, cin))
    if fresh:
        netlist.mark_output(total)
        netlist.mark_output(carry)
    return netlist, total, carry


def ripple_carry_adder(width, name="rca"):
    """``width``-bit ripple-carry adder netlist.

    Inputs ``a0..a{w-1}``, ``b0..b{w-1}``; outputs ``s0..s{w-1}`` and the
    final ``cout``.  Carry-in is the constant 0.
    """
    if width < 1:
        raise NetlistError(f"width must be >= 1, got {width!r}")
    netlist = Netlist(name=f"{name}{width}")
    a_bits = [netlist.add_input(f"a{i}") for i in range(width)]
    b_bits = [netlist.add_input(f"b{i}") for i in range(width)]
    carry = netlist.add_const("cin0", 0)
    for i in range(width):
        _, total, carry = full_adder(
            netlist, a_bits[i], b_bits[i], carry, prefix=f"{name}_fa{i}"
        )
        netlist.mark_output(total)
    netlist.mark_output(carry)
    return netlist


def majority_tree(n_leaves, name="majtree"):
    """Balanced MAJ3 reduction tree over ``n_leaves`` inputs.

    ``n_leaves`` must be a power of 3; the tree computes the recursive
    majority-of-majorities (a standard SW-logic benchmark structure, not
    the true n-input majority for n > 3).
    """
    if n_leaves < 3 or 3 ** round(_log3(n_leaves)) != n_leaves:
        raise NetlistError(
            f"n_leaves must be a power of 3 >= 3, got {n_leaves!r}"
        )
    netlist = Netlist(name=f"{name}{n_leaves}")
    layer = [netlist.add_input(f"x{i}") for i in range(n_leaves)]
    level = 0
    while len(layer) > 1:
        next_layer = []
        for j in range(0, len(layer), 3):
            cell = netlist.add_cell(
                f"{name}_l{level}_{j // 3}", "MAJ3", tuple(layer[j : j + 3])
            )
            next_layer.append(cell)
        layer = next_layer
        level += 1
    netlist.mark_output(layer[0])
    return netlist


def multiplexer2(netlist=None, a="a", b="b", select="s", prefix="mux"):
    """2:1 multiplexer in MAJ/INV logic; returns (netlist, out_name).

    out = (a AND ~s) OR (b AND s)
        = MAJ3( MAJ3(a, ~s, 0), MAJ3(b, s, 0), 1 ).
    """
    fresh = netlist is None
    if fresh:
        netlist = Netlist(name=f"{prefix}2")
        for name in (a, b, select):
            netlist.add_input(name)
    zero = netlist.add_const(f"{prefix}_c0", 0)
    one = netlist.add_const(f"{prefix}_c1", 1)
    not_select = netlist.add_cell(f"{prefix}_ns", "INV", (select,))
    a_branch = netlist.add_cell(
        f"{prefix}_and_a", "MAJ3", (a, not_select, zero)
    )
    b_branch = netlist.add_cell(f"{prefix}_and_b", "MAJ3", (b, select, zero))
    out = netlist.add_cell(f"{prefix}_or", "MAJ3", (a_branch, b_branch, one))
    if fresh:
        netlist.mark_output(out)
    return netlist, out


def equality_comparator(width, name="cmp"):
    """``width``-bit equality comparator: XNOR per bit, AND reduction.

    XNOR = INV(XOR2); the AND reduction is a chain of MAJ3(x, y, 0).
    Output is 1 iff a == b.
    """
    if width < 1:
        raise NetlistError(f"width must be >= 1, got {width!r}")
    netlist = Netlist(name=f"{name}{width}")
    a_bits = [netlist.add_input(f"a{i}") for i in range(width)]
    b_bits = [netlist.add_input(f"b{i}") for i in range(width)]
    zero = netlist.add_const(f"{name}_c0", 0)
    equal_bits = []
    for i in range(width):
        xor = netlist.add_cell(f"{name}_x{i}", "XOR2", (a_bits[i], b_bits[i]))
        equal_bits.append(netlist.add_cell(f"{name}_e{i}", "INV", (xor,)))
    accumulator = equal_bits[0]
    for i, bit in enumerate(equal_bits[1:], start=1):
        accumulator = netlist.add_cell(
            f"{name}_and{i}", "MAJ3", (accumulator, bit, zero)
        )
    netlist.mark_output(accumulator)
    return netlist


def random_netlist(
    seed,
    n_inputs=4,
    n_cells=10,
    n_outputs=2,
    operations=("MAJ3", "MAJ3", "XOR2", "XOR2", "INV", "BUF"),
):
    """A seeded random MAJ/XOR/INV/BUF DAG with constants and fanout.

    The generator behind the cross-backend conformance harness
    (``tests/test_circuit_conformance.py``): each cell draws its
    operation from ``operations`` (repeat an entry to weight it) and its
    fanin uniformly from *all* earlier nodes -- primary inputs, the two
    constants, and previous cells -- so reconvergent fanout, constant
    inputs and virtual (INV/BUF) cells all occur naturally.  The last
    ``n_outputs`` cells are marked as primary outputs.  Identical seeds
    reproduce identical netlists across processes (``random.Random``,
    not the global RNG).
    """
    import random

    if n_cells < n_outputs:
        raise NetlistError(
            f"n_cells ({n_cells!r}) must cover n_outputs ({n_outputs!r})"
        )
    rng = random.Random(seed)
    netlist = Netlist(f"rand{seed}")
    nodes = [netlist.add_input(f"x{i}") for i in range(n_inputs)]
    nodes.append(netlist.add_const("c0", 0))
    nodes.append(netlist.add_const("c1", 1))
    arities = {"MAJ3": 3, "XOR2": 2, "INV": 1, "BUF": 1}
    for j in range(n_cells):
        operation = rng.choice(operations)
        fanin = [rng.choice(nodes) for _ in range(arities[operation])]
        nodes.append(netlist.add_cell(f"g{j}", operation, fanin))
    for name in nodes[-n_outputs:]:
        netlist.mark_output(name)
    return netlist


def _log3(n):
    import math

    return math.log(n) / math.log(3.0)


def evaluate_adder(netlist, a_value, b_value, width):
    """Drive an adder netlist with integers; returns the integer sum.

    Convenience for tests/examples: converts values to little-endian bit
    assignments and assembles the output word (including carry-out).
    """
    assignments = {}
    for i, bit in enumerate(int_to_bits(a_value, width)):
        assignments[f"a{i}"] = bit
    for i, bit in enumerate(int_to_bits(b_value, width)):
        assignments[f"b{i}"] = bit
    outputs = netlist.evaluate(assignments)
    total = 0
    for i in range(width):
        total |= outputs[f"rca_fa{i}_sum"] << i
    carry_name = netlist.outputs[-1]
    total |= outputs[carry_name] << width
    return total
