"""``swgate`` -- command-line interface to the reproduction.

Subcommands::

    swgate list                      # available experiments
    swgate run fig3                  # run one experiment, print its table
    swgate run all                   # every fast experiment
    swgate majority 0xA5 0x3C 0x0F   # evaluate the byte MAJ gate on words
    swgate circuit 0x9 0x6           # physical adder via the circuit engine
    swgate serve --port 8077         # JSON-over-HTTP circuit daemon
    swgate serve --send 0x9 0x6      # evaluate an adder on a running daemon
    swgate top --url URL             # live daemon throughput monitor
    swgate layout                    # print the byte gate placement
    swgate export-mif out.mif        # OOMMF MIF 2.1 export
"""

import argparse
import sys

from repro.core.encoding import bits_to_int, int_to_bits


def _start_profile(args):
    """Enable timing instrumentation when ``--profile`` was passed."""
    if getattr(args, "profile", False):
        from repro import obs

        obs.enable()
        return True
    return False


def _print_profile(extra=None):
    """Print the span-tree profile and merged metrics table."""
    from repro import obs

    print()
    print(obs.report(extra=extra))


def _cmd_list(args):
    from repro.experiments.runner import EXPERIMENTS

    for name in sorted(EXPERIMENTS):
        _, description = EXPERIMENTS[name]
        print(f"{name:12s} {description}")
    return 0


def _cmd_run(args):
    from repro.experiments.runner import EXPERIMENTS, run_experiment

    profiled = _start_profile(args)
    if args.experiment == "all":
        names = [n for n in sorted(EXPERIMENTS) if n != "llg-x"]
    else:
        names = [args.experiment]
    for name in names:
        _, text = run_experiment(name, metrics=profiled or None)
        print(text)
        print()
    if profiled:
        _print_profile()
    return 0


def _parse_word(text):
    return int(text, 0)


def _cmd_majority(args):
    from repro import GateSimulator, byte_majority_gate

    gate = byte_majority_gate()
    words = [int_to_bits(_parse_word(w), gate.n_bits) for w in args.words]
    simulator = GateSimulator(gate)
    result = simulator.run_phasor(words) if args.fast else simulator.run(words)
    value = bits_to_int(result.decoded)
    expected = bits_to_int(result.expected)
    inputs = ", ".join(f"0x{_parse_word(w):02X}" for w in args.words)
    print(f"MAJ3({inputs}) = 0x{value:02X} "
          f"(expected 0x{expected:02X}, "
          f"{'correct' if result.correct else 'WRONG'})")
    print(f"min decode margin: {result.min_margin:.3f}")
    return 0 if result.correct else 1


def _cmd_layout(args):
    from repro.core.layout import InlineGateLayout

    layout = InlineGateLayout.paper_byte_layout()
    layout.validate()
    print(layout.describe())
    return 0


def _cmd_xor(args):
    from repro import GateSimulator, byte_xor_gate

    gate = byte_xor_gate()
    words = [int_to_bits(_parse_word(w), gate.n_bits) for w in args.words]
    result = GateSimulator(gate).run_phasor(words)
    value = bits_to_int(result.decoded)
    a, b = (_parse_word(w) for w in args.words)
    print(
        f"XOR(0x{a:02X}, 0x{b:02X}) = 0x{value:02X} "
        f"({'correct' if result.correct else 'WRONG'}, "
        f"amplitude readout)"
    )
    return 0 if result.correct else 1


def _cmd_adder(args):
    from repro.circuits import parallel_vs_scalar, ripple_carry_adder
    from repro.circuits.synth import evaluate_adder

    a = _parse_word(args.a)
    b = _parse_word(args.b)
    width = args.width
    netlist = ripple_carry_adder(width)
    total = evaluate_adder(netlist, a, b, width)
    print(f"{width}-bit MAJ/XOR ripple-carry adder: "
          f"0x{a:X} + 0x{b:X} = 0x{total:X}")
    result = parallel_vs_scalar(netlist, n_words=args.words)
    print(
        f"implementing {args.words} instances: scalar "
        f"{result.scalar_total.area * 1e12:.3f} um^2 vs parallel "
        f"{result.parallel_total.area * 1e12:.3f} um^2 "
        f"({result.area_ratio:.2f}x area saving, "
        f"energy ratio {result.energy_ratio:.2f})"
    )
    return 0 if total == a + b else 1


def _adder_assignment(a, b, width):
    """{input name: bit} of one (a, b) pair for a width-bit adder."""
    assignment = {}
    for i, bit in enumerate(int_to_bits(a, width)):
        assignment[f"a{i}"] = bit
    for i, bit in enumerate(int_to_bits(b, width)):
        assignment[f"b{i}"] = bit
    return assignment


def _adder_total(netlist, result, width):
    """Recompose the integer sum from an adder run's output columns.

    Outputs are registered sum-bit order first, carry-out last.
    """
    output_names = netlist.outputs
    total = 0
    for i, name in enumerate(output_names[:width]):
        total |= result.outputs[name][0] << i
    total |= result.outputs[output_names[-1]][0] << width
    return total


def _cmd_circuit(args):
    from repro.circuits import CircuitEngine, ripple_carry_adder

    profiled = _start_profile(args)
    a = _parse_word(args.a)
    b = _parse_word(args.b)
    width = args.width
    netlist = ripple_carry_adder(width)
    engine = CircuitEngine(netlist, n_bits=args.bits)
    assignment = _adder_assignment(a, b, width)
    executor = None
    if args.packed:
        # Serve the evaluation through the coalescing executor: the
        # compile-once artifact and cache stats make the compile/reuse
        # split visible from the command line.
        from repro.circuits import CircuitExecutor

        executor = CircuitExecutor(bindings=engine.bindings)
        ticket = executor.submit(netlist, [assignment], mode=args.mode)
        result = ticket.result()
    else:
        result = engine.run([assignment], mode=args.mode)
    if args.save_artifact:
        # Persist the compiled artifact so a serving fleet warm-starts
        # from it (swgate serve --warm) instead of recompiling.
        if executor is not None:
            artifact = executor.cache.get_or_compile(
                netlist, engine.bindings
            )
        else:
            artifact = engine.compiled()
        artifact.save(args.save_artifact)
        print(f"saved compiled artifact to {args.save_artifact}")
    total = _adder_total(netlist, result, width)
    backend = (
        "time-domain waveform" if result.mode == "trace"
        else "steady-state phasor"
    )
    print(
        f"{width}-bit physical ripple-carry adder "
        f"({engine.n_physical_cells} spin-wave cells, "
        f"depth {netlist.depth()}, {args.bits}-bit data-parallel, "
        f"{backend} backend): "
        f"0x{a:X} + 0x{b:X} = 0x{total:X} "
        f"({'physics matches logic' if result.correct else 'WRONG'})"
    )
    for report in result.levels:
        margin = (
            "-" if report.min_margin is None else f"{report.min_margin:.3f}"
        )
        print(
            f"  level {report.level}: {report.n_physical} physical / "
            f"{report.n_cells} cells, min margin {margin}"
        )
    if executor is not None:
        print(f"  packed serving: {executor.describe()}")
    if profiled:
        _print_profile(
            extra=[executor.obs] if executor is not None else None
        )
    return 0 if result.correct and total == a + b else 1


def _cmd_serve(args):
    from repro.serve import CircuitServer, ServeClient

    if args.send:
        # Client mode: evaluate one ripple-carry addition on a running
        # daemon through repro.serve.client and report its verdict.
        from repro.circuits import ripple_carry_adder

        a, b = (_parse_word(w) for w in args.send)
        width = args.width
        netlist = ripple_carry_adder(width)
        client = ServeClient(args.url)
        result = client.run(
            netlist, [_adder_assignment(a, b, width)], mode=args.mode
        )
        total = _adder_total(netlist, result, width)
        print(
            f"{width}-bit adder via {args.url}: "
            f"0x{a:X} + 0x{b:X} = 0x{total:X} "
            f"({'physics matches logic' if result.correct else 'WRONG'}, "
            f"{result.mode} mode)"
        )
        print(f"  server: {client.stats()['describe']}")
        return 0 if result.correct and total == a + b else 1

    server = CircuitServer(
        host=args.host,
        port=args.port,
        n_bits=args.bits,
        max_block=args.max_block,
        max_latency=args.max_latency,
        cache_size=args.cache_size,
        trace_requests=not args.no_request_trace,
        access_log=args.access_log,
        log_capacity=args.log_capacity,
        slow_request_s=args.slow_request_ms / 1e3
        if args.slow_request_ms is not None else None,
    )
    if args.warm:
        artifacts = server.warm(args.warm)
        print(
            f"warm-started {len(artifacts)} compiled artifact(s): "
            + ", ".join(a.netlist.name for a in artifacts)
        )
    latency = (
        "no latency bound" if server.executor.max_latency is None
        else f"max_latency {server.executor.max_latency * 1e3:g} ms"
    )
    print(
        f"swgate serve: listening on {server.url} "
        f"({server.executor.n_bits}-bit cells, "
        f"max_block {server.executor.max_block} words, {latency}); "
        "endpoints: POST /v1/run, GET /healthz /metrics /stats /logs"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("swgate serve: shutting down")
        server.close()
    return 0


def _cmd_top(args):
    from repro.errors import ServeError
    from repro.serve.monitor import top

    try:
        top(
            args.url,
            interval=args.interval,
            iterations=args.iterations,
            clear=not args.no_clear,
        )
    except KeyboardInterrupt:
        pass
    except ServeError as exc:
        print(f"swgate top: {exc}")
        return 1
    return 0


def _cmd_synth(args):
    from repro.synthesis import (
        get_circuit,
        parse_spec,
        suite,
        synthesize,
        verify_physical,
    )

    if args.list:
        for circuit in suite():
            print(f"{circuit.name:12s} {circuit.description}")
        return 0
    from repro.errors import SynthesisError

    profiled = _start_profile(args)

    try:
        if args.expr:
            if args.circuit:
                print("synth: give a suite circuit OR --expr, not both")
                return 2
            mig = parse_spec({args.output: args.expr}, name=args.output)
            reference = None
            name = args.output
        else:
            if not args.circuit:
                print("synth: name a suite circuit or pass --expr "
                      "(see --list)")
                return 2
            circuit = get_circuit(args.circuit)
            mig = circuit.build()
            reference = circuit.reference
            name = circuit.name
        # synthesize() raises on a non-equivalent mapping, so a
        # returned result is always verified.
        result = synthesize(mig, name=name, reference=reference)
    except SynthesisError as error:
        print(f"synth: {error}")
        return 2
    print("optimization pipeline:")
    for stats in result.pass_stats:
        if stats.changed:
            print(f"  round {stats.round} {stats.describe()}")
    print(result.describe())
    if args.no_run:
        if profiled:
            _print_profile()
        return 0
    print()
    print(f"physical execution ({args.bits}-bit cells, {args.mode} mode):")
    correct = True
    for label, report in (
        ("naive", result.naive), ("optimized", result.optimized)
    ):
        physical = verify_physical(
            report.netlist, n_bits=args.bits, modes=(args.mode,)
        )[args.mode]
        correct &= physical.correct
        print(f"  {label:9s} {physical.describe()}")
    if profiled:
        _print_profile()
    return 0 if correct else 1


def _cmd_design(args):
    from repro.core.designer import design_gate
    from repro.core.gate import GateKind
    from repro.waveguide import Waveguide

    waveguide = Waveguide(
        width=args.width * 1e-9,
        include_width_modes=args.width != 50.0,
    )
    design = design_gate(
        waveguide,
        n_bits=args.bits,
        n_inputs=args.inputs,
        kind=GateKind(args.kind),
        verify=args.verify,
    )
    print(design.summary())
    return 0


def _cmd_export_mif(args):
    from repro import byte_majority_gate
    from repro.oommf import gate_to_mif

    gate = byte_majority_gate()
    words = [int_to_bits(_parse_word(w), gate.n_bits) for w in args.words]
    text = gate_to_mif(gate, words)
    with open(args.output, "w", encoding="ascii") as handle:
        handle.write(text)
    print(f"wrote {args.output} ({len(text)} bytes)")
    return 0


def _cmd_save_design(args):
    from repro import byte_majority_gate
    from repro.core.design_io import save_gate

    gate = byte_majority_gate()
    save_gate(gate, args.output)
    print(f"wrote {args.output}")
    return 0


def _cmd_check_design(args):
    from repro.core.design_io import load_gate
    from repro.core.simulate import GateSimulator

    gate = load_gate(args.design)
    print(gate.describe())
    gate.layout.validate()
    words = [[0] * gate.n_bits for _ in range(gate.n_data_inputs)]
    result = GateSimulator(gate).run_phasor(words)
    print(
        f"layout valid; all-zeros evaluation "
        f"{'correct' if result.correct else 'WRONG'}"
    )
    return 0 if result.correct else 1


def build_parser():
    """The argparse command tree (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="swgate",
        description="n-bit data parallel spin wave logic gate reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(func=_cmd_list)

    run_parser = sub.add_parser("run", help="run an experiment")
    run_parser.add_argument(
        "experiment", help="experiment id from 'swgate list', or 'all'"
    )
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help="print a span-tree profile and metrics table afterwards",
    )
    run_parser.set_defaults(func=_cmd_run)

    maj_parser = sub.add_parser(
        "majority", help="evaluate the byte majority gate on three words"
    )
    maj_parser.add_argument("words", nargs=3, help="three 8-bit values (e.g. 0xA5)")
    maj_parser.add_argument(
        "--fast", action="store_true", help="phasor mode (no traces)"
    )
    maj_parser.set_defaults(func=_cmd_majority)

    sub.add_parser(
        "layout", help="print the byte gate placement"
    ).set_defaults(func=_cmd_layout)

    xor_parser = sub.add_parser(
        "xor", help="evaluate the byte XOR gate on two words"
    )
    xor_parser.add_argument("words", nargs=2, help="two 8-bit values")
    xor_parser.set_defaults(func=_cmd_xor)

    adder_parser = sub.add_parser(
        "adder", help="evaluate and price a MAJ/XOR ripple-carry adder"
    )
    adder_parser.add_argument("a", help="first operand")
    adder_parser.add_argument("b", help="second operand")
    adder_parser.add_argument(
        "--width", type=int, default=8, help="adder width in bits"
    )
    adder_parser.add_argument(
        "--words",
        type=int,
        default=8,
        help="parallel data words for the cost comparison",
    )
    adder_parser.set_defaults(func=_cmd_adder)

    circuit_parser = sub.add_parser(
        "circuit",
        help="run a ripple-carry adder through the physical circuit engine",
    )
    circuit_parser.add_argument("a", help="first operand")
    circuit_parser.add_argument("b", help="second operand")
    circuit_parser.add_argument(
        "--width", type=int, default=4, help="adder width in bits"
    )
    circuit_parser.add_argument(
        "--bits",
        type=int,
        default=8,
        help="data-parallel width of each physical cell",
    )
    circuit_parser.add_argument(
        "--mode",
        default="phasor",
        choices=["phasor", "trace"],
        help="execution semantics: steady-state phasor (fast) or "
        "time-domain waveform traces with lock-in decode",
    )
    circuit_parser.add_argument(
        "--packed",
        action="store_true",
        help="serve the run through the compile-once coalescing "
        "executor and report its compile-cache statistics",
    )
    circuit_parser.add_argument(
        "--profile",
        action="store_true",
        help="print a span-tree profile (compile stages, per-level "
        "timings) and metrics table afterwards",
    )
    circuit_parser.add_argument(
        "--save-artifact",
        default=None,
        metavar="PATH",
        help="persist the compiled circuit artifact to PATH so "
        "'swgate serve --warm PATH' starts with a hot compile cache",
    )
    circuit_parser.set_defaults(func=_cmd_circuit)

    serve_parser = sub.add_parser(
        "serve",
        help="run the JSON-over-HTTP circuit-serving daemon "
        "(or, with --send, talk to one)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8077, help="bind port (0 = ephemeral)"
    )
    serve_parser.add_argument(
        "--bits",
        type=int,
        default=8,
        help="data-parallel width of each physical cell",
    )
    serve_parser.add_argument(
        "--max-block",
        type=int,
        default=64,
        help="executor high-water mark: flush a queue at this many words",
    )
    serve_parser.add_argument(
        "--max-latency",
        type=float,
        default=0.005,
        help="seconds a queued word may wait before the background "
        "flush thread sweeps it out",
    )
    serve_parser.add_argument(
        "--cache-size",
        type=int,
        default=16,
        help="compiled-circuit cache capacity (distinct netlists)",
    )
    serve_parser.add_argument(
        "--warm",
        nargs="*",
        metavar="PATH",
        help="saved compiled-circuit artifacts (swgate circuit "
        "--save-artifact) to preload before serving",
    )
    serve_parser.add_argument(
        "--send",
        nargs=2,
        metavar=("A", "B"),
        help="client mode: send one ripple-carry addition of A and B "
        "to a running daemon instead of starting one",
    )
    serve_parser.add_argument(
        "--url",
        default="http://127.0.0.1:8077",
        help="daemon URL for --send",
    )
    serve_parser.add_argument(
        "--width", type=int, default=4, help="adder width for --send"
    )
    serve_parser.add_argument(
        "--mode",
        default="phasor",
        choices=["phasor", "trace"],
        help="execution semantics for --send",
    )
    serve_parser.add_argument(
        "--access-log",
        metavar="PATH",
        help="mirror structured events (access, slow requests, errors, "
        "blocks) as JSON lines to this file",
    )
    serve_parser.add_argument(
        "--log-capacity",
        type=int,
        default=512,
        help="in-memory event ring capacity behind GET /logs "
        "(0 disables event logging)",
    )
    serve_parser.add_argument(
        "--slow-request-ms",
        type=float,
        default=500.0,
        help="capture a slow_request event (with the full trace) for "
        "any /v1/run above this latency",
    )
    serve_parser.add_argument(
        "--no-request-trace",
        action="store_true",
        help="skip per-request timing traces in /v1/run responses",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    top_parser = sub.add_parser(
        "top",
        help="live throughput monitor for a running serving daemon",
    )
    top_parser.add_argument(
        "--url",
        default="http://127.0.0.1:8077",
        help="daemon URL to poll",
    )
    top_parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes",
    )
    top_parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="stop after this many refreshes (default: until Ctrl-C)",
    )
    top_parser.add_argument(
        "--no-clear",
        action="store_true",
        help="append refreshes with a separator instead of clearing "
        "the screen (for logs / dumb terminals)",
    )
    top_parser.set_defaults(func=_cmd_top)

    synth_parser = sub.add_parser(
        "synth",
        help="synthesize a Boolean spec onto the physical cell library",
    )
    synth_parser.add_argument(
        "circuit",
        nargs="?",
        default=None,
        help="suite circuit name (see --list), or use --expr",
    )
    synth_parser.add_argument(
        "--expr",
        default=None,
        help="Boolean expression (&, |, ^, ~, maj(a,b,c)) to synthesize",
    )
    synth_parser.add_argument(
        "--output",
        default="f",
        help="output name for --expr specifications",
    )
    synth_parser.add_argument(
        "--bits",
        type=int,
        default=4,
        help="data-parallel width of each physical cell",
    )
    synth_parser.add_argument(
        "--mode",
        default="phasor",
        choices=["phasor", "trace"],
        help="physical execution semantics for the confirmation run",
    )
    synth_parser.add_argument(
        "--no-run",
        action="store_true",
        help="skip the physical engine confirmation run",
    )
    synth_parser.add_argument(
        "--list",
        action="store_true",
        help="list the benchmark-circuit suite",
    )
    synth_parser.add_argument(
        "--profile",
        action="store_true",
        help="print a span-tree profile (per-pass timings) and metrics "
        "table afterwards",
    )
    synth_parser.set_defaults(func=_cmd_synth)

    design_parser = sub.add_parser(
        "design", help="design and verify a custom data-parallel gate"
    )
    design_parser.add_argument(
        "--bits", type=int, default=8, help="data width (channel count)"
    )
    design_parser.add_argument(
        "--inputs", type=int, default=3, help="fan-in m"
    )
    design_parser.add_argument(
        "--width", type=float, default=50.0, help="waveguide width [nm]"
    )
    design_parser.add_argument(
        "--kind",
        default="majority",
        choices=["majority", "xor", "xnor", "and", "or"],
        help="gate function",
    )
    design_parser.add_argument(
        "--verify",
        default="corners",
        choices=["corners", "exhaustive", "none"],
        help="functional verification depth",
    )
    design_parser.set_defaults(func=_cmd_design)

    mif_parser = sub.add_parser("export-mif", help="export an OOMMF MIF file")
    mif_parser.add_argument("output", help="output .mif path")
    mif_parser.add_argument(
        "--words",
        nargs=3,
        default=["0xFF", "0x0F", "0x55"],
        help="three 8-bit input values",
    )
    mif_parser.set_defaults(func=_cmd_export_mif)

    save_parser = sub.add_parser(
        "save-design", help="save the byte gate as a JSON design document"
    )
    save_parser.add_argument("output", help="output .json path")
    save_parser.set_defaults(func=_cmd_save_design)

    check_parser = sub.add_parser(
        "check-design", help="load and re-verify a JSON design document"
    )
    check_parser.add_argument("design", help="design .json path")
    check_parser.set_defaults(func=_cmd_check_design)
    return parser


def main(argv=None):
    """Console entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
