#!/usr/bin/env python
"""Measure the spin-wave dispersion numerically and plot it in ASCII.

Runs the standard micromagnetic spectroscopy experiment -- broadband
pulse, space-time FFT -- on the paper's Fe60Co20B20 film using the
from-scratch LLG solver, extracts the omega(k) ridge and compares it
against the analytic exchange-branch dispersion the gate layout uses.

Takes ~10 seconds.  Run:  python examples/dispersion_spectroscopy.py
"""

import numpy as np

from repro.analysis.ascii_plot import line_plot
from repro.materials import FECOB_PMA
from repro.mm.spectroscopy import extract_branch, measure_dispersion
from repro.physics.dispersion import ExchangeDispersion


def main(length=1.2e-6, duration=1.2e-9, dt=0.1e-12):
    print(
        f"running LLG pulse spectroscopy ({length * 1e6:.1f} um film, "
        f"{duration * 1e9:.1f} ns)..."
    )
    spectrum = measure_dispersion(
        FECOB_PMA, length=length, duration=duration, dt=dt
    )
    ks, fs = extract_branch(
        spectrum, k_min=2e7, k_max=2.5e8, threshold_ratio=0.03
    )

    analytic = ExchangeDispersion(FECOB_PMA, 1e-9)
    predicted = np.array([analytic.frequency(k) for k in ks])
    errors = np.abs(fs - predicted) / predicted

    print()
    print(
        line_plot(
            ks / 1e6,
            fs / 1e9,
            width=60,
            height=14,
            title="measured spin-wave dispersion (LLG pulse spectroscopy)",
            x_label="k [rad/um]",
            y_label="f [GHz]",
        )
    )
    print()
    print("ridge vs analytic exchange dispersion:")
    for k, f, p in list(zip(ks, fs, predicted))[::4]:
        print(
            f"  k = {k / 1e6:7.1f} rad/um: measured {f / 1e9:6.2f} GHz, "
            f"analytic {p / 1e9:6.2f} GHz ({abs(f - p) / p:.1%})"
        )
    print(f"median relative error: {np.median(errors):.1%}")
    print()
    print(
        "The gate layout engine places transducers using exactly this "
        "dispersion -- the agreement above is why the LLG backend decodes "
        "the same bits as the linear model."
    )


if __name__ == "__main__":
    main()
