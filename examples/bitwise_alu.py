#!/usr/bin/env python
"""A byte-wide spin-wave ALU slice built from data-parallel gates.

The paper's intro motivates data-parallel SW logic with big-data
workloads: this example assembles the primitive the paper validates
(byte MAJ3) and its XOR sibling into useful byte-wide operations --
AND, OR, XOR, NOT -- and then uses the circuit layer to estimate an
8-bit MAJ/XOR ripple-carry adder in both implementation styles.

Run:  python examples/bitwise_alu.py
"""

from repro import (
    FrequencyPlan,
    GateKind,
    GateSimulator,
    DataParallelGate,
    InlineGateLayout,
    Waveguide,
    byte_majority_gate,
    byte_xor_gate,
)
from repro.circuits import parallel_vs_scalar, ripple_carry_adder
from repro.circuits.synth import evaluate_adder
from repro.core.encoding import bits_to_int, int_to_bits


def _byte_gate(kind):
    layout = InlineGateLayout(
        Waveguide(), FrequencyPlan.paper_byte_plan(), n_inputs=3
    )
    return DataParallelGate(layout, kind=kind)


def byte_op(gate, values):
    """Evaluate a byte-parallel gate on integer operands (phasor mode)."""
    simulator = GateSimulator(gate)
    words = [int_to_bits(v, gate.n_bits) for v in values]
    result = simulator.run_phasor(words)
    assert result.correct, "physics disagreed with Boolean semantics"
    return bits_to_int(result.decoded)


def main():
    a, b = 0xA5, 0x3C

    maj = byte_majority_gate()
    xor = byte_xor_gate()
    and_gate = _byte_gate(GateKind.AND)  # MAJ3(a, b, 0)
    or_gate = _byte_gate(GateKind.OR)  # MAJ3(a, b, 1)

    print("byte-wide spin-wave ALU operations (one waveguide each):")
    print(f"  0x{a:02X} AND 0x{b:02X} = 0x{byte_op(and_gate, (a, b)):02X}")
    print(f"  0x{a:02X} OR  0x{b:02X} = 0x{byte_op(or_gate, (a, b)):02X}")
    print(f"  0x{a:02X} XOR 0x{b:02X} = 0x{byte_op(xor, (a, b)):02X}")
    c = 0x0F
    print(
        f"  MAJ(0x{a:02X}, 0x{b:02X}, 0x{c:02X}) = "
        f"0x{byte_op(maj, (a, b, c)):02X}"
    )

    # NOT comes for free: read the complemented output by placing the
    # detector at a half-integer wavelength multiple (Section III).
    inverted = DataParallelGate(
        InlineGateLayout(
            Waveguide(),
            FrequencyPlan.paper_byte_plan(),
            n_inputs=3,
            inverted_outputs=[True] * 8,
        )
    )
    not_a = byte_op(inverted, (a, a, a))  # MAJ(a,a,a) = a, inverted = ~a
    print(f"  NOT 0x{a:02X}        = 0x{not_a:02X} (detector placement)")

    # Circuit level: an 8-bit MAJ/XOR ripple-carry adder, scalar vs
    # 8-word data-parallel implementation.
    print()
    print("8-bit ripple-carry adder (MAJ3 carry + XOR2 sum cells):")
    adder = ripple_carry_adder(8)
    total = evaluate_adder(adder, a, b, 8)
    print(f"  netlist evaluates 0x{a:02X} + 0x{b:02X} = 0x{total:03X}")
    result = parallel_vs_scalar(adder, n_words=8)
    print(
        f"  8 scalar adders:      area {result.scalar_total.area * 1e12:.3f} um^2, "
        f"energy {result.scalar_total.energy * 1e15:.2f} fJ"
    )
    print(
        f"  one 8-word parallel:  area {result.parallel_total.area * 1e12:.3f} um^2, "
        f"energy {result.parallel_total.energy * 1e15:.2f} fJ"
    )
    print(
        f"  area ratio {result.area_ratio:.2f}x, "
        f"energy ratio {result.energy_ratio:.2f}x "
        "(the paper's gate-level 4.16x, lifted to a circuit)"
    )


if __name__ == "__main__":
    main()
