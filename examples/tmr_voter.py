#!/usr/bin/env python
"""Byte-wide triple-modular-redundancy (TMR) voter.

The most direct application of a data-parallel majority gate: three
redundant copies of a data word -- e.g. from radiation-hardened triple
processors -- are majority-voted bit-by-bit in a single waveguide, all
8 bits at once.  This example injects random single- and multi-bit
upsets into the replicas and shows the voter masking every error that
leaves two good copies per bit, exactly as TMR theory promises.

Run:  python examples/tmr_voter.py
"""

import numpy as np

from repro import GateSimulator, byte_majority_gate
from repro.core.encoding import bits_to_int, int_to_bits


def corrupt(value, n_flips, rng):
    """Flip ``n_flips`` random distinct bits of an 8-bit value."""
    positions = rng.choice(8, size=n_flips, replace=False)
    for p in positions:
        value ^= 1 << int(p)
    return value


def main(trials=12):
    gate = byte_majority_gate()
    simulator = GateSimulator(gate)
    rng = np.random.default_rng(42)

    print("byte-wide spin-wave TMR voter")
    print("true word | replica A | replica B | replica C | voted | recovered")
    recovered = 0
    for _ in range(trials):
        truth = int(rng.integers(256))
        # Upset up to two replicas, in different bit positions mostly.
        replicas = [truth, truth, truth]
        n_upsets = int(rng.integers(0, 3))
        for _ in range(n_upsets):
            victim = int(rng.integers(3))
            replicas[victim] = corrupt(replicas[victim], 1, rng)
        words = [int_to_bits(r, 8) for r in replicas]
        result = simulator.run_phasor(words)
        voted = bits_to_int(result.decoded)
        # The voter recovers the truth whenever no bit position has two
        # simultaneous upsets.
        expected = bits_to_int(result.expected)
        ok = voted == truth
        recovered += ok
        print(
            f"  0x{truth:02X}    |   0x{replicas[0]:02X}    |   "
            f"0x{replicas[1]:02X}    |   0x{replicas[2]:02X}    | "
            f"0x{voted:02X}  | {'yes' if ok else 'no (double upset)'}"
        )
        assert voted == expected, "physics must match Boolean vote"
    print(f"\nrecovered {recovered}/{trials} words "
          "(misses require two upsets in the same bit position)")

    # Show the double-fault limit explicitly.
    truth = 0x0F
    a = truth ^ 0x01  # bit 0 upset in replica A
    b = truth ^ 0x01  # same bit upset in replica B: voter must fail there
    words = [int_to_bits(v, 8) for v in (a, b, truth)]
    voted = bits_to_int(simulator.run_phasor(words).decoded)
    print(
        f"\ndouble upset on one bit: vote(0x{a:02X}, 0x{b:02X}, "
        f"0x{truth:02X}) = 0x{voted:02X} (truth was 0x{truth:02X}) -- "
        "TMR correctly limited to single-fault masking"
    )


if __name__ == "__main__":
    main()
