#!/usr/bin/env python
"""Design-space exploration for a custom data-parallel gate.

Shows the workflow a device designer would follow with this library:

1. pick a waveguide geometry and check its spin-wave band,
2. choose a frequency plan that clears the band edge with headroom,
3. let the layout engine place sources and detectors,
4. price the design against its scalar equivalent,
5. stress it against transducer noise to find the failure point.

Run:  python examples/design_explorer.py
"""

import numpy as np

from repro import (
    DataParallelGate,
    FrequencyPlan,
    GateSimulator,
    InlineGateLayout,
    NoiseModel,
    Waveguide,
    comparison,
)
from repro.core.encoding import int_to_bits
from repro.units import GHZ, NM


def main():
    # A wider, 100 nm waveguide: the band edge drops (Section V), so
    # channels can start lower than the paper's 10 GHz.
    waveguide = Waveguide(width=100e-9, include_width_modes=True)
    edge = waveguide.band_edge()
    print(f"waveguide: {waveguide.describe()}")
    print(f"band edge: {edge / GHZ:.2f} GHz")

    # 4 channels, starting 1.5x above the edge with 8 GHz spacing.
    f_start = 1.5 * edge
    plan = FrequencyPlan.uniform(4, f_start, 8 * GHZ)
    print(f"frequency plan: {plan.describe()}")
    plan.validate_against(waveguide.dispersion())

    layout = InlineGateLayout(waveguide, plan, n_inputs=3)
    layout.validate()
    print()
    print(layout.describe())

    result = comparison(layout)
    print()
    print(
        f"area: parallel {result.parallel.area * 1e12:.4f} um^2 vs "
        f"scalar {result.scalar.area * 1e12:.4f} um^2 "
        f"({result.area_ratio:.2f}x saving)"
    )

    # Robustness: sweep transducer phase noise until decoding breaks.
    gate = DataParallelGate(layout)
    rng = np.random.default_rng(0)
    test_words = [
        [int_to_bits(int(rng.integers(2**4)), 4) for _ in range(3)]
        for _ in range(20)
    ]
    print()
    print("phase-noise stress test (20 random word triples per point):")
    print("  sigma [rad] | word error rate")
    for sigma in (0.0, 0.1, 0.3, 0.6, 0.9, 1.2):
        errors = 0
        for seed, words in enumerate(test_words):
            simulator = GateSimulator(
                gate, noise=NoiseModel(phase_sigma=sigma, seed=seed)
            )
            if not simulator.run_phasor(words).correct:
                errors += 1
        print(f"  {sigma:11.1f} | {errors / len(test_words):.0%}")

    print()
    print(
        "Interpretation: the majority decision absorbs small phase "
        "errors (margin pi/2 per channel); decoding degrades once the "
        "per-transducer jitter approaches the decision threshold."
    )


if __name__ == "__main__":
    main()
