#!/usr/bin/env python
"""Export the byte gate to OOMMF's native formats.

Writes (into the current directory):

* ``byte_majority.mif`` -- a runnable MIF 2.1 problem specification of
  the full byte-wide majority gate with phase-encoded excitation, so
  anyone with OOMMF installed can re-run the paper's validation on our
  exact geometry;
* ``initial_state.ovf`` -- the uniform perpendicular initial
  magnetisation as an OVF 2.0 file (and reads it back to verify).

Run:  python examples/oommf_export.py
"""

import numpy as np

from repro import byte_majority_gate
from repro.core.encoding import int_to_bits
from repro.materials import FECOB_PMA
from repro.mm import Mesh, State
from repro.oommf import OvfField, gate_to_mif, read_ovf, write_ovf


def main():
    gate = byte_majority_gate()
    words = [int_to_bits(v, 8) for v in (0xA5, 0x3C, 0x0F)]
    mif = gate_to_mif(gate, words, cell_size=2e-9, stopping_time=3e-9)
    with open("byte_majority.mif", "w", encoding="ascii") as handle:
        handle.write(mif)
    n_windows = mif.count("if { $x >=")
    print(
        f"wrote byte_majority.mif ({len(mif)} bytes, "
        f"{n_windows} excitation windows for {gate.layout.n_sources} sources)"
    )

    # A small OVF snapshot: the uniform +z initial state on a coarse mesh.
    mesh = Mesh(64, 25, 1, 10e-9, 2e-9, 1e-9)
    state = State.uniform(mesh, FECOB_PMA)
    field = OvfField.from_state(state, title="byte gate initial state")
    write_ovf(field, "initial_state.ovf", representation="binary8")
    loaded = read_ovf("initial_state.ovf")
    roundtrip_ok = np.allclose(loaded.data, field.data)
    print(
        f"wrote initial_state.ovf ({loaded.shape[0]}x{loaded.shape[1]}"
        f"x{loaded.shape[2]} cells), read-back OK: {roundtrip_ok}"
    )


if __name__ == "__main__":
    main()
