#!/usr/bin/env python
"""Cross-check the gate on the full micromagnetic (LLG) solver.

The paper validates with OOMMF; this repository's equivalent is its own
finite-difference LLG solver.  This example builds a reduced in-line
majority gate, drives it with phase-encoded sinusoidal transducer fields
on a 1-D mesh with absorbing ends, and compares the decoded bits against
the fast linear model for a few input combinations.

Takes ~1 minute (it integrates ~10^4 RK4 steps per combination).

Run:  python examples/llg_crosscheck.py
"""

from repro.core.simulate import GateSimulator
from repro.experiments import llg_validation


def main(combos=None, dt=0.1e-12, cell_size=4e-9):
    gate = llg_validation.build_reduced_gate()
    print("reduced gate for LLG cross-validation:")
    print(gate.layout.describe())
    print()

    if combos is None:
        combos = [(0, 0, 0), (1, 0, 0), (1, 1, 0), (1, 1, 1)]
    simulator = GateSimulator(gate)
    print("inputs  linear  LLG  (phase, margin)")
    agree = True
    for bits in combos:
        words = [[b] * gate.n_bits for b in bits]
        linear = simulator.run_phasor(words)
        llg = llg_validation.run_llg_case(
            gate, bits, dt=dt, cell_size=cell_size
        )
        match = linear.decoded == llg["decoded"]
        agree &= match
        print(
            f"{bits}   {linear.decoded}     {llg['decoded']}  "
            f"({llg['phases'][0]:+.2f} rad, {llg['margins'][0]:.2f})"
            f"{'' if match else '   <-- MISMATCH'}"
        )
    print()
    print(f"backends agree: {agree}")
    print(
        "The LLG solver integrates the same Landau-Lifshitz-Gilbert "
        "dynamics OOMMF does; agreement here is the reproduction's "
        "stand-in for the paper's Fig. 3/4 OOMMF validation."
    )


if __name__ == "__main__":
    main()
