#!/usr/bin/env python
"""Manufacturing test of a byte-wide spin-wave gate.

Walks the production-test story for the paper's gate: enumerate the
single-transducer fault universe, grade the exhaustive functional
pattern set, and show why a logic-only test programme ships defective
parts -- weak transducers keep the interference phasors colinear, so
every majority vote still lands correctly and *no* logic pattern can
expose them.  An amplitude (parametric) measurement catches all of them.

Run:  python examples/manufacturing_test.py
"""

from repro import byte_majority_gate
from repro.core.faults import (
    TransducerFault,
    default_patterns,
    enumerate_faults,
    fault_coverage,
    parametric_coverage,
    simulate_fault,
)
from repro.core.simulate import GateSimulator
from repro.experiments import fault_coverage as experiment


def main():
    gate = byte_majority_gate()
    results = experiment.run(gate=gate)
    print(experiment.report(results))
    print()

    # Zoom in on one escaped fault: show its (absence of) logic footprint.
    weak = TransducerFault("weak-source", channel=3, input_index=1, severity=0.5)
    print(f"case study: {weak.describe()}")
    golden_sim = GateSimulator(gate)
    patterns = default_patterns(gate)
    print("  pattern (I1 I2 I3) | fault-free word | faulty word | amplitudes ch3")
    for words in patterns[:4]:
        bits = tuple(w[0] for w in words)
        golden_run = golden_sim.run_phasor(words)
        faulty_word = simulate_fault(gate, weak, words)
        from repro.core.faults import FaultySimulator

        faulty_run = FaultySimulator(gate, weak).run_phasor(words)
        print(
            f"  {bits}          | "
            f"{''.join(map(str, golden_run.decoded))}        | "
            f"{''.join(map(str, faulty_word))}    | "
            f"{golden_run.decodes[3].amplitude:.2f} -> "
            f"{faulty_run.decodes[3].amplitude:.2f}"
        )
    print(
        "  -> identical words on every pattern, but the channel-3 "
        "amplitude drops measurably: parametric test territory."
    )

    # Test-time economics: patterns needed for full hard-fault coverage.
    print()
    faults = enumerate_faults(
        gate, kinds=("dead-source", "stuck-phase-0", "stuck-phase-1")
    )
    for n_patterns in (2, 4, 8):
        record = fault_coverage(
            gate, faults=faults, patterns=patterns[:n_patterns]
        )
        print(
            f"  {n_patterns} patterns: hard-fault logic coverage "
            f"{record['coverage']:.0%}"
        )


if __name__ == "__main__":
    main()
