#!/usr/bin/env python
"""Cascading byte-wide gates: a 9-input majority-of-majorities pipeline.

Section III of the paper notes gate outputs can feed "potential
following SW gates".  This example builds the canonical two-level
structure MAJ3(MAJ3, MAJ3, MAJ3) from four byte-wide gates with
transducer regeneration between stages, evaluates it on 9 byte operands,
and then quantifies why the regeneration step is necessary: a direct
(unregenerated) all-magnonic cascade has *negative* worst-case decode
margin already at two stages.

Run:  python examples/cascaded_logic.py
"""

import numpy as np

from repro import byte_majority_gate
from repro.core.cascade import direct_coupling_margin, majority_of_majorities
from repro.core.encoding import bits_to_int, int_to_bits


def main():
    cascade = majority_of_majorities(byte_majority_gate, n_bits=8)
    print(
        f"pipeline: 4 byte-wide MAJ3 gates, "
        f"{cascade.n_primary_inputs()} primary operands, 2 logic levels"
    )

    rng = np.random.default_rng(3)
    operands = [int(rng.integers(256)) for _ in range(9)]
    words = [int_to_bits(v, 8) for v in operands]
    final, stage_results = cascade.run(words)
    golden = cascade.expected(words)

    printed = ", ".join(f"0x{v:02X}" for v in operands)
    print(f"operands: {printed}")
    print(f"MAJ9-of-3x3 result: 0x{bits_to_int(final):02X} "
          f"(golden 0x{bits_to_int(golden):02X})")
    for index, stage in enumerate(stage_results):
        role = "first-level" if index < 3 else "combining"
        print(
            f"  stage {index} ({role}): word "
            f"0x{bits_to_int(stage.decoded):02X}, "
            f"min margin {stage.min_margin:.3f} rad"
        )

    print()
    print("why stages regenerate (worst-case margin, no regeneration):")
    for stages in (1, 2, 3):
        margin = direct_coupling_margin(3, stages=stages)
        verdict = "OK" if margin > 0 else "FAILS"
        print(f"  {stages} stage(s): margin {margin:+.3f}  -> {verdict}")
    print(
        "A 2-vs-1 majority leaves only 1/3 of the unanimous wave "
        "amplitude; two strong minority waves then outvote a weak "
        "true-majority wave at the next stage.  Re-thresholding at each "
        "transducer (as modelled here) or the paper's graded-drive "
        "trick restores full margins."
    )


if __name__ == "__main__":
    main()
