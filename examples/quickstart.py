#!/usr/bin/env python
"""Quickstart: evaluate the paper's 8-bit data parallel majority gate.

Builds the byte-wide 3-input majority gate of Mahmoud et al. (DATE 2020)
on its default 50 nm x 1 nm Fe60Co20B20 waveguide, runs three 8-bit
words through it in a single evaluation, and decodes the bitwise
majority from the simulated spin-wave traces.

Run:  python examples/quickstart.py
"""

from repro import GateSimulator, byte_majority_gate
from repro.core.encoding import bits_to_int, int_to_bits


def main():
    gate = byte_majority_gate()
    print(gate.describe())
    print(gate.layout.describe())
    print()

    # Three 8-bit operands; the gate computes their bitwise majority --
    # all 8 bit positions evaluated simultaneously in one waveguide,
    # each on its own frequency (10..80 GHz).
    a, b, c = 0xA5, 0x3C, 0x0F
    words = [int_to_bits(v, gate.n_bits) for v in (a, b, c)]

    simulator = GateSimulator(gate)
    result = simulator.run(words)  # full time-domain traces + decode

    value = bits_to_int(result.decoded)
    expected = bits_to_int(result.expected)
    print(f"MAJ3(0x{a:02X}, 0x{b:02X}, 0x{c:02X}) = 0x{value:02X}")
    print(f"expected (Boolean):                0x{expected:02X}")
    print(f"physics agrees with logic: {result.correct}")
    print(f"worst per-channel decision margin: {result.min_margin:.3f} rad")
    print()

    print("per-channel detail:")
    for channel, decode in enumerate(result.decodes):
        frequency = gate.layout.plan.frequencies[channel] / 1e9
        print(
            f"  bit {channel} ({frequency:4.0f} GHz): "
            f"decoded {decode.bit}, phase {decode.phase:+.3f} rad, "
            f"amplitude {decode.amplitude:.3f}, margin {decode.margin:.3f}"
        )


if __name__ == "__main__":
    main()
