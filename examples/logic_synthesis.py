#!/usr/bin/env python
"""From a Boolean specification to a running spin-wave circuit.

The synthesis front end turns *any* Boolean function -- an expression, a
truth table, or a programmatic majority-inverter graph -- into a
physically executable netlist: the pass pipeline optimizes the MIG, the
technology mapper lowers it onto the MAJ3/XOR2 library (inverters fold
into free detector-placement polarity), and the circuit engine then runs
it on batched spin-wave gates.  This example synthesizes a 4-bit
equality comparator from one expression, shows what the optimizer
bought, and executes both mappings physically.

Run:  python examples/logic_synthesis.py
"""

from repro.circuits.engine import CircuitEngine
from repro.synthesis import from_truth_table, parse_spec, synthesize


def main(n_bits=4):
    # A 4-bit equality comparator, written the naive way: per-bit XNOR,
    # then one long AND chain.
    expression = (
        "~(a0 ^ b0) & ~(a1 ^ b1) & ~(a2 ^ b2) & ~(a3 ^ b3)"
    )
    mig = parse_spec({"eq": expression}, name="cmp4")
    result = synthesize(mig)
    print(result.describe())
    print()

    print("optimization pipeline (passes that changed the graph):")
    for stats in result.pass_stats:
        if stats.changed:
            print(f"  round {stats.round}: {stats.describe()}")
    print()

    # Execute both mappings on the physical engine: same answers,
    # fewer levels after optimization.
    words = [(0x5, 0x5), (0x5, 0x4), (0xA, 0xA), (0x3, 0xC)]
    batch = []
    for a, b in words:
        assignment = {}
        for i in range(4):
            assignment[f"a{i}"] = (a >> i) & 1
            assignment[f"b{i}"] = (b >> i) & 1
        batch.append(assignment)
    for label, report in (
        ("naive", result.naive), ("optimized", result.optimized)
    ):
        engine = CircuitEngine(report.netlist, n_bits=n_bits)
        run = engine.run(batch)
        decoded = [run.outputs["eq"][i] for i in range(len(words))]
        print(
            f"{label:9s} mapping ({report.physical_depth} physical "
            f"levels): eq{words} = {decoded} "
            f"({'physics matches logic' if run.correct else 'WRONG'}, "
            f"min margin {run.min_margin:.3f})"
        )
    print()

    # The same front end ingests raw truth tables: a 1-bit full adder
    # from its two output columns.
    adder = from_truth_table(
        "01101001", inputs=("a", "b", "cin"), output="sum", name="fa"
    )
    from_truth_table(
        "00010111", inputs=("a", "b", "cin"), output="carry", mig=adder
    )
    adder_result = synthesize(adder)
    print("truth-table ingestion (1-bit full adder):")
    print(f"  {adder_result.optimized.describe()}")
    assert adder_result.verified


if __name__ == "__main__":
    main()
