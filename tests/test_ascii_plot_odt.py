"""Tests for repro.analysis.ascii_plot and repro.oommf.odt."""

import io
import math

import numpy as np
import pytest

from repro.errors import OommfFormatError
from repro.analysis.ascii_plot import histogram, line_plot, sparkline
from repro.oommf.odt import OdtTable, read_odt, write_odt


class TestSparkline:
    def test_monotone_ramp(self):
        text = sparkline([0, 1, 2, 3])
        assert len(text) == 4
        assert text[0] == " "
        assert text[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "   "

    def test_empty(self):
        assert sparkline([]) == ""

    def test_resampled_width(self):
        text = sparkline(list(range(100)), width=10)
        assert len(text) == 10

    def test_levels_monotone_for_monotone_input(self):
        text = sparkline(list(range(9)))
        order = " ▁▂▃▄▅▆▇█"
        levels = [order.index(c) for c in text]
        assert levels == sorted(levels)


class TestLinePlot:
    def test_contains_extremes(self):
        text = line_plot([0, 1, 2], [10, 20, 30], width=20, height=5)
        assert "30" in text and "10" in text
        assert "*" in text

    def test_labels_and_title(self):
        text = line_plot(
            [0, 1], [0, 1], title="T", x_label="xs", y_label="ys"
        )
        assert text.splitlines()[0] == "T"
        assert "x: xs" in text and "y: ys" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            line_plot([0, 1], [0])

    def test_empty(self):
        assert line_plot([], []) == "(empty plot)"

    def test_sine_occupies_full_height(self):
        x = np.linspace(0, 2 * math.pi, 100)
        text = line_plot(x, np.sin(x), width=40, height=9)
        rows = [line for line in text.splitlines() if "|" in line]
        starred = [i for i, row in enumerate(rows) if "*" in row]
        assert starred[0] == 0
        assert starred[-1] == len(rows) - 1


class TestHistogram:
    def test_counts_sum(self):
        text = histogram([1, 1, 2, 3, 3, 3], bins=3)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in text.splitlines()]
        assert sum(counts) == 6

    def test_empty(self):
        assert histogram([]) == "(no data)"

    def test_bad_bins(self):
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)


class TestOdtTable:
    def test_construction_validation(self):
        with pytest.raises(OommfFormatError):
            OdtTable([])
        with pytest.raises(OommfFormatError):
            OdtTable(["a", "a"])
        with pytest.raises(OommfFormatError):
            OdtTable(["a"], units=["s", "m"])

    def test_row_width_enforced(self):
        table = OdtTable(["t", "mx"])
        with pytest.raises(OommfFormatError):
            table.add_row([1.0])

    def test_column_access(self):
        table = OdtTable(["t", "mx"])
        table.add_row([0.0, 0.5])
        table.add_row([1.0, -0.5])
        np.testing.assert_allclose(table.column("mx"), [0.5, -0.5])
        with pytest.raises(OommfFormatError):
            table.column("my")

    def test_as_array_shape(self):
        table = OdtTable(["a", "b", "c"])
        table.add_row([1, 2, 3])
        assert table.as_array().shape == (1, 3)

    def test_roundtrip(self):
        table = OdtTable(
            ["Time", "Total energy"],
            units=["s", "J"],
            title="run 1",
        )
        for i in range(5):
            table.add_row([i * 1e-12, math.exp(-i)])
        buffer = io.StringIO()
        write_odt(table, buffer)
        buffer.seek(0)
        loaded = read_odt(buffer)
        assert loaded.column_names == ["Time", "Total energy"]
        assert loaded.units == ["s", "J"]
        assert loaded.title == "run 1"
        np.testing.assert_allclose(loaded.as_array(), table.as_array())

    def test_file_roundtrip(self, tmp_path):
        table = OdtTable(["t"])
        table.add_row([1.5])
        path = tmp_path / "run.odt"
        write_odt(table, str(path))
        loaded = read_odt(str(path))
        assert loaded.column("t")[0] == pytest.approx(1.5)

    def test_read_rejects_headerless(self):
        with pytest.raises(OommfFormatError, match="Columns"):
            read_odt(io.StringIO("1.0 2.0\n"))

    def test_braced_column_names(self):
        payload = (
            "# ODT 1.0\n# Columns: {Total energy} Time\n"
            "1.0 2.0\n"
        )
        table = read_odt(io.StringIO(payload))
        assert table.column_names == ["Total energy", "Time"]

    def test_unbalanced_braces_rejected(self):
        payload = "# ODT 1.0\n# Columns: {Total energy\n1.0\n"
        with pytest.raises(OommfFormatError, match="unbalanced"):
            read_odt(io.StringIO(payload))

    def test_from_probe(self):
        from repro.materials import PERMALLOY
        from repro.mm import Mesh, Simulation, State, ZeemanField

        mesh = Mesh(1, 1, 1, 2e-9, 2e-9, 2e-9)
        state = State.uniform(mesh, PERMALLOY, direction=(0.1, 0, 1))
        sim = Simulation(state, terms=[ZeemanField((0, 0, 1e5))])
        probe = sim.add_point_probe((1e-9, 1e-9, 1e-9))
        sim.run(5e-12, dt=1e-12)
        table = OdtTable.from_probe(probe)
        assert len(table) == 5
        assert table.column_names == ["Time", "mx", "my", "mz"]
        np.testing.assert_allclose(table.column("Time"), probe.times())
