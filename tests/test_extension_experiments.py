"""Tests for the beyond-paper extension experiments."""

import pytest

from repro.core.layout import TransducerSpec
from repro.errors import ReproError
from repro.experiments import channel_capacity, noise_robustness
from repro.waveguide import Waveguide


class TestChannelCapacity:
    @pytest.fixture(scope="class")
    def results(self):
        return channel_capacity.run(channel_counts=(1, 2, 4, 8, 12))

    def test_usable_band_ordering(self):
        f_low, f_high = channel_capacity.usable_band(Waveguide())
        assert 0 < f_low < f_high
        # The paper's 10-80 GHz plan must fit inside the usable band.
        assert f_low < 10e9
        assert f_high > 80e9

    def test_usable_band_shrinks_with_long_transducers(self):
        _, f_high_short = channel_capacity.usable_band(
            Waveguide(), TransducerSpec(length=10e-9)
        )
        _, f_high_long = channel_capacity.usable_band(
            Waveguide(), TransducerSpec(length=20e-9)
        )
        assert f_high_long < f_high_short

    def test_oversized_transducer_rejected(self):
        with pytest.raises(ReproError, match="transducer too long"):
            channel_capacity.usable_band(
                Waveguide(), TransducerSpec(length=2e-6)
            )

    def test_paper_scale_designs_feasible(self, results):
        by_n = {r["n_bits"]: r for r in results["rows"]}
        for n in (2, 4, 8):
            assert by_n[n]["feasible"]
            assert by_n[n]["functional"]

    def test_per_bit_area_win_grows(self, results):
        assert results["per_bit_area_decreasing"]

    def test_design_plan_spacing(self):
        plan = channel_capacity.design_plan(5, 10e9, 50e9)
        assert plan.n_bits == 5
        assert plan.frequencies[0] == pytest.approx(10e9)
        assert plan.frequencies[-1] == pytest.approx(50e9)

    def test_report_renders(self, results):
        text = channel_capacity.report(results)
        assert "usable band" in text
        assert "area/bit" in text


class TestFaultCoverageExperiment:
    @pytest.fixture(scope="class")
    def results(self):
        from repro.experiments import fault_coverage

        # A 2-bit gate keeps the fault universe small and fast.
        from repro.core.frequency_plan import FrequencyPlan
        from repro.core.gate import DataParallelGate
        from repro.core.layout import InlineGateLayout

        plan = FrequencyPlan.uniform(2, 10e9, 10e9)
        gate = DataParallelGate(
            InlineGateLayout(Waveguide(), plan, n_inputs=3)
        )
        return fault_coverage.run(gate=gate)

    def test_fault_universe_size(self, results):
        # 4 kinds x 2 channels x 3 inputs.
        assert results["n_faults"] == 24

    def test_logic_catches_hard_faults_only(self, results):
        by_kind = results["logic_by_kind"]
        assert by_kind["dead-source"] == (6, 6)
        assert by_kind["stuck-phase-0"] == (6, 6)
        assert by_kind["stuck-phase-1"] == (6, 6)
        assert by_kind["weak-source"] == (6, 0)

    def test_parametric_catches_everything(self, results):
        assert results["parametric"]["coverage"] == 1.0

    def test_report_renders(self, results):
        from repro.experiments import fault_coverage

        text = fault_coverage.report(results)
        assert "weak-source" in text
        assert "TOTAL" in text


class TestCircuitFaultsExperiment:
    @pytest.fixture(scope="class")
    def results(self):
        from repro.experiments import circuit_faults

        # 2-bit cells over the lone full adder keep the universe small.
        return circuit_faults.run(width=1, n_bits=2)

    def test_fault_universe_size(self, results):
        # 3 cells x (3 + 2 + 2 inputs summed) x 4 kinds x 2 channels.
        assert results["n_faults"] == 7 * 4 * 2
        assert results["n_cells"] == 3

    def test_hard_faults_fully_covered(self, results):
        by_kind = {k: v for k, v in results["by_kind"].items()}
        for kind in ("dead-source", "stuck-phase-0", "stuck-phase-1"):
            total, caught = by_kind[kind]
            assert caught == total

    def test_weak_sources_invisible_to_circuit_logic(self, results):
        total, caught = results["by_kind"]["weak-source"]
        assert total == 14 and caught == 0

    def test_report_renders(self, results):
        from repro.experiments import circuit_faults

        text = circuit_faults.report(results)
        assert "Circuit-level fault coverage" in text
        assert "weak-source" in text and "TOTAL" in text
        assert "Parametric weak-source sweep" in text
        assert "detection threshold" in text

    def test_parametric_sweep_reports_threshold(self, results):
        parametric = results["parametric"]
        # The default victim is a phase-readout (MAJ3) cell: logic stays
        # blind at every severity, amplitude measurement does not.
        assert parametric["cell"] == "fa_carry"
        assert all(not p["logic_visible"] for p in parametric["points"])
        assert parametric["threshold"] is not None
        # Deviation grows monotonically with the amplitude deficit, and
        # everything at or below the threshold severity is detected.
        points = parametric["points"]  # sorted severity-descending
        deviations = [p["relative_deviation"] for p in points]
        assert deviations == sorted(deviations)
        for point in points:
            assert point["detected"] == (
                point["severity"] <= parametric["threshold"]
            )

    def test_parametric_sweep_validation(self):
        from repro.circuits import CircuitEngine, full_adder
        from repro.experiments.circuit_faults import (
            weak_source_amplitude_sweep,
        )
        from repro.errors import NetlistError

        netlist, _, _ = full_adder()
        engine = CircuitEngine(netlist, n_bits=2)
        with pytest.raises(NetlistError, match="severity"):
            weak_source_amplitude_sweep(engine, severities=())
        with pytest.raises(NetlistError, match="amplitude_tolerance"):
            weak_source_amplitude_sweep(engine, amplitude_tolerance=0.0)


class TestCircuitNoiseExperiment:
    @pytest.fixture(scope="class")
    def results(self):
        from repro.circuits import full_adder, ripple_carry_adder
        from repro.experiments import circuit_noise

        adder, _, _ = full_adder()
        return circuit_noise.run(
            blocks=[adder, ripple_carry_adder(2)],
            sigmas=(0.0, 0.6),
            n_trials=10,
            n_bits=2,
            seed=4,
        )

    def test_noiseless_is_perfect(self, results):
        for row in results["rows"]:
            assert row["error_rates"][0] == 0.0

    def test_margins_shrink_with_noise(self, results):
        for row in results["rows"]:
            assert row["min_margins"][1] < row["min_margins"][0]

    def test_heavy_noise_breaks_something(self, results):
        assert any(row["error_rates"][-1] > 0 for row in results["rows"])

    def test_report_renders(self, results):
        from repro.experiments import circuit_noise

        text = circuit_noise.report(results)
        assert "Circuit word error rate" in text
        assert "decode margin" in text
        assert "phasor backend" in text

    @pytest.mark.slow
    def test_trace_mode_sweep(self):
        """The waveform-accurate backend runs the same sweep."""
        from repro.circuits import full_adder
        from repro.experiments import circuit_noise

        adder, _, _ = full_adder()
        results = circuit_noise.run(
            blocks=[adder], sigmas=(0.0,), n_trials=4, n_bits=2, seed=4,
            mode="trace",
        )
        assert results["mode"] == "trace"
        assert results["rows"][0]["error_rates"][0] == 0.0
        assert "trace backend" in circuit_noise.report(results)


class TestNoiseRobustness:
    @pytest.fixture(scope="class")
    def results(self):
        # Small trial count: statistics checked loosely, trends strictly.
        return noise_robustness.run(
            sigmas=(0.0, 0.2, 0.8), n_trials=10, seed=1
        )

    def test_noiseless_is_perfect(self, results):
        assert results["phase_rates"][0] == 0.0
        assert results["amplitude_rates"][0] == 0.0
        assert results["position_rates"][0] == 0.0

    def test_error_rate_grows_with_noise(self, results):
        for key in ("phase_rates", "amplitude_rates", "position_rates"):
            rates = results[key]
            assert rates[-1] >= rates[0]
        # The largest sigma must actually break something somewhere.
        assert (
            results["phase_rates"][-1]
            + results["amplitude_rates"][-1]
            + results["position_rates"][-1]
        ) > 0

    def test_placement_noise_most_damaging(self, results):
        # Placement errors scale with k*x and hit the highest channels
        # hardest; at equal sigma they dominate phase jitter.
        assert results["position_rates"][-1] >= results["phase_rates"][-1]

    def test_thermal_estimate_positive_and_subcritical(self, results):
        sigma = results["thermal_phase_sigma_300k"]
        assert 0 < sigma < 1.0

    def test_report_renders(self, results):
        text = noise_robustness.report(results)
        assert "Word error rate" in text
        assert "300 K" in text
