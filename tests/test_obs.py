"""Tests for the ``repro.obs`` metrics + tracing layer (PR 8).

Pins the registry contract (thread-safe counters, span nesting,
JSON-pure snapshot round-trips, the disabled no-op fast path) and --
the load-bearing guarantee -- that instrumenting the circuit stack
changed no physics: packed, trace and coalesced runs remain
bit-identical with profiling enabled.
"""

import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.circuits import CircuitEngine, CircuitExecutor, full_adder
from repro.obs import DEFAULT_TIME_BUCKETS, MetricsRegistry


# ----------------------------------------------------------------------
# Counters, gauges, histograms
# ----------------------------------------------------------------------
def test_counter_increments():
    registry = MetricsRegistry(enabled=True)
    registry.inc("a")
    registry.inc("a", 4)
    assert registry.counter("a") == 5
    assert registry.counter("never") == 0


def test_gauge_last_write_wins():
    registry = MetricsRegistry(enabled=True)
    registry.gauge("depth", 3)
    registry.gauge("depth", 7)
    assert registry.snapshot()["gauges"]["depth"] == 7


def test_histogram_buckets_and_stats():
    registry = MetricsRegistry(enabled=True)
    for value in (0.5, 1.5, 2.5, 10.0):
        registry.observe("latency", value, bounds=(1.0, 2.0, 4.0))
    h = registry.histogram("latency")
    assert h["count"] == 4
    assert h["counts"] == [1, 1, 1, 1]  # one per bucket + overflow
    assert h["min"] == 0.5
    assert h["max"] == 10.0
    assert h["mean"] == pytest.approx(3.625)


def test_histogram_rejects_unsorted_bounds():
    registry = MetricsRegistry(enabled=True)
    with pytest.raises(ValueError):
        registry.observe("bad", 1.0, bounds=(2.0, 1.0))


def test_counters_record_even_when_disabled():
    # Counters are serving statistics (executor stats, cache hits) --
    # the ``enabled`` switch gates only timing instrumentation.
    registry = MetricsRegistry(enabled=False)
    registry.inc("requests")
    registry.observe("occupancy", 0.5, bounds=(0.5, 1.0))
    assert registry.counter("requests") == 1
    assert registry.histogram("occupancy")["count"] == 1


def test_thread_safety_concurrent_increments():
    registry = MetricsRegistry(enabled=True)
    n_threads, n_increments = 8, 2_000

    def worker():
        for _ in range(n_increments):
            registry.inc("shared")
            registry.observe("value", 1.0)
            with registry.span("work"):
                pass

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    total = n_threads * n_increments
    assert registry.counter("shared") == total
    assert registry.histogram("value")["count"] == total
    snapshot = registry.snapshot()
    (work,) = snapshot["spans"]
    assert work["name"] == "work"
    assert work["count"] == total


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def test_span_nesting_builds_tree():
    registry = MetricsRegistry(enabled=True)
    with registry.span("outer"):
        with registry.span("inner"):
            pass
        with registry.span("inner"):
            pass
    (outer,) = registry.snapshot()["spans"]
    assert outer["name"] == "outer"
    assert outer["count"] == 1
    (inner,) = outer["children"]
    assert inner["name"] == "inner"
    assert inner["count"] == 2  # same-path spans aggregate
    assert outer["total"] >= inner["total"]


def test_span_exposes_elapsed():
    registry = MetricsRegistry(enabled=True)
    with registry.span("timed") as span:
        pass
    assert span.elapsed >= 0.0


def test_span_records_on_exception():
    registry = MetricsRegistry(enabled=True)
    with pytest.raises(RuntimeError):
        with registry.span("failing"):
            raise RuntimeError("boom")
    (node,) = registry.snapshot()["spans"]
    assert node["name"] == "failing"
    assert node["count"] == 1
    # The stack unwound: a later span is a root, not a child.
    with registry.span("after"):
        pass
    assert {n["name"] for n in registry.snapshot()["spans"]} == {
        "failing", "after",
    }


def test_record_inserts_leaf_span():
    registry = MetricsRegistry(enabled=True)
    with registry.span("parent"):
        registry.record("premeasured", 0.25)
    (parent,) = registry.snapshot()["spans"]
    (leaf,) = parent["children"]
    assert leaf["name"] == "premeasured"
    assert leaf["total"] == pytest.approx(0.25)


def test_timed_decorator():
    registry = MetricsRegistry(enabled=True)

    @registry.timed("compute")
    def compute(x):
        return x * 2

    assert compute(21) == 42
    (node,) = registry.snapshot()["spans"]
    assert node["name"] == "compute"


def test_timer_observes_histogram():
    registry = MetricsRegistry(enabled=True)
    with registry.timer("step"):
        pass
    h = registry.histogram("step")
    assert h["count"] == 1
    assert h["bounds"] == list(DEFAULT_TIME_BUCKETS)


# ----------------------------------------------------------------------
# Disabled fast path
# ----------------------------------------------------------------------
def test_disabled_span_is_shared_noop():
    registry = MetricsRegistry(enabled=False)
    first = registry.span("a")
    second = registry.span("b")
    assert first is second  # one shared object: no per-call allocation
    with first as span:
        pass
    assert span.elapsed == 0.0
    assert registry.snapshot()["spans"] == []


def test_disabled_timer_and_record_are_noops():
    registry = MetricsRegistry(enabled=False)
    with registry.timer("t"):
        pass
    registry.record("r", 1.0)
    snapshot = registry.snapshot()
    assert snapshot["histograms"] == {}
    assert snapshot["spans"] == []


def test_enable_disable_toggle():
    registry = MetricsRegistry(enabled=False)
    registry.enable()
    with registry.span("on"):
        pass
    registry.disable()
    with registry.span("off"):
        pass
    assert [n["name"] for n in registry.snapshot()["spans"]] == ["on"]


def test_global_enable_flips_default_inheritance():
    assert not obs.profiling()
    try:
        obs.enable()
        assert obs.profiling()
        assert MetricsRegistry().enabled  # enabled=None inherits
        assert obs.get_registry().enabled
    finally:
        obs.disable()
        obs.get_registry().reset()
    assert not MetricsRegistry().enabled


def test_use_registry_swaps_and_restores():
    private = MetricsRegistry(enabled=True)
    original = obs.get_registry()
    with obs.use_registry(private) as active:
        assert active is private
        assert obs.get_registry() is private
        obs.inc("routed")
    assert obs.get_registry() is original
    assert private.counter("routed") == 1
    assert original.counter("routed") == 0


# ----------------------------------------------------------------------
# Snapshot / export
# ----------------------------------------------------------------------
def test_snapshot_round_trips_through_json():
    registry = MetricsRegistry(enabled=True)
    registry.inc("count", 3)
    registry.gauge("level", 2.5)
    registry.observe("hist", 0.01)
    with registry.span("root"):
        with registry.span("child"):
            pass
    snapshot = registry.snapshot()
    assert json.loads(registry.to_json()) == snapshot


def test_snapshot_is_detached():
    registry = MetricsRegistry(enabled=True)
    registry.inc("n")
    snapshot = registry.snapshot()
    registry.inc("n")
    assert snapshot["counters"]["n"] == 1


def test_reset_clears_everything():
    registry = MetricsRegistry(enabled=True)
    registry.inc("c")
    registry.gauge("g", 1)
    registry.observe("h", 1.0)
    with registry.span("s"):
        pass
    registry.reset()
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {}
    assert snapshot["gauges"] == {}
    assert snapshot["histograms"] == {}
    assert snapshot["spans"] == []


def test_render_spans_and_metrics():
    registry = MetricsRegistry(enabled=True)
    registry.inc("requests", 2)
    registry.observe("latency", 0.001)
    with registry.span("flush"):
        pass
    spans = registry.render_spans()
    assert "flush" in spans
    metrics = registry.render_metrics()
    assert "requests" in metrics
    assert "latency" in metrics


def test_render_metrics_merges_snapshots():
    a = MetricsRegistry(enabled=True)
    b = MetricsRegistry(enabled=True)
    a.inc("shared", 2)
    b.inc("shared", 3)
    a.observe("lat", 1.0)
    b.observe("lat", 3.0)
    text = obs.render_metrics([a.snapshot(), b.snapshot()])
    assert "shared" in text
    assert "5" in text  # counters sum across registries
    assert "n=2" in text  # histogram counts merge


def test_report_includes_extra_registries():
    private = MetricsRegistry(enabled=True)
    private.inc("executor.requests", 7)
    text = obs.report(extra=[private])
    assert "executor.requests" in text
    assert "span tree" in text


# ----------------------------------------------------------------------
# Instrumentation changes no physics
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def adder_case():
    netlist, _, _ = full_adder()
    batch = [
        {"a": 1, "b": 0, "cin": 1},
        {"a": 1, "b": 1, "cin": 1},
        {"a": 0, "b": 0, "cin": 0},
        {"a": 0, "b": 1, "cin": 0},
    ]
    return netlist, batch


def _margins(result):
    return np.array(
        [r.min_margin for r in result.levels if r.min_margin is not None]
    )


@pytest.mark.parametrize("mode", ["phasor", "trace"])
def test_profiled_run_is_bit_identical(adder_case, mode):
    netlist, batch = adder_case
    engine = CircuitEngine(netlist, n_bits=4)
    baseline = engine.run(batch, mode=mode)
    assert not obs.profiling()
    try:
        obs.enable()
        profiled = engine.run(batch, mode=mode)
    finally:
        obs.disable()
        obs.get_registry().reset()
    assert profiled.outputs == baseline.outputs
    assert profiled.failed == baseline.failed
    np.testing.assert_allclose(
        _margins(profiled), _margins(baseline), atol=1e-12
    )


def test_profiled_coalesced_run_is_bit_identical(adder_case):
    netlist, batch = adder_case

    def serve():
        executor = CircuitExecutor(n_bits=4)
        tickets = [executor.submit(netlist, [a]) for a in batch]
        return [t.result() for t in tickets]

    baseline = serve()
    try:
        obs.enable()
        profiled = serve()
    finally:
        obs.disable()
        obs.get_registry().reset()
    for base, prof in zip(baseline, profiled):
        assert prof.outputs == base.outputs
        np.testing.assert_allclose(
            _margins(prof), _margins(base), atol=1e-12
        )


def test_profiled_run_populates_span_tree(adder_case):
    netlist, batch = adder_case
    registry = MetricsRegistry(enabled=True)
    with obs.use_registry(registry):
        engine = CircuitEngine(netlist, n_bits=4)
        result = engine.run(batch)
    assert result.correct
    snapshot = registry.snapshot()
    names = {node["name"] for node in snapshot["spans"]}
    assert "compile_circuit" in names
    compile_node = next(
        n for n in snapshot["spans"] if n["name"] == "compile_circuit"
    )
    stages = {child["name"] for child in compile_node["children"]}
    assert stages == {"levelise", "allocate", "pack", "calibrate"}
    assert "circuit/level/phasor" in names
    assert snapshot["counters"]["circuit.packed_runs"] == 1
