"""Tests for the ``repro.obs`` metrics + tracing layer (PR 8).

Pins the registry contract (thread-safe counters, span nesting,
JSON-pure snapshot round-trips, the disabled no-op fast path) and --
the load-bearing guarantee -- that instrumenting the circuit stack
changed no physics: packed, trace and coalesced runs remain
bit-identical with profiling enabled.
"""

import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.circuits import CircuitEngine, CircuitExecutor, full_adder
from repro.obs import DEFAULT_TIME_BUCKETS, MetricsRegistry


# ----------------------------------------------------------------------
# Counters, gauges, histograms
# ----------------------------------------------------------------------
def test_counter_increments():
    registry = MetricsRegistry(enabled=True)
    registry.inc("a")
    registry.inc("a", 4)
    assert registry.counter("a") == 5
    assert registry.counter("never") == 0


def test_gauge_last_write_wins():
    registry = MetricsRegistry(enabled=True)
    registry.gauge("depth", 3)
    registry.gauge("depth", 7)
    assert registry.snapshot()["gauges"]["depth"] == 7


def test_histogram_buckets_and_stats():
    registry = MetricsRegistry(enabled=True)
    for value in (0.5, 1.5, 2.5, 10.0):
        registry.observe("latency", value, bounds=(1.0, 2.0, 4.0))
    h = registry.histogram("latency")
    assert h["count"] == 4
    assert h["counts"] == [1, 1, 1, 1]  # one per bucket + overflow
    assert h["min"] == 0.5
    assert h["max"] == 10.0
    assert h["mean"] == pytest.approx(3.625)


def test_histogram_rejects_unsorted_bounds():
    registry = MetricsRegistry(enabled=True)
    with pytest.raises(ValueError):
        registry.observe("bad", 1.0, bounds=(2.0, 1.0))


def test_counters_record_even_when_disabled():
    # Counters are serving statistics (executor stats, cache hits) --
    # the ``enabled`` switch gates only timing instrumentation.
    registry = MetricsRegistry(enabled=False)
    registry.inc("requests")
    registry.observe("occupancy", 0.5, bounds=(0.5, 1.0))
    assert registry.counter("requests") == 1
    assert registry.histogram("occupancy")["count"] == 1


def test_thread_safety_concurrent_increments():
    registry = MetricsRegistry(enabled=True)
    n_threads, n_increments = 8, 2_000

    def worker():
        for _ in range(n_increments):
            registry.inc("shared")
            registry.observe("value", 1.0)
            with registry.span("work"):
                pass

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    total = n_threads * n_increments
    assert registry.counter("shared") == total
    assert registry.histogram("value")["count"] == total
    snapshot = registry.snapshot()
    (work,) = snapshot["spans"]
    assert work["name"] == "work"
    assert work["count"] == total


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def test_span_nesting_builds_tree():
    registry = MetricsRegistry(enabled=True)
    with registry.span("outer"):
        with registry.span("inner"):
            pass
        with registry.span("inner"):
            pass
    (outer,) = registry.snapshot()["spans"]
    assert outer["name"] == "outer"
    assert outer["count"] == 1
    (inner,) = outer["children"]
    assert inner["name"] == "inner"
    assert inner["count"] == 2  # same-path spans aggregate
    assert outer["total"] >= inner["total"]


def test_span_exposes_elapsed():
    registry = MetricsRegistry(enabled=True)
    with registry.span("timed") as span:
        pass
    assert span.elapsed >= 0.0


def test_span_records_on_exception():
    registry = MetricsRegistry(enabled=True)
    with pytest.raises(RuntimeError):
        with registry.span("failing"):
            raise RuntimeError("boom")
    (node,) = registry.snapshot()["spans"]
    assert node["name"] == "failing"
    assert node["count"] == 1
    # The stack unwound: a later span is a root, not a child.
    with registry.span("after"):
        pass
    assert {n["name"] for n in registry.snapshot()["spans"]} == {
        "failing", "after",
    }


def test_record_inserts_leaf_span():
    registry = MetricsRegistry(enabled=True)
    with registry.span("parent"):
        registry.record("premeasured", 0.25)
    (parent,) = registry.snapshot()["spans"]
    (leaf,) = parent["children"]
    assert leaf["name"] == "premeasured"
    assert leaf["total"] == pytest.approx(0.25)


def test_timed_decorator():
    registry = MetricsRegistry(enabled=True)

    @registry.timed("compute")
    def compute(x):
        return x * 2

    assert compute(21) == 42
    (node,) = registry.snapshot()["spans"]
    assert node["name"] == "compute"


def test_timer_observes_histogram():
    registry = MetricsRegistry(enabled=True)
    with registry.timer("step"):
        pass
    h = registry.histogram("step")
    assert h["count"] == 1
    assert h["bounds"] == list(DEFAULT_TIME_BUCKETS)


# ----------------------------------------------------------------------
# Disabled fast path
# ----------------------------------------------------------------------
def test_disabled_span_is_shared_noop():
    registry = MetricsRegistry(enabled=False)
    first = registry.span("a")
    second = registry.span("b")
    assert first is second  # one shared object: no per-call allocation
    with first as span:
        pass
    assert span.elapsed == 0.0
    assert registry.snapshot()["spans"] == []


def test_disabled_timer_and_record_are_noops():
    registry = MetricsRegistry(enabled=False)
    with registry.timer("t"):
        pass
    registry.record("r", 1.0)
    snapshot = registry.snapshot()
    assert snapshot["histograms"] == {}
    assert snapshot["spans"] == []


def test_enable_disable_toggle():
    registry = MetricsRegistry(enabled=False)
    registry.enable()
    with registry.span("on"):
        pass
    registry.disable()
    with registry.span("off"):
        pass
    assert [n["name"] for n in registry.snapshot()["spans"]] == ["on"]


def test_global_enable_flips_default_inheritance():
    assert not obs.profiling()
    try:
        obs.enable()
        assert obs.profiling()
        assert MetricsRegistry().enabled  # enabled=None inherits
        assert obs.get_registry().enabled
    finally:
        obs.disable()
        obs.get_registry().reset()
    assert not MetricsRegistry().enabled


def test_use_registry_swaps_and_restores():
    private = MetricsRegistry(enabled=True)
    original = obs.get_registry()
    with obs.use_registry(private) as active:
        assert active is private
        assert obs.get_registry() is private
        obs.inc("routed")
    assert obs.get_registry() is original
    assert private.counter("routed") == 1
    assert original.counter("routed") == 0


# ----------------------------------------------------------------------
# Snapshot / export
# ----------------------------------------------------------------------
def test_snapshot_round_trips_through_json():
    registry = MetricsRegistry(enabled=True)
    registry.inc("count", 3)
    registry.gauge("level", 2.5)
    registry.observe("hist", 0.01)
    with registry.span("root"):
        with registry.span("child"):
            pass
    snapshot = registry.snapshot()
    assert json.loads(registry.to_json()) == snapshot


def test_snapshot_is_detached():
    registry = MetricsRegistry(enabled=True)
    registry.inc("n")
    snapshot = registry.snapshot()
    registry.inc("n")
    assert snapshot["counters"]["n"] == 1


def test_reset_clears_everything():
    registry = MetricsRegistry(enabled=True)
    registry.inc("c")
    registry.gauge("g", 1)
    registry.observe("h", 1.0)
    with registry.span("s"):
        pass
    registry.reset()
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {}
    assert snapshot["gauges"] == {}
    assert snapshot["histograms"] == {}
    assert snapshot["spans"] == []


def test_render_spans_and_metrics():
    registry = MetricsRegistry(enabled=True)
    registry.inc("requests", 2)
    registry.observe("latency", 0.001)
    with registry.span("flush"):
        pass
    spans = registry.render_spans()
    assert "flush" in spans
    metrics = registry.render_metrics()
    assert "requests" in metrics
    assert "latency" in metrics


def test_render_metrics_merges_snapshots():
    a = MetricsRegistry(enabled=True)
    b = MetricsRegistry(enabled=True)
    a.inc("shared", 2)
    b.inc("shared", 3)
    a.observe("lat", 1.0)
    b.observe("lat", 3.0)
    text = obs.render_metrics([a.snapshot(), b.snapshot()])
    assert "shared" in text
    assert "5" in text  # counters sum across registries
    assert "n=2" in text  # histogram counts merge


def test_report_includes_extra_registries():
    private = MetricsRegistry(enabled=True)
    private.inc("executor.requests", 7)
    text = obs.report(extra=[private])
    assert "executor.requests" in text
    assert "span tree" in text


# ----------------------------------------------------------------------
# Histogram edge cases (PR 10)
# ----------------------------------------------------------------------
def test_histogram_value_exactly_on_bound_lands_le():
    # Prometheus `le` semantics: a value equal to a bucket bound counts
    # in that bucket, not the next one.
    registry = MetricsRegistry(enabled=True)
    for value in (1.0, 2.0, 4.0):
        registry.observe("edge", value, bounds=(1.0, 2.0, 4.0))
    h = registry.histogram("edge")
    assert h["counts"] == [1, 1, 1, 0]


def test_histogram_overflow_bucket():
    registry = MetricsRegistry(enabled=True)
    registry.observe("over", 100.0, bounds=(1.0, 2.0))
    registry.observe("over", 1e9, bounds=(1.0, 2.0))
    h = registry.histogram("over")
    assert h["counts"] == [0, 0, 2]  # both beyond the last bound
    assert h["count"] == 2
    assert h["max"] == 1e9
    # The +Inf bucket still closes the Prometheus rendering at count.
    text = obs.render_prometheus([registry.snapshot()])
    assert 'over_bucket{le="+Inf"} 2' in text


def test_histogram_snapshot_races_concurrent_observe():
    # snapshot() must always return an internally consistent histogram
    # (count == sum of bucket counts, sum tracks count) even while
    # other threads are observing.
    registry = MetricsRegistry(enabled=True)
    stop = threading.Event()

    def hammer():
        while not stop.is_set():
            registry.observe("raced", 1.0, bounds=(0.5, 1.0, 2.0))

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(200):
            h = registry.histogram("raced")
            if h is None:
                continue
            assert h["count"] == sum(h["counts"])
            assert h["sum"] == pytest.approx(h["count"] * 1.0)
    finally:
        stop.set()
        for thread in threads:
            thread.join()


# ----------------------------------------------------------------------
# Prometheus exposition (PR 10)
# ----------------------------------------------------------------------
def test_prometheus_name_sanitization():
    assert obs.prometheus_name("executor.queue_latency_s") == (
        "executor_queue_latency_s"
    )
    assert obs.prometheus_name("serve.errors.400") == "serve_errors_400"
    assert obs.prometheus_name("0weird-name!") == "_0weird_name_"


def test_render_prometheus_counters_and_gauges():
    registry = MetricsRegistry(enabled=True)
    registry.inc("serve.requests", 7)
    registry.gauge("pending", 3)
    registry.gauge("label", "text-valued")  # skipped: not a sample
    text = obs.render_prometheus([registry.snapshot()])
    assert "# TYPE serve_requests_total counter" in text
    assert "serve_requests_total 7" in text
    assert "# TYPE pending gauge" in text
    assert "pending 3" in text
    assert "label" not in text
    assert text.endswith("\n")


def test_render_prometheus_histogram_is_cumulative():
    registry = MetricsRegistry(enabled=True)
    for value in (0.5, 1.5, 2.5, 10.0):
        registry.observe("lat", value, bounds=(1.0, 2.0, 4.0))
    text = obs.render_prometheus([registry.snapshot()])
    assert 'lat_bucket{le="1"} 1' in text
    assert 'lat_bucket{le="2"} 2' in text
    assert 'lat_bucket{le="4"} 3' in text
    assert 'lat_bucket{le="+Inf"} 4' in text
    assert "lat_count 4" in text
    assert "lat_sum 14.5" in text


def test_render_prometheus_merges_snapshots():
    a = MetricsRegistry(enabled=True)
    b = MetricsRegistry(enabled=True)
    a.inc("shared", 2)
    b.inc("shared", 3)
    text = obs.render_prometheus([a.snapshot(), b.snapshot()])
    assert "shared_total 5" in text


def test_histogram_quantile_estimates():
    registry = MetricsRegistry(enabled=True)
    for value in (0.5, 0.5, 0.5, 3.0):
        registry.observe("q", value, bounds=(1.0, 2.0))
    h = registry.histogram("q")
    assert obs.histogram_quantile(h, 0.5) == 1.0  # upper bucket bound
    assert obs.histogram_quantile(h, 0.99) == 3.0  # overflow -> max
    assert obs.histogram_quantile(None, 0.5) is None
    assert obs.histogram_quantile({"count": 0}, 0.5) is None


# ----------------------------------------------------------------------
# Event log (PR 10)
# ----------------------------------------------------------------------
def test_event_log_ring_bound_and_dropped():
    log = obs.EventLog(capacity=3)
    for i in range(5):
        log.emit("access", path=f"/{i}")
    assert len(log) == 3
    assert log.dropped == 2
    assert [e["path"] for e in log.tail()] == ["/2", "/3", "/4"]


def test_event_log_rejects_bad_capacity():
    with pytest.raises(ValueError):
        obs.EventLog(capacity=0)


def test_event_log_stamps_and_filters():
    log = obs.EventLog(capacity=10)
    log.emit("access", status=200)
    log.emit("error", status=400)
    log.emit("access", status=200)
    events = log.tail()
    assert [e["seq"] for e in events] == [1, 2, 3]
    assert all("ts" in e for e in events)
    assert [e["kind"] for e in log.tail(kind="error")] == ["error"]
    assert len(log.tail(n=1)) == 1


def test_event_log_json_purifies_exotic_fields():
    log = obs.EventLog(capacity=4)
    event = log.emit(
        "block",
        words=np.int64(7),
        share=np.float64(0.5),
        ids=("a", "b"),
        nested={"x": np.int32(1)},
        exotic=object(),
    )
    json.dumps(event)  # must not raise
    assert event["words"] == 7
    assert event["ids"] == ["a", "b"]
    assert isinstance(event["exotic"], str)


def test_event_log_sink_writes_json_lines(tmp_path):
    path = tmp_path / "access.jsonl"
    log = obs.EventLog(capacity=4, sink=str(path))
    log.emit("access", path="/healthz", status=200)
    log.emit("error", status=400)
    log.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    decoded = [json.loads(line) for line in lines]
    assert decoded[0]["kind"] == "access"
    assert decoded[1]["status"] == 400


def test_event_log_concurrent_emit_keeps_sequence_unique():
    log = obs.EventLog(capacity=10_000)

    def worker():
        for _ in range(500):
            log.emit("access")

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    events = log.tail(n=None)
    assert len(events) == 2_000
    assert len({e["seq"] for e in events}) == 2_000


# ----------------------------------------------------------------------
# Instrumentation changes no physics
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def adder_case():
    netlist, _, _ = full_adder()
    batch = [
        {"a": 1, "b": 0, "cin": 1},
        {"a": 1, "b": 1, "cin": 1},
        {"a": 0, "b": 0, "cin": 0},
        {"a": 0, "b": 1, "cin": 0},
    ]
    return netlist, batch


def _margins(result):
    return np.array(
        [r.min_margin for r in result.levels if r.min_margin is not None]
    )


@pytest.mark.parametrize("mode", ["phasor", "trace"])
def test_profiled_run_is_bit_identical(adder_case, mode):
    netlist, batch = adder_case
    engine = CircuitEngine(netlist, n_bits=4)
    baseline = engine.run(batch, mode=mode)
    assert not obs.profiling()
    try:
        obs.enable()
        profiled = engine.run(batch, mode=mode)
    finally:
        obs.disable()
        obs.get_registry().reset()
    assert profiled.outputs == baseline.outputs
    assert profiled.failed == baseline.failed
    np.testing.assert_allclose(
        _margins(profiled), _margins(baseline), atol=1e-12
    )


def test_profiled_coalesced_run_is_bit_identical(adder_case):
    netlist, batch = adder_case

    def serve():
        executor = CircuitExecutor(n_bits=4)
        tickets = [executor.submit(netlist, [a]) for a in batch]
        return [t.result() for t in tickets]

    baseline = serve()
    try:
        obs.enable()
        profiled = serve()
    finally:
        obs.disable()
        obs.get_registry().reset()
    for base, prof in zip(baseline, profiled):
        assert prof.outputs == base.outputs
        np.testing.assert_allclose(
            _margins(prof), _margins(base), atol=1e-12
        )


def test_profiled_run_populates_span_tree(adder_case):
    netlist, batch = adder_case
    registry = MetricsRegistry(enabled=True)
    with obs.use_registry(registry):
        engine = CircuitEngine(netlist, n_bits=4)
        result = engine.run(batch)
    assert result.correct
    snapshot = registry.snapshot()
    names = {node["name"] for node in snapshot["spans"]}
    assert "compile_circuit" in names
    compile_node = next(
        n for n in snapshot["spans"] if n["name"] == "compile_circuit"
    )
    stages = {child["name"] for child in compile_node["children"]}
    assert stages == {"levelise", "allocate", "pack", "calibrate"}
    assert "circuit/level/phasor" in names
    assert snapshot["counters"]["circuit.packed_runs"] == 1
