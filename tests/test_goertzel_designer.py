"""Tests for repro.analysis.goertzel and repro.core.designer."""

import cmath
import math

import numpy as np
import pytest

from repro.errors import ReadoutError, ReproError
from repro.analysis.goertzel import goertzel, goertzel_phasor, goertzel_power
from repro.analysis.phase import fft_phasor
from repro.core.designer import design_gate
from repro.core.gate import GateKind
from repro.waveguide import Waveguide


def _sine(frequency, amplitude=1.0, phase=0.0, duration=2e-9, rate=640e9):
    t = np.arange(0, duration, 1.0 / rate)
    return t, amplitude * np.sin(2 * np.pi * frequency * t + phase)


class TestGoertzel:
    def test_recovers_amplitude(self):
        t, s = _sine(10e9, amplitude=0.42)
        z = goertzel(s, 640e9, 10e9)
        assert abs(z) == pytest.approx(0.42, rel=0.02)

    def test_rejects_other_tone(self):
        t, s = _sine(20e9)
        assert abs(goertzel(s, 640e9, 10e9)) < 0.02

    def test_off_bin_frequency(self):
        # A frequency that does not align with any FFT bin.
        f = 10.37e9
        t, s = _sine(f, amplitude=0.5, duration=2.003e-9)
        z = goertzel_phasor(t, s, f)
        assert abs(z) == pytest.approx(0.5, rel=0.05)

    def test_phasor_matches_fft_estimator(self):
        for phase in (0.0, 1.0, math.pi, -2.0):
            t, s = _sine(10e9, amplitude=0.7, phase=phase)
            zg = goertzel_phasor(t, s, 10e9)
            zf = fft_phasor(t, s, 10e9)
            assert abs(zg - zf) < 0.05

    def test_phasor_phase_recovery(self):
        for phase in (0.3, -1.2, 2.9):
            t, s = _sine(10e9, phase=phase)
            z = goertzel_phasor(t, s, 10e9)
            measured = cmath.phase(z)
            wrapped = (measured - phase + math.pi) % (2 * math.pi) - math.pi
            assert abs(wrapped) < 0.02

    def test_power(self):
        t, s = _sine(10e9, amplitude=2.0)
        assert goertzel_power(s, 640e9, 10e9) == pytest.approx(4.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ReadoutError):
            goertzel(np.zeros(4), 1e9, 1e8)
        t, s = _sine(10e9)
        with pytest.raises(ReadoutError):
            goertzel(s, -1.0, 10e9)
        with pytest.raises(ReadoutError):
            goertzel(s, 640e9, 400e9)  # above Nyquist
        with pytest.raises(ReadoutError):
            goertzel_phasor(t[:4], s[:4], 10e9)

    def test_gate_decoding_with_goertzel(self, byte_simulator):
        words = [[1, 0] * 4, [0, 1] * 4, [1, 1, 0, 0] * 2]
        result = byte_simulator.run(words, method="goertzel")
        assert result.correct


class TestDesigner:
    def test_design_paper_scale_gate(self):
        design = design_gate(Waveguide(), n_bits=8)
        assert design.gate.n_bits == 8
        assert design.verified_combos == 3
        assert design.min_margin > 1.0
        assert design.comparison.area_ratio > 2.0

    def test_exhaustive_verification(self):
        design = design_gate(Waveguide(), n_bits=2, verify="exhaustive")
        assert design.verified_combos == 8

    def test_no_verification(self):
        design = design_gate(Waveguide(), n_bits=2, verify="none")
        assert design.verified_combos == 0
        assert math.isnan(design.min_margin)

    def test_unknown_verify_mode(self):
        with pytest.raises(ReproError):
            design_gate(Waveguide(), n_bits=2, verify="sometimes")

    def test_xor_design(self):
        design = design_gate(
            Waveguide(), n_bits=4, n_inputs=2, kind=GateKind.XOR,
            verify="exhaustive",
        )
        assert design.verified_combos == 4

    def test_too_many_channels_fails_cleanly(self):
        with pytest.raises(ReproError):
            design_gate(Waveguide(), n_bits=64)

    def test_summary_renders(self):
        design = design_gate(Waveguide(), n_bits=2)
        text = design.summary()
        assert "verified" in text and "um^2" in text

    def test_wider_waveguide_designs_work(self):
        design = design_gate(
            Waveguide(width=200e-9, include_width_modes=True), n_bits=4
        )
        assert design.min_margin > 1.0
