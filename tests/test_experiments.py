"""Integration tests: the experiment harness reproduces the paper's shapes.

These are the acceptance tests of the reproduction -- each asserts the
qualitative (and loosely quantitative) claims of the corresponding paper
artefact, exactly as catalogued in DESIGN.md and EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.experiments import (
    area_table,
    distance_table,
    fig3,
    fig4,
    scalability,
    width_sweep,
)
from repro.experiments.runner import EXPERIMENTS, run_experiment


class TestDistanceTable:
    @pytest.fixture(scope="class")
    def results(self):
        return distance_table.run()

    def test_all_channels_present(self, results):
        assert len(results["rows"]) == 8

    def test_distances_within_3_percent(self, results):
        # Paper: d = 166, 100, 117, 165, 174, 130, 168, 176 nm.
        assert results["worst_relative_error"] < 0.03

    def test_band_edge_below_first_channel(self, results):
        assert results["band_edge"] < 10e9

    def test_report_renders(self, results):
        text = distance_table.report(results)
        assert "166" in text and "worst" in text


class TestAreaTable:
    @pytest.fixture(scope="class")
    def results(self):
        return area_table.run()

    def test_parallel_smaller_than_scalar(self, results):
        assert results["parallel"].area < results["scalar"].area

    def test_area_ratio_shape(self, results):
        # Paper: 4.16x; accept the same "several-x" magnitude.
        assert 2.5 < results["area_ratio"] < 5.0

    def test_energy_parity(self, results):
        assert results["energy_ratio"] == pytest.approx(1.0)

    def test_parallel_area_near_paper(self, results):
        # Paper: 0.0279 um^2; ours should be within ~40%.
        assert results["parallel"].area == pytest.approx(
            results["paper"]["parallel_area"], rel=0.4
        )

    def test_report_renders(self, results):
        text = area_table.report(results)
        assert "4.16" in text and "um^2" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def results(self):
        return fig3.run()

    def test_all_combos_simulated(self, results):
        assert len(results["combos"]) == 8

    def test_majority_correct_everywhere(self, results):
        assert all(c["correct"] for c in results["combos"])

    def test_no_spurious_frequencies(self, results):
        # The headline Fig. 3 observation: different-frequency SWs do
        # not interact -- spectral power stays in the carrier bands.
        for combo in results["combos"]:
            assert combo["spurious_ratio"] < 0.01

    def test_all_eight_peaks_present(self, results):
        for combo in results["combos"]:
            assert all(a > 1e-4 for a in combo["peak_amplitudes"])

    def test_amplitude_order_of_magnitude(self, results):
        # Paper traces: Mx/Ms ~ 0.005.
        unanimous = results["combos"][0]
        assert 1e-3 < max(unanimous["peak_amplitudes"]) < 3e-2

    def test_complement_symmetry(self, results):
        # (0,0,0) and (1,1,1) differ only by a global phase flip, so
        # their spectra match.
        first = results["combos"][0]["peak_amplitudes"]
        last = results["combos"][-1]["peak_amplitudes"]
        np.testing.assert_allclose(first, last, rtol=0.05)

    def test_report_renders(self, results):
        assert "10 GHz" in fig3.report(results)


class TestFig4:
    @pytest.fixture(scope="class")
    def results(self):
        return fig4.run()

    def test_all_64_decodes_correct(self, results):
        assert results["all_correct"]

    def test_estimators_agree(self, results):
        assert results["methods_agree"]

    def test_margins_healthy(self, results):
        for combo in results["combos"]:
            for channel in combo["channels"]:
                assert channel["margin"] > 0.5

    def test_report_renders(self, results):
        text = fig4.report(results)
        assert "all 64 channel decodes correct: yes" in text


class TestWidthSweep:
    @pytest.fixture(scope="class")
    def results(self):
        return width_sweep.run()

    def test_band_edge_monotonic_decreasing(self, results):
        assert results["monotonic_decreasing"]

    def test_functional_at_every_width(self, results):
        # Paper: width scaling up to 500 nm does not affect functionality.
        assert all(r["functional"] for r in results["rows"])

    def test_mode_isolation_stays_strong(self, results):
        for row in results["rows"]:
            assert row["mode_isolation_db"] > 10.0

    def test_covers_paper_range(self, results):
        widths = [r["width"] for r in results["rows"]]
        assert min(widths) == pytest.approx(50e-9)
        assert max(widths) == pytest.approx(500e-9)

    def test_report_renders(self, results):
        assert "500" in width_sweep.report(results)


class TestScalability:
    @pytest.fixture(scope="class")
    def results(self):
        return scalability.run()

    def test_margin_decreases_with_inputs(self, results):
        margins = [r["uncompensated_margin"] for r in results["rows"]]
        assert all(a > b for a, b in zip(margins, margins[1:]))

    def test_eventually_fails_without_compensation(self, results):
        assert results["rows"][-1]["uncompensated_margin"] < 0

    def test_compensation_always_positive(self, results):
        assert all(r["compensated_margin"] > 0 for r in results["rows"])

    def test_grading_monotone(self, results):
        # E(I_n) < E(I_{n-1}) < ... < E(I_1).
        for row in results["rows"]:
            energies = row["energy_grading"]
            assert all(a > b for a, b in zip(energies, energies[1:]))

    def test_end_to_end_consistency(self, results):
        check = results["end_to_end"]
        assert check["margin_predicts_failure"]
        assert not check["uncompensated_correct"]
        assert check["compensated_correct"]

    def test_report_renders(self, results):
        assert "graded" in scalability.report(results)


class TestRunner:
    def test_registry_covers_design_md_ids(self):
        paper_ids = {
            "fig3",
            "fig4",
            "table-dist",
            "table-area",
            "width",
            "scale",
            "llg-x",
        }
        extension_ids = {
            "capacity",
            "noise",
            "faults",
            "drive",
            "circuit-faults",
            "circuit-noise",
            "synthesis-gain",
        }
        assert set(EXPERIMENTS) == paper_ids | extension_ids

    def test_run_experiment_returns_report(self):
        results, text = run_experiment("table-dist")
        assert "rows" in results
        assert isinstance(text, str) and text

    def test_unknown_experiment(self):
        with pytest.raises(ReproError, match="available"):
            run_experiment("fig99")

    def test_unknown_experiment_error_names_it_and_lists_available(self):
        with pytest.raises(
            ReproError, match="unknown experiment 'fig99'"
        ):
            run_experiment("fig99")

    def test_every_registration_maps_to_callables(self):
        """Registry integrity: a typo'd registration fails here."""
        for name, entry in EXPERIMENTS.items():
            assert isinstance(entry, tuple) and len(entry) == 2, name
            module, description = entry
            assert callable(getattr(module, "run", None)), (
                f"experiment {name!r} has no callable run()"
            )
            assert callable(getattr(module, "report", None)), (
                f"experiment {name!r} has no callable report()"
            )
            assert isinstance(description, str) and description, name

    def test_metrics_true_attaches_snapshot(self):
        from repro import obs

        assert not obs.profiling()
        results, text = run_experiment("table-dist", metrics=True)
        assert not obs.profiling()  # switch restored afterwards
        obs.get_registry().reset()
        snapshot = results["metrics"]
        assert "counters" in snapshot and "spans" in snapshot
        names = {node["name"] for node in snapshot["spans"]}
        assert "experiment/table-dist" in names
        assert isinstance(text, str) and text

    def test_metrics_registry_routes_instrumentation(self):
        from repro import obs

        registry = obs.MetricsRegistry(enabled=False)
        results, _ = run_experiment("table-dist", metrics=registry)
        assert registry.enabled  # opted in by the run
        assert results["metrics"] == registry.snapshot()
        # The process-global registry was restored and stayed clean.
        assert obs.get_registry() is not registry
