"""Tests for repro.constants and repro.units."""

import math

import pytest

from repro import constants
from repro.units import GHZ, NM, NS, ghz, nm, si_format


class TestConstants:
    def test_mu0_value(self):
        assert constants.MU0 == pytest.approx(4e-7 * math.pi)

    def test_gamma_consistency(self):
        # GAMMA_HZ_PER_T is GAMMA_LL expressed per cycle.
        assert constants.GAMMA_HZ_PER_T == pytest.approx(
            constants.GAMMA_LL / (2 * math.pi)
        )

    def test_gamma_is_28_ghz_per_tesla(self):
        assert constants.GAMMA_HZ_PER_T == pytest.approx(28.02e9, rel=1e-3)

    def test_kb_positive(self):
        assert constants.KB > 0


class TestUnits:
    def test_scales(self):
        assert NM == 1e-9
        assert GHZ == 1e9
        assert NS == 1e-9

    def test_nm_roundtrip(self):
        assert nm(166 * NM) == pytest.approx(166.0)

    def test_ghz_roundtrip(self):
        assert ghz(10 * GHZ) == pytest.approx(10.0)

    def test_si_format_nanometres(self):
        assert si_format(166e-9, "m") == "166 nm"

    def test_si_format_gigahertz(self):
        assert si_format(1.0e10, "Hz") == "10 GHz"

    def test_si_format_zero(self):
        assert si_format(0, "J") == "0 J"

    def test_si_format_negative(self):
        assert si_format(-2.5e-9, "s") == "-2.5 ns"

    def test_si_format_plain_units(self):
        assert si_format(3.0, "V") == "3 V"

    def test_si_format_tiny_value_clamps_to_atto(self):
        text = si_format(5e-19, "J")
        assert text.endswith("aJ")
