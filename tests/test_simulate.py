"""Tests for repro.core.simulate (the gate simulator, both modes)."""

from itertools import product

import numpy as np
import pytest

from repro.errors import SimulationError
from repro import byte_xor_gate
from repro.core.encoding import int_to_bits
from repro.core.frequency_plan import FrequencyPlan
from repro.core.gate import DataParallelGate, GateKind
from repro.core.layout import InlineGateLayout
from repro.core.simulate import GateSimulator
from repro.units import GHZ
from repro.waveguide import NoiseModel, Waveguide


def _small_gate(n_bits=2, n_inputs=3, inverted=None, kind=GateKind.MAJORITY):
    plan = FrequencyPlan.uniform(n_bits, 10 * GHZ, 10 * GHZ)
    layout = InlineGateLayout(
        Waveguide(), plan, n_inputs=n_inputs, inverted_outputs=inverted
    )
    return DataParallelGate(layout, kind=kind)


class TestPhasorMode:
    def test_byte_gate_all_uniform_combos(self, byte_simulator, byte_gate):
        for bits in product((0, 1), repeat=3):
            words = [[b] * byte_gate.n_bits for b in bits]
            result = byte_simulator.run_phasor(words)
            assert result.correct, f"combo {bits} decoded {result.decoded}"

    def test_byte_gate_random_words(self, byte_simulator, byte_gate):
        rng = np.random.default_rng(11)
        for _ in range(20):
            words = [
                int_to_bits(int(rng.integers(256)), byte_gate.n_bits)
                for _ in range(3)
            ]
            result = byte_simulator.run_phasor(words)
            assert result.correct

    def test_margin_positive(self, byte_simulator, byte_gate):
        words = [[1, 0] * 4, [0, 1] * 4, [1, 1, 0, 0] * 2]
        result = byte_simulator.run_phasor(words)
        assert result.min_margin > 0.5

    def test_result_fields(self, byte_simulator, byte_gate):
        words = [[0] * 8, [0] * 8, [0] * 8]
        result = byte_simulator.run_phasor(words)
        assert result.t is None
        assert result.traces == {}
        assert len(result.decodes) == 8


class TestTraceMode:
    def test_small_gate_all_combos(self):
        gate = _small_gate()
        simulator = GateSimulator(gate)
        for bits in product((0, 1), repeat=3):
            words = [[b] * gate.n_bits for b in bits]
            result = simulator.run(words)
            assert result.correct

    def test_trace_and_phasor_agree(self):
        gate = _small_gate()
        simulator = GateSimulator(gate)
        words = [[1, 0], [1, 1], [0, 0]]
        trace_result = simulator.run(words)
        phasor_result = simulator.run_phasor(words)
        assert trace_result.decoded == phasor_result.decoded

    def test_mixed_words(self):
        gate = _small_gate()
        simulator = GateSimulator(gate)
        words = [[1, 0], [0, 1], [1, 1]]
        result = simulator.run(words)
        assert result.decoded == [1, 1]
        assert result.correct

    def test_fft_method(self):
        gate = _small_gate()
        simulator = GateSimulator(gate)
        result = simulator.run([[1, 1], [1, 0], [1, 1]], method="fft")
        assert result.correct

    def test_duration_too_short_raises(self):
        gate = _small_gate()
        simulator = GateSimulator(gate)
        with pytest.raises(SimulationError, match="settling"):
            simulator.run([[0, 0]] * 3, duration=1e-12)

    def test_traces_have_data(self):
        gate = _small_gate()
        simulator = GateSimulator(gate)
        result = simulator.run([[1, 1], [0, 0], [1, 1]])
        for channel in range(gate.n_bits):
            assert np.max(np.abs(result.traces[channel])) > 0.1


class TestInvertedOutputs:
    def test_inverted_channel_decodes_complement(self):
        gate = _small_gate(inverted=[True, False])
        simulator = GateSimulator(gate)
        for bits in product((0, 1), repeat=3):
            words = [[b] * gate.n_bits for b in bits]
            result = simulator.run_phasor(words)
            assert result.correct
            # Channel 0 carries NOT(MAJ), channel 1 carries MAJ.
            assert result.decoded[0] == 1 - result.decoded[1]


class TestXorGate:
    def test_xor_all_combos_phasor(self):
        gate = _small_gate(n_inputs=2, kind=GateKind.XOR)
        simulator = GateSimulator(gate)
        for a, b in product((0, 1), repeat=2):
            words = [[a] * gate.n_bits, [b] * gate.n_bits]
            result = simulator.run_phasor(words)
            assert result.correct, f"XOR({a},{b}) -> {result.decoded}"

    def test_xor_trace_mode(self):
        gate = _small_gate(n_inputs=2, kind=GateKind.XOR)
        simulator = GateSimulator(gate)
        result = simulator.run([[1, 0], [0, 0]])
        assert result.decoded == [1, 0]

    def test_byte_xor_gate_factory(self):
        gate = byte_xor_gate()
        simulator = GateSimulator(gate)
        a, b = 0xA5, 0x3C
        words = [int_to_bits(a, 8), int_to_bits(b, 8)]
        result = simulator.run_phasor(words)
        from repro.core.encoding import bits_to_int

        assert bits_to_int(result.decoded) == a ^ b


class TestAmplitudesAndNoise:
    def test_amplitude_shape_validation(self):
        gate = _small_gate()
        with pytest.raises(SimulationError):
            GateSimulator(gate, amplitudes=np.ones((3, 3)))

    def test_custom_amplitudes_used(self):
        gate = _small_gate()
        amplitudes = np.full((2, 3), 0.5)
        simulator = GateSimulator(gate, amplitudes=amplitudes)
        sources = simulator.build_sources([[0, 0]] * 3)
        assert all(s.amplitude == 0.5 for s in sources)

    def test_small_noise_does_not_flip_bits(self):
        gate = _small_gate()
        noise = NoiseModel(amplitude_sigma=0.02, phase_sigma=0.02, seed=5)
        simulator = GateSimulator(gate, noise=noise)
        for bits in product((0, 1), repeat=3):
            words = [[b] * gate.n_bits for b in bits]
            assert simulator.run_phasor(words).correct

    def test_huge_phase_noise_breaks_gate(self):
        gate = _small_gate()
        noise = NoiseModel(phase_sigma=2.5, seed=1)
        simulator = GateSimulator(gate, noise=noise)
        failures = 0
        for seed in range(10):
            simulator.noise = NoiseModel(phase_sigma=2.5, seed=seed)
            words = [[1, 0], [0, 1], [1, 1]]
            if not simulator.run_phasor(words).correct:
                failures += 1
        assert failures > 0

    def test_calibration_is_noise_free(self):
        gate = _small_gate()
        noisy = GateSimulator(
            gate, noise=NoiseModel(phase_sigma=1.0, seed=2)
        )
        clean = GateSimulator(gate)
        for (pa, aa), (pb, ab) in zip(noisy.calibration(), clean.calibration()):
            assert pa == pytest.approx(pb)
            assert aa == pytest.approx(ab)

    def test_calibration_cached(self):
        gate = _small_gate()
        simulator = GateSimulator(gate)
        assert simulator.calibration() is simulator.calibration()


class TestTiming:
    def test_settle_time_covers_farthest_source(self):
        gate = _small_gate()
        simulator = GateSimulator(gate)
        settle = simulator.settle_time()
        model = simulator.model
        worst = 0.0
        for channel in range(gate.n_bits):
            frequency = gate.layout.plan.frequencies[channel]
            _, v_g, _ = model.wave_parameters(frequency)
            detector = gate.layout.detector_positions[channel]
            for position in gate.layout.source_positions[channel]:
                worst = max(worst, abs(detector - position) / v_g)
        assert settle > worst

    def test_default_duration_exceeds_settle(self):
        gate = _small_gate()
        simulator = GateSimulator(gate)
        assert simulator.default_duration() > simulator.settle_time()
