"""Tests for repro.waveguide (geometry, linear model, signal, noise)."""

import math

import numpy as np
import pytest

from repro.analysis.phase import phase_at
from repro.errors import DispersionError, SimulationError
from repro.materials import FECOB_PMA
from repro.physics.damping import attenuation_length
from repro.physics.solve import wavenumber_for_frequency
from repro.waveguide import (
    Detector,
    LinearWaveguideModel,
    NoiseModel,
    WaveSource,
    Waveguide,
)
from repro.waveguide.geometry import WidthModeDispersion
from repro.waveguide.signal import nyquist_ok, superpose, time_grid


class TestWaveguideGeometry:
    def test_defaults_match_paper(self):
        waveguide = Waveguide()
        assert waveguide.thickness == 1e-9
        assert waveguide.width == 50e-9
        assert waveguide.material is FECOB_PMA

    def test_invalid_geometry(self):
        with pytest.raises(DispersionError):
            Waveguide(thickness=0.0)
        with pytest.raises(DispersionError):
            Waveguide(width=-1e-9)
        with pytest.raises(DispersionError):
            Waveguide(dispersion_model="bogus")

    def test_dispersion_model_switch(self):
        fvmsw = Waveguide().dispersion()
        exchange = Waveguide(dispersion_model="exchange").dispersion()
        assert fvmsw.geometry == "FVMSW"
        assert exchange.geometry == "exchange"

    def test_band_edge_decreases_with_width(self):
        narrow = Waveguide(width=50e-9).band_edge()
        wide = Waveguide(width=500e-9).band_edge()
        assert wide < narrow

    def test_width_mode_dispersion_shifts_band_edge(self):
        plain = Waveguide(include_width_modes=False)
        quantised = Waveguide(include_width_modes=True)
        assert quantised.dispersion().frequency(0.0) > plain.dispersion().frequency(0.0)

    def test_width_mode_dispersion_composition(self):
        waveguide = Waveguide(include_width_modes=True)
        dispersion = waveguide.dispersion()
        assert isinstance(dispersion, WidthModeDispersion)
        base = Waveguide().dispersion()
        k_x = 1e8
        k_total = math.hypot(k_x, dispersion.k_y)
        assert dispersion.frequency(k_x) == pytest.approx(
            base.frequency(k_total)
        )

    def test_scaled_copies_and_overrides(self):
        waveguide = Waveguide()
        wider = waveguide.scaled(width=200e-9)
        assert wider.width == 200e-9
        assert wider.thickness == waveguide.thickness
        assert wider.dispersion_model == waveguide.dispersion_model

    def test_cross_section(self):
        assert Waveguide().cross_section_area() == pytest.approx(50e-18)

    def test_describe(self):
        assert "50 nm" in Waveguide().describe()


class TestWaveSourceDetector:
    def test_source_validation(self):
        with pytest.raises(SimulationError):
            WaveSource(position=0.0, frequency=-1e9)
        with pytest.raises(SimulationError):
            WaveSource(position=0.0, frequency=1e9, amplitude=-1.0)

    def test_detector_defaults(self):
        detector = Detector(position=1e-6)
        assert detector.label == ""


class TestLinearModel:
    def setup_method(self):
        self.waveguide = Waveguide()
        self.model = LinearWaveguideModel(self.waveguide)
        self.f = 10e9

    def test_causality_before_arrival(self):
        source = WaveSource(position=0.0, frequency=self.f)
        _, v_g, _ = self.model.wave_parameters(self.f)
        distance = 500e-9
        arrival = distance / v_g
        t = np.linspace(0, arrival * 0.9, 200)
        trace = self.model.trace([source], distance, t)
        np.testing.assert_allclose(trace, 0.0)

    def test_steady_amplitude_attenuated(self):
        source = WaveSource(position=0.0, frequency=self.f, amplitude=1.0)
        k, v_g, length = self.model.wave_parameters(self.f)
        distance = 300e-9
        arrival = distance / v_g
        t = np.linspace(arrival + 1e-10, arrival + 2e-9, 4000)
        trace = self.model.trace([source], distance, t)
        expected = math.exp(-distance / length)
        assert np.max(np.abs(trace)) == pytest.approx(expected, rel=1e-2)

    def test_wave_parameters_match_physics(self):
        dispersion = self.waveguide.dispersion()
        k, v_g, length = self.model.wave_parameters(self.f)
        assert k == pytest.approx(
            wavenumber_for_frequency(dispersion, self.f)
        )
        assert length == pytest.approx(attenuation_length(dispersion, k))
        assert v_g > 0

    def test_propagation_phase(self):
        # One wavelength downstream the signal repeats the source phase.
        source = WaveSource(position=0.0, frequency=self.f, phase=0.3)
        k, v_g, _ = self.model.wave_parameters(self.f)
        wavelength = 2 * math.pi / k
        t_start = 2 * wavelength / v_g + 2e-10
        t = np.arange(0, t_start + 2e-9, 1.0 / (32 * self.f))
        trace = self.model.trace([source], wavelength, t)
        measured = phase_at(t, trace, self.f, t_start=t_start)
        assert measured == pytest.approx(0.3, abs=0.02)

    def test_destructive_interference(self):
        # Two equal sources at the same spot, opposite phases: silence.
        sources = [
            WaveSource(position=0.0, frequency=self.f, phase=0.0),
            WaveSource(position=0.0, frequency=self.f, phase=math.pi),
        ]
        t = np.linspace(0, 2e-9, 2000)
        trace = self.model.trace(sources, 200e-9, t)
        np.testing.assert_allclose(trace, 0.0, atol=1e-12)

    def test_different_frequencies_superpose(self):
        sources = [
            WaveSource(position=0.0, frequency=10e9),
            WaveSource(position=0.0, frequency=20e9),
        ]
        t = np.linspace(1e-9, 3e-9, 4000)
        combined = self.model.trace(sources, 100e-9, t)
        individual = sum(
            self.model.trace([s], 100e-9, t) for s in sources
        )
        np.testing.assert_allclose(combined, individual, atol=1e-12)

    def test_run_returns_all_detectors(self):
        sources = [WaveSource(position=0.0, frequency=self.f)]
        detectors = [Detector(100e-9, "a"), Detector(200e-9, "b")]
        result = self.model.run(sources, detectors, duration=1e-9)
        assert set(result["traces"]) == {"a", "b"}
        assert result["t"].shape == result["traces"]["a"].shape

    def test_run_validation(self):
        source = WaveSource(position=0.0, frequency=self.f)
        detector = Detector(100e-9)
        with pytest.raises(SimulationError):
            self.model.run([], [detector], 1e-9)
        with pytest.raises(SimulationError):
            self.model.run([source], [], 1e-9)
        with pytest.raises(SimulationError):
            self.model.run([source], [detector], -1e-9)

    def test_steady_state_phasor_matches_trace(self):
        sources = [
            WaveSource(position=0.0, frequency=self.f, phase=0.0),
            WaveSource(position=50e-9, frequency=self.f, phase=math.pi),
            WaveSource(position=100e-9, frequency=20e9, phase=0.0),
        ]
        position = 400e-9
        phasor = self.model.steady_state_phasor(sources, position, self.f)
        t = np.arange(0, 4e-9, 1.0 / (64 * 20e9))
        trace = self.model.trace(sources, position, t)
        measured_phase = phase_at(t, trace, self.f, t_start=2e-9)
        expected_phase = math.atan2(phasor.imag, phasor.real)
        wrapped = (measured_phase - expected_phase + math.pi) % (2 * math.pi) - math.pi
        assert wrapped == pytest.approx(0.0, abs=0.05)

    def test_phasor_excludes_other_frequencies(self):
        sources = [
            WaveSource(position=0.0, frequency=10e9, amplitude=2.0),
            WaveSource(position=0.0, frequency=20e9, amplitude=5.0),
        ]
        z10 = self.model.steady_state_phasor(sources, 100e-9, 10e9)
        only10 = self.model.steady_state_phasor(sources[:1], 100e-9, 10e9)
        assert z10 == pytest.approx(only10)

    def test_front_smoothing_validation(self):
        with pytest.raises(SimulationError):
            LinearWaveguideModel(self.waveguide, front_smoothing=-1.0)


class TestSignalHelpers:
    def test_time_grid(self):
        t = time_grid(1e-9, 10e9)
        assert len(t) == 10
        assert t[1] - t[0] == pytest.approx(1e-10)

    def test_time_grid_validation(self):
        with pytest.raises(SimulationError):
            time_grid(-1.0, 1e9)
        with pytest.raises(SimulationError):
            time_grid(1e-9, 0.0)
        with pytest.raises(SimulationError):
            time_grid(1e-10, 1e9)  # < 2 samples

    def test_superpose(self):
        a = np.ones(5)
        b = 2 * np.ones(5)
        np.testing.assert_allclose(superpose([a, b]), 3.0)

    def test_superpose_validation(self):
        with pytest.raises(SimulationError):
            superpose([])
        with pytest.raises(SimulationError):
            superpose([np.ones(3), np.ones(4)])

    def test_nyquist_ok(self):
        assert nyquist_ok(100e9, 10e9)
        assert not nyquist_ok(30e9, 10e9)


class TestNoiseModel:
    def test_validation(self):
        with pytest.raises(SimulationError):
            NoiseModel(amplitude_sigma=-0.1)

    def test_deterministic_given_seed(self):
        sources = [WaveSource(position=0.0, frequency=1e10)]
        noise = NoiseModel(amplitude_sigma=0.1, phase_sigma=0.1, seed=42)
        a = noise.perturb_sources(sources)
        b = noise.perturb_sources(sources)
        assert a[0].amplitude == b[0].amplitude
        assert a[0].phase == b[0].phase

    def test_zero_sigmas_identity(self):
        sources = [WaveSource(position=1e-9, frequency=1e10, phase=0.5)]
        noise = NoiseModel()
        out = noise.perturb_sources(sources)
        assert out[0] == sources[0]

    def test_amplitude_never_negative(self):
        sources = [WaveSource(position=0.0, frequency=1e10, amplitude=0.01)]
        noise = NoiseModel(amplitude_sigma=5.0, seed=0)
        for _ in range(10):
            out = noise.perturb_sources(sources)
            assert out[0].amplitude >= 0.0

    def test_trace_noise_statistics(self):
        noise = NoiseModel(trace_sigma=0.1, seed=3)
        trace = np.zeros(50_000)
        noisy = noise.perturb_trace(trace)
        assert np.std(noisy) == pytest.approx(0.1, rel=0.05)

    def test_trace_untouched_without_sigma(self):
        noise = NoiseModel()
        trace = np.random.default_rng(0).normal(size=100)
        out = noise.perturb_trace(trace)
        np.testing.assert_array_equal(out, trace)
        assert out is not trace  # still a copy
