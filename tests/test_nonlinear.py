"""Tests for repro.waveguide.nonlinear and the drive-limits experiment."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.experiments import drive_limits
from repro.waveguide import WaveSource, Waveguide
from repro.waveguide.linear_model import LinearWaveguideModel
from repro.waveguide.nonlinear import (
    NonlinearWaveguideModel,
    safe_drive_amplitude,
)


@pytest.fixture(scope="module")
def model():
    return NonlinearWaveguideModel(Waveguide(), t_shift=-5.0, chi3=0.25)


class TestNonlinearPhaseShift:
    def test_zero_at_zero_amplitude(self, model):
        assert model.nonlinear_phase_error(0.0, 10e9, 1e-6) == 0.0

    def test_quadratic_in_amplitude(self, model):
        small = model.nonlinear_phase_error(0.01, 10e9, 1e-6)
        large = model.nonlinear_phase_error(0.02, 10e9, 1e-6)
        assert large == pytest.approx(4 * small, rel=1e-9)

    def test_linear_in_distance(self, model):
        near = model.nonlinear_phase_error(0.01, 10e9, 1e-7)
        far = model.nonlinear_phase_error(0.01, 10e9, 3e-7)
        assert far == pytest.approx(3 * near, rel=1e-9)

    def test_sign_follows_t_shift(self):
        red = NonlinearWaveguideModel(Waveguide(), t_shift=-5.0)
        blue = NonlinearWaveguideModel(Waveguide(), t_shift=+5.0)
        assert red.nonlinear_phase_error(0.05, 10e9, 1e-6) < 0
        assert blue.nonlinear_phase_error(0.05, 10e9, 1e-6) > 0

    def test_negative_distance_rejected(self, model):
        with pytest.raises(SimulationError):
            model.nonlinear_phase_error(0.01, 10e9, -1e-9)

    def test_reduces_to_linear_at_small_amplitude(self, model):
        linear = LinearWaveguideModel(Waveguide())
        source = WaveSource(position=0.0, frequency=10e9, amplitude=1e-4)
        t = np.linspace(1e-9, 2e-9, 500)
        nl = model.trace([source], 300e-9, t)
        lin = linear.trace([source], 300e-9, t)
        np.testing.assert_allclose(nl, lin, atol=1e-8)

    def test_phasor_and_trace_agree(self, model):
        from repro.analysis.phase import phase_at

        source = WaveSource(position=0.0, frequency=10e9, amplitude=0.05)
        position = 400e-9
        z = model.steady_state_phasor([source], position, 10e9)
        t = np.arange(0, 4e-9, 1.0 / (64 * 10e9))
        trace = model.trace([source], position, t)
        measured = phase_at(t, trace, 10e9, t_start=2e-9)
        expected = math.atan2(z.imag, z.real)
        wrapped = (measured - expected + math.pi) % (2 * math.pi) - math.pi
        assert abs(wrapped) < 0.05


class TestIntermodulation:
    def test_im3_frequencies(self, model):
        sources = [
            WaveSource(position=0.0, frequency=20e9, amplitude=0.1),
            WaveSource(position=0.0, frequency=30e9, amplitude=0.1),
        ]
        products = model.intermodulation_products(sources, 300e-9)
        # 2*20-30 = 10 GHz and 2*30-20 = 40 GHz, both above band edge.
        assert any(abs(f - 10e9) < 1e6 for f in products)
        assert any(abs(f - 40e9) < 1e6 for f in products)

    def test_sub_band_products_dropped(self, model):
        # 2*10 - 20 = 0 GHz: below the band edge, must not appear.
        sources = [
            WaveSource(position=0.0, frequency=10e9, amplitude=0.1),
            WaveSource(position=0.0, frequency=20e9, amplitude=0.1),
        ]
        products = model.intermodulation_products(sources, 300e-9)
        assert all(f > model.dispersion.frequency(0.0) for f in products)

    def test_im3_cubic_scaling(self, model):
        def im3_at_10ghz(amplitude):
            sources = [
                WaveSource(position=0.0, frequency=20e9, amplitude=amplitude),
                WaveSource(position=0.0, frequency=30e9, amplitude=amplitude),
            ]
            return abs(model.crosstalk_at(sources, 300e-9, 10e9))

        assert im3_at_10ghz(0.2) == pytest.approx(
            8 * im3_at_10ghz(0.1), rel=0.05
        )

    def test_sxr_improves_at_low_drive(self, model):
        def sxr(amplitude):
            sources = [
                WaveSource(position=0.0, frequency=10e9, amplitude=amplitude),
                WaveSource(position=0.0, frequency=20e9, amplitude=amplitude),
                WaveSource(position=0.0, frequency=30e9, amplitude=amplitude),
            ]
            return model.signal_to_crosstalk_db(sources, 300e-9, 10e9)

        # SXR = signal/IM3 ~ a/a^3 = 1/a^2: 40 dB per decade of drive.
        assert sxr(0.01) - sxr(0.1) == pytest.approx(40.0, abs=1.5)

    def test_sxr_infinite_without_collision(self, model):
        sources = [
            WaveSource(position=0.0, frequency=10e9, amplitude=0.1),
            WaveSource(position=0.0, frequency=17e9, amplitude=0.1),
        ]
        # Products at 3 and 24 GHz; neither hits 10 GHz.
        assert math.isinf(
            model.signal_to_crosstalk_db(sources, 300e-9, 10e9)
        )


class TestSafeDrive:
    def test_budget_inversion(self, model):
        amplitude = safe_drive_amplitude(model, 10e9, 500e-9, phase_budget=0.3)
        error = abs(model.nonlinear_phase_error(amplitude, 10e9, 500e-9))
        assert error == pytest.approx(0.3, rel=1e-9)

    def test_linear_model_unbounded(self):
        model = NonlinearWaveguideModel(Waveguide(), t_shift=0.0)
        assert math.isinf(safe_drive_amplitude(model, 10e9, 500e-9))

    def test_invalid_budget(self, model):
        with pytest.raises(SimulationError):
            safe_drive_amplitude(model, 10e9, 500e-9, phase_budget=0.0)


class TestDriveLimitsExperiment:
    @pytest.fixture(scope="class")
    def results(self):
        return drive_limits.run()

    def test_paper_operating_point_safe(self, results):
        by_amplitude = {r["amplitude"]: r for r in results["rows"]}
        paper = by_amplitude[drive_limits.PAPER_AMPLITUDE]
        assert paper["decodes_correctly"]
        assert paper["worst_sxr_db"] > 60.0

    def test_gate_eventually_fails(self, results):
        assert not results["rows"][-1]["decodes_correctly"]

    def test_sxr_degrades_monotonically(self, results):
        sxr = [r["worst_sxr_db"] for r in results["rows"]]
        assert all(a > b for a, b in zip(sxr, sxr[1:]))

    def test_phase_error_grows(self, results):
        errors = [r["worst_phase_error"] for r in results["rows"][1:]]
        assert all(a < b for a, b in zip(errors, errors[1:]))

    def test_report_renders(self, results):
        text = drive_limits.report(results)
        assert "(paper)" in text
        assert "SXR" in text
