"""Tests for the swgate command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for args in (
            ["list"],
            ["run", "fig3"],
            ["majority", "1", "2", "3"],
            ["circuit", "0x3", "0x2"],
            ["layout"],
            ["export-mif", "out.mif"],
        ):
            parsed = parser.parse_args(args)
            assert callable(parsed.func)


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "table-area" in out

    def test_run_distance_table(self, capsys):
        assert main(["run", "table-dist"]) == 0
        out = capsys.readouterr().out
        assert "lambda" in out

    def test_run_unknown_experiment(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            main(["run", "nope"])

    def test_majority_fast(self, capsys):
        assert main(["majority", "0xA5", "0x3C", "0x0F", "--fast"]) == 0
        out = capsys.readouterr().out
        # MAJ3(0xA5, 0x3C, 0x0F) = bitwise majority = 0x2D.
        assert "0x2D" in out
        assert "correct" in out

    def test_majority_trace_mode(self, capsys):
        assert main(["majority", "0xFF", "0x00", "0xFF"]) == 0
        assert "0xFF" in capsys.readouterr().out

    def test_layout(self, capsys):
        assert main(["layout"]) == 0
        assert "ch0" in capsys.readouterr().out

    def test_export_mif(self, tmp_path, capsys):
        target = tmp_path / "gate.mif"
        assert main(["export-mif", str(target)]) == 0
        text = target.read_text()
        assert "Specify Oxs_TimeDriver" in text
        assert "proc Excitation" in text

    def test_xor(self, capsys):
        assert main(["xor", "0xA5", "0x3C"]) == 0
        assert "0x99" in capsys.readouterr().out

    def test_adder(self, capsys):
        assert main(["adder", "0xA5", "0x3C"]) == 0
        out = capsys.readouterr().out
        assert "0xE1" in out
        assert "area saving" in out

    def test_adder_custom_width(self, capsys):
        assert main(["adder", "0x3", "0x4", "--width", "4"]) == 0
        assert "0x7" in capsys.readouterr().out

    def test_circuit_physical_adder(self, capsys):
        assert (
            main(["circuit", "0x3", "0x2", "--width", "2", "--bits", "2"])
            == 0
        )
        out = capsys.readouterr().out
        assert "0x3 + 0x2 = 0x5" in out
        assert "physics matches logic" in out
        assert "level 1" in out
        assert "steady-state phasor backend" in out

    def test_circuit_physical_adder_trace_mode(self, capsys):
        assert (
            main(
                [
                    "circuit", "0x2", "0x1",
                    "--width", "2", "--bits", "2", "--mode", "trace",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "0x2 + 0x1 = 0x3" in out
        assert "time-domain waveform backend" in out
        assert "physics matches logic" in out
        assert "min margin" in out

    def test_circuit_save_artifact(self, tmp_path, capsys):
        target = tmp_path / "adder.ccz"
        assert (
            main(
                [
                    "circuit", "0x3", "0x2",
                    "--width", "2", "--bits", "2",
                    "--save-artifact", str(target),
                ]
            )
            == 0
        )
        assert target.exists()
        assert "saved compiled artifact" in capsys.readouterr().out

    def test_serve_send_round_trip(self, tmp_path, capsys):
        """`swgate circuit --save-artifact` -> `swgate serve --warm` ->
        `swgate serve --send`: the whole CLI serving workflow."""
        from repro.serve import CircuitServer

        artifact = tmp_path / "rca2.ccz"
        assert (
            main(
                [
                    "circuit", "0x1", "0x2",
                    "--width", "2", "--bits", "2", "--packed",
                    "--save-artifact", str(artifact),
                ]
            )
            == 0
        )
        capsys.readouterr()
        with CircuitServer(
            port=0, n_bits=2, max_latency=0.002, warm=[str(artifact)]
        ) as daemon:
            assert (
                main(
                    [
                        "serve", "--send", "0x1", "0x2",
                        "--width", "2", "--url", daemon.url,
                    ]
                )
                == 0
            )
            out = capsys.readouterr().out
            assert "0x1 + 0x2 = 0x3" in out
            assert "physics matches logic" in out
            assert "server:" in out
            # The warm artifact served it: no compile miss.
            assert daemon.executor.cache.misses == 0
            assert daemon.executor.cache.hits == 1

    def test_top_renders_live_interval(self, capsys):
        """`swgate top --iterations 1` polls a running daemon and
        renders one interval report."""
        from repro.serve import CircuitServer

        with CircuitServer(port=0, n_bits=2, max_latency=0.002) as daemon:
            assert (
                main(
                    [
                        "top", "--url", daemon.url,
                        "--interval", "0.2", "--iterations", "1",
                        "--no-clear",
                    ]
                )
                == 0
            )
        out = capsys.readouterr().out
        assert "swgate top" in out
        assert "words/s" in out
        assert "queue p50" in out

    def test_top_unreachable_daemon_fails_cleanly(self, capsys):
        assert (
            main(
                [
                    "top", "--url", "http://127.0.0.1:9",
                    "--iterations", "1",
                ]
            )
            == 1
        )
        assert "cannot reach" in capsys.readouterr().out

    def test_synth_list(self, capsys):
        assert main(["synth", "--list"]) == 0
        out = capsys.readouterr().out
        assert "parity8" in out and "alu_slice" in out

    def test_synth_suite_circuit(self, capsys):
        assert main(["synth", "comparator4", "--bits", "2"]) == 0
        out = capsys.readouterr().out
        assert "optimization pipeline" in out
        assert "naive:" in out and "optimized:" in out
        assert "equivalent (exhaustive)" in out
        assert "physics matches logic" in out

    def test_synth_expression(self, capsys):
        assert (
            main(
                [
                    "synth", "--expr", "maj(a, b, c) ^ a",
                    "--output", "g", "--bits", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "synthesis of 'g'" in out
        assert "physics matches logic" in out

    def test_synth_no_run_skips_physics(self, capsys):
        assert main(["synth", "parity8", "--no-run"]) == 0
        out = capsys.readouterr().out
        assert "physical execution" not in out

    def test_synth_trace_mode(self, capsys):
        assert (
            main(
                ["synth", "--expr", "a ^ b", "--bits", "2",
                 "--mode", "trace"]
            )
            == 0
        )
        assert "trace mode" in capsys.readouterr().out

    def test_synth_without_circuit_errors(self, capsys):
        assert main(["synth"]) == 2
        assert "--list" in capsys.readouterr().out

    def test_synth_circuit_and_expr_conflict(self, capsys):
        assert main(["synth", "parity8", "--expr", "a & b"]) == 2
        assert "not both" in capsys.readouterr().out

    def test_synth_unknown_circuit_clean_error(self, capsys):
        assert main(["synth", "parity9"]) == 2
        assert "unknown suite circuit" in capsys.readouterr().out

    def test_synth_malformed_expression_clean_error(self, capsys):
        assert main(["synth", "--expr", "a &"]) == 2
        assert "synth:" in capsys.readouterr().out

    def test_synth_degenerate_spec_clean_error(self, capsys):
        """Parseable but inputless specs exit 2, not a traceback."""
        assert main(["synth", "--expr", "maj(0, 1, 1)"]) == 2
        assert "no inputs" in capsys.readouterr().out

    def test_run_synthesis_gain(self, capsys):
        assert main(["run", "synthesis-gain"]) == 0
        out = capsys.readouterr().out
        assert "Physical gain of logic optimization" in out
        assert "trace-mode confirmation" in out

    def test_list_includes_synthesis_gain(self, capsys):
        assert main(["list"]) == 0
        assert "synthesis-gain" in capsys.readouterr().out

    def test_design_default(self, capsys):
        assert main(["design", "--bits", "4"]) == 0
        out = capsys.readouterr().out
        assert "4-bit" in out and "verified" in out

    def test_design_wide_guide(self, capsys):
        assert main(["design", "--bits", "2", "--width", "200"]) == 0
        assert "2-bit" in capsys.readouterr().out

    def test_design_xor(self, capsys):
        assert (
            main(
                [
                    "design",
                    "--bits",
                    "2",
                    "--inputs",
                    "2",
                    "--kind",
                    "xor",
                    "--verify",
                    "exhaustive",
                ]
            )
            == 0
        )
        assert "XOR" in capsys.readouterr().out

    def test_save_and_check_design(self, tmp_path, capsys):
        path = tmp_path / "design.json"
        assert main(["save-design", str(path)]) == 0
        assert path.exists()
        assert main(["check-design", str(path)]) == 0
        out = capsys.readouterr().out
        assert "layout valid" in out and "correct" in out

    def test_export_mif_custom_words(self, tmp_path):
        target = tmp_path / "gate.mif"
        assert (
            main(
                [
                    "export-mif",
                    str(target),
                    "--words",
                    "0x01",
                    "0x02",
                    "0x04",
                ]
            )
            == 0
        )
        assert target.exists()
